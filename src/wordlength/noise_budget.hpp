// Error-driven fractional-wordlength assignment (Synoptix-style).
//
// The paper's closing remark: "the wordlength of each operation has been
// specified a-priori, either by hand or from output-error specification by
// a further design automation tool such as Synoptix [3, 6]. Future work
// should include investigation of the interaction between high-level
// synthesis of multiple wordlength systems and the derivation of
// wordlength information from output-error specifications." This module
// implements that front end for linear(ised) computation graphs, closing
// the loop the paper points at.
//
// Model (standard roundoff-noise analysis): truncating an operation's
// result to f fractional bits injects white noise of power 2^{-2f}/12,
// which reaches the system output scaled by the squared L2 gain of the
// path from that operation to the output. Given per-operation output
// gains G_o and a total output-noise budget P, we choose fractional widths
//
//     f_o  >=  0.5 * log2( N * G_o^2 / (12 * P) )
//
// (water-filling: every operation contributes an equal share P/N), clamp
// to [min_frac, max_frac], then greedily *shrink* further while the exact
// budget still holds -- cheapest-impact first, so wide-gain operations
// keep their bits and low-gain operations shed theirs.

#ifndef MWL_WORDLENGTH_NOISE_BUDGET_HPP
#define MWL_WORDLENGTH_NOISE_BUDGET_HPP

#include "dfg/sequencing_graph.hpp"

#include <span>
#include <vector>

namespace mwl {

struct noise_spec {
    /// Maximum allowed output noise power (variance, same scale as the
    /// gains). Must be > 0.
    double budget = 1e-6;
    int min_frac_bits = 2;
    int max_frac_bits = 24;
};

/// Noise power injected by truncation to `frac_bits` fractional bits.
[[nodiscard]] double truncation_noise_power(int frac_bits);

/// Squared-gain from every operation's output to the system output for a
/// *linear* graph in which adders have unit gain per input and multipliers
/// scale by a constant coefficient: `coeff_gain[o]` is the |coefficient|
/// of multiplier o (ignored for adders). Outputs (ops without successors)
/// have gain 1 to themselves; multiple outputs accumulate.
[[nodiscard]] std::vector<double> output_gains(
    const sequencing_graph& graph, std::span<const double> coeff_gain);

struct wordlength_assignment {
    std::vector<int> frac_bits;   ///< per op id
    double noise_power = 0.0;     ///< achieved output noise power
};

/// Assign fractional widths meeting `spec.budget` with minimum total bits.
/// Throws `infeasible_error` if even max_frac_bits everywhere exceeds the
/// budget, `precondition_error` on malformed inputs.
[[nodiscard]] wordlength_assignment assign_fractional_widths(
    const sequencing_graph& graph, std::span<const double> gains,
    const noise_spec& spec);

} // namespace mwl

#endif // MWL_WORDLENGTH_NOISE_BUDGET_HPP
