// Ablation bench for DPAlloc's design choices (DESIGN.md section 6):
//
//  * growth pass of BindSelect on/off (the paper's "compensation for the
//    greedy nature of the selections"),
//  * incomplete-wordlength constraint Eqn. 3' vs the classic per-type
//    constraint Eqn. 2 the paper argues is too relaxed,
//  * cheapest-resource reassignment (wordlength selection) on/off.
//
// Reports mean area relative to the full configuration (100% = default
// DPAlloc; higher = worse).

#include "bench_common.hpp"
#include "core/dpalloc.hpp"
#include "core/validate.hpp"
#include "support/stats.hpp"
#include "tgff/corpus.hpp"

#include <iostream>
#include <vector>

int main(int argc, char** argv)
{
    using namespace mwl;
    const bench::bench_options opt =
        bench::parse_options(argc, argv, "ablation_design_choices");

    struct arm {
        const char* name;
        dpalloc_options options;
    };
    const std::vector<arm> arms{
        {"full DPAlloc", {}},
        {"no growth pass",
         {.enable_growth = false}},
        {"no cheapest reassign",
         {.reassign_cheapest = false}},
        {"classic Eqn. 2 constraint",
         {.classic_constraint = true}},
        {"all ablated",
         {.enable_growth = false, .reassign_cheapest = false,
          .classic_constraint = true}},
    };

    const sonic_model model;
    table t("Ablation: mean area relative to full DPAlloc (100 = default)");
    std::vector<std::string> head{"config"};
    struct point {
        std::size_t n;
        double slack;
    };
    const std::vector<point> points{{8, 0.1}, {8, 0.3}, {16, 0.1},
                                    {16, 0.3}};
    for (const point& p : points) {
        head.push_back("|O|=" + std::to_string(p.n) + " s" +
                       std::to_string(static_cast<int>(p.slack * 100)) +
                       "%");
    }
    t.header(head);

    // Reference areas for the full configuration.
    std::vector<std::vector<double>> reference(points.size());
    for (std::size_t pi = 0; pi < points.size(); ++pi) {
        const auto corpus =
            make_corpus(points[pi].n, opt.graphs, model, opt.seed);
        for (const corpus_entry& e : corpus) {
            const int lambda =
                relaxed_lambda(e.lambda_min, points[pi].slack);
            reference[pi].push_back(
                dpalloc(e.graph, model, lambda).path.total_area);
        }
    }

    for (const arm& a : arms) {
        std::vector<std::string> row{a.name};
        for (std::size_t pi = 0; pi < points.size(); ++pi) {
            const auto corpus =
                make_corpus(points[pi].n, opt.graphs, model, opt.seed);
            std::vector<double> ratios;
            for (std::size_t gi = 0; gi < corpus.size(); ++gi) {
                const corpus_entry& e = corpus[gi];
                const int lambda =
                    relaxed_lambda(e.lambda_min, points[pi].slack);
                const dpalloc_result r =
                    dpalloc(e.graph, model, lambda, a.options);
                require_valid(e.graph, model, r.path, lambda);
                ratios.push_back(r.path.total_area / reference[pi][gi] *
                                 100.0);
            }
            row.push_back(table::num(mean(ratios), 1));
        }
        t.row(std::move(row));
    }
    bench::emit(t, opt);
    return 0;
}
