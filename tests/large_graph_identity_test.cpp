// Bit-identity pins for the large-graph tier: the windowed tgff presets
// (tgff/generator.hpp, large_graph_preset) run through the full allocator
// and every answer -- area AND the refinement trajectory -- is pinned to
// the values recorded when the fast paths (CSR adjacency, bitset kernels,
// arena scratch, lazy front heap) landed. Any optimisation that changes a
// number here changed the algorithm, not just its speed.
//
// bench/large_graph_scaling.cpp measures throughput on the same graphs
// (its first graph per size is exactly the seed-base + n graph pinned
// here), so these pins are what make that artifact's numbers meaningful.

#include "core/dpalloc.hpp"
#include "dfg/analysis.hpp"
#include "model/hardware_model.hpp"
#include "sched/incomplete_scheduler.hpp"
#include "tgff/corpus.hpp"
#include "tgff/generator.hpp"
#include "wcg/wcg.hpp"

#include <gtest/gtest.h>

namespace mwl {
namespace {

sequencing_graph preset_graph(std::size_t n)
{
    rng random(large_graph_seed_base + n);
    return generate_tgff(large_graph_preset(n), random);
}

TEST(LargeGraphIdentity, PinnedAllocStats500)
{
    const sequencing_graph g = preset_graph(500);
    const sonic_model model;
    const int lmin = min_latency(g, model);
    ASSERT_EQ(lmin, 136);
    const dpalloc_result r =
        dpalloc(g, model, relaxed_lambda(lmin, 0.10));
    EXPECT_EQ(r.path.total_area, 17658);
    EXPECT_EQ(r.stats.iterations, 757);
    EXPECT_EQ(r.stats.refinements, 753);
    EXPECT_EQ(r.stats.escalations, 3);
    EXPECT_EQ(r.stats.edges_deleted, 30891);
}

TEST(LargeGraphIdentity, PinnedAllocStats1000)
{
    const sequencing_graph g = preset_graph(1000);
    const sonic_model model;
    const int lmin = min_latency(g, model);
    ASSERT_EQ(lmin, 253);
    const dpalloc_result r =
        dpalloc(g, model, relaxed_lambda(lmin, 0.10));
    EXPECT_EQ(r.path.total_area, 22904);
    EXPECT_EQ(r.stats.iterations, 1500);
    EXPECT_EQ(r.stats.refinements, 1496);
    EXPECT_EQ(r.stats.escalations, 3);
    EXPECT_EQ(r.stats.edges_deleted, 63428);
}

TEST(LargeGraphIdentity, EngineParity500)
{
    // The event engine's fast paths (signature tournament, front heap,
    // arena CSR) against the plain rescan reference on a preset graph:
    // identical schedule, makespan, and scheduling set, by contract.
    const sequencing_graph g = preset_graph(500);
    const sonic_model model;
    const wordlength_compatibility_graph wcg(g, model);
    const incomplete_schedule_result fast =
        schedule_incomplete(wcg, 1, nullptr, sched_engine::event);
    const incomplete_schedule_result ref =
        schedule_incomplete(wcg, 1, nullptr, sched_engine::reference_scan);
    EXPECT_EQ(fast.length, ref.length);
    EXPECT_EQ(fast.start, ref.start);
    ASSERT_EQ(fast.scheduling_set.size(), ref.scheduling_set.size());
    for (std::size_t i = 0; i < fast.scheduling_set.size(); ++i) {
        EXPECT_EQ(fast.scheduling_set[i].value(),
                  ref.scheduling_set[i].value());
    }
    EXPECT_EQ(fast.cover_proven_minimum, ref.cover_proven_minimum);
}

TEST(LargeGraphIdentity, IncrementalParity150)
{
    // Full allocator, incremental event pipeline vs the reference
    // pipeline, on a preset graph small enough to run both end to end.
    const sequencing_graph g = preset_graph(150);
    const sonic_model model;
    const int lambda = relaxed_lambda(min_latency(g, model), 0.10);

    dpalloc_options incremental;
    incremental.incremental = true;
    dpalloc_options reference;
    reference.incremental = false;

    const dpalloc_result a = dpalloc(g, model, lambda, incremental);
    const dpalloc_result b = dpalloc(g, model, lambda, reference);
    EXPECT_EQ(a.path.total_area, b.path.total_area);
    EXPECT_EQ(a.path.start, b.path.start);
    EXPECT_EQ(a.path.instance_of_op, b.path.instance_of_op);
    EXPECT_EQ(a.stats.iterations, b.stats.iterations);
    EXPECT_EQ(a.stats.refinements, b.stats.refinements);
    EXPECT_EQ(a.stats.escalations, b.stats.escalations);
    EXPECT_EQ(a.stats.edges_deleted, b.stats.edges_deleted);
}

} // namespace
} // namespace mwl
