// Fig. 3: area penalty (%) of the two-stage approach [4] over this paper's
// heuristic, as a function of problem size |O| and latency constraint
// relaxation.
//
// Protocol (paper §3): random sequencing graphs per problem size
// (TGFF-adapted generator), lambda_min computed per graph, latency
// constraints at 0%..30% relaxation, mean over the corpus of the relative
// area increase of the two-stage solution over DPAlloc's.
//
// Expected shape: penalty ~0% at zero slack (neither algorithm can trade
// latency for area) and grows with slack and with |O| into the tens of
// percent -- "even a small 'slack' enables significant improvements".
//
// Default: 25 graphs/point, sizes 2..24 step 2. Paper corpus: --graphs 200.

#include "baseline/two_stage.hpp"
#include "bench_common.hpp"
#include "core/dpalloc.hpp"
#include "core/validate.hpp"
#include "support/stats.hpp"
#include "tgff/corpus.hpp"

#include <iostream>
#include <vector>

int main(int argc, char** argv)
{
    using namespace mwl;
    const bench::bench_options opt =
        bench::parse_options(argc, argv, "fig3_area_penalty");
    const std::size_t max_size = opt.max_size == 0 ? 24 : opt.max_size;
    const std::vector<double> slacks{0.0, 0.10, 0.20, 0.30};

    const sonic_model model;
    table t("Fig. 3: mean area penalty (%) of two-stage [4] over DPAlloc");
    std::vector<std::string> head{"|O|"};
    for (const double s : slacks) {
        head.push_back("slack " +
                       std::to_string(static_cast<int>(s * 100)) + "%");
    }
    t.header(head);

    for (std::size_t n = 2; n <= max_size; n += 2) {
        const auto corpus = make_corpus(n, opt.graphs, model, opt.seed);
        std::vector<std::string> row{table::num(static_cast<int>(n))};
        for (const double slack : slacks) {
            std::vector<double> penalties;
            penalties.reserve(corpus.size());
            for (const corpus_entry& e : corpus) {
                const int lambda = relaxed_lambda(e.lambda_min, slack);
                const dpalloc_result heur = dpalloc(e.graph, model, lambda);
                require_valid(e.graph, model, heur.path, lambda);
                const two_stage_result base =
                    two_stage_allocate(e.graph, model, lambda);
                require_valid(e.graph, model, base.path, lambda);
                penalties.push_back((base.path.total_area /
                                         heur.path.total_area -
                                     1.0) *
                                    100.0);
            }
            row.push_back(table::num(mean(penalties), 1));
        }
        t.row(std::move(row));
    }
    bench::emit(t, opt);
    std::cout << "\n(" << opt.graphs
              << " graphs per point; paper reports the same series with "
                 "200 graphs and 0..30% in 5% steps)\n";
    return 0;
}
