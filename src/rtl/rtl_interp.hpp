// Cycle-accurate interpreter for the structural RTL IR.
//
// Executes an `rtl_design` exactly as the printed Verilog would: a cycle
// counter runs 0..latency-1; each functional unit's operand registers
// follow the per-cycle selection table through the IR's explicit
// slice/extend adaptation nodes; the combinational body applies *signed*
// arithmetic wrapped at the unit's result width; and at the end of each
// cycle the capture schedule latches result slices into the shared
// register file. Because interpreter and printer consume the same IR, a
// value divergence from the bit-true reference (sim/simulator.hpp) is a
// real hardware bug, not a modelling artefact -- this is the executable
// half of the differential verification subsystem (src/verify/).

#ifndef MWL_RTL_RTL_INTERP_HPP
#define MWL_RTL_RTL_INTERP_HPP

#include "rtl/rtl_design.hpp"
#include "sim/simulator.hpp"

#include <cstdint>
#include <vector>

namespace mwl {

struct rtl_interp_result {
    /// Value captured for each operation (the low `slice_width` bits of
    /// the producing unit's result, as a signed integer at that width) --
    /// directly comparable with sim_result::value_of_op.
    std::vector<std::int64_t> value_of_op;
    /// Cycle each operation's value was captured, per op id (-1 if the
    /// design never captures it; validate_design rejects such designs).
    std::vector<int> capture_cycle_of_op;
    /// Primary output values read from the register file after the final
    /// cycle, in design.outputs order.
    std::vector<std::int64_t> outputs;
    int cycles = 0; ///< executed schedule length
};

/// Execute `design` on `external` (same convention as the simulator:
/// external[o] lists operation o's external operands in port order).
/// Throws `precondition_error` when `external` does not supply the
/// operands the design's primary inputs require.
[[nodiscard]] rtl_interp_result interpret(const rtl_design& design,
                                          const sim_inputs& external);

} // namespace mwl

#endif // MWL_RTL_RTL_INTERP_HPP
