// Unit tests for the RTL IR interpreter (src/rtl/rtl_interp.hpp) and the
// elaborate pass's extension semantics: RTL interpretation must equal the
// bit-true reference on fig1 and on >= 50 random TGFF graphs with signed
// (negative) inputs, for the heuristic and both baselines -- and the two
// historical sign-extension bugs, re-introduced via elaborate_options,
// must produce visible value divergences (the regression tests for the
// operand-extension and register-readback fixes).

#include "baseline/descending.hpp"
#include "baseline/two_stage.hpp"
#include "core/dpalloc.hpp"
#include "core/validate.hpp"
#include "model/hardware_model.hpp"
#include "rtl/elaborate.hpp"
#include "rtl/netlist.hpp"
#include "rtl/rtl_interp.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "tgff/corpus.hpp"
#include "verify/differential.hpp"

#include <gtest/gtest.h>

namespace mwl {
namespace {

sequencing_graph fig1_graph()
{
    sequencing_graph g;
    const op_id m1 = g.add_operation(op_shape::multiplier(12, 12), "m1");
    const op_id m2 = g.add_operation(op_shape::multiplier(8, 4), "m2");
    const op_id a = g.add_operation(op_shape::adder(12), "a");
    g.add_dependency(m1, a);
    g.add_dependency(m2, a);
    return g;
}

/// Elaborate with `options` and interpret on `in`.
rtl_interp_result run(const sequencing_graph& g, const datapath& path,
                      const hardware_model& model, const sim_inputs& in,
                      const elaborate_options& options = {})
{
    const rtl_netlist net = build_rtl(g, model, path);
    return interpret(elaborate(g, path, net, "dut", options), in);
}

/// One hand-built instance executing `ops` back to back from `start`.
datapath_instance make_instance(const hardware_model& model, op_shape shape,
                                std::vector<op_id> ops)
{
    datapath_instance inst;
    inst.shape = shape;
    inst.latency = model.latency(shape);
    inst.area = model.area(shape);
    inst.ops = std::move(ops);
    return inst;
}

// --------------------------------------------------------- conformance --

TEST(RtlInterp, MatchesReferenceOnFig1)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    rng random(11);
    for (const int lambda : {5, 8}) {
        const dpalloc_result r = dpalloc(g, model, lambda);
        for (int k = 0; k < 20; ++k) {
            const sim_inputs in = random_signed_inputs(g, random);
            const sim_result ref = reference_evaluate(g, in);
            const rtl_interp_result rtl = run(g, r.path, model, in);
            EXPECT_EQ(rtl.value_of_op, ref.value_of_op)
                << "lambda " << lambda << " input " << k;
            EXPECT_EQ(rtl.cycles, r.path.latency);
        }
    }
}

TEST(RtlInterp, OutputsReadBackFromRegisterFile)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    const dpalloc_result r = dpalloc(g, model, 8);
    rng random(3);
    const sim_inputs in = random_signed_inputs(g, random);
    const rtl_netlist net = build_rtl(g, model, r.path);
    const rtl_design design = elaborate(g, r.path, net, "dut");
    const rtl_interp_result rtl = interpret(design, in);
    ASSERT_EQ(design.outputs.size(), 1u);
    EXPECT_EQ(design.outputs[0].op, op_id(2));
    ASSERT_EQ(rtl.outputs.size(), 1u);
    EXPECT_EQ(rtl.outputs[0], rtl.value_of_op[2]);
}

TEST(RtlInterp, CaptureCyclesFollowTheSchedule)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    const dpalloc_result r = dpalloc(g, model, 8);
    rng random(4);
    const sim_inputs in = random_signed_inputs(g, random);
    const rtl_interp_result rtl = run(g, r.path, model, in);
    for (const op_id o : g.all_ops()) {
        EXPECT_EQ(rtl.capture_cycle_of_op[o.value()],
                  r.path.start[o.value()] + r.path.bound_latency(o) - 1);
    }
}

TEST(RtlInterp, MissingExternalOperandThrows)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    const dpalloc_result r = dpalloc(g, model, 8);
    const sim_inputs in(g.size()); // no operands supplied
    EXPECT_THROW(static_cast<void>(run(g, r.path, model, in)),
                 precondition_error);
}

// The regression suite for the two emitter fixes: RTL interpretation ==
// reference on a 50-graph corpus with signed inputs, for the heuristic
// and both baselines. Reverting either extension fix makes this fail
// (see the LegacyBug tests below, which assert exactly that).
TEST(RtlInterp, MatchesReferenceOnRandomCorpusAcrossAllocators)
{
    const sonic_model model;
    const auto corpus = make_corpus(10, 50, model, 2026);
    ASSERT_GE(corpus.size(), 50u);
    rng random(12);
    for (const corpus_entry& e : corpus) {
        const int lambda = relaxed_lambda(e.lambda_min, 0.25);
        const datapath paths[] = {
            dpalloc(e.graph, model, lambda).path,
            two_stage_allocate(e.graph, model, lambda).path,
            descending_allocate(e.graph, model, lambda),
        };
        for (const datapath& path : paths) {
            const sim_inputs in = random_signed_inputs(e.graph, random);
            const sim_result ref = reference_evaluate(e.graph, in);
            const rtl_interp_result rtl = run(e.graph, path, model, in);
            ASSERT_EQ(rtl.value_of_op, ref.value_of_op);
        }
    }
}

// ------------------------------------------------- the two legacy bugs --

// Operand-extension bug (verilog.cpp:133-158 before the IR): a narrow
// register assigned straight onto a wider FU port zero-extends. The
// crafted datapath keeps op 0's 4-bit value in a 4-bit register that a
// 12-bit adder then consumes: -1 must arrive as -1, not as 15.
TEST(RtlInterp, OperandSignExtensionBugIsValueVisible)
{
    sequencing_graph g;
    const op_id narrow = g.add_operation(op_shape::adder(4), "narrow");
    const op_id wide = g.add_operation(op_shape::adder(12), "wide");
    const op_id tail = g.add_operation(op_shape::adder(4), "tail");
    g.add_dependency(narrow, wide);
    g.add_dependency(narrow, tail);

    const sonic_model model;
    datapath path;
    path.start = {0, 2, 4};
    path.instance_of_op = {0, 1, 0};
    path.instances = {
        make_instance(model, op_shape::adder(4), {narrow, tail}),
        make_instance(model, op_shape::adder(12), {wide}),
    };
    path.total_area = path.instances[0].area + path.instances[1].area;
    path.latency = 6;
    require_valid(g, model, path, 6);

    sim_inputs in(g.size());
    in[narrow.value()] = {-1, 0};
    in[wide.value()] = {0};
    in[tail.value()] = {0};

    // The consumer's source register must be narrower than its port for
    // the extension to matter at all; assert the scenario holds.
    const rtl_netlist net = build_rtl(g, model, path);
    const rtl_design design = elaborate(g, path, net, "dut");
    bool narrow_into_wide = false;
    for (const rtl_operand_select& sel : design.fus[1].select[0]) {
        narrow_into_wide |= sel.adapt.slice_width < sel.adapt.out_width;
    }
    ASSERT_TRUE(narrow_into_wide);

    const rtl_interp_result good = run(g, path, model, in);
    EXPECT_EQ(good.value_of_op[narrow.value()], -1);
    EXPECT_EQ(good.value_of_op[wide.value()], -1);
    EXPECT_EQ(good.value_of_op[tail.value()], -1);

    elaborate_options legacy;
    legacy.legacy_operand_extension = true;
    const rtl_interp_result bad = run(g, path, model, in, legacy);
    EXPECT_EQ(bad.value_of_op[wide.value()], 15); // 4'b1111 zero-extended
    EXPECT_EQ(bad.value_of_op[tail.value()], -1); // native-width read is ok
}

// Register-readback bug (verilog.cpp:182-197 before the IR): a 4-bit
// result captured into a 12-bit shared register with zero upper bits;
// the 12-bit consumer then reads the full register and sees 15, not -1.
TEST(RtlInterp, CaptureSignExtensionBugIsValueVisible)
{
    sequencing_graph g;
    const op_id narrow = g.add_operation(op_shape::adder(4), "narrow");
    const op_id wide = g.add_operation(op_shape::adder(12), "wide");
    g.add_dependency(narrow, wide);

    const sonic_model model;
    datapath path;
    path.start = {0, 2};
    path.instance_of_op = {0, 0};
    path.instances = {
        make_instance(model, op_shape::adder(12), {narrow, wide}),
    };
    path.total_area = path.instances[0].area;
    path.latency = 4;
    require_valid(g, model, path, 4);

    sim_inputs in(g.size());
    in[narrow.value()] = {-1, 0};
    in[wide.value()] = {0};

    // The bug needs the narrow value stored in a *wider* shared register.
    const rtl_netlist net = build_rtl(g, model, path);
    const rtl_design design = elaborate(g, path, net, "dut");
    bool widened_capture = false;
    for (const rtl_capture& cap : design.captures) {
        if (cap.op == narrow) {
            widened_capture = cap.adapt.slice_width < cap.adapt.out_width;
        }
    }
    ASSERT_TRUE(widened_capture);

    const rtl_interp_result good = run(g, path, model, in);
    EXPECT_EQ(good.value_of_op[wide.value()], -1);

    elaborate_options legacy;
    legacy.legacy_capture_extension = true;
    const rtl_interp_result bad = run(g, path, model, in, legacy);
    EXPECT_EQ(bad.value_of_op[narrow.value()], -1); // the slice itself
    EXPECT_EQ(bad.value_of_op[wide.value()], 15);   // the readback is not
}

// A shared multiplier must see sign-extended operands: with the legacy
// zero-extension, (-1) * (-1) on an 8x8 unit reads as 255 * 255 and the
// native result slice diverges.
TEST(RtlInterp, SharedMultiplierZeroExtensionCorruptsProduct)
{
    sequencing_graph g;
    const op_id m = g.add_operation(op_shape::multiplier(4, 4), "m");

    const sonic_model model;
    datapath path;
    path.start = {0};
    path.instance_of_op = {0};
    path.instances = {make_instance(model, op_shape::multiplier(8, 8), {m})};
    path.total_area = path.instances[0].area;
    path.latency = path.instances[0].latency;
    require_valid(g, model, path, path.latency);

    sim_inputs in(g.size());
    in[m.value()] = {-1, -1};
    const rtl_interp_result good = run(g, path, model, in);
    EXPECT_EQ(good.value_of_op[m.value()], 1); // (-1) * (-1), 8 bits wide

    elaborate_options legacy;
    legacy.legacy_operand_extension = true;
    const rtl_interp_result bad = run(g, path, model, in, legacy);
    EXPECT_NE(bad.value_of_op[m.value()], 1); // 15 * 15 = 225
}

} // namespace
} // namespace mwl
