// Unit tests for src/dfg: sequencing graph construction, cycle rejection,
// topological ordering, ASAP/ALAP analysis and DOT export.

#include "dfg/analysis.hpp"
#include "dfg/dot.hpp"
#include "dfg/sequencing_graph.hpp"
#include "model/hardware_model.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace mwl {
namespace {

sequencing_graph diamond()
{
    // a -> b, a -> c, b -> d, c -> d
    sequencing_graph g;
    const op_id a = g.add_operation(op_shape::adder(8), "a");
    const op_id b = g.add_operation(op_shape::adder(8), "b");
    const op_id c = g.add_operation(op_shape::multiplier(8, 8), "c");
    const op_id d = g.add_operation(op_shape::adder(8), "d");
    g.add_dependency(a, b);
    g.add_dependency(a, c);
    g.add_dependency(b, d);
    g.add_dependency(c, d);
    return g;
}

// -------------------------------------------------------- construction --

TEST(SequencingGraph, StartsEmpty)
{
    sequencing_graph g;
    EXPECT_TRUE(g.empty());
    EXPECT_EQ(g.size(), 0u);
    EXPECT_EQ(g.edge_count(), 0u);
}

TEST(SequencingGraph, AddOperationReturnsDenseIds)
{
    sequencing_graph g;
    EXPECT_EQ(g.add_operation(op_shape::adder(4)).value(), 0u);
    EXPECT_EQ(g.add_operation(op_shape::adder(4)).value(), 1u);
    EXPECT_EQ(g.add_operation(op_shape::multiplier(4, 4)).value(), 2u);
    EXPECT_EQ(g.size(), 3u);
}

TEST(SequencingGraph, StoresShapeAndName)
{
    sequencing_graph g;
    const op_id id = g.add_operation(op_shape::multiplier(10, 6), "x1");
    EXPECT_EQ(g.op(id).name, "x1");
    EXPECT_EQ(g.shape(id), op_shape::multiplier(10, 6));
}

TEST(SequencingGraph, DependencyPopulatesAdjacency)
{
    const sequencing_graph g = diamond();
    EXPECT_EQ(g.edge_count(), 4u);
    EXPECT_EQ(g.successors(op_id(0)).size(), 2u);
    EXPECT_EQ(g.predecessors(op_id(3)).size(), 2u);
    EXPECT_EQ(g.predecessors(op_id(0)).size(), 0u);
}

TEST(SequencingGraph, DuplicateEdgesAreIdempotent)
{
    sequencing_graph g;
    const op_id a = g.add_operation(op_shape::adder(4));
    const op_id b = g.add_operation(op_shape::adder(4));
    g.add_dependency(a, b);
    g.add_dependency(a, b);
    EXPECT_EQ(g.edge_count(), 1u);
}

TEST(SequencingGraph, SelfLoopThrows)
{
    sequencing_graph g;
    const op_id a = g.add_operation(op_shape::adder(4));
    EXPECT_THROW(g.add_dependency(a, a), precondition_error);
}

TEST(SequencingGraph, CycleCreationThrows)
{
    sequencing_graph g;
    const op_id a = g.add_operation(op_shape::adder(4));
    const op_id b = g.add_operation(op_shape::adder(4));
    const op_id c = g.add_operation(op_shape::adder(4));
    g.add_dependency(a, b);
    g.add_dependency(b, c);
    EXPECT_THROW(g.add_dependency(c, a), precondition_error);
    EXPECT_EQ(g.edge_count(), 2u); // rejected edge not inserted
}

TEST(SequencingGraph, InvalidIdsThrow)
{
    sequencing_graph g;
    const op_id a = g.add_operation(op_shape::adder(4));
    EXPECT_THROW(static_cast<void>(g.op(op_id(5))), precondition_error);
    EXPECT_THROW(g.add_dependency(a, op_id(9)), precondition_error);
    EXPECT_THROW(g.add_dependency(op_id::invalid(), a), precondition_error);
}

TEST(SequencingGraph, ReachesFollowsTransitivePaths)
{
    const sequencing_graph g = diamond();
    EXPECT_TRUE(g.reaches(op_id(0), op_id(3)));
    EXPECT_TRUE(g.reaches(op_id(0), op_id(0)));
    EXPECT_FALSE(g.reaches(op_id(3), op_id(0)));
    EXPECT_FALSE(g.reaches(op_id(1), op_id(2)));
}

TEST(SequencingGraph, TopologicalOrderRespectsEdges)
{
    const sequencing_graph g = diamond();
    const std::vector<op_id> order = g.topological_order();
    ASSERT_EQ(order.size(), g.size());
    std::vector<std::size_t> pos(g.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
        pos[order[i].value()] = i;
    }
    for (const op_id o : g.all_ops()) {
        for (const op_id s : g.successors(o)) {
            EXPECT_LT(pos[o.value()], pos[s.value()]);
        }
    }
}

TEST(SequencingGraph, TopologicalOrderIsDeterministicSmallestFirst)
{
    sequencing_graph g;
    const op_id a = g.add_operation(op_shape::adder(4));
    const op_id b = g.add_operation(op_shape::adder(4));
    const op_id c = g.add_operation(op_shape::adder(4));
    static_cast<void>(b);
    g.add_dependency(a, c);
    const std::vector<op_id> order = g.topological_order();
    EXPECT_EQ(order[0].value(), 0u);
    EXPECT_EQ(order[1].value(), 1u);
    EXPECT_EQ(order[2].value(), 2u);
}

// ----------------------------------------------------------- analysis --

TEST(Analysis, NativeLatenciesFollowModel)
{
    const sequencing_graph g = diamond();
    const sonic_model model;
    const std::vector<int> lat = native_latencies(g, model);
    EXPECT_EQ(lat[0], 2);                 // adder
    EXPECT_EQ(lat[2], 2);                 // mul8x8: ceil(16/8)
}

TEST(Analysis, AsapOnDiamond)
{
    const sequencing_graph g = diamond();
    const std::vector<int> lat{2, 2, 2, 2};
    const std::vector<int> asap = asap_start_times(g, lat);
    EXPECT_EQ(asap, (std::vector<int>{0, 2, 2, 4}));
}

TEST(Analysis, AlapOnDiamondAtCriticalHorizon)
{
    const sequencing_graph g = diamond();
    const std::vector<int> lat{2, 2, 2, 2};
    const std::vector<int> alap = alap_start_times(g, lat, 6);
    EXPECT_EQ(alap, (std::vector<int>{0, 2, 2, 4}));
}

TEST(Analysis, AlapWithSlackShiftsLate)
{
    const sequencing_graph g = diamond();
    const std::vector<int> lat{2, 2, 2, 2};
    const std::vector<int> alap = alap_start_times(g, lat, 8);
    EXPECT_EQ(alap, (std::vector<int>{2, 4, 4, 6}));
}

TEST(Analysis, AlapBelowCriticalPathThrows)
{
    const sequencing_graph g = diamond();
    const std::vector<int> lat{2, 2, 2, 2};
    EXPECT_THROW(static_cast<void>(alap_start_times(g, lat, 5)),
                 infeasible_error);
}

TEST(Analysis, AsapNeverAfterAlap)
{
    const sequencing_graph g = diamond();
    const std::vector<int> lat{1, 3, 2, 4};
    const int cp = critical_path_length(g, lat);
    const std::vector<int> asap = asap_start_times(g, lat);
    const std::vector<int> alap = alap_start_times(g, lat, cp + 3);
    for (std::size_t i = 0; i < g.size(); ++i) {
        EXPECT_LE(asap[i], alap[i]);
    }
}

TEST(Analysis, CriticalPathOfChainIsSumOfLatencies)
{
    sequencing_graph g;
    op_id prev = g.add_operation(op_shape::adder(4));
    for (int i = 0; i < 4; ++i) {
        const op_id next = g.add_operation(op_shape::adder(4));
        g.add_dependency(prev, next);
        prev = next;
    }
    const std::vector<int> lat(5, 3);
    EXPECT_EQ(critical_path_length(g, lat), 15);
}

TEST(Analysis, CriticalPathOfIndependentOpsIsMaxLatency)
{
    sequencing_graph g;
    g.add_operation(op_shape::adder(4));
    g.add_operation(op_shape::multiplier(20, 20));
    const sonic_model model;
    EXPECT_EQ(min_latency(g, model), 5); // mul20x20: ceil(40/8) = 5 > 2
}

TEST(Analysis, MinLatencyOfFig1StyleChain)
{
    // mul16x16 -> add -> mul8x8 : ceil(32/8) + 2 + ceil(16/8) = 4 + 2 + 2.
    sequencing_graph g;
    const op_id m1 = g.add_operation(op_shape::multiplier(16, 16));
    const op_id a1 = g.add_operation(op_shape::adder(16));
    const op_id m2 = g.add_operation(op_shape::multiplier(8, 8));
    g.add_dependency(m1, a1);
    g.add_dependency(a1, m2);
    const sonic_model model;
    EXPECT_EQ(min_latency(g, model), 8);
}

TEST(Analysis, ScheduleLengthValidatesSizes)
{
    const sequencing_graph g = diamond();
    const std::vector<int> lat{2, 2, 2, 2};
    const std::vector<int> bad_start{0, 0};
    EXPECT_THROW(static_cast<void>(schedule_length(g, lat, bad_start)),
                 precondition_error);
}

TEST(Analysis, LatencyVectorSizeMismatchThrows)
{
    const sequencing_graph g = diamond();
    const std::vector<int> lat{2, 2};
    EXPECT_THROW(static_cast<void>(asap_start_times(g, lat)),
                 precondition_error);
}

TEST(Analysis, NonPositiveLatencyThrows)
{
    const sequencing_graph g = diamond();
    const std::vector<int> lat{2, 0, 2, 2};
    EXPECT_THROW(static_cast<void>(asap_start_times(g, lat)),
                 precondition_error);
}

TEST(Analysis, EmptyGraphHasZeroCriticalPath)
{
    sequencing_graph g;
    EXPECT_EQ(critical_path_length(g, {}), 0);
    const sonic_model model;
    EXPECT_EQ(min_latency(g, model), 0);
}

// ---------------------------------------------------------------- dot --

TEST(Dot, ContainsAllNodesAndEdges)
{
    const sequencing_graph g = diamond();
    const std::string dot = to_dot(g);
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("n0"), std::string::npos);
    EXPECT_NE(dot.find("n3"), std::string::npos);
    EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
    EXPECT_NE(dot.find("n2 -> n3"), std::string::npos);
}

TEST(Dot, ShowsNamesAndShapes)
{
    const sequencing_graph g = diamond();
    const std::string dot = to_dot(g);
    EXPECT_NE(dot.find("a\\nadd8"), std::string::npos);
    EXPECT_NE(dot.find("mul8x8"), std::string::npos);
}

} // namespace
} // namespace mwl
