#include "sim/simulator.hpp"

#include "support/error.hpp"

#include <algorithm>
#include <string>

namespace mwl {
namespace {

/// Fixed-point semantics of one operation at its *native* shape: operands
/// are wrapped to their operand widths, the result to the result width
/// (adders wrap at their own width; multipliers keep the full product).
std::int64_t apply_op(const op_shape& shape, std::int64_t a, std::int64_t b)
{
    switch (shape.kind()) {
    case op_kind::add: {
        const std::int64_t x = wrap_to_width(a, shape.width_a());
        const std::int64_t y = wrap_to_width(b, shape.width_a());
        return wrap_to_width(x + y, shape.width_a());
    }
    case op_kind::mul: {
        const std::int64_t x = wrap_to_width(a, shape.width_a());
        const std::int64_t y = wrap_to_width(b, shape.width_b());
        return wrap_to_width(x * y, shape.width_a() + shape.width_b());
    }
    }
    MWL_ASSERT(false && "unreachable");
    return 0;
}

/// Gather the two operands of `o`: predecessors first (id order, as the
/// graph stores them), then external values.
std::pair<std::int64_t, std::int64_t> operands_of(
    const sequencing_graph& graph, op_id o,
    const std::vector<std::int64_t>& value_of_op, const sim_inputs& external)
{
    const auto preds = graph.predecessors(o);
    require(preds.size() <= 2, "operations take at most two operands");
    const std::size_t needed_external = 2 - preds.size();
    require(o.value() < external.size() ||
                needed_external == 0,
            "missing external operands for op " + std::to_string(o.value()));
    const auto& ext =
        o.value() < external.size()
            ? external[o.value()]
            : std::vector<std::int64_t>{};
    require(ext.size() == needed_external,
            "op " + std::to_string(o.value()) + " needs " +
                std::to_string(needed_external) + " external operand(s), " +
                std::to_string(ext.size()) + " given");

    std::int64_t ops[2] = {0, 0};
    std::size_t ei = 0;
    for (std::size_t p = 0; p < 2; ++p) {
        if (p < preds.size()) {
            ops[p] = value_of_op[preds[p].value()];
        } else {
            ops[p] = ext[ei++];
        }
    }
    return {ops[0], ops[1]};
}

} // namespace

std::int64_t wrap_to_width(std::int64_t value, int width)
{
    MWL_ASSERT(width >= 1 && width < 63);
    const std::uint64_t mask = (std::uint64_t{1} << width) - 1;
    std::uint64_t u = static_cast<std::uint64_t>(value) & mask;
    // Sign-extend from bit width-1.
    const std::uint64_t sign_bit = std::uint64_t{1} << (width - 1);
    if (u & sign_bit) {
        u |= ~mask;
    }
    return static_cast<std::int64_t>(u);
}

sim_result reference_evaluate(const sequencing_graph& graph,
                              const sim_inputs& external)
{
    sim_result result;
    result.value_of_op.assign(graph.size(), 0);
    for (const op_id o : graph.topological_order()) {
        const auto [a, b] =
            operands_of(graph, o, result.value_of_op, external);
        result.value_of_op[o.value()] = apply_op(graph.shape(o), a, b);
    }
    return result;
}

sim_result simulate_datapath(const sequencing_graph& graph,
                             const datapath& path, const sim_inputs& external)
{
    require(path.start.size() == graph.size() &&
                path.instance_of_op.size() == graph.size(),
            "datapath does not match graph");

    sim_result result;
    result.value_of_op.assign(graph.size(), 0);
    std::vector<bool> computed(graph.size(), false);
    // busy_until[i]: first cycle instance i is free again.
    std::vector<int> busy_until(path.instances.size(), 0);

    // Operations in start-time order (ties by id).
    std::vector<op_id> order = graph.all_ops();
    std::sort(order.begin(), order.end(), [&](op_id a, op_id b) {
        if (path.start[a.value()] != path.start[b.value()]) {
            return path.start[a.value()] < path.start[b.value()];
        }
        return a < b;
    });

    for (const op_id o : order) {
        const int start = path.start[o.value()];
        const std::size_t ii = path.instance_of_op[o.value()];
        require(ii < path.instances.size(), "op bound to unknown instance");
        const datapath_instance& inst = path.instances[ii];

        if (!inst.shape.covers(graph.shape(o))) {
            throw error("sim: op " + std::to_string(o.value()) +
                        " dispatched to incompatible instance " +
                        inst.shape.to_string());
        }
        if (busy_until[ii] > start) {
            throw error("sim: instance busy at cycle " +
                        std::to_string(start) + " for op " +
                        std::to_string(o.value()));
        }
        for (const op_id p : graph.predecessors(o)) {
            const int ready =
                path.start[p.value()] + path.bound_latency(p);
            if (!computed[p.value()] || ready > start) {
                throw error("sim: operand of op " +
                            std::to_string(o.value()) +
                            " not ready at cycle " + std::to_string(start));
            }
        }

        const auto [a, b] =
            operands_of(graph, o, result.value_of_op, external);
        // Executing on a wider resource yields the same integer result as
        // the native shape: inputs are wrapped at the *operation's* widths
        // upstream of the (wider) unit.
        result.value_of_op[o.value()] = apply_op(graph.shape(o), a, b);
        computed[o.value()] = true;
        busy_until[ii] = start + inst.latency;
        result.cycles =
            std::max(result.cycles, start + inst.latency);
    }
    return result;
}

} // namespace mwl
