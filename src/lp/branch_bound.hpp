// Branch-and-bound MILP solver on top of the bounded-variable simplex.
//
// Depth-first search branching on the most fractional integer variable;
// each node only overrides variable bounds (no new rows), so node setup is
// O(n). Incumbent pruning uses the LP relaxation bound. Node and wall-time
// limits make the solver usable inside the paper's execution-time
// experiments, where the whole point is that exact ILP solving explodes
// (Fig. 5, Table 2).

#ifndef MWL_LP_BRANCH_BOUND_HPP
#define MWL_LP_BRANCH_BOUND_HPP

#include "lp/problem.hpp"
#include "lp/simplex.hpp"

#include <cstddef>
#include <limits>
#include <vector>

namespace mwl {

enum class mip_status {
    optimal,       ///< incumbent proven optimal
    infeasible,    ///< no integral solution exists
    limit_feasible,///< limits hit; best incumbent returned, unproven
    limit_nofeasible, ///< limits hit before any incumbent was found
};

struct mip_solution {
    mip_status status = mip_status::infeasible;
    std::vector<double> x;
    double objective = 0.0;
    std::size_t nodes = 0;        ///< B&B nodes expanded
    std::size_t lp_iterations = 0;///< simplex iterations, all nodes
};

struct mip_options {
    std::size_t max_nodes = 2000000;
    double time_limit_seconds = 0.0; ///< 0 = unlimited
    double integrality_tol = 1e-6;
    /// Optional known upper bound on the objective (e.g. a heuristic
    /// solution); tightens pruning from the start. NaN = none.
    double cutoff = std::numeric_limits<double>::quiet_NaN();
    simplex_options lp;
};

/// Minimise the problem with its integrality requirements enforced.
[[nodiscard]] mip_solution solve_mip(const lp_problem& problem,
                                     const mip_options& options = {});

} // namespace mwl

#endif // MWL_LP_BRANCH_BOUND_HPP
