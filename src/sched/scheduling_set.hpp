// Minimum-cardinality scheduling set (paper §2.2).
//
// "Before any scheduling, a minimum cardinality subset S of R is found such
// that every operation has an H edge to some member of S."  The paper does
// not give a method; minimum set cover is NP-hard, but the instances here
// are tiny (|O| <= tens, |R| <= a few hundred), so we solve it *exactly*
// with branch and bound seeded by Chvátal's greedy bound, after removing
// coverage-dominated resources. A node cap keeps the worst case polynomial
// in practice; if it is ever hit we fall back to the greedy cover (still a
// valid scheduling set, merely possibly non-minimum) -- the flag in the
// result records which happened.

#ifndef MWL_SCHED_SCHEDULING_SET_HPP
#define MWL_SCHED_SCHEDULING_SET_HPP

#include "support/ids.hpp"
#include "wcg/wcg.hpp"

#include <vector>

namespace mwl {

struct scheduling_set_result {
    /// Members of S, ascending res_id.
    std::vector<res_id> members;
    /// True if the branch-and-bound proved minimality (always true in the
    /// paper-scale experiments).
    bool proven_minimum = true;
};

/// Compute the scheduling set over the current H edges of `wcg`.
/// `node_cap` bounds the branch-and-bound search tree size.
[[nodiscard]] scheduling_set_result
min_scheduling_set(const wordlength_compatibility_graph& wcg,
                   std::size_t node_cap = 200000);

} // namespace mwl

#endif // MWL_SCHED_SCHEDULING_SET_HPP
