// Campaign subsystem suite (src/campaign/): spec parsing diagnostics,
// deterministic grid expansion, perturbed-variant graphs, store
// round-trips -- and the resume-equivalence acceptance test, which runs
// the real mwl_campaign binary (MWL_TOOL_DIR), kills it at randomly
// chosen store writes via MWL_CRASH_AFTER (including a torn-write arm),
// resumes until complete, and requires the final report to be
// byte-identical to an uninterrupted run.

#include "campaign/campaign_spec.hpp"
#include "campaign/report.hpp"
#include "campaign/result_store.hpp"
#include "io/graph_io.hpp"
#include "scenarios/scenarios.hpp"
#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>

namespace mwl {
namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------- spec parsing --

TEST(CampaignSpec, DefaultsMatchTheDocumentedGrammar)
{
    const campaign_spec spec = campaign_spec::parse("scenario fir4\n");
    EXPECT_EQ(spec.scenarios, std::vector<std::string>{"fir4"});
    EXPECT_EQ(spec.slack_lo, 0);
    EXPECT_EQ(spec.slack_hi, 30);
    EXPECT_EQ(spec.slack_step, 10);
    EXPECT_EQ(spec.adder_latencies, std::vector<int>{2});
    EXPECT_EQ(spec.mul_bits_per_cycle, std::vector<int>{8});
    EXPECT_EQ(spec.perturb_count, 0u);
}

TEST(CampaignSpec, FullGrammarParses)
{
    const campaign_spec spec = campaign_spec::parse(
        "# a comment\n"
        "scenario fir4 fir8\n"
        "lambda slack=10..20 step=5\n"
        "model adder-latency=1,2 mul-bits-per-cycle=4,8\n"
        "perturb count=3 flips=1 seed=99\n");
    EXPECT_EQ(spec.scenarios, (std::vector<std::string>{"fir4", "fir8"}));
    EXPECT_EQ(spec.slack_lo, 10);
    EXPECT_EQ(spec.slack_hi, 20);
    EXPECT_EQ(spec.slack_step, 5);
    EXPECT_EQ(spec.adder_latencies, (std::vector<int>{1, 2}));
    EXPECT_EQ(spec.mul_bits_per_cycle, (std::vector<int>{4, 8}));
    EXPECT_EQ(spec.perturb_count, 3u);
    EXPECT_EQ(spec.perturb_flips, 1);
    EXPECT_EQ(spec.perturb_seed, 99u);
}

TEST(CampaignSpec, ScenarioAllPullsTheWholeRegistryOnce)
{
    const campaign_spec spec = campaign_spec::parse("scenario all\n");
    EXPECT_EQ(spec.scenarios, scenario_names());
}

void expect_spec_error(const std::string& text, const std::string& snippet)
{
    try {
        static_cast<void>(campaign_spec::parse(text));
        ADD_FAILURE() << "parsed, expected error with: " << snippet;
    } catch (const spec_error& e) {
        EXPECT_NE(std::string(e.what()).find(snippet), std::string::npos)
            << "expected '" << snippet << "' in: " << e.what();
    }
}

TEST(CampaignSpec, DiagnosticsCarryOneBasedLineNumbers)
{
    expect_spec_error("scenario fir4\nwibble x\n",
                      "spec line 2: unknown keyword 'wibble'");
    expect_spec_error("# leading comment\n\nscenario no_such\n",
                      "spec line 3: unknown scenario 'no_such'");
    expect_spec_error("scenario fir4 fir4\n",
                      "spec line 1: duplicate scenario 'fir4'");
    expect_spec_error("scenario fir4\nlambda slack=20..10\n",
                      "spec line 2: slack range must be 0 <= lo <= hi");
    expect_spec_error("scenario fir4\nlambda step=0\n",
                      "spec line 2: step must be >= 1");
    expect_spec_error("scenario fir4\nlambda slack=abc\n",
                      "spec line 2: bad slack value 'abc'");
    expect_spec_error("scenario fir4\nmodel adder-latency=0\n",
                      "spec line 2: adder-latency values must be >= 1");
    expect_spec_error("scenario fir4\nlambda step=5\nlambda step=6\n",
                      "spec line 3: duplicate lambda line");
    expect_spec_error("scenario fir4\nperturb flips=2\n",
                      "spec line 2: perturb needs count=N");
    expect_spec_error("lambda step=5\n", "spec names no scenarios");
}

TEST(CampaignSpec, TuneDirectiveParses)
{
    const campaign_spec spec = campaign_spec::parse(
        "scenario fir4\n"
        "tune budget=1e-5,1e-6 min-frac=3 max-frac=20 seed=11 "
        "max-steps=16 anneal=8\n");
    EXPECT_EQ(spec.tune_budgets, (std::vector<double>{1e-5, 1e-6}));
    EXPECT_EQ(spec.tune_min_frac, 3);
    EXPECT_EQ(spec.tune_max_frac, 20);
    EXPECT_EQ(spec.tune_seed, 11u);
    EXPECT_EQ(spec.tune_max_steps, 16u);
    EXPECT_EQ(spec.tune_anneal, 8u);

    expect_spec_error("scenario fir4\ntune min-frac=3\n",
                      "spec line 2: tune needs budget=LIST");
    expect_spec_error("scenario fir4\ntune budget=1e-5,1e-5\n",
                      "spec line 2: duplicate budget value");
    expect_spec_error("scenario fir4\ntune budget=0\n",
                      "spec line 2: budget values must be positive");
    expect_spec_error("scenario fir4\ntune budget=junk\n",
                      "spec line 2: bad budget value 'junk'");
    expect_spec_error("scenario fir4\ntune budget=1e-5 min-frac=9 "
                      "max-frac=4\n",
                      "spec line 2: tune frac range must be 0 <= min <= max");
    expect_spec_error(
        "scenario fir4\ntune budget=1e-5\ntune budget=1e-6\n",
        "spec line 3: duplicate tune line");
}

// ---------------------------------------------------------- expansion --

TEST(CampaignExpand, NestedLoopOrderAndStableKeys)
{
    const campaign_spec spec = campaign_spec::parse(
        "scenario fir4 fir8\n"
        "lambda slack=0..10 step=10\n"
        "model adder-latency=1,2 mul-bits-per-cycle=8\n"
        "perturb count=1 flips=1 seed=7\n");
    const std::vector<campaign_point> points = expand(spec);
    // 2 scenarios x 2 variants x 2 adder latencies x 1 mul x 2 slacks.
    ASSERT_EQ(points.size(), 16u);
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(points[i].index, i);
    }
    EXPECT_EQ(points[0].key(), "fir4/v0/a1m8/s0");
    EXPECT_EQ(points[1].key(), "fir4/v0/a1m8/s10");
    EXPECT_EQ(points[2].key(), "fir4/v0/a2m8/s0");
    EXPECT_EQ(points[4].key(), "fir4/v1/a1m8/s0");
    EXPECT_EQ(points[8].key(), "fir8/v0/a1m8/s0");
    EXPECT_EQ(points[15].key(), "fir8/v1/a2m8/s10");
    // The fingerprint pins the list; expansion is pure.
    EXPECT_EQ(points_fingerprint(points), points_fingerprint(expand(spec)));
    const campaign_spec other =
        campaign_spec::parse("scenario fir4 fir8\n");
    EXPECT_NE(points_fingerprint(points),
              points_fingerprint(expand(other)));
}

TEST(CampaignExpand, TuneBudgetsFormTheInnermostLoop)
{
    const campaign_spec spec = campaign_spec::parse(
        "scenario fir4\n"
        "lambda slack=0..10 step=10\n"
        "tune budget=1e-5,1e-6\n");
    const std::vector<campaign_point> points = expand(spec);
    // 1 scenario x 1 variant x 1 model x 2 slacks x 2 budgets.
    ASSERT_EQ(points.size(), 4u);
    EXPECT_EQ(points[0].key(), "fir4/v0/a2m8/s0/b1e-05");
    EXPECT_EQ(points[1].key(), "fir4/v0/a2m8/s0/b1e-06");
    EXPECT_EQ(points[2].key(), "fir4/v0/a2m8/s10/b1e-05");
    EXPECT_EQ(points[3].key(), "fir4/v0/a2m8/s10/b1e-06");
    for (const campaign_point& p : points) {
        EXPECT_TRUE(p.tuned);
    }
    // Specs without a tune line keep their pre-tune keys (and thus
    // their fingerprints): existing stores stay resumable.
    const campaign_spec untuned = campaign_spec::parse(
        "scenario fir4\nlambda slack=0..10 step=10\n");
    const std::vector<campaign_point> plain = expand(untuned);
    ASSERT_EQ(plain.size(), 2u);
    EXPECT_EQ(plain[0].key(), "fir4/v0/a2m8/s0");
    EXPECT_FALSE(plain[0].tuned);
    EXPECT_NE(points_fingerprint(points), points_fingerprint(plain));
}

TEST(CampaignExpand, VariantGraphsAreDeterministic)
{
    const campaign_spec spec = campaign_spec::parse(
        "scenario fir8\nperturb count=2 flips=2 seed=42\n");
    const std::uint64_t base =
        graph_fingerprint(make_variant_graph(spec, "fir8", 0));
    const std::uint64_t v1 =
        graph_fingerprint(make_variant_graph(spec, "fir8", 1));
    const std::uint64_t v2 =
        graph_fingerprint(make_variant_graph(spec, "fir8", 2));
    // Variants reproduce exactly (resume depends on it) ...
    EXPECT_EQ(v1, graph_fingerprint(make_variant_graph(spec, "fir8", 1)));
    EXPECT_EQ(v2, graph_fingerprint(make_variant_graph(spec, "fir8", 2)));
    // ... and differ from each other and the base.
    EXPECT_NE(v1, base);
    EXPECT_NE(v1, v2);
    // Perturbation preserves the structure: same ops, same edges.
    const sequencing_graph a = make_variant_graph(spec, "fir8", 0);
    const sequencing_graph b = make_variant_graph(spec, "fir8", 1);
    ASSERT_EQ(a.size(), b.size());
    for (const op_id id : a.all_ops()) {
        const auto sa = a.successors(id);
        const auto sb = b.successors(id);
        ASSERT_EQ(sa.size(), sb.size());
        EXPECT_TRUE(std::equal(sa.begin(), sa.end(), sb.begin()));
    }
}

// -------------------------------------- store round-trip via the grid --

TEST(CampaignStore, CreateRecordCompactReopenRoundTrips)
{
    const fs::path dir = "campaign_test_tmp/store_roundtrip";
    fs::remove_all(dir);
    const campaign_spec spec = campaign_spec::parse(
        "scenario fir4\nlambda slack=0..20 step=10\n");
    const std::vector<campaign_point> points = expand(spec);
    const std::uint64_t fp = points_fingerprint(points);
    {
        result_store store = result_store::create(
            dir, "scenario fir4\nlambda slack=0..20 step=10\n", fp,
            points.size(), /*checkpoint_every=*/2);
        for (const campaign_point& p : points) {
            point_result r;
            r.index = p.index;
            r.key = p.key();
            r.lambda = 10 + static_cast<int>(p.index);
            r.latency = 9;
            r.area = 100.0 / 3.0 + static_cast<double>(p.index);
            store.record(r); // checkpoint_every=2 forces compactions
        }
    }
    const result_store reopened = result_store::open(dir, fp);
    EXPECT_EQ(reopened.results().size(), points.size());
    EXPECT_EQ(reopened.fingerprint(), fp);
    for (const campaign_point& p : points) {
        EXPECT_EQ(reopened.results().at(p.index).key, p.key());
        EXPECT_EQ(reopened.results().at(p.index).area,
                  100.0 / 3.0 + static_cast<double>(p.index));
    }
    // Status/report layers see the same picture.
    const campaign_status status = status_of(points, reopened);
    EXPECT_EQ(status.completed, points.size());
    EXPECT_EQ(status.failed, 0u);
    EXPECT_EQ(report_json(points, reopened),
              report_json(points, result_store::open(dir, fp)));
}

// ------------------------------------ the real binary, killed at will --

struct run_result {
    int exit_code = -1;
    std::string output;
};

run_result run(const std::string& command)
{
    run_result result;
    FILE* pipe = popen((command + " 2>&1").c_str(), "r");
    if (pipe == nullptr) {
        ADD_FAILURE() << "popen failed for: " << command;
        return result;
    }
    std::array<char, 4096> buffer;
    std::size_t got = 0;
    while ((got = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
        result.output.append(buffer.data(), got);
    }
    const int status = pclose(pipe);
    result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return result;
}

std::string campaign_tool()
{
    return std::string(MWL_TOOL_DIR) + "/mwl_campaign";
}

std::string slurp(const fs::path& path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return std::move(buffer).str();
}

const char* acceptance_spec =
    "scenario fir4 fir8\n"
    "lambda slack=0..20 step=10\n"
    "model adder-latency=1,2 mul-bits-per-cycle=8\n"
    "perturb count=1 flips=2 seed=7\n"; // 2*2*2*1*3 = 24 points

std::string write_acceptance_spec()
{
    fs::create_directories("campaign_test_tmp");
    const std::string path = "campaign_test_tmp/acceptance.spec";
    std::ofstream(path) << acceptance_spec;
    return path;
}

/// Run the reference (uninterrupted) campaign once and return its
/// canonical report JSON.
std::string reference_report_json(const std::string& spec_path)
{
    const std::string dir = "campaign_test_tmp/reference";
    fs::remove_all(dir);
    const run_result ref = run(campaign_tool() + " --run " + dir +
                               " --spec " + spec_path + " --jobs 2");
    EXPECT_EQ(ref.exit_code, 0) << ref.output;
    const run_result report =
        run(campaign_tool() + " --report " + dir +
            " --json campaign_test_tmp/reference.json");
    EXPECT_EQ(report.exit_code, 0) << report.output;
    return slurp("campaign_test_tmp/reference.json");
}

TEST(CampaignAcceptance, ResumeAfterInjectedCrashesIsByteIdentical)
{
    const std::string spec_path = write_acceptance_spec();
    const std::string reference = reference_report_json(spec_path);
    ASSERT_FALSE(reference.empty());

    const std::string dir = "campaign_test_tmp/crashed";
    fs::remove_all(dir);

    // Crash at >= 5 random store writes (journal appends, snapshot
    // replacements, journal resets all count), resuming after each.
    // checkpoint-every=4 keeps compactions -- the riskiest window --
    // in play. The crash points are random but the seed is logged, so a
    // failure reproduces.
    const std::uint64_t seed = 0x6370616d70616967; // arbitrary, fixed
    rng crash_rng(seed);
    int crashes = 0;
    bool first = true;
    for (int attempt = 0; attempt < 32 && crashes < 5; ++attempt) {
        const std::uint64_t after = crash_rng.uniform(1, 9);
        const std::string base_cmd =
            first ? campaign_tool() + " --run " + dir + " --spec " +
                        spec_path
                  : campaign_tool() + " --resume " + dir;
        const run_result r = run("MWL_CRASH_AFTER=" +
                                 std::to_string(after) + " " + base_cmd +
                                 " --jobs 2 --checkpoint-every 4");
        first = false;
        if (r.exit_code == 96) {
            ++crashes;
            continue;
        }
        // The countdown outlived the remaining work: the run finished.
        ASSERT_TRUE(r.exit_code == 0 || r.exit_code == 1)
            << "seed=" << seed << "\n" << r.output;
        break;
    }
    EXPECT_GE(crashes, 5) << "seed=" << seed;

    // Finish cleanly (no fault injection) ...
    const run_result final_run =
        run(campaign_tool() + " --resume " + dir + " --jobs 2");
    ASSERT_EQ(final_run.exit_code, 0) << final_run.output;
    // ... every point must now be recorded exactly once, and the report
    // must not differ from the uninterrupted run by a single byte.
    const run_result report =
        run(campaign_tool() + " --report " + dir +
            " --json campaign_test_tmp/crashed.json");
    ASSERT_EQ(report.exit_code, 0) << report.output;
    EXPECT_EQ(slurp("campaign_test_tmp/crashed.json"), reference)
        << "seed=" << seed;
}

TEST(CampaignAcceptance, TornFinalRecordIsRecoveredOnResume)
{
    const std::string spec_path = write_acceptance_spec();
    const std::string reference = reference_report_json(spec_path);

    const std::string dir = "campaign_test_tmp/torn";
    fs::remove_all(dir);
    // Crash *mid-write* of the 4th store write: with the default
    // checkpoint interval that is a journal record append, so the
    // journal is left with a half-written framed record.
    const run_result crash =
        run("MWL_CRASH_AFTER=4 MWL_CRASH_TORN=1 " + campaign_tool() +
            " --run " + dir + " --spec " + spec_path + " --jobs 2");
    ASSERT_EQ(crash.exit_code, 96) << crash.output;

    const run_result resumed = run(campaign_tool() + " --resume " + dir +
                                   " --jobs 2");
    ASSERT_EQ(resumed.exit_code, 0) << resumed.output;
    EXPECT_NE(resumed.output.find("torn journal tail discarded"),
              std::string::npos)
        << resumed.output;

    const run_result report =
        run(campaign_tool() + " --report " + dir +
            " --json campaign_test_tmp/torn.json");
    ASSERT_EQ(report.exit_code, 0) << report.output;
    EXPECT_EQ(slurp("campaign_test_tmp/torn.json"), reference);
}

TEST(CampaignAcceptance, StatusAndDoubleResumeAreIdempotent)
{
    const std::string spec_path = write_acceptance_spec();
    const std::string dir = "campaign_test_tmp/idempotent";
    fs::remove_all(dir);
    const run_result first = run(campaign_tool() + " --run " + dir +
                                 " --spec " + spec_path + " --jobs 2");
    ASSERT_EQ(first.exit_code, 0) << first.output;
    // Resuming a complete campaign re-executes nothing.
    const run_result again =
        run(campaign_tool() + " --resume " + dir + " --jobs 2");
    EXPECT_EQ(again.exit_code, 0) << again.output;
    EXPECT_NE(again.output.find("0 executed"), std::string::npos)
        << again.output;
    const run_result status = run(campaign_tool() + " --status " + dir);
    EXPECT_EQ(status.exit_code, 0) << status.output;
    EXPECT_NE(status.output.find("complete: 24 of 24 points"),
              std::string::npos)
        << status.output;
}

TEST(CampaignAcceptance, TunedCampaignRunsAndResumesDeterministically)
{
    fs::create_directories("campaign_test_tmp");
    const std::string spec_path = "campaign_test_tmp/tuned.spec";
    std::ofstream(spec_path) << "scenario fir4\n"
                                "lambda slack=0..10 step=10\n"
                                "tune budget=1e-5,1e-6 max-steps=8\n";

    const auto run_fresh = [&](const std::string& dir,
                               const std::string& json) {
        fs::remove_all(dir);
        const run_result r = run(campaign_tool() + " --run " + dir +
                                 " --spec " + spec_path + " --jobs 2");
        ASSERT_EQ(r.exit_code, 0) << r.output;
        const run_result report = run(campaign_tool() + " --report " + dir +
                                      " --json " + json);
        ASSERT_EQ(report.exit_code, 0) << report.output;
    };
    run_fresh("campaign_test_tmp/tuned_a", "campaign_test_tmp/tuned_a.json");
    run_fresh("campaign_test_tmp/tuned_b", "campaign_test_tmp/tuned_b.json");
    // Tuning is seeded search, not timing: two independent runs agree
    // byte for byte.
    const std::string reference = slurp("campaign_test_tmp/tuned_a.json");
    ASSERT_FALSE(reference.empty());
    EXPECT_EQ(reference, slurp("campaign_test_tmp/tuned_b.json"));

    // Resuming a complete tuned campaign re-executes nothing.
    const run_result again =
        run(campaign_tool() + " --resume campaign_test_tmp/tuned_a --jobs 2");
    EXPECT_EQ(again.exit_code, 0) << again.output;
    EXPECT_NE(again.output.find("0 executed"), std::string::npos)
        << again.output;
    const run_result status =
        run(campaign_tool() + " --status campaign_test_tmp/tuned_a");
    EXPECT_EQ(status.exit_code, 0) << status.output;
    EXPECT_NE(status.output.find("complete: 4 of 4 points"),
              std::string::npos)
        << status.output;
}

} // namespace
} // namespace mwl
