#include "wcg/wcg.hpp"

#include "support/error.hpp"
#include "wcg/resource_set.hpp"

#include <algorithm>

namespace mwl {

wordlength_compatibility_graph::wordlength_compatibility_graph(
    const sequencing_graph& graph, const hardware_model& model)
    : graph_(&graph), model_(&model)
{
    resources_ = extract_resource_types(graph);
    res_latency_.reserve(resources_.size());
    res_area_.reserve(resources_.size());
    for (const op_shape& shape : resources_) {
        res_latency_.push_back(model.latency(shape));
        res_area_.push_back(model.area(shape));
        MWL_ASSERT(res_latency_.back() >= 1);
        MWL_ASSERT(res_area_.back() > 0.0);
    }

    h_of_op_.resize(graph.size());
    h_of_res_.resize(resources_.size());
    for (const op_id o : graph.all_ops()) {
        for (std::size_t ri = 0; ri < resources_.size(); ++ri) {
            if (resources_[ri].covers(graph.shape(o))) {
                h_of_op_[o.value()].emplace_back(ri);
                h_of_res_[ri].push_back(o);
                ++edge_count_;
            }
        }
        // The closure contains every operation's own shape, so H(o) is
        // never empty at construction.
        MWL_ASSERT(!h_of_op_[o.value()].empty());
    }

    lat_upper_.assign(graph.size(), 0);
    lat_lower_.assign(graph.size(), 0);
    for (const op_id o : graph.all_ops()) {
        recompute_bounds(o);
    }
}

const op_shape& wordlength_compatibility_graph::resource(res_id r) const
{
    check_res(r);
    return resources_[r.value()];
}

int wordlength_compatibility_graph::latency(res_id r) const
{
    check_res(r);
    return res_latency_[r.value()];
}

double wordlength_compatibility_graph::area(res_id r) const
{
    check_res(r);
    return res_area_[r.value()];
}

std::vector<res_id> wordlength_compatibility_graph::all_resources() const
{
    std::vector<res_id> ids;
    ids.reserve(resources_.size());
    for (std::size_t i = 0; i < resources_.size(); ++i) {
        ids.emplace_back(i);
    }
    return ids;
}

bool wordlength_compatibility_graph::compatible(op_id o, res_id r) const
{
    check_op(o);
    check_res(r);
    const auto& row = h_of_op_[o.value()];
    return std::binary_search(row.begin(), row.end(), r);
}

std::span<const res_id>
wordlength_compatibility_graph::resources_for(op_id o) const
{
    check_op(o);
    return h_of_op_[o.value()];
}

std::span<const op_id>
wordlength_compatibility_graph::ops_for(res_id r) const
{
    check_res(r);
    return h_of_res_[r.value()];
}

void wordlength_compatibility_graph::delete_edge(op_id o, res_id r)
{
    check_op(o);
    check_res(r);
    auto& row = h_of_op_[o.value()];
    const auto it = std::lower_bound(row.begin(), row.end(), r);
    require(it != row.end() && *it == r, "H edge not present");
    require(row.size() > 1,
            "deleting the last compatible resource of an operation");
    row.erase(it);

    auto& col = h_of_res_[r.value()];
    const auto jt = std::lower_bound(col.begin(), col.end(), o);
    MWL_ASSERT(jt != col.end() && *jt == o);
    col.erase(jt);
    --edge_count_;
    ++version_;

    // The cached bounds only move when an extremal-latency edge went away.
    const int lat = res_latency_[r.value()];
    if (lat == lat_upper_[o.value()] || lat == lat_lower_[o.value()]) {
        recompute_bounds(o);
    }
}

int wordlength_compatibility_graph::latency_upper_bound(op_id o) const
{
    check_op(o);
    return lat_upper_[o.value()];
}

int wordlength_compatibility_graph::latency_lower_bound(op_id o) const
{
    check_op(o);
    return lat_lower_[o.value()];
}

std::vector<int> wordlength_compatibility_graph::latency_upper_bounds() const
{
    return lat_upper_;
}

bool wordlength_compatibility_graph::refinable(op_id o) const
{
    check_op(o);
    return lat_lower_[o.value()] < lat_upper_[o.value()];
}

int wordlength_compatibility_graph::refine_op(op_id o)
{
    require(refinable(o), "operation has no strictly faster resource left");
    const int top = latency_upper_bound(o);

    // Collect first, then delete: delete_edge mutates the row we iterate.
    std::vector<res_id> doomed;
    for (const res_id r : h_of_op_[o.value()]) {
        if (res_latency_[r.value()] == top) {
            doomed.push_back(r);
        }
    }
    MWL_ASSERT(!doomed.empty());
    for (const res_id r : doomed) {
        delete_edge(o, r);
    }
    return static_cast<int>(doomed.size());
}

void wordlength_compatibility_graph::recompute_bounds(op_id o)
{
    int upper = 0;
    int lower = 0;
    for (const res_id r : h_of_op_[o.value()]) {
        const int lat = res_latency_[r.value()];
        upper = std::max(upper, lat);
        lower = (lower == 0) ? lat : std::min(lower, lat);
    }
    MWL_ASSERT(upper >= 1 && lower >= 1);
    lat_upper_[o.value()] = upper;
    lat_lower_[o.value()] = lower;
}

void wordlength_compatibility_graph::check_op(op_id o) const
{
    require(o.is_valid() && o.value() < graph_->size(),
            "operation id out of range");
}

void wordlength_compatibility_graph::check_res(res_id r) const
{
    require(r.is_valid() && r.value() < resources_.size(),
            "resource id out of range");
}

} // namespace mwl
