// Structural Verilog emission for an allocated datapath.
//
// Prints a self-contained synthesisable Verilog-2001 module from the
// structural RTL IR (rtl/rtl_design.hpp): one functional unit per datapath
// instance with *signed* arithmetic bodies, the left-edge register file,
// operand/register multiplexing driven by a cycle counter ("one-hot in
// time" schedule controller), and primary I/O. Every width adaptation the
// IR carries (slice at the operation's native wordlength, sign-extension
// into wider shared ports and registers) is printed as an explicit
// {{n{msb}}, slice} concatenation, so the module computes exactly what the
// interpreter (rtl/rtl_interp.hpp) computes from the same IR.

#ifndef MWL_RTL_VERILOG_HPP
#define MWL_RTL_VERILOG_HPP

#include "rtl/elaborate.hpp"
#include "rtl/netlist.hpp"
#include "rtl/rtl_design.hpp"

#include <string>

namespace mwl {

/// Render an elaborated design as Verilog text.
[[nodiscard]] std::string to_verilog(const rtl_design& design);

/// Convenience wrapper: elaborate `path`/`net` into an IR and print it.
/// Throws `precondition_error` if `module_name` is empty.
[[nodiscard]] std::string to_verilog(const sequencing_graph& graph,
                                     const datapath& path,
                                     const rtl_netlist& net,
                                     const std::string& module_name);

} // namespace mwl

#endif // MWL_RTL_VERILOG_HPP
