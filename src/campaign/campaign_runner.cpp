#include "campaign/campaign_runner.hpp"

#include "dfg/analysis.hpp"
#include "engine/batch_engine.hpp"
#include "support/interrupt.hpp"
#include "support/thread_pool.hpp"
#include "tgff/corpus.hpp"
#include "wordlength/optimizer.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

namespace mwl {

namespace {

/// The tuning path: one wordlength optimization per pending point, run
/// as tasks on the engine's pool. Each task evaluates its candidates
/// with engine.run() (batch_neighbors=false -- drain() is a global
/// barrier, so concurrent optimizers must not use batch mode), which
/// still shares the dedup+LRU across points. A point interrupted
/// mid-search records nothing: its partial best is not the
/// deterministic answer, so resume re-runs it from scratch.
campaign_run_summary run_tuning_campaign(
    const campaign_spec& spec,
    const std::vector<const campaign_point*>& pending,
    std::size_t total, std::size_t already_complete, result_store& store,
    const campaign_run_options& options)
{
    campaign_run_summary summary;
    summary.total = total;
    summary.already_complete = already_complete;

    // Problems and models are shared across the grid; build them
    // serially up front so pool tasks only read.
    std::map<std::string, tune_problem> problems;
    std::map<std::pair<int, int>, std::unique_ptr<sonic_model>> models;
    for (const campaign_point* p : pending) {
        const std::string gkey =
            p->scenario + "/v" + std::to_string(p->variant);
        if (!problems.contains(gkey)) {
            problems.emplace(
                gkey, make_tune_problem(
                          make_variant_graph(spec, p->scenario, p->variant)));
        }
        const std::pair<int, int> mkey{p->adder_latency,
                                       p->mul_bits_per_cycle};
        if (!models.contains(mkey)) {
            models.emplace(mkey,
                           std::make_unique<sonic_model>(
                               p->adder_latency, p->mul_bits_per_cycle));
        }
    }

    batch_engine engine(batch_options{.jobs = options.jobs,
                                      .cache_capacity = 1024});
    const std::size_t wave_size =
        options.wave != 0
            ? options.wave
            : std::max<std::size_t>(32, 4 * engine.pool().size());

    std::mutex record_mutex;
    for (std::size_t start = 0; start < pending.size();
         start += wave_size) {
        if (interrupt_requested()) {
            summary.interrupted = true;
            break;
        }
        const std::size_t end =
            std::min(pending.size(), start + wave_size);
        task_group tasks(engine.pool());
        for (std::size_t i = start; i < end; ++i) {
            const campaign_point* p = pending[i];
            const tune_problem* problem =
                &problems.at(p->scenario + "/v" +
                             std::to_string(p->variant));
            const sonic_model* model =
                models.at({p->adder_latency, p->mul_bits_per_cycle}).get();
            tasks.run([&, p, problem, model] {
                optimizer_options search;
                search.noise.budget = p->budget;
                search.noise.min_frac_bits = spec.tune_min_frac;
                search.noise.max_frac_bits = spec.tune_max_frac;
                search.slack = p->slack_percent / 100.0;
                search.seed = spec.tune_seed;
                search.max_steps = spec.tune_max_steps;
                search.anneal_iterations = spec.tune_anneal;
                search.batch_neighbors = false;
                point_result r;
                r.index = p->index;
                r.key = p->key();
                bool cut_short = false;
                try {
                    const tune_result tuned = optimize_wordlengths(
                        *problem, *model, search, engine);
                    cut_short = tuned.stats.interrupted;
                    r.lambda = tuned.best.lambda;
                    r.latency = tuned.best.latency;
                    r.area = tuned.best.area;
                } catch (const error& e) {
                    // An unreachable budget is this point's result, not
                    // a campaign failure.
                    r.error = e.what();
                }
                if (cut_short) {
                    return;
                }
                const std::lock_guard<std::mutex> lock(record_mutex);
                store.record(r);
                ++summary.executed;
                if (!r.ok()) {
                    ++summary.failed;
                }
            });
        }
        tasks.wait();
    }

    store.flush_checkpoint();
    return summary;
}

} // namespace

campaign_run_summary run_campaign(const campaign_spec& spec,
                                  const std::vector<campaign_point>& points,
                                  result_store& store,
                                  const campaign_run_options& options)
{
    campaign_run_summary summary;
    summary.total = points.size();

    std::vector<const campaign_point*> pending;
    for (const campaign_point& point : points) {
        if (store.has(point.index)) {
            ++summary.already_complete;
        } else {
            pending.push_back(&point);
        }
    }
    if (pending.empty()) {
        return summary;
    }
    if (!spec.tune_budgets.empty()) {
        return run_tuning_campaign(spec, pending, summary.total,
                                   summary.already_complete, store,
                                   options);
    }

    // Graphs and models are shared across the grid: one graph per
    // (scenario, variant), one model per parameter combination, one
    // lambda_min per (graph, model) pair.
    std::map<std::string, sequencing_graph> graphs;
    std::map<std::pair<int, int>, std::unique_ptr<sonic_model>> models;
    std::map<std::string, int> lambda_mins;
    const auto graph_of = [&](const campaign_point& p) -> const
        sequencing_graph& {
        const std::string key =
            p.scenario + "/v" + std::to_string(p.variant);
        const auto it = graphs.find(key);
        if (it != graphs.end()) {
            return it->second;
        }
        return graphs
            .emplace(key, make_variant_graph(spec, p.scenario, p.variant))
            .first->second;
    };
    const auto model_of = [&](const campaign_point& p) -> const
        sonic_model& {
        const std::pair<int, int> key{p.adder_latency,
                                      p.mul_bits_per_cycle};
        const auto it = models.find(key);
        if (it != models.end()) {
            return *it->second;
        }
        return *models
                    .emplace(key, std::make_unique<sonic_model>(
                                      p.adder_latency, p.mul_bits_per_cycle))
                    .first->second;
    };

    batch_engine engine(batch_options{.jobs = options.jobs,
                                      .cache_capacity = 1024});
    const std::size_t wave_size =
        options.wave != 0
            ? options.wave
            : std::max<std::size_t>(32, 4 * engine.pool().size());

    struct wave_entry {
        const campaign_point* point = nullptr;
        int lambda = 0;
    };
    std::vector<wave_entry> wave;
    std::mutex record_mutex;
    engine.set_completion_hook([&](std::size_t index,
                                   const batch_engine::outcome& out) {
        const wave_entry& entry = wave[index];
        point_result r;
        r.index = entry.point->index;
        r.key = entry.point->key();
        r.lambda = entry.lambda;
        if (out.ok()) {
            r.latency = out.result->path.latency;
            r.area = out.result->path.total_area;
        } else {
            r.error = out.error;
        }
        const std::lock_guard<std::mutex> lock(record_mutex);
        store.record(r);
        ++summary.executed;
        if (!r.ok()) {
            ++summary.failed;
        }
    });

    for (std::size_t start = 0; start < pending.size();
         start += wave_size) {
        if (interrupt_requested()) {
            summary.interrupted = true;
            break;
        }
        const std::size_t end =
            std::min(pending.size(), start + wave_size);
        // Build the whole wave before the first submit: the completion
        // hook reads `wave` from pool threads as soon as a job resolves.
        wave.clear();
        for (std::size_t i = start; i < end; ++i) {
            const campaign_point& p = *pending[i];
            const sequencing_graph& graph = graph_of(p);
            const sonic_model& model = model_of(p);
            const std::string lkey =
                p.scenario + "/v" + std::to_string(p.variant) + "/a" +
                std::to_string(p.adder_latency) + "m" +
                std::to_string(p.mul_bits_per_cycle);
            auto lit = lambda_mins.find(lkey);
            if (lit == lambda_mins.end()) {
                lit = lambda_mins
                          .emplace(lkey, min_latency(graph, model))
                          .first;
            }
            wave.push_back(
                {&p, relaxed_lambda(lit->second,
                                    p.slack_percent / 100.0)});
        }
        for (const wave_entry& entry : wave) {
            static_cast<void>(engine.submit(graph_of(*entry.point),
                                            model_of(*entry.point),
                                            entry.lambda));
        }
        static_cast<void>(engine.drain());
    }

    store.flush_checkpoint();
    return summary;
}

} // namespace mwl
