// mwl_batch -- manifest-driven batch allocation and sweep driver.
//
// Reads a manifest describing many allocation jobs -- .mwl graph files
// and/or generated tgff corpora, each with a latency constraint or a
// Pareto sweep range -- and runs them through the batch engine
// (src/engine/) on a work-stealing pool. Emits per-job results as an
// aligned table, JSON, or CSV, plus cache-hit and throughput statistics.
//
// Manifest format (one entry per line; '#' starts a comment):
//
//   graph FILE [lambda=N | slack=PCT | sweep=PCT] [verify=N]
//   corpus ops=N count=N [seed=S] [mul-fraction=F] [min-width=W]
//          [max-width=W] [lambda=N | slack=PCT | sweep=PCT] [verify=N]
//
// `slack=PCT` allocates at ceil(lambda_min*(1+PCT/100)) (default slack=0);
// `sweep=PCT` runs a Pareto sweep over [lambda_min, that bound] instead of
// a single allocation. `verify=N` differentially verifies the entry
// instead of allocating it: every allocator's datapath is checked against
// the bit-true reference and the RTL interpreter (src/verify/) on N random
// signed input vectors; a counterexample fails the run. Corpus entries
// expand to `count` jobs sharing one spec.
//
// Usage:
//   mwl_batch MANIFEST [--jobs N] [--json FILE] [--csv] [--cache N]
//   echo 'corpus ops=8 count=4 sweep=30' | mwl_batch -
//   echo 'corpus ops=8 count=4 verify=16' | mwl_batch -

#include "dfg/analysis.hpp"
#include "engine/batch_engine.hpp"
#include "engine/parallel_pareto.hpp"
#include "io/graph_io.hpp"
#include "model/hardware_model.hpp"
#include "report/table.hpp"
#include "support/interrupt.hpp"
#include "support/parse_num.hpp"
#include "support/timer.hpp"
#include "tgff/corpus.hpp"
#include "verify/differential.hpp"

#include <deque>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace {

using namespace mwl;

[[noreturn]] void usage(int code)
{
    std::cout <<
        "usage: mwl_batch MANIFEST [options]\n"
        "  --jobs N     worker threads [hardware concurrency]\n"
        "  --json FILE  write results + stats as JSON\n"
        "  --csv        CSV on stdout instead of the aligned table\n"
        "  --cache N    result cache capacity [1024]\n"
        "  MANIFEST of '-' reads the manifest from stdin\n"
        "manifest lines:\n"
        "  graph FILE [lambda=N | slack=PCT | sweep=PCT] [verify=N]\n"
        "  corpus ops=N count=N [seed=S] [mul-fraction=F] [min-width=W]\n"
        "         [max-width=W] [lambda=N | slack=PCT | sweep=PCT]\n"
        "         [verify=N]\n"
        "  verify=N cross-checks reference == datapath sim == RTL\n"
        "  interpretation on N random signed input vectors per graph\n"
        "SIGINT/SIGTERM drain in-flight jobs and emit the partial\n"
        "results (exit 3) instead of dying with no output\n";
    std::exit(code);
}

/// What to do with one graph: allocate at a fixed lambda / relaxed slack,
/// sweep the frontier up to a slack bound, or differentially verify the
/// allocators' RTL on random signed inputs.
struct directive {
    std::optional<int> lambda;
    double slack = 0.0;
    std::optional<double> sweep_slack; ///< set = Pareto sweep entry
    std::optional<std::size_t> verify_inputs; ///< set = verification entry
    /// Input-vector seed for verification entries; derived per entry from
    /// the corpus seed (mirroring verify_corpus) so `seed=` in the
    /// manifest changes the inputs too, not just the graphs.
    std::uint64_t verify_seed = 2001;
};

/// One expanded unit of work. Graphs live in the owning deque below;
/// the engine borrows them until drain.
struct work_item {
    std::string name;
    const sequencing_graph* graph = nullptr;
    directive what;
};

/// Throws `precondition_error` on an unparseable number, so manifest
/// errors surface as diagnostics + exit 2, never an uncaught stoi abort.
bool take_directive(const std::string& token, directive& out)
{
    const auto value_of = [&](const char* prefix) -> std::optional<std::string> {
        const std::size_t n = std::string(prefix).size();
        if (token.rfind(prefix, 0) == 0) {
            return token.substr(n);
        }
        return std::nullopt;
    };
    if (const auto v = value_of("lambda=")) {
        out.lambda = parse_int_checked(*v, token);
        return true;
    }
    if (const auto v = value_of("slack=")) {
        out.slack = parse_double_checked(*v, token) / 100.0;
        require(out.slack >= 0.0, "slack must be non-negative");
        return true;
    }
    if (const auto v = value_of("sweep=")) {
        out.sweep_slack = parse_double_checked(*v, token) / 100.0;
        require(*out.sweep_slack >= 0.0, "sweep must be non-negative");
        return true;
    }
    if (const auto v = value_of("verify=")) {
        out.verify_inputs = parse_size_checked(*v, token);
        require(*out.verify_inputs >= 1, "verify needs >= 1 input");
        return true;
    }
    return false;
}

std::string json_escape(const std::string& text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        if (c == '"' || c == '\\') {
            out += '\\';
        }
        out += c;
    }
    return out;
}

} // namespace

int main(int argc, char** argv)
{
    // First thing, so a ^C during manifest expansion already drains
    // instead of killing the process with no output.
    install_interrupt_handler();

    std::string manifest_file;
    std::size_t jobs = 0;
    std::string json_file;
    bool csv = false;
    std::size_t cache_capacity = 1024;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "mwl_batch: missing value for " << arg << '\n';
                usage(2);
            }
            return argv[++i];
        };
        const auto count_value = [&]() -> std::size_t {
            const std::string text = value();
            try {
                return parse_size_checked(text);
            } catch (const error&) {
                std::cerr << "mwl_batch: bad numeric value '" << text
                          << "' for " << arg << '\n';
                usage(2);
            }
        };
        if (arg == "--jobs") {
            jobs = count_value();
        } else if (arg == "--json") {
            json_file = value();
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--cache") {
            cache_capacity = count_value();
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
            std::cerr << "mwl_batch: unknown option " << arg << '\n';
            usage(2);
        } else {
            manifest_file = arg;
        }
    }
    if (manifest_file.empty()) {
        usage(2);
    }

    try {
        // ---- parse the manifest into owned graphs + work items ----------
        std::ifstream file_in;
        std::istream* in = &std::cin;
        if (manifest_file != "-") {
            file_in.open(manifest_file);
            if (!file_in) {
                std::cerr << "mwl_batch: cannot open " << manifest_file
                          << '\n';
                return 1;
            }
            in = &file_in;
        }

        std::deque<sequencing_graph> graphs; // stable addresses
        std::vector<work_item> items;
        std::string raw;
        std::size_t line_no = 0;
        while (std::getline(*in, raw)) {
            ++line_no;
            std::istringstream line(raw);
            std::string keyword;
            if (!(line >> keyword) || keyword.front() == '#') {
                continue;
            }
            const auto fail = [&](const std::string& message) {
                std::cerr << "mwl_batch: manifest line " << line_no << ": "
                          << message << '\n';
                std::exit(2);
            };
            try {
            if (keyword == "graph") {
                std::string path;
                if (!(line >> path)) {
                    fail("expected 'graph FILE ...'");
                }
                directive what;
                std::string token;
                while (line >> token) {
                    if (!take_directive(token, what)) {
                        fail("unknown graph token '" + token + "'");
                    }
                }
                require(!(what.sweep_slack && what.verify_inputs),
                        "sweep= and verify= are mutually exclusive");
                std::ifstream gf(path);
                if (!gf) {
                    fail("cannot open graph file " + path);
                }
                graphs.push_back(parse_graph(gf));
                what.verify_seed = verify_input_seed(2001, items.size());
                items.push_back({path, &graphs.back(), what});
            } else if (keyword == "corpus") {
                directive what;
                std::vector<std::string> spec_tokens;
                std::string token;
                while (line >> token) {
                    if (!take_directive(token, what)) {
                        spec_tokens.push_back(token);
                    }
                }
                require(!(what.sweep_slack && what.verify_inputs),
                        "sweep= and verify= are mutually exclusive");
                const corpus_spec spec = corpus_spec::parse(spec_tokens);
                const sonic_model probe; // lambda_min recomputed per job
                std::size_t entry = 0;
                for (corpus_entry& e : make_corpus(spec, probe)) {
                    graphs.push_back(std::move(e.graph));
                    const std::string name =
                        "tgff(ops=" + std::to_string(spec.n_ops) +
                        ",seed=" + std::to_string(spec.seed) + ")#" +
                        std::to_string(items.size());
                    what.verify_seed = verify_input_seed(spec.seed, entry++);
                    items.push_back({name, &graphs.back(), what});
                }
            } else {
                fail("unknown keyword '" + keyword + "'");
            }
            } catch (const error& e) {
                // Directive / corpus-spec / graph-parse problems all carry
                // the manifest line number out through the same exit.
                fail(e.what());
            }
        }
        if (items.empty()) {
            std::cerr << "mwl_batch: manifest has no entries\n";
            return 2;
        }

        // ---- run ---------------------------------------------------------
        const sonic_model model;
        thread_pool pool(jobs);
        batch_options engine_options;
        engine_options.cache_capacity = cache_capacity;
        batch_engine engine(pool, engine_options);

        stopwatch clock;

        // Single-lambda jobs go through the engine (dedup + cache) in
        // bounded chunks, draining between them, so a SIGINT/SIGTERM
        // costs at most one chunk of in-flight work before the partial
        // results are emitted; sweep entries fan out per-lambda subtasks
        // on the same pool afterwards.
        std::vector<std::size_t> job_of_item(items.size(),
                                             static_cast<std::size_t>(-1));
        std::vector<int> lambda_of_item(items.size(), 0);
        std::vector<batch_engine::outcome> outcomes;
        constexpr std::size_t chunk_size = 64;
        std::size_t reached = 0; ///< items whose chunk ran (or was skipped)
        bool interrupted = false;
        while (reached < items.size()) {
            if (interrupt_requested()) {
                interrupted = true;
                break;
            }
            const std::size_t base = outcomes.size();
            std::size_t submitted = 0;
            for (; reached < items.size() && submitted < chunk_size;
                 ++reached) {
                const work_item& item = items[reached];
                if (item.what.sweep_slack) {
                    continue;
                }
                const int lambda =
                    item.what.lambda
                        ? *item.what.lambda
                        : item.graph->empty()
                            ? 0
                            : relaxed_lambda(min_latency(*item.graph, model),
                                             item.what.slack);
                lambda_of_item[reached] = lambda;
                if (item.what.verify_inputs) {
                    continue; // verified on the pool below, at this lambda
                }
                job_of_item[reached] =
                    base + engine.submit(*item.graph, model, lambda);
                ++submitted;
            }
            auto drained = engine.drain();
            outcomes.insert(outcomes.end(),
                            std::make_move_iterator(drained.begin()),
                            std::make_move_iterator(drained.end()));
        }

        // Sweep and verification entries run concurrently across items
        // too: one task per graph on the same pool (sweeps additionally
        // fan per-lambda subtasks). An interrupt stops further launches;
        // already-launched tasks drain through tasks.wait().
        std::vector<std::vector<pareto_point>> fronts(items.size());
        std::vector<verify_report> verifications(items.size());
        std::vector<bool> launched(items.size(), false);
        {
            task_group tasks(pool);
            for (std::size_t i = 0; i < reached; ++i) {
                const work_item& item = items[i];
                if (!item.what.sweep_slack && !item.what.verify_inputs) {
                    continue;
                }
                if (interrupt_requested()) {
                    interrupted = true;
                    break;
                }
                launched[i] = true;
                if (item.what.sweep_slack) {
                    pareto_options sweep;
                    sweep.max_slack = *item.what.sweep_slack;
                    const sequencing_graph* graph = item.graph;
                    std::vector<pareto_point>* slot = &fronts[i];
                    tasks.run([&pool, &model, sweep, graph, slot] {
                        *slot =
                            parallel_pareto_sweep(*graph, model, sweep, pool);
                    });
                } else if (item.what.verify_inputs) {
                    verify_options options;
                    options.inputs_per_graph = *item.what.verify_inputs;
                    options.slack = item.what.slack;
                    const int lambda = lambda_of_item[i];
                    const work_item* work = &item;
                    verify_report* slot = &verifications[i];
                    tasks.run([&model, options, lambda, work, slot] {
                        if (work->graph->empty()) {
                            return; // nothing to verify; report stays ok
                        }
                        try {
                            *slot = verify_graph(*work->graph, work->name,
                                                 model, lambda, options,
                                                 work->what.verify_seed);
                        } catch (const error& e) {
                            // A broken entry (e.g. a graph too wide to
                            // simulate) fails its own row, not the batch.
                            counterexample cx;
                            cx.graph_name = work->name;
                            cx.allocator = "-";
                            cx.stage = "error";
                            cx.detail = e.what();
                            slot->counterexamples.push_back(std::move(cx));
                        }
                    });
                }
            }
            tasks.wait();
        }
        const double wall = clock.seconds();

        // ---- report ------------------------------------------------------
        table t("mwl_batch results");
        t.header({"entry", "kind", "lambda", "latency", "area", "status"});
        std::ostringstream json;
        json << "{\"results\":[";
        bool first = true;
        const auto emit_row = [&](const std::string& name,
                                  const char* kind, int lambda, int latency,
                                  double area, const std::string& status) {
            t.row({name, kind, table::num(lambda), table::num(latency),
                   table::num(area, 1), status});
            json << (first ? "" : ",") << "{\"entry\":\""
                 << json_escape(name) << "\",\"kind\":\"" << kind
                 << "\",\"lambda\":" << lambda << ",\"latency\":" << latency
                 << ",\"area\":" << area << ",\"status\":\""
                 << json_escape(status) << "\"}";
            first = false;
        };
        int failures = 0;
        std::size_t completed_items = 0;
        for (std::size_t i = 0; i < items.size(); ++i) {
            const work_item& item = items[i];
            // On interrupt, entries that never ran get no row: a partial
            // report only contains results that actually exist.
            if (item.what.sweep_slack || item.what.verify_inputs) {
                if (!launched[i]) {
                    continue;
                }
            } else if (i >= reached) {
                continue;
            }
            ++completed_items;
            if (item.what.sweep_slack) {
                if (fronts[i].empty()) {
                    // An empty graph sweeps to an empty frontier; still
                    // give the entry a row so no job vanishes from the
                    // report.
                    emit_row(item.name, "sweep", 0, 0, 0.0, "empty graph");
                    continue;
                }
                for (const pareto_point& p : fronts[i]) {
                    emit_row(item.name, "sweep", p.lambda, p.latency, p.area,
                             "front");
                }
                continue;
            }
            if (item.what.verify_inputs) {
                const verify_report& vr = verifications[i];
                const int lambda = lambda_of_item[i];
                if (vr.ok()) {
                    emit_row(item.name, "verify", lambda, 0, 0.0,
                             "ok (" + std::to_string(vr.value_checks) +
                                 " checks, " +
                                 std::to_string(vr.allocations) +
                                 " allocations)");
                } else {
                    emit_row(item.name, "verify", lambda, 0, 0.0,
                             "counterexample: " +
                                 vr.counterexamples.front().to_string());
                    ++failures;
                }
                continue;
            }
            const batch_engine::outcome& out = outcomes[job_of_item[i]];
            if (!out.ok()) {
                emit_row(item.name, "alloc", lambda_of_item[i], 0, 0.0,
                         "error: " + out.error);
                ++failures;
                continue;
            }
            const std::string status = out.from_cache ? "cached"
                                       : out.coalesced ? "coalesced"
                                                       : "computed";
            emit_row(item.name, "alloc", lambda_of_item[i],
                     out.result->path.latency, out.result->path.total_area,
                     status);
        }

        const batch_stats stats = engine.stats();
        const double throughput =
            wall > 0.0 ? static_cast<double>(items.size()) / wall : 0.0;
        json << "],\"stats\":{\"entries\":" << items.size()
             << ",\"completed_entries\":" << completed_items
             << ",\"interrupted\":" << (interrupted ? "true" : "false")
             << ",\"engine_jobs\":" << stats.submitted
             << ",\"executed\":" << stats.executed
             << ",\"cache_hits\":" << stats.cache_hits
             << ",\"coalesced\":" << stats.coalesced
             << ",\"errors\":" << stats.errors << ",\"pool_threads\":"
             << pool.size() << ",\"wall_seconds\":" << wall
             << ",\"entries_per_second\":" << throughput << "}}";

        if (csv) {
            t.print_csv(std::cout);
        } else {
            t.print(std::cout);
        }
        std::cout << "\nengine: " << stats.submitted << " jobs, "
                  << stats.executed << " executed, " << stats.cache_hits
                  << " cache hits, " << stats.coalesced << " coalesced, "
                  << stats.errors << " errors\n"
                  << "pool: " << pool.size() << " threads, "
                  << table::num(wall * 1e3, 1) << " ms, "
                  << table::num(throughput, 1) << " entries/s\n";
        if (interrupted) {
            std::cout << "interrupted: completed " << completed_items
                      << " of " << items.size() << " entries\n";
        }

        if (!json_file.empty()) {
            std::ofstream out(json_file);
            if (!out) {
                std::cerr << "mwl_batch: cannot write " << json_file << '\n';
                return 1;
            }
            out << json.str() << '\n';
            std::cout << "json written to " << json_file << '\n';
        }
        if (interrupted) {
            return interrupt_exit_code;
        }
        return failures == 0 ? 0 : 1;
    } catch (const error& e) {
        std::cerr << "mwl_batch: " << e.what() << '\n';
        return 1;
    }
}
