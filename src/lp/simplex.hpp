// Bounded-variable primal simplex (dense tableau, two phases).
//
// Method: rows are converted to equalities with per-row slack columns
// (bounded by data-derived finite limits); rows whose slack cannot absorb
// the initial residual get a phase-1 artificial. Nonbasic variables rest at
// one of their bounds; the ratio test accounts for both the basic
// variables' bound windows and the entering variable's own span (bound
// flips). Bland's rule everywhere => finite termination without
// anti-cycling perturbation. Basic values and reduced costs are recomputed
// from the maintained tableau every iteration, trading a constant factor
// for numerical robustness -- at this repository's problem sizes that is
// the right trade.

#ifndef MWL_LP_SIMPLEX_HPP
#define MWL_LP_SIMPLEX_HPP

#include "lp/problem.hpp"

#include <span>
#include <vector>

namespace mwl {

enum class lp_status {
    optimal,
    infeasible,
    iteration_limit,
};

struct lp_solution {
    lp_status status = lp_status::infeasible;
    std::vector<double> x;  ///< structural variable values (status optimal)
    double objective = 0.0; ///< c'x (status optimal)
    std::size_t iterations = 0;
};

struct simplex_options {
    std::size_t max_iterations = 200000;
    double feasibility_tol = 1e-7;
    double reduced_cost_tol = 1e-7;
    double pivot_tol = 1e-9;
};

/// Solve the LP relaxation of `problem` (integrality ignored).
/// `lo_override` / `hi_override`, when non-empty, replace the variable
/// bounds -- branch and bound uses this to explore nodes without copying
/// the problem. Override spans must be full-length.
[[nodiscard]] lp_solution solve_lp(const lp_problem& problem,
                                   const simplex_options& options = {},
                                   std::span<const double> lo_override = {},
                                   std::span<const double> hi_override = {});

} // namespace mwl

#endif // MWL_LP_SIMPLEX_HPP
