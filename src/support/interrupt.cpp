#include "support/interrupt.hpp"

#include <csignal>

namespace mwl {

namespace {

volatile std::sig_atomic_t g_interrupted = 0;

extern "C" void on_interrupt(int sig)
{
    g_interrupted = 1;
    // Second signal: give up on draining and die the default way.
    std::signal(sig, SIG_DFL);
}

} // namespace

void install_interrupt_handler()
{
    struct sigaction action = {};
    action.sa_handler = on_interrupt;
    sigemptyset(&action.sa_mask);
    action.sa_flags = SA_RESTART;
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);
}

bool interrupt_requested()
{
    return g_interrupted != 0;
}

} // namespace mwl
