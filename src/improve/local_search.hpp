// Local-search post-optimisation of allocated datapaths.
//
// DPAlloc stops at its first feasible solution (the paper's design); this
// module measures and harvests the headroom it leaves with a greedy
// hill-climb over three validator-checked move classes:
//
//   * downsize -- shrink an instance's resource type to the join of its
//     members' shapes (never invalid w.r.t. coverage; may change latency,
//     so the move is re-validated);
//   * rebind   -- move one operation onto another existing instance,
//     deleting its old instance when it empties;
//   * compact  -- ASAP-retime every operation respecting the current
//     binding (frees schedule room that unlocks further rebinds).
//
// Every candidate is checked with the independent validator against the
// latency constraint before acceptance, and accepted only on a strict
// area improvement (compaction: strict latency improvement), so the climb
// terminates and the result is always at least as good as the seed.
// bench/improvement_headroom quantifies the gap DPAlloc leaves.

#ifndef MWL_IMPROVE_LOCAL_SEARCH_HPP
#define MWL_IMPROVE_LOCAL_SEARCH_HPP

#include "core/datapath.hpp"
#include "model/hardware_model.hpp"

#include <cstddef>

namespace mwl {

struct improve_options {
    /// Hard cap on full improvement sweeps (each sweep tries every move).
    std::size_t max_passes = 64;
    bool enable_downsize = true;
    bool enable_rebind = true;
    bool enable_compaction = true;
};

struct improve_result {
    datapath path;
    std::size_t moves_applied = 0;
    double area_saved = 0.0; ///< seed area minus final area (>= 0)
};

/// Improve `seed` under latency constraint `lambda`. The seed must be a
/// valid datapath for (graph, model, lambda) -- throws `mwl::error`
/// otherwise.
[[nodiscard]] improve_result improve_datapath(
    const sequencing_graph& graph, const hardware_model& model,
    datapath seed, int lambda, const improve_options& options = {});

} // namespace mwl

#endif // MWL_IMPROVE_LOCAL_SEARCH_HPP
