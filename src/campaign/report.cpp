#include "campaign/report.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace mwl {

namespace {

std::string json_escape(const std::string& text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        if (c == '"' || c == '\\') {
            out += '\\';
        }
        out += c;
    }
    return out;
}

} // namespace

campaign_status status_of(const std::vector<campaign_point>& points,
                          const result_store& store)
{
    campaign_status status;
    status.total = points.size();
    for (const campaign_point& point : points) {
        ++status.per_scenario_total[point.scenario];
        if (!store.has(point.index)) {
            continue;
        }
        ++status.completed;
        ++status.per_scenario_completed[point.scenario];
        if (!store.results().at(point.index).ok()) {
            ++status.failed;
        }
    }
    return status;
}

table render_status(const campaign_status& status)
{
    table t("campaign status");
    t.header({"scenario", "completed", "total"});
    for (const auto& [scenario, total] : status.per_scenario_total) {
        const auto it = status.per_scenario_completed.find(scenario);
        const std::size_t done =
            it == status.per_scenario_completed.end() ? 0 : it->second;
        t.row({scenario, std::to_string(done), std::to_string(total)});
    }
    t.row({"(all)", std::to_string(status.completed),
           std::to_string(status.total)});
    return t;
}

std::map<std::string, std::vector<frontier_entry>>
merge_scenario_frontiers(const std::vector<campaign_point>& points,
                         const result_store& store)
{
    std::map<std::string, std::vector<frontier_entry>> frontiers;
    std::map<std::string, std::vector<frontier_entry>> candidates;
    for (const campaign_point& point : points) {
        frontiers.try_emplace(point.scenario); // every scenario appears
        const auto it = store.results().find(point.index);
        if (it == store.results().end() || !it->second.ok()) {
            continue;
        }
        candidates[point.scenario].push_back(
            {it->second.latency, it->second.area, it->second.key});
    }
    for (auto& [scenario, entries] : candidates) {
        std::sort(entries.begin(), entries.end(),
                  [](const frontier_entry& a, const frontier_entry& b) {
                      if (a.latency != b.latency) {
                          return a.latency < b.latency;
                      }
                      if (a.area != b.area) {
                          return a.area < b.area;
                      }
                      return a.key < b.key;
                  });
        std::vector<frontier_entry>& front = frontiers[scenario];
        for (frontier_entry& entry : entries) {
            if (front.empty() || entry.area < front.back().area) {
                front.push_back(std::move(entry));
            }
        }
    }
    return frontiers;
}

table render_frontiers(
    const std::map<std::string, std::vector<frontier_entry>>& frontiers)
{
    table t("merged Pareto frontiers (whole grid)");
    t.header({"scenario", "latency", "area", "achieved by"});
    for (const auto& [scenario, front] : frontiers) {
        if (front.empty()) {
            t.row({scenario, "-", "-", "(no successful points)"});
            continue;
        }
        for (const frontier_entry& entry : front) {
            t.row({scenario, table::num(entry.latency),
                   table::num(entry.area, 1), entry.key});
        }
    }
    return t;
}

std::string report_json(const std::vector<campaign_point>& points,
                        const result_store& store)
{
    std::ostringstream json;
    char fp[17];
    std::snprintf(fp, sizeof fp, "%016" PRIx64, store.fingerprint());
    json << "{\"format_version\":" << store_format_version
         << ",\"fingerprint\":\"" << fp << "\",\"points\":" << points.size()
         << ",\"completed\":" << store.results().size() << ",\"results\":[";
    bool first = true;
    for (const auto& [index, result] : store.results()) {
        json << (first ? "" : ",") << "{\"index\":" << index
             << ",\"key\":\"" << json_escape(result.key)
             << "\",\"lambda\":" << result.lambda;
        if (result.ok()) {
            json << ",\"latency\":" << result.latency
                 << ",\"area\":" << format_double(result.area)
                 << ",\"status\":\"ok\"}";
        } else {
            json << ",\"status\":\"error\",\"error\":\""
                 << json_escape(result.error) << "\"}";
        }
        first = false;
    }
    json << "],\"frontiers\":{";
    first = true;
    for (const auto& [scenario, front] :
         merge_scenario_frontiers(points, store)) {
        json << (first ? "" : ",") << "\"" << json_escape(scenario)
             << "\":[";
        bool inner_first = true;
        for (const frontier_entry& entry : front) {
            json << (inner_first ? "" : ",") << "{\"latency\":"
                 << entry.latency << ",\"area\":"
                 << format_double(entry.area) << ",\"key\":\""
                 << json_escape(entry.key) << "\"}";
            inner_first = false;
        }
        json << "]";
        first = false;
    }
    json << "}}";
    return json.str();
}

} // namespace mwl
