#include "engine/batch_engine.hpp"

#include "analyze/analyze.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"

#include <algorithm>
#include <chrono>

namespace mwl {

std::size_t batch_engine::job_key_hash::operator()(const job_key& key) const
{
    fnv1a_hasher h;
    h.mix(static_cast<std::int64_t>(key.graph_fp));
    h.mix(static_cast<std::int64_t>(key.model_fp));
    h.mix(static_cast<std::int64_t>(key.lambda));
    h.mix(static_cast<std::int64_t>(key.options.enable_growth));
    h.mix(static_cast<std::int64_t>(key.options.reassign_cheapest));
    h.mix(static_cast<std::int64_t>(key.options.classic_constraint));
    h.mix(static_cast<std::int64_t>(key.options.incremental));
    h.mix(static_cast<std::int64_t>(key.options.initial_capacity));
    h.mix(static_cast<std::int64_t>(key.options.max_iterations));
    return h.digest();
}

batch_engine::batch_engine(const batch_options& options)
    : owned_pool_(std::make_unique<thread_pool>(options.jobs)),
      pool_(owned_pool_.get()), debug_static_check_(options.debug_static_check),
      cache_(options.cache_capacity, options.cache_shards)
{
}

batch_engine::batch_engine(thread_pool& pool, const batch_options& options)
    : pool_(&pool), debug_static_check_(options.debug_static_check),
      cache_(options.cache_capacity, options.cache_shards)
{
}

void batch_engine::allocate(const sequencing_graph& graph,
                            const hardware_model& model, int lambda,
                            const dpalloc_options& options,
                            std::shared_ptr<const dpalloc_result>& result,
                            std::string& error) const
{
    try {
        result = std::make_shared<const dpalloc_result>(
            dpalloc(graph, model, lambda, options));
        if (debug_static_check_) {
            const analysis_report report =
                analyze_allocation(graph, model, result->path);
            if (!report.ok()) {
                error = "static check failed (" +
                        std::to_string(report.findings.size()) +
                        " findings):" + format_findings(report.findings);
                result.reset();
            }
        }
    } catch (const std::exception& e) {
        result.reset();
        error = e.what();
        if (error.empty()) {
            error = "allocation failed";
        }
    }
}

batch_engine::~batch_engine()
{
    static_cast<void>(drain());
}

std::size_t batch_engine::submit(const sequencing_graph& graph,
                                 const hardware_model& model, int lambda,
                                 const dpalloc_options& options)
{
    const job_key key{graph_fingerprint(graph), model.fingerprint(), lambda,
                      options};
    submitted_.fetch_add(1, std::memory_order_relaxed);

    // Cache lookup first, touching only the key's shard lock. A result
    // published between this miss and the in-flight registration below is
    // recomputed -- a benign race costing one duplicate execution, never a
    // wrong answer (equal keys imply byte-identical results).
    if (auto cached = cache_.get(key)) {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        std::unique_lock<std::mutex> lock(mutex_);
        const std::size_t index = entries_.size();
        outcome& entry = entries_.emplace_back();
        entry.key = job_key_hash{}(key);
        entry.result = std::move(*cached);
        entry.from_cache = true;
        if (hook_) {
            // Hook with the lock released; the caller is inside submit(),
            // so the engine cannot be destroyed underneath the call.
            const completion_hook hook = hook_;
            const outcome out = entry;
            lock.unlock();
            hook(index, out);
        }
        return index;
    }

    std::unique_lock<std::mutex> lock(mutex_);
    const std::size_t index = entries_.size();
    outcome& entry = entries_.emplace_back();
    entry.key = job_key_hash{}(key);
    const auto [it, fresh] = inflight_.try_emplace(key);
    it->second.indices.push_back(index);
    if (!fresh) {
        entry.coalesced = true;
        coalesced_.fetch_add(1, std::memory_order_relaxed);
        return index;
    }
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    lock.unlock();
    // The future is intentionally dropped: execute() reports through
    // resolve() and never throws out of the task.
    static_cast<void>(pool_->submit(
        [this, key, &graph, &model] { execute(key, graph, model); }));
    return index;
}

batch_engine::outcome batch_engine::run(const sequencing_graph& graph,
                                        const hardware_model& model,
                                        int lambda,
                                        const dpalloc_options& options)
{
    const job_key key{graph_fingerprint(graph), model.fingerprint(), lambda,
                      options};
    const std::uint64_t key_hash = job_key_hash{}(key);
    submitted_.fetch_add(1, std::memory_order_relaxed);

    if (auto cached = cache_.get(key)) {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        outcome out;
        out.result = std::move(*cached);
        out.key = key_hash;
        out.from_cache = true;
        return out;
    }

    {
        std::unique_lock<std::mutex> lock(mutex_);
        const auto [it, fresh] = inflight_.try_emplace(key);
        if (!fresh) {
            // Identical job already executing (batch- or run-originated):
            // rendezvous on its sync slot instead of recomputing.
            if (!it->second.sync) {
                it->second.sync = std::make_shared<sync_slot>();
            }
            const std::shared_ptr<sync_slot> slot = it->second.sync;
            lock.unlock();
            coalesced_.fetch_add(1, std::memory_order_relaxed);
            return wait_coalesced(slot, key_hash);
        }
        in_flight_.fetch_add(1, std::memory_order_relaxed);
    }

    // Execute on the calling thread: the serve daemon's concurrency is its
    // request tasks, so the work happens where the request is.
    std::shared_ptr<const dpalloc_result> result;
    std::string error;
    allocate(graph, model, lambda, options, result, error);
    resolve(key, result, error);
    outcome out;
    out.result = std::move(result);
    out.error = std::move(error);
    out.key = key_hash;
    return out;
}

batch_engine::outcome batch_engine::wait_coalesced(
    const std::shared_ptr<sync_slot>& slot, std::uint64_t key_hash)
{
    using namespace std::chrono_literals;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(slot->mutex);
            if (slot->done) {
                break;
            }
        }
        // Help the pool while waiting: the job we coalesced onto may still
        // be *queued* (batch-originated), and every pool worker may itself
        // be a run() caller -- draining the queues ourselves guarantees
        // progress on any pool size.
        if (!pool_->run_one()) {
            std::unique_lock<std::mutex> lock(slot->mutex);
            if (!slot->done) {
                slot->cv.wait_for(lock, 200us);
            }
        }
    }
    outcome out;
    out.result = slot->result;
    out.error = slot->error;
    out.key = key_hash;
    out.coalesced = true;
    return out;
}

void batch_engine::execute(const job_key& key, const sequencing_graph& graph,
                           const hardware_model& model)
{
    std::shared_ptr<const dpalloc_result> result;
    std::string error;
    allocate(graph, model, key.lambda, key.options, result, error);
    resolve(key, std::move(result), std::move(error));
}

void batch_engine::resolve(const job_key& key,
                           std::shared_ptr<const dpalloc_result> result,
                           std::string error)
{
    // The completion hook runs with the lock released but *before* the
    // resolution is published: while the key is still in inflight_, no
    // drain() can return, so the engine stays alive across the unlocked
    // calls. A submit that coalesces onto the key during a hook call is
    // picked up by the next pass of the loop, so every waiter is hooked
    // exactly once.
    std::vector<std::size_t> hooked;
    std::shared_ptr<sync_slot> sync;
    for (;;) {
        completion_hook hook;
        std::vector<std::pair<std::size_t, outcome>> fresh;
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            const auto it = inflight_.find(key);
            MWL_ASSERT(it != inflight_.end());
            hook = hook_;
            if (hook) {
                for (const std::size_t index : it->second.indices) {
                    if (std::find(hooked.begin(), hooked.end(), index) !=
                        hooked.end()) {
                        continue;
                    }
                    outcome out = entries_[index]; // key + coalesced flag
                    out.result = result;
                    out.error = error;
                    fresh.emplace_back(index, std::move(out));
                }
            }
            if (fresh.empty()) {
                executed_.fetch_add(1, std::memory_order_relaxed);
                if (!result) {
                    errors_.fetch_add(1, std::memory_order_relaxed);
                }
                for (const std::size_t index : it->second.indices) {
                    entries_[index].result = result;
                    entries_[index].error = error;
                }
                sync = std::move(it->second.sync);
                if (result) {
                    // Insert before erasing the in-flight entry, so a
                    // concurrent submit/run always sees the key in at
                    // least one place. Errors are not cached: they are
                    // cheap to rediscover and a bounded cache slot is
                    // better spent on a datapath.
                    cache_.put(key, result);
                }
                inflight_.erase(it);
                in_flight_.fetch_sub(1, std::memory_order_relaxed);
                // Notify while still holding the mutex: the moment it is
                // released, a drain() that sees the batch complete may
                // return and let the engine be destroyed, so an unlocked
                // notify could touch a dead cv.
                idle_cv_.notify_all();
                break;
            }
        }
        for (const auto& [index, out] : fresh) {
            hook(index, out);
            hooked.push_back(index);
        }
    }
    if (sync) {
        // The slot is jointly owned with its run() waiters, so waking them
        // after the engine bookkeeping is released is lifetime-safe even
        // if a drain() returns concurrently.
        const std::lock_guard<std::mutex> lock(sync->mutex);
        sync->result = std::move(result);
        sync->error = std::move(error);
        sync->done = true;
        sync->cv.notify_all();
    }
}

std::vector<batch_engine::outcome> batch_engine::drain()
{
    using namespace std::chrono_literals;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (inflight_.empty()) {
                std::vector<outcome> done;
                done.swap(entries_);
                return done;
            }
        }
        if (!pool_->run_one()) {
            // Every remaining job is running on a worker; wait for a
            // resolve() instead of spinning.
            std::unique_lock<std::mutex> lock(mutex_);
            if (!inflight_.empty()) {
                idle_cv_.wait_for(lock, 200us);
            }
        }
    }
}

void batch_engine::set_completion_hook(completion_hook hook)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    MWL_ASSERT(inflight_.empty());
    hook_ = std::move(hook);
}

std::size_t batch_engine::pending() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const outcome& entry : entries_) {
        if (!entry.result && entry.error.empty()) {
            ++n;
        }
    }
    return n;
}

batch_stats batch_engine::stats() const
{
    const engine_stats snap = snapshot();
    batch_stats out;
    out.submitted = snap.submitted;
    out.executed = snap.executed;
    out.cache_hits = snap.cache_hits;
    out.coalesced = snap.coalesced;
    out.errors = snap.errors;
    return out;
}

engine_stats batch_engine::snapshot() const
{
    engine_stats snap;
    // Hits before submitted: every hit follows its submit, so this read
    // order keeps submitted >= hits even mid-flight.
    snap.cache_hits = cache_hits_.load(std::memory_order_relaxed);
    snap.submitted = submitted_.load(std::memory_order_relaxed);
    snap.executed = executed_.load(std::memory_order_relaxed);
    snap.cache_misses = snap.submitted - snap.cache_hits;
    snap.coalesced = coalesced_.load(std::memory_order_relaxed);
    snap.errors = errors_.load(std::memory_order_relaxed);
    snap.evictions = cache_.evictions();
    snap.in_flight = in_flight_.load(std::memory_order_relaxed);
    snap.cache_size = cache_.size();
    snap.cache_capacity = cache_.capacity();
    return snap;
}

} // namespace mwl
