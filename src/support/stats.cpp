#include "support/stats.hpp"

#include "support/error.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace mwl {

double mean(std::span<const double> sample)
{
    if (sample.empty()) {
        return 0.0;
    }
    double sum = 0.0;
    for (const double x : sample) {
        sum += x;
    }
    return sum / static_cast<double>(sample.size());
}

double stddev(std::span<const double> sample)
{
    if (sample.size() < 2) {
        return 0.0;
    }
    const double mu = mean(sample);
    double accum = 0.0;
    for (const double x : sample) {
        accum += (x - mu) * (x - mu);
    }
    return std::sqrt(accum / static_cast<double>(sample.size() - 1));
}

double geomean(std::span<const double> sample)
{
    if (sample.empty()) {
        return 0.0;
    }
    double log_sum = 0.0;
    for (const double x : sample) {
        MWL_ASSERT(x > 0.0);
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(sample.size()));
}

double percentile(std::span<const double> sample, double p)
{
    if (sample.empty()) {
        return 0.0;
    }
    MWL_ASSERT(p >= 0.0 && p <= 100.0);
    std::vector<double> sorted(sample.begin(), sample.end());
    std::sort(sorted.begin(), sorted.end());
    const double rank =
        p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - std::floor(rank);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double min_of(std::span<const double> sample)
{
    if (sample.empty()) {
        return 0.0;
    }
    return *std::min_element(sample.begin(), sample.end());
}

double max_of(std::span<const double> sample)
{
    if (sample.empty()) {
        return 0.0;
    }
    return *std::max_element(sample.begin(), sample.end());
}

latency_window::latency_window(std::size_t capacity) : capacity_(capacity)
{
    require(capacity >= 1, "latency_window capacity must be >= 1");
    ring_.reserve(capacity);
}

void latency_window::record(double sample)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (ring_.size() < capacity_) {
        ring_.push_back(sample);
    } else {
        ring_[next_] = sample;
    }
    next_ = (next_ + 1) % capacity_;
    ++recorded_;
}

latency_summary latency_window::summarize() const
{
    std::vector<double> window;
    std::uint64_t count = 0;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        window = ring_;
        count = recorded_;
    }
    latency_summary out;
    out.count = count;
    out.mean = mean(window);
    out.p50 = percentile(window, 50.0);
    out.p99 = percentile(window, 99.0);
    out.max = max_of(window);
    return out;
}

} // namespace mwl
