// Strongly typed index handles.
//
// Operations, resource types and clique indices are all "small integers";
// using raw `std::size_t` for each invites silent cross-indexing bugs.
// `strong_id<Tag>` is a zero-cost wrapper giving each index space its own
// type, ordered and hashable so it works as a key in standard containers.

#ifndef MWL_SUPPORT_IDS_HPP
#define MWL_SUPPORT_IDS_HPP

#include <compare>
#include <cstddef>
#include <functional>
#include <limits>
#include <ostream>

namespace mwl {

template <typename Tag>
class strong_id {
public:
    using underlying_type = std::size_t;

    constexpr strong_id() = default;
    constexpr explicit strong_id(underlying_type value) : value_(value) {}

    [[nodiscard]] constexpr underlying_type value() const { return value_; }

    /// Sentinel distinct from every id produced by the libraries.
    [[nodiscard]] static constexpr strong_id invalid()
    {
        return strong_id(std::numeric_limits<underlying_type>::max());
    }

    [[nodiscard]] constexpr bool is_valid() const
    {
        return value_ != invalid().value_;
    }

    friend constexpr auto operator<=>(strong_id, strong_id) = default;

private:
    underlying_type value_ = invalid().value_;
};

template <typename Tag>
std::ostream& operator<<(std::ostream& os, strong_id<Tag> id)
{
    if (!id.is_valid()) {
        return os << "<invalid>";
    }
    return os << id.value();
}

struct op_tag {};
struct resource_tag {};
struct clique_tag {};

/// Identifies one operation (vertex of the sequencing graph).
using op_id = strong_id<op_tag>;
/// Identifies one resource-wordlength type (e.g. "20x18-bit multiplier").
using res_id = strong_id<resource_tag>;
/// Identifies one clique / physical resource instance in a binding.
using clique_id = strong_id<clique_tag>;

} // namespace mwl

template <typename Tag>
struct std::hash<mwl::strong_id<Tag>> {
    std::size_t operator()(mwl::strong_id<Tag> id) const noexcept
    {
        return std::hash<std::size_t>{}(id.value());
    }
};

#endif // MWL_SUPPORT_IDS_HPP
