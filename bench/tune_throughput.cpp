// Wordlength-optimizer throughput and cache-reuse measurement.
//
// The optimizer's cost function is a real dpalloc run per candidate, so
// its speed is governed by how often the batch engine's dedup+LRU cache
// answers instead of the allocator. The productive workload shape is a
// *budget sweep*: consecutive budgets quantize to the same integer
// water-filling seed, so whole searches revisit the same candidate
// region and one shared engine serves them from cache. This bench runs
// that sweep over a deterministic corpus and reports evaluations/s and
// the measured reuse rate.
//
// The reuse rate is load-bearing: the optimizer's design assumes sweeps
// are mostly cache-served (PERF.md quotes this number), so outside smoke
// mode the bench exits non-zero if reuse drops to 0.5 or below -- a
// throughput figure measured with a cold cache would be measuring the
// allocator, not the optimizer.

#include "bench_common.hpp"
#include "engine/batch_engine.hpp"
#include "support/timer.hpp"
#include "tgff/corpus.hpp"
#include "wordlength/optimizer.hpp"

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

int main(int argc, char** argv)
{
    using namespace mwl;
    bench::bench_options opt =
        bench::parse_options(argc, argv, "tune_throughput");
    const bool smoke = opt.max_size != 0;
    if (opt.graphs == 25) {
        opt.graphs = 6;
    }
    const std::size_t n_ops = smoke ? opt.max_size : 12;
    constexpr std::size_t budgets_per_design = 8;
    // 3% budget steps: fine enough that neighbours share a water-filling
    // seed, which is the reuse the sweep is designed to harvest.
    constexpr double budget_top = 1e-6;
    constexpr double budget_step = 0.97;

    const sonic_model model;
    const auto corpus = make_corpus(n_ops, opt.graphs, model, opt.seed);

    std::vector<tune_problem> problems;
    problems.reserve(corpus.size());
    for (const corpus_entry& e : corpus) {
        problems.push_back(make_tune_problem(e.graph));
    }

    batch_options engine_opt;
    engine_opt.cache_capacity = 4096;
    batch_engine engine(engine_opt);

    optimizer_options base;
    base.noise.min_frac_bits = 2;
    base.noise.max_frac_bits = 20;
    base.max_steps = 16;
    base.anneal_iterations = 0;

    std::size_t evaluations = 0;
    std::size_t reused = 0;
    std::size_t searches = 0;
    std::size_t infeasible = 0;
    stopwatch clock;
    for (const tune_problem& problem : problems) {
        double budget = budget_top;
        for (std::size_t b = 0; b < budgets_per_design; ++b) {
            optimizer_options options = base;
            options.noise.budget = budget;
            budget *= budget_step;
            try {
                const tune_result r =
                    optimize_wordlengths(problem, model, options, engine);
                evaluations += r.stats.evaluations;
                reused += r.stats.reused;
                ++searches;
            } catch (const infeasible_error&) {
                ++infeasible; // tiny smoke graphs may max out; not a bug
            }
        }
    }
    const double ms = clock.milliseconds();

    if (searches == 0 || evaluations == 0) {
        std::cerr << "tune_throughput: NO SEARCH COMPLETED (" << infeasible
                  << " infeasible)\n";
        return 1;
    }
    const double reuse_rate =
        static_cast<double>(reused) / static_cast<double>(evaluations);
    const double evals_per_s =
        ms > 0.0 ? static_cast<double>(evaluations) / (ms / 1e3) : 0.0;
    const double searches_per_s =
        ms > 0.0 ? static_cast<double>(searches) / (ms / 1e3) : 0.0;
    const batch_stats engine_stats = engine.stats();

    table t("Wordlength tuning sweep: " + std::to_string(problems.size()) +
            " designs x " + std::to_string(budgets_per_design) +
            " budgets, |O| = " + std::to_string(n_ops));
    t.header({"searches", "ms", "searches/s", "evals", "evals/s",
              "reuse rate"});
    t.row({std::to_string(searches), table::num(ms, 1),
           table::num(searches_per_s, 1), std::to_string(evaluations),
           table::num(evals_per_s, 1), table::num(reuse_rate, 3)});
    bench::emit(t, opt);

    std::ostringstream json;
    json << "{\"bench\":\"tune_throughput\",\"graphs\":" << problems.size()
         << ",\"n_ops\":" << n_ops << ",\"seed\":" << opt.seed
         << ",\"budgets_per_design\":" << budgets_per_design
         << ",\"searches\":" << searches
         << ",\"infeasible\":" << infeasible << ',' << bench::env_json()
         << ",\"ms\":" << ms << ",\"evaluations\":" << evaluations
         << ",\"reused\":" << reused << ",\"reuse_rate\":" << reuse_rate
         << ",\"evals_per_s\":" << evals_per_s
         << ",\"searches_per_s\":" << searches_per_s
         << ",\"engine_executed\":" << engine_stats.executed
         << ",\"engine_cache_hits\":" << engine_stats.cache_hits
         << ",\"engine_coalesced\":" << engine_stats.coalesced << "}";
    std::cout << '\n' << json.str() << '\n';

    // Self-gate (full runs only): the sweep must be mostly cache-served.
    if (!smoke && reuse_rate <= 0.5) {
        std::cerr << "tune_throughput: REUSE RATE " << reuse_rate
                  << " <= 0.5 -- the sweep is not harvesting the cache\n";
        return 1;
    }

    if (smoke && opt.out.empty()) {
        return 0;
    }
    const std::string path =
        opt.out.empty() ? "BENCH_tune_throughput.json" : opt.out;
    std::ofstream file(path);
    if (file) {
        file << json.str() << '\n';
    } else {
        std::cerr << "tune_throughput: cannot write " << path << '\n';
        return 1;
    }
    return 0;
}
