#include "wordlength/tuned_graph.hpp"

#include "support/error.hpp"

#include <algorithm>
#include <cmath>

namespace mwl {

tune_problem make_tune_problem(const sequencing_graph& graph,
                               gain_model gains, int base_frac_bits,
                               int width_cap)
{
    require(!graph.empty(), "tune problem needs a non-empty graph");
    require(base_frac_bits >= 0, "base_frac_bits must be non-negative");
    require(width_cap >= 4 && width_cap <= 48,
            "width_cap must be in [4, 48]");

    tune_problem p;
    p.graph = graph;
    p.width_cap = width_cap;
    p.coeff_gain.reserve(graph.size());
    p.int_bits.reserve(graph.size());
    p.coeff_bits.reserve(graph.size());
    for (const op_id o : graph.all_ops()) {
        const op_shape& s = graph.shape(o);
        p.int_bits.push_back(std::max(1, s.width_a() - base_frac_bits));
        if (s.kind() == op_kind::mul) {
            p.coeff_bits.push_back(s.width_b());
            p.coeff_gain.push_back(
                gains == gain_model::unit
                    ? 1.0
                    : std::min(1.0, std::pow(2.0, (s.width_b() - 16) / 2.0)));
        } else {
            p.coeff_bits.push_back(0);
            p.coeff_gain.push_back(1.0);
        }
    }
    return p;
}

sequencing_graph apply_frac_bits(const tune_problem& problem,
                                 std::span<const int> frac_bits)
{
    const sequencing_graph& base = problem.graph;
    require(frac_bits.size() == base.size(),
            "frac_bits must cover every operation");
    sequencing_graph out;
    for (const op_id o : base.all_ops()) {
        const int f = frac_bits[o.value()];
        require(f >= 0, "frac_bits must be non-negative");
        const int width =
            std::clamp(problem.int_bits[o.value()] + f, 1, problem.width_cap);
        const op_shape& s = base.shape(o);
        if (s.kind() == op_kind::mul) {
            out.add_operation(
                op_shape::multiplier(width, problem.coeff_bits[o.value()]),
                base.op(o).name);
        } else {
            out.add_operation(op_shape::adder(width), base.op(o).name);
        }
    }
    for (const op_id o : base.all_ops()) {
        for (const op_id succ : base.successors(o)) {
            out.add_dependency(o, succ);
        }
    }
    return out;
}

long long total_frac_bits(std::span<const int> frac_bits)
{
    long long total = 0;
    for (const int f : frac_bits) {
        total += f;
    }
    return total;
}

} // namespace mwl
