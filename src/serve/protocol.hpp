// Wire protocol of the allocation service (mwl_serve / mwl_client).
//
// Transport: a stream socket (unix or TCP) carrying length-delimited
// frames in both directions. Every frame is
//
//   +------+------+----------------------+
//   | MWL1 | len  | payload (len bytes)  |
//   +------+------+----------------------+
//     4 B    4 B big-endian
//
// The magic catches stream desync and non-protocol peers before a bogus
// length is trusted; the length bound (server `--max-frame`) rejects
// oversized graphs without reading them. Frames never interleave: each
// side writes a frame under a per-connection lock, so a reader either
// gets a whole frame or a clean truncation (peer died mid-frame) --
// "no torn frames" is the invariant the drain tests pin.
//
// Payloads are text. Line one is a header of space-separated tokens
// (first token = verb, then `key=value` pairs); everything after the
// first newline is the body. Requests:
//
//   alloc id=N [lambda=L | slack=PCT]    body: the graph, .mwl format
//   stats id=N
//   ping  id=N
//
// Responses (`id` echoes the request, so clients may pipeline):
//
//   ok id=N lambda=L latency=T area=A cached=B coalesced=B micros=U
//   ok id=N                              body: stats JSON (stats request)
//   busy id=N retry-after-ms=R           admission rejection; retry later
//   error id=N MESSAGE...                bad request or infeasible job
//
// The request id is chosen by the client and only needs to be unique
// among its own outstanding requests; the server never interprets it.

#ifndef MWL_SERVE_PROTOCOL_HPP
#define MWL_SERVE_PROTOCOL_HPP

#include "support/error.hpp"

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace mwl::serve {

/// Default bound on a frame payload (server-side `--max-frame`).
inline constexpr std::size_t default_max_frame = 4u << 20;

/// Bytes of framing preceding every payload (magic + length).
inline constexpr std::size_t frame_header_bytes = 8;

/// A peer violated the payload grammar (framing itself reports through
/// `frame_status`, not exceptions -- a broken stream is an expected event
/// for a server, not an error state).
class protocol_error : public error {
public:
    using error::error;
};

enum class frame_status {
    ok,        ///< a whole frame was read
    eof,       ///< clean end of stream at a frame boundary
    truncated, ///< stream ended mid-header or mid-payload
    malformed, ///< header magic mismatch (desynced or foreign peer)
    oversized, ///< declared length exceeds the `max_payload` bound
};

/// Human-readable name of a status ("ok", "eof", ...).
[[nodiscard]] const char* to_string(frame_status status);

/// Read one frame from `fd` into `payload` (blocking). On `oversized`
/// the payload bytes are left unread -- the stream is desynced and the
/// connection should be closed after reporting the rejection.
[[nodiscard]] frame_status read_frame(int fd, std::string& payload,
                                      std::size_t max_payload);

/// Write one frame (header + payload) to `fd`, looping over short
/// writes. Returns false when the peer is gone (EPIPE/ECONNRESET --
/// callers ignore this for responses to a dead client) or on any other
/// write error. Never raises SIGPIPE.
[[nodiscard]] bool write_frame(int fd, std::string_view payload);

// ------------------------------------------------------------ requests --

struct request {
    enum class kind { alloc, stats, ping };

    kind what = kind::ping;
    std::uint64_t id = 0;
    std::optional<int> lambda; ///< exact latency constraint
    double slack = 0.0;        ///< else: relax lambda_min by this fraction
    std::string graph_text;    ///< alloc body, .mwl format
};

/// Parse a request payload. Throws `protocol_error` on an unknown verb,
/// an unparseable token, or a conflicting lambda=/slack= pair.
[[nodiscard]] request parse_request(const std::string& payload);

/// Client-side formatters.
[[nodiscard]] std::string format_alloc_request(std::uint64_t id,
                                               std::optional<int> lambda,
                                               double slack,
                                               std::string_view graph_text);
[[nodiscard]] std::string format_stats_request(std::uint64_t id);
[[nodiscard]] std::string format_ping_request(std::uint64_t id);

// ----------------------------------------------------------- responses --

struct response {
    enum class status { ok, error, busy };

    status what = status::ok;
    std::uint64_t id = 0;
    int lambda = 0;
    int latency = 0;
    double area = 0.0;
    bool cached = false;
    bool coalesced = false;
    double micros = 0.0;    ///< server-side allocation wall time
    int retry_after_ms = 0; ///< busy responses: back off at least this long
    std::string message;    ///< error text
    std::string body;       ///< stats JSON
};

/// Server-side formatter (exact inverse of `parse_response`).
[[nodiscard]] std::string format_response(const response& r);

/// Parse a response payload. Throws `protocol_error` on grammar errors.
[[nodiscard]] response parse_response(const std::string& payload);

} // namespace mwl::serve

#endif // MWL_SERVE_PROTOCOL_HPP
