#include "support/finding.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>

namespace mwl {
namespace {

/// JSON string escaping for the subset of characters findings can carry
/// (rule ids and locations are ASCII; messages may quote user text).
void append_escaped(std::string& out, const std::string& text)
{
    out += '"';
    for (const char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

} // namespace

const char* to_string(finding_severity severity)
{
    return severity == finding_severity::error ? "error" : "warning";
}

std::string finding::to_string() const
{
    std::string out;
    if (!location.empty()) {
        out += location;
        out += ": ";
    }
    out += message;
    out += " [";
    out += rule;
    out += ']';
    return out;
}

std::string finding::to_json() const
{
    std::string out = "{\"rule\":";
    append_escaped(out, rule);
    out += ",\"severity\":\"";
    out += mwl::to_string(severity);
    out += "\",\"node\":";
    append_escaped(out, location);
    out += ",\"bits\":[" + std::to_string(bit_lo) + "," +
           std::to_string(bit_hi) + "],\"message\":";
    append_escaped(out, message);
    out += '}';
    return out;
}

std::ostream& operator<<(std::ostream& os, const finding& f)
{
    return os << f.to_string();
}

finding make_finding(std::string rule, finding_severity severity,
                     std::string location, std::string message, int bit_lo,
                     int bit_hi)
{
    finding f;
    f.rule = std::move(rule);
    f.severity = severity;
    f.location = std::move(location);
    f.message = std::move(message);
    f.bit_lo = bit_lo;
    f.bit_hi = bit_hi;
    return f;
}

std::string format_findings(const std::vector<finding>& all)
{
    std::ostringstream os;
    for (const finding& f : all) {
        os << "\n  - " << f.to_string();
    }
    return os.str();
}

bool has_errors(const std::vector<finding>& all)
{
    for (const finding& f : all) {
        if (f.severity == finding_severity::error) {
            return true;
        }
    }
    return false;
}

} // namespace mwl
