#include "support/error.hpp"

#include <cstdio>
#include <cstdlib>

namespace mwl {

void require(bool condition, const std::string& message)
{
    if (!condition) {
        throw precondition_error(message);
    }
}

void require_feasible(bool condition, const std::string& message)
{
    if (!condition) {
        throw infeasible_error(message);
    }
}

namespace detail {

void throw_precondition(const char* message)
{
    throw precondition_error(message);
}

void throw_infeasible(const char* message)
{
    throw infeasible_error(message);
}

void assert_fail(const char* expr, const char* file, int line)
{
    std::fprintf(stderr, "mwl internal invariant violated: %s (%s:%d)\n",
                 expr, file, line);
    std::abort();
}

} // namespace detail
} // namespace mwl
