// Area/latency design-space exploration.
//
// The latency constraint is the designer's knob: sweeping lambda from
// lambda_min upward and keeping the non-dominated (latency, area) points
// yields the trade-off curve a designer actually chooses from (the
// examples print fragments of it by hand). The sweep stops early once the
// area reaches the unconstrained lower bound for the allocator -- the
// point past which more slack cannot help.

#ifndef MWL_CORE_PARETO_HPP
#define MWL_CORE_PARETO_HPP

#include "core/dpalloc.hpp"

#include <vector>

namespace mwl {

struct pareto_point {
    int lambda = 0;      ///< constraint that produced the design
    int latency = 0;     ///< achieved latency (<= lambda)
    double area = 0.0;
    datapath path;
};

struct pareto_options {
    /// Sweep upper bound as a multiple of lambda_min (inclusive).
    double max_slack = 1.0;
    /// Stop early after this many consecutive non-improving lambdas.
    int patience = 8;
    dpalloc_options allocator;
};

/// Non-dominated (latency, area) allocations for lambda in
/// [lambda_min, ceil(lambda_min * (1 + max_slack))], ascending latency,
/// strictly descending area. Never empty for a non-empty graph.
[[nodiscard]] std::vector<pareto_point> pareto_sweep(
    const sequencing_graph& graph, const hardware_model& model,
    const pareto_options& options = {});

/// Absolute tolerance under which two areas are considered equal by the
/// dominance rules below (matches the sweep's improvement threshold).
inline constexpr double pareto_area_epsilon = 1e-9;

/// True iff a design of this area would extend `frontier`: strictly below
/// the frontier's current best (= last) area. An empty frontier admits
/// everything.
[[nodiscard]] bool frontier_admits(const std::vector<pareto_point>& frontier,
                                   double area);

/// Append an admitted point, first popping predecessors it dominates --
/// every tail point with `latency >= point.latency` (a new point with the
/// same achieved latency but lower area replaces its predecessor).
/// Precondition: `frontier_admits(frontier, point.area)`.
void frontier_insert(std::vector<pareto_point>& frontier, pareto_point point);

/// Dominance-merge `src` (a frontier for a lambda range *after* dst's, i.e.
/// ascending lambda across the concatenation) into `dst`: src points that
/// do not beat dst's best area are dropped, the rest are inserted with the
/// same replacement rule as the serial sweep. Merging per-worker frontiers
/// chunk by chunk reproduces the serial frontier exactly (see
/// src/engine/parallel_pareto.cpp for the argument).
void merge_frontiers(std::vector<pareto_point>& dst,
                     std::vector<pareto_point> src);

} // namespace mwl

#endif // MWL_CORE_PARETO_HPP
