#include "sched/incomplete_scheduler.hpp"

#include "dfg/analysis.hpp"
#include "sched/priorities.hpp"
#include "support/error.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>

namespace mwl {

incomplete_schedule_result schedule_incomplete(
    const wordlength_compatibility_graph& wcg, int capacity)
{
    require(capacity >= 1, "scheduling-set member capacity must be >= 1");

    const sequencing_graph& graph = wcg.graph();
    incomplete_schedule_result result;
    result.start.assign(graph.size(), -1);
    if (graph.empty()) {
        return result;
    }

    const scheduling_set_result cover = min_scheduling_set(wcg);
    result.scheduling_set = cover.members;
    result.cover_proven_minimum = cover.proven_minimum;
    const std::size_t n_members = cover.members.size();
    MWL_ASSERT(n_members >= 1);

    // S(o): indices into cover.members compatible with o.
    std::vector<std::vector<std::size_t>> members_of_op(graph.size());
    for (const op_id o : graph.all_ops()) {
        for (std::size_t mi = 0; mi < n_members; ++mi) {
            if (wcg.compatible(o, cover.members[mi])) {
                members_of_op[o.value()].push_back(mi);
            }
        }
        MWL_ASSERT(!members_of_op[o.value()].empty()); // S is a cover
    }

    // Exact fractional accounting: scale everything by the lcm of the
    // |S(o)| values, so each op contributes scale/|S(o)| integer units to
    // each of its members, against a budget of capacity*scale per member.
    std::int64_t scale = 1;
    for (const auto& members : members_of_op) {
        scale = std::lcm(scale, static_cast<std::int64_t>(members.size()));
    }
    const std::int64_t budget = static_cast<std::int64_t>(capacity) * scale;

    const std::vector<int> upper = wcg.latency_upper_bounds();
    const std::vector<int> priority = critical_path_priorities(graph, upper);

    int horizon = 0;
    int max_latency = 0;
    for (const int latency : upper) {
        horizon += latency;
        max_latency = std::max(max_latency, latency);
    }
    horizon += max_latency;
    // usage[mi][t]: scaled usage of member mi during step t.
    std::vector<std::vector<std::int64_t>> usage(
        n_members,
        std::vector<std::int64_t>(static_cast<std::size_t>(horizon), 0));

    std::size_t scheduled = 0;
    for (int t = 0; scheduled < graph.size(); ++t) {
        MWL_ASSERT(t < horizon);
        std::vector<op_id> ready;
        for (const op_id o : graph.all_ops()) {
            if (result.start[o.value()] >= 0) {
                continue;
            }
            bool ok = true;
            for (const op_id p : graph.predecessors(o)) {
                const int ps = result.start[p.value()];
                if (ps < 0 || ps + upper[p.value()] > t) {
                    ok = false;
                    break;
                }
            }
            if (ok) {
                ready.push_back(o);
            }
        }
        std::sort(ready.begin(), ready.end(), [&](op_id a, op_id b) {
            if (priority[a.value()] != priority[b.value()]) {
                return priority[a.value()] > priority[b.value()];
            }
            return a < b;
        });

        for (const op_id o : ready) {
            const auto& members = members_of_op[o.value()];
            const std::int64_t share =
                scale / static_cast<std::int64_t>(members.size());
            const int lat = upper[o.value()];
            bool fits = true;
            for (const std::size_t mi : members) {
                for (int u = t; u < t + lat && fits; ++u) {
                    fits = usage[mi][static_cast<std::size_t>(u)] + share <=
                           budget;
                }
                if (!fits) {
                    break;
                }
            }
            if (!fits) {
                continue;
            }
            result.start[o.value()] = t;
            ++scheduled;
            for (const std::size_t mi : members) {
                for (int u = t; u < t + lat; ++u) {
                    usage[mi][static_cast<std::size_t>(u)] += share;
                }
            }
        }
    }

    result.length = schedule_length(graph, upper, result.start);
    return result;
}

} // namespace mwl
