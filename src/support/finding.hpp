// Uniform violation/finding record.
//
// Every checker in the repository -- the datapath validator
// (core/validate.hpp), the structural RTL validator (rtl/rtl_design.hpp)
// and the static analyzer (src/analyze/) -- reports problems as `finding`s:
// a stable rule id, a severity, the location in the artefact being checked,
// and a human-readable message. One struct means one rendering everywhere:
// require_valid's error text, the differential harness's counterexample
// details, drift tables and mwl_lint's JSON all format the same record
// instead of re-parsing free-form strings.
//
// Rule-id namespaces (dotted, stable -- tools and tests key on them):
//   datapath.*  validate_datapath (core/validate.hpp)
//   rtl.*       validate_design   (rtl/rtl_design.hpp)
//   sched.*     analyzer schedule/lifetime re-derivations (src/analyze/)
//   lint.*      analyzer structural lints                 (src/analyze/)
//   range.*     analyzer value-range / known-sign checks  (src/analyze/)

#ifndef MWL_SUPPORT_FINDING_HPP
#define MWL_SUPPORT_FINDING_HPP

#include <iosfwd>
#include <string>
#include <vector>

namespace mwl {

enum class finding_severity {
    error,   ///< value corruption or structural breakage
    warning, ///< suspicious but not provably value-changing
};

[[nodiscard]] const char* to_string(finding_severity severity);

struct finding {
    std::string rule;    ///< stable dotted id, e.g. "range.operand-trunc"
    finding_severity severity = finding_severity::error;
    std::string location; ///< checked node, e.g. "fu0.a", "r3", "op 5"
    std::string message;  ///< human-readable explanation
    /// Affected bit range of the flagged signal, inclusive; [-1, -1] when
    /// the finding is not about specific bits (indices, scheduling, ...).
    int bit_lo = -1;
    int bit_hi = -1;

    /// Uniform rendering: "location: message [rule]".
    [[nodiscard]] std::string to_string() const;

    /// One JSON object (stable key order: rule, severity, node, bits,
    /// message), for mwl_lint artifacts and machine consumers.
    [[nodiscard]] std::string to_json() const;
};

std::ostream& operator<<(std::ostream& os, const finding& f);

/// Construct in one expression (the checkers' `report(...)` helper).
[[nodiscard]] finding make_finding(std::string rule,
                                   finding_severity severity,
                                   std::string location, std::string message,
                                   int bit_lo = -1, int bit_hi = -1);

/// Render a list as indented "  - ..." lines (require_valid's format).
[[nodiscard]] std::string format_findings(const std::vector<finding>& all);

/// True if any finding has severity `error`.
[[nodiscard]] bool has_errors(const std::vector<finding>& all);

} // namespace mwl

#endif // MWL_SUPPORT_FINDING_HPP
