// Extension bench: do the paper's conclusions survive an extended area
// model that counts registers and multiplexers (which the paper's Eqn. 5
// ignores)?
//
// Sharing functional units is not free at the register-transfer level:
// each shared unit grows operand multiplexers, and longer schedules keep
// values alive longer, costing registers. This bench recomputes the Fig. 3
// comparison (DPAlloc vs two-stage) under rtl/netlist.hpp's extended model
// and reports both penalties side by side.

#include "baseline/two_stage.hpp"
#include "bench_common.hpp"
#include "core/dpalloc.hpp"
#include "rtl/netlist.hpp"
#include "support/stats.hpp"
#include "tgff/corpus.hpp"

#include <iostream>
#include <vector>

int main(int argc, char** argv)
{
    using namespace mwl;
    const bench::bench_options opt =
        bench::parse_options(argc, argv, "ext_area_model");
    const std::size_t max_size = opt.max_size == 0 ? 16 : opt.max_size;

    const sonic_model model;
    table t("Extended area model: mean two-stage penalty (%) over DPAlloc,"
            " FU-only vs FU+reg+mux");
    t.header({"|O|", "slack", "FU-only", "FU+reg+mux",
              "DPAlloc reg+mux share %"});

    for (std::size_t n = 4; n <= max_size; n += 4) {
        for (const double slack : {0.1, 0.3}) {
            const auto corpus = make_corpus(n, opt.graphs, model, opt.seed);
            std::vector<double> fu_penalty;
            std::vector<double> ext_penalty;
            std::vector<double> overhead_share;
            for (const corpus_entry& e : corpus) {
                const int lambda = relaxed_lambda(e.lambda_min, slack);
                const dpalloc_result heur = dpalloc(e.graph, model, lambda);
                const two_stage_result base =
                    two_stage_allocate(e.graph, model, lambda);
                const rtl_netlist heur_net =
                    build_rtl(e.graph, model, heur.path);
                const rtl_netlist base_net =
                    build_rtl(e.graph, model, base.path);
                fu_penalty.push_back((base.path.total_area /
                                          heur.path.total_area -
                                      1.0) *
                                     100.0);
                ext_penalty.push_back(
                    (base_net.total_area() / heur_net.total_area() - 1.0) *
                    100.0);
                overhead_share.push_back(
                    (heur_net.register_area + heur_net.mux_area) /
                    heur_net.total_area() * 100.0);
            }
            t.row({table::num(static_cast<int>(n)),
                   table::num(static_cast<int>(slack * 100)) + "%",
                   table::num(mean(fu_penalty), 1),
                   table::num(mean(ext_penalty), 1),
                   table::num(mean(overhead_share), 1)});
        }
    }
    bench::emit(t, opt);
    std::cout << "\n(if the FU+reg+mux penalty stays positive, the paper's"
                 " conclusion is robust to storage/steering overheads)\n";
    return 0;
}
