// Checked numeric parsing for user-facing text inputs.
//
// Every tool accepts numbers from the command line, manifests or spec
// files. Raw std::stoi/stod have three failure modes that turn a typo
// into the wrong behaviour: an uncaught std::invalid_argument aborts the
// process, std::out_of_range likewise, and a partial parse ("4x" -> 4,
// "3e" -> 3) is silently *accepted*. These helpers give one contract for
// all call sites: the whole token must parse, out-of-range is rejected,
// and failures throw `precondition_error` (an `mwl::error`, so the tools'
// existing catch blocks turn it into a diagnostic + exit 2, never an
// abort). The unsigned variants also reject a leading '-', which stoul
// would silently wrap ("-1" -> 1.8e19).
//
// `context`, when non-empty, names the offending flag or token in the
// message ("bad numeric value in 'lambda=4x'"); when empty the raw text
// itself is quoted ("bad numeric value '4x'").

#ifndef MWL_SUPPORT_PARSE_NUM_HPP
#define MWL_SUPPORT_PARSE_NUM_HPP

#include <cstddef>
#include <cstdint>
#include <string>

namespace mwl {

[[nodiscard]] int parse_int_checked(const std::string& text,
                                    const std::string& context = {});

[[nodiscard]] std::size_t parse_size_checked(const std::string& text,
                                             const std::string& context = {});

[[nodiscard]] std::uint64_t parse_u64_checked(const std::string& text,
                                              const std::string& context = {});

/// Requires a finite value (rejects "inf"/"nan" -- no budget, slack or
/// fraction in this codebase wants them).
[[nodiscard]] double parse_double_checked(const std::string& text,
                                          const std::string& context = {});

} // namespace mwl

#endif // MWL_SUPPORT_PARSE_NUM_HPP
