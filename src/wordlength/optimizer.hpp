// Error-budget-driven wordlength optimizer with real dpalloc cost.
//
// The closing loop of the multiple-wordlength literature (FpSynt,
// arXiv:1307.8401): given an output roundoff-noise budget, search
// per-operation fractional wordlengths whose cost is the *actual*
// allocated datapath -- every candidate is re-widthed
// (wordlength/tuned_graph.hpp) and pushed through the batch engine, so
// the cost function is dpalloc's area/latency, not an analytic estimate.
// An analytic model cannot see functional-unit sharing: widening one
// signal can make two multipliers coverable by one resource and *shrink*
// the datapath, which is precisely the effect a search over real
// allocations exploits and an estimate misses.
//
// Search pipeline (all deterministic):
//  1. Water-filling seed from `assign_fractional_widths` -- the noise
//     model's minimum-bits start.
//  2. Greedy descent over +-1 per-operation moves; each step evaluates
//     every noise-feasible neighbour (one engine batch -- the dedup+LRU
//     cache makes revisited candidates free) and takes the
//     lexicographically best strict improvement in (area, total
//     fractional bits, latency).
//  3. Optional simulated-annealing refinement: a seeded xoshiro walk of
//     +-1 moves with Metropolis acceptance on area, tracking the best
//     design visited. Same seed, same result -- byte for byte.
//
// The engine is borrowed, so a tool can share one LRU across a whole
// budget sweep (consecutive budgets revisit the same region of the
// search space) and a campaign can share it across points.

#ifndef MWL_WORDLENGTH_OPTIMIZER_HPP
#define MWL_WORDLENGTH_OPTIMIZER_HPP

#include "engine/batch_engine.hpp"
#include "model/hardware_model.hpp"
#include "wordlength/noise_budget.hpp"
#include "wordlength/tuned_graph.hpp"

#include <cstdint>
#include <vector>

namespace mwl {

struct optimizer_options {
    noise_spec noise;            ///< budget + fractional-bit range
    double slack = 0.25;         ///< per-candidate lambda relaxation
    std::uint64_t seed = 2001;   ///< simulated-annealing stream
    std::size_t max_steps = 64;  ///< greedy descent step cap
    std::size_t anneal_iterations = 0; ///< 0 = greedy only
    double anneal_temp = 0.05;   ///< initial temperature, fraction of area
    /// true: evaluate each descent step's neighbours as one
    /// submit()/drain() batch (parallel across the engine's pool). false:
    /// evaluate with engine.run() only -- required when several optimizer
    /// instances share one engine concurrently (the campaign runner),
    /// since drain() is a global barrier.
    bool batch_neighbors = true;
};

/// The best design found: a fractional assignment plus its allocation.
struct tuned_design {
    std::vector<int> frac_bits;
    double noise_power = 0.0;  ///< achieved output noise (<= budget)
    long long total_frac = 0;  ///< sum of frac_bits
    int lambda = 0;            ///< latency constraint it was allocated at
    int latency = 0;
    double area = 0.0;
};

struct tune_stats {
    std::size_t steps = 0;           ///< accepted greedy moves
    std::size_t evaluations = 0;     ///< candidate allocations requested
    std::size_t reused = 0;          ///< of those, answered by dedup/LRU
    std::size_t anneal_accepted = 0; ///< Metropolis acceptances
    bool interrupted = false;        ///< stopped early on SIGINT/SIGTERM
};

struct tune_result {
    tuned_design best;
    tune_stats stats;
};

/// Run the search. Throws `infeasible_error` when the budget is
/// unreachable even at max_frac_bits (from the water-filling seed),
/// `precondition_error` on malformed inputs, `error` if the seed design
/// cannot be allocated. Deterministic in (problem, model, options) at
/// every pool size and cache capacity.
[[nodiscard]] tune_result optimize_wordlengths(const tune_problem& problem,
                                               const hardware_model& model,
                                               const optimizer_options& options,
                                               batch_engine& engine);

} // namespace mwl

#endif // MWL_WORDLENGTH_OPTIMIZER_HPP
