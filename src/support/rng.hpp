// Deterministic pseudo-random number generation.
//
// The evaluation regenerates corpora of random sequencing graphs; results
// must be bit-reproducible across standard libraries, so we implement the
// generator (xoshiro256**) and the integer/real draws ourselves instead of
// relying on `std::uniform_int_distribution`, whose output is
// implementation-defined.

#ifndef MWL_SUPPORT_RNG_HPP
#define MWL_SUPPORT_RNG_HPP

#include <cstdint>

namespace mwl {

/// xoshiro256** seeded via splitmix64. Satisfies
/// std::uniform_random_bit_generator.
class rng {
public:
    using result_type = std::uint64_t;

    explicit rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    [[nodiscard]] static constexpr result_type min() { return 0; }
    [[nodiscard]] static constexpr result_type max()
    {
        return ~static_cast<result_type>(0);
    }

    result_type operator()();

    /// Uniform draw from the inclusive range [lo, hi]. Precondition: lo <= hi.
    [[nodiscard]] std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

    /// Uniform draw from [lo, hi] as int. Precondition: 0 <= lo <= hi.
    [[nodiscard]] int uniform_int(int lo, int hi);

    /// Uniform real in [0, 1).
    [[nodiscard]] double uniform_real();

    /// Bernoulli draw with probability `p` of returning true.
    [[nodiscard]] bool chance(double p);

    /// Derive an independent stream for a sub-experiment; deterministic in
    /// (current seed material, salt).
    [[nodiscard]] rng fork(std::uint64_t salt);

private:
    std::uint64_t state_[4];
};

} // namespace mwl

#endif // MWL_SUPPORT_RNG_HPP
