#include "io/record_journal.hpp"

#include "support/atomic_write.hpp"
#include "support/fault_inject.hpp"
#include "support/hash.hpp"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace mwl {

namespace {

constexpr std::size_t checksum_hex_digits = 16;

std::string checksum_hex(std::string_view payload)
{
    fnv1a_hasher h;
    h.mix(payload);
    std::string hex(checksum_hex_digits, '0');
    std::uint64_t digest = h.digest();
    for (std::size_t i = checksum_hex_digits; i-- > 0; digest >>= 4) {
        hex[i] = "0123456789abcdef"[digest & 0xf];
    }
    return hex;
}

/// Empty = the line frames `payload` correctly; otherwise the problem.
std::string check_frame(std::string_view line, std::string& payload)
{
    if (line.size() < checksum_hex_digits + 1) {
        return "record shorter than its checksum frame";
    }
    if (line[checksum_hex_digits] != ' ') {
        return "missing checksum separator";
    }
    payload = std::string(line.substr(checksum_hex_digits + 1));
    if (line.substr(0, checksum_hex_digits) != checksum_hex(payload)) {
        return "checksum mismatch";
    }
    return {};
}

[[noreturn]] void fail_io(const std::string& what,
                          const std::filesystem::path& path)
{
    throw io_error(what + " " + path.string() + ": " +
                   std::strerror(errno));
}

} // namespace

std::string frame_record(std::string_view payload)
{
    require(payload.find('\n') == std::string_view::npos,
            "journal payloads are single lines");
    std::string line = checksum_hex(payload);
    line += ' ';
    line += payload;
    line += '\n';
    return line;
}

journal_load parse_records(std::string_view text)
{
    journal_load load;
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::size_t eol = text.find('\n', pos);
        const bool complete = eol != std::string_view::npos;
        const std::string_view line =
            text.substr(pos, complete ? eol - pos : std::string_view::npos);
        std::string payload;
        std::string problem =
            complete ? check_frame(line, payload) : "truncated final record";
        const bool last = !complete || eol + 1 == text.size();
        if (!problem.empty()) {
            if (!last) {
                throw journal_format_error(
                    "corrupt journal record " +
                    std::to_string(load.payloads.size() + 1) + ": " +
                    problem);
            }
            load.dropped_tail = true;
            load.tail_error = std::move(problem);
            return load;
        }
        load.payloads.push_back(std::move(payload));
        pos = eol + 1;
        load.valid_bytes = pos;
    }
    return load;
}

journal_load load_journal(const std::filesystem::path& path)
{
    std::string text;
    if (!read_file(path, text)) {
        return {};
    }
    return parse_records(text);
}

journal_writer::journal_writer(const std::filesystem::path& path,
                               std::size_t valid_bytes)
{
    open(path);
    if (::ftruncate(fd_, static_cast<::off_t>(valid_bytes)) != 0) {
        const int saved = errno;
        ::close(fd_);
        fd_ = -1;
        errno = saved;
        fail_io("cannot truncate journal", path);
    }
}

journal_writer::journal_writer(const std::filesystem::path& path)
{
    open(path);
}

void journal_writer::open(const std::filesystem::path& path)
{
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd_ < 0) {
        fail_io("cannot open journal", path);
    }
}

journal_writer::~journal_writer()
{
    if (fd_ >= 0) {
        ::close(fd_);
    }
}

void journal_writer::append(std::string_view payload)
{
    const std::string line = frame_record(payload);
    const bool boom = fault::tick();
    std::string_view body = line;
    if (boom && fault::torn()) {
        body = body.substr(0, body.size() / 2);
    }
    std::size_t written = 0;
    while (written < body.size()) {
        const ::ssize_t n =
            ::write(fd_, body.data() + written, body.size() - written);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            throw io_error(std::string("journal append failed: ") +
                           std::strerror(errno));
        }
        written += static_cast<std::size_t>(n);
    }
    if (::fsync(fd_) != 0) {
        throw io_error(std::string("journal fsync failed: ") +
                       std::strerror(errno));
    }
    if (boom) {
        fault::crash();
    }
}

} // namespace mwl
