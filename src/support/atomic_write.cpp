#include "support/atomic_write.hpp"

#include "support/fault_inject.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include <fcntl.h>
#include <unistd.h>

namespace mwl {

namespace {

[[noreturn]] void fail(const std::string& what,
                       const std::filesystem::path& path)
{
    throw io_error(what + " " + path.string() + ": " +
                   std::strerror(errno));
}

/// RAII fd so every error path below closes what it opened.
struct fd_guard {
    int fd = -1;
    ~fd_guard()
    {
        if (fd >= 0) {
            ::close(fd);
        }
    }
};

void fsync_directory(const std::filesystem::path& dir)
{
    fd_guard d;
    d.fd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (d.fd < 0) {
        fail("cannot open directory", dir);
    }
    // Some filesystems refuse fsync on directories; a failure here cannot
    // un-happen the rename, so it is not fatal.
    static_cast<void>(::fsync(d.fd));
}

} // namespace

void atomic_write_file(const std::filesystem::path& path,
                       std::string_view content, bool fault_point)
{
    const std::filesystem::path temp = path.string() + ".tmp";
    {
        fd_guard f;
        f.fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (f.fd < 0) {
            fail("cannot create", temp);
        }
        const bool boom = fault_point && fault::tick();
        std::string_view body = content;
        if (boom && fault::torn()) {
            body = body.substr(0, body.size() / 2);
        }
        std::size_t written = 0;
        while (written < body.size()) {
            const ::ssize_t n =
                ::write(f.fd, body.data() + written, body.size() - written);
            if (n < 0) {
                if (errno == EINTR) {
                    continue;
                }
                const int saved = errno;
                static_cast<void>(::unlink(temp.c_str()));
                errno = saved;
                fail("cannot write", temp);
            }
            written += static_cast<std::size_t>(n);
        }
        if (::fsync(f.fd) != 0) {
            const int saved = errno;
            static_cast<void>(::unlink(temp.c_str()));
            errno = saved;
            fail("cannot fsync", temp);
        }
        if (boom) {
            // Crash between writing the temp file and renaming it: the
            // target must still hold its previous content.
            fault::crash();
        }
    }
    if (::rename(temp.c_str(), path.c_str()) != 0) {
        const int saved = errno;
        static_cast<void>(::unlink(temp.c_str()));
        errno = saved;
        fail("cannot rename over", path);
    }
    fsync_directory(path.parent_path());
}

bool read_file(const std::filesystem::path& path, std::string& out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (!std::filesystem::exists(path)) {
            return false;
        }
        fail("cannot open", path);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out = std::move(buffer).str();
    return true;
}

} // namespace mwl
