// Unit tests for src/report: aligned table and CSV rendering.

#include "report/table.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mwl {
namespace {

TEST(Table, AlignedOutputContainsHeaderRuleAndRows)
{
    table t("demo");
    t.header({"col", "value"});
    t.row({"a", "1"});
    t.row({"bb", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("== demo =="), std::string::npos);
    EXPECT_NE(text.find("col"), std::string::npos);
    EXPECT_NE(text.find("---"), std::string::npos);
    EXPECT_NE(text.find("bb"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows)
{
    table t;
    t.header({"a", "b"});
    EXPECT_THROW(t.row({"only-one"}), precondition_error);
}

TEST(Table, EmptyHeaderThrows)
{
    table t;
    EXPECT_THROW(t.header({}), precondition_error);
}

TEST(Table, NumFormatsDoubles)
{
    EXPECT_EQ(table::num(3.14159, 2), "3.14");
    EXPECT_EQ(table::num(3.14159, 4), "3.1416");
    EXPECT_EQ(table::num(42), "42");
}

TEST(Table, CsvEscapesCommas)
{
    table t;
    t.header({"name", "value"});
    t.row({"a,b", "3"});
    std::ostringstream os;
    t.print_csv(os);
    EXPECT_EQ(os.str(), "name,value\n\"a,b\",3\n");
}

TEST(Table, CsvHeaderFirst)
{
    table t;
    t.header({"x"});
    t.row({"1"});
    t.row({"2"});
    std::ostringstream os;
    t.print_csv(os);
    EXPECT_EQ(os.str(), "x\n1\n2\n");
}

} // namespace
} // namespace mwl
