#include "baseline/grouping.hpp"

#include "support/error.hpp"

#include <algorithm>

namespace mwl {

std::optional<op_shape> latency_preserving_shape(
    const sequencing_graph& graph, const hardware_model& model,
    std::span<const op_id> ops, std::span<const int> start,
    std::span<const int> native)
{
    MWL_ASSERT(!ops.empty());
    const op_id first = ops.front();
    const op_kind kind = graph.shape(first).kind();
    const int latency = native[first.value()];

    op_shape join = graph.shape(first);
    for (const op_id o : ops) {
        const op_shape& shape = graph.shape(o);
        if (shape.kind() != kind || native[o.value()] != latency) {
            return std::nullopt;
        }
        join = op_shape::join(join, shape);
    }
    if (model.latency(join) != latency) {
        return std::nullopt; // sharing would slow some member down
    }
    for (std::size_t i = 0; i < ops.size(); ++i) {
        for (std::size_t j = i + 1; j < ops.size(); ++j) {
            const int si = start[ops[i].value()];
            const int sj = start[ops[j].value()];
            const bool disjoint =
                si + latency <= sj || sj + latency <= si;
            if (!disjoint) {
                return std::nullopt;
            }
        }
    }
    return join;
}

datapath make_grouped_datapath(const sequencing_graph& graph,
                               const hardware_model& model,
                               std::span<const std::vector<op_id>> groups,
                               std::span<const int> start)
{
    datapath path;
    path.start.assign(start.begin(), start.end());
    path.instance_of_op.assign(graph.size(), 0);
    for (const std::vector<op_id>& group : groups) {
        MWL_ASSERT(!group.empty());
        op_shape join = graph.shape(group.front());
        for (const op_id o : group) {
            join = op_shape::join(join, graph.shape(o));
        }
        datapath_instance inst;
        inst.shape = join;
        inst.latency = model.latency(join);
        inst.area = model.area(join);
        inst.ops = group;
        std::sort(inst.ops.begin(), inst.ops.end(), [&](op_id a, op_id b) {
            return start[a.value()] < start[b.value()];
        });
        for (const op_id o : inst.ops) {
            path.instance_of_op[o.value()] = path.instances.size();
        }
        path.total_area += inst.area;
        path.instances.push_back(std::move(inst));
    }
    for (const op_id o : graph.all_ops()) {
        path.latency = std::max(path.latency,
                                path.start[o.value()] + path.bound_latency(o));
    }
    return path;
}

} // namespace mwl
