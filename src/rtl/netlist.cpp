#include "rtl/netlist.hpp"

#include "support/error.hpp"

#include <algorithm>
#include <set>

namespace mwl {
namespace {

/// Register index holding each value, from the allocation.
std::vector<std::size_t> register_of_value(
    const std::vector<rtl_register>& registers, std::size_t n_values)
{
    std::vector<std::size_t> where(n_values, 0);
    for (std::size_t r = 0; r < registers.size(); ++r) {
        for (const std::size_t vi : registers[r].values) {
            where[vi] = r;
        }
    }
    return where;
}

} // namespace

rtl_netlist build_rtl(const sequencing_graph& graph,
                      const hardware_model& model, const datapath& path,
                      const rtl_cost_model& cost,
                      bool legacy_output_recycling)
{
    static_cast<void>(model);
    rtl_netlist net;
    net.lifetimes = compute_lifetimes(graph, path, legacy_output_recycling);
    net.registers = left_edge_allocate(net.lifetimes);
    const std::vector<std::size_t> reg_of =
        register_of_value(net.registers, net.lifetimes.size());

    for (const datapath_instance& inst : path.instances) {
        net.fu_area += inst.area;
    }
    for (const rtl_register& reg : net.registers) {
        net.register_area +=
            cost.area_per_register_bit * static_cast<double>(reg.width);
    }

    // Functional-unit input muxes: for each instance and operand port, the
    // distinct sources are the registers holding the port's operands
    // across all operations executed on the instance. Operand order is
    // predecessor-id order; both adder and multiplier are 2-port units
    // (operations with fewer predecessors take primary inputs, each of
    // which is its own source).
    for (const datapath_instance& inst : path.instances) {
        const int n_ports = 2;
        for (int port = 0; port < n_ports; ++port) {
            std::set<std::size_t> sources; // register ids
            int primary_inputs = 0;
            for (const op_id o : inst.ops) {
                const auto preds = graph.predecessors(o);
                if (static_cast<std::size_t>(port) < preds.size()) {
                    sources.insert(
                        reg_of[preds[static_cast<std::size_t>(port)]
                                   .value()]);
                } else {
                    ++primary_inputs; // fed from outside the datapath
                }
            }
            // Every external operand arrives on its own input wire, so
            // each one is a distinct mux source.
            const int fan_in =
                static_cast<int>(sources.size()) + primary_inputs;
            if (fan_in >= 1) {
                rtl_mux mux;
                mux.feeds_fu = true;
                mux.fan_in = fan_in;
                mux.width = operand_width(inst.shape, port);
                net.muxes.push_back(mux);
            }
        }
    }

    // Register input muxes: distinct producing instances per register.
    for (const rtl_register& reg : net.registers) {
        std::set<std::size_t> sources;
        for (const std::size_t vi : reg.values) {
            sources.insert(
                path.instance_of_op[net.lifetimes[vi].producer.value()]);
        }
        rtl_mux mux;
        mux.feeds_fu = false;
        mux.fan_in = static_cast<int>(sources.size());
        mux.width = reg.width;
        net.muxes.push_back(mux);
    }

    for (const rtl_mux& mux : net.muxes) {
        MWL_ASSERT(mux.fan_in >= 1);
        net.mux_area += cost.area_per_mux_input_bit *
                        static_cast<double>(mux.width) *
                        static_cast<double>(mux.fan_in - 1);
    }
    return net;
}

} // namespace mwl
