#include "tgff/corpus.hpp"

#include "dfg/analysis.hpp"
#include "support/error.hpp"

#include <cmath>
#include <stdexcept>

namespace mwl {

std::vector<corpus_entry> make_corpus(std::size_t n_ops, std::size_t count,
                                      const hardware_model& model,
                                      std::uint64_t base_seed,
                                      const tgff_options& prototype)
{
    tgff_options options = prototype;
    options.n_ops = n_ops;

    std::vector<corpus_entry> corpus;
    corpus.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        // Seed derivation keeps entries independent of `count`: asking for
        // more graphs later extends the corpus without changing a prefix.
        rng random(base_seed * 0x100000001b3ULL + n_ops * 0x9e3779b9ULL + i);
        corpus_entry entry{generate_tgff(options, random), 0};
        entry.lambda_min = min_latency(entry.graph, model);
        corpus.push_back(std::move(entry));
    }
    return corpus;
}

int relaxed_lambda(int lambda_min, double slack)
{
    require(slack >= 0.0, "slack must be non-negative");
    return static_cast<int>(
        std::ceil(static_cast<double>(lambda_min) * (1.0 + slack)));
}

corpus_spec corpus_spec::parse(const std::vector<std::string>& tokens)
{
    corpus_spec spec;
    for (const std::string& token : tokens) {
        const std::size_t eq = token.find('=');
        require(eq != std::string::npos && eq > 0 && eq + 1 < token.size(),
                "corpus spec tokens must look like key=value, got '" + token +
                    "'");
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);
        // stoul/stoull wrap negatives silently ("-1" -> 1.8e19), which
        // would sail past the >= 1 checks below; reject the sign up front.
        require(value[0] != '-',
                "corpus spec value must be non-negative in '" + token + "'");
        try {
            if (key == "ops") {
                spec.n_ops = std::stoul(value);
            } else if (key == "count") {
                spec.count = std::stoul(value);
            } else if (key == "seed") {
                spec.seed = std::stoull(value);
            } else if (key == "mul-fraction") {
                spec.prototype.mul_fraction = std::stod(value);
            } else if (key == "min-width") {
                spec.prototype.min_width = std::stoi(value);
            } else if (key == "max-width") {
                spec.prototype.max_width = std::stoi(value);
            } else {
                require(false, "unknown corpus spec key '" + key + "'");
            }
        } catch (const std::invalid_argument&) {
            require(false, "bad corpus spec value in '" + token + "'");
        } catch (const std::out_of_range&) {
            require(false, "corpus spec value out of range in '" + token +
                               "'");
        }
    }
    require(spec.n_ops >= 1, "corpus spec needs ops >= 1");
    require(spec.count >= 1, "corpus spec needs count >= 1");
    return spec;
}

std::vector<corpus_entry> make_corpus(const corpus_spec& spec,
                                      const hardware_model& model)
{
    return make_corpus(spec.n_ops, spec.count, model, spec.seed,
                       spec.prototype);
}

} // namespace mwl
