// Unit tests for src/sched: minimum scheduling set (paper §2.2), classic
// list scheduling (Eqn. 2), incomplete-wordlength scheduling (Eqn. 3') and
// force-directed scheduling.

#include "dfg/analysis.hpp"
#include "model/hardware_model.hpp"
#include "sched/force_directed.hpp"
#include "sched/incomplete_scheduler.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/priorities.hpp"
#include "sched/scheduling_set.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "tgff/generator.hpp"
#include "wcg/wcg.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace mwl {
namespace {

sequencing_graph fig2_graph()
{
    sequencing_graph g;
    const op_id o1 = g.add_operation(op_shape::multiplier(12, 8), "o1");
    const op_id o2 = g.add_operation(op_shape::multiplier(20, 18), "o2");
    const op_id o3 = g.add_operation(op_shape::adder(12), "o3");
    g.add_dependency(o1, o3);
    g.add_dependency(o2, o3);
    return g;
}

/// Checks start times against data dependencies under `latencies`.
void expect_precedence_ok(const sequencing_graph& g,
                          const std::vector<int>& lat,
                          const std::vector<int>& start)
{
    for (const op_id o : g.all_ops()) {
        EXPECT_GE(start[o.value()], 0);
        for (const op_id s : g.successors(o)) {
            EXPECT_LE(start[o.value()] + lat[o.value()], start[s.value()]);
        }
    }
}

// ----------------------------------------------------- scheduling set --

TEST(SchedulingSet, Fig2NeedsOneMultiplierAndOneAdder)
{
    const sequencing_graph g = fig2_graph();
    const sonic_model model;
    const wordlength_compatibility_graph wcg(g, model);
    const scheduling_set_result cover = min_scheduling_set(wcg);
    EXPECT_TRUE(cover.proven_minimum);
    ASSERT_EQ(cover.members.size(), 2u);
    // The 20x18 multiplier covers both multiplications.
    std::vector<op_shape> shapes;
    for (const res_id r : cover.members) {
        shapes.push_back(wcg.resource(r));
    }
    EXPECT_TRUE(std::find(shapes.begin(), shapes.end(),
                          op_shape::multiplier(20, 18)) != shapes.end());
    EXPECT_TRUE(std::find(shapes.begin(), shapes.end(),
                          op_shape::adder(12)) != shapes.end());
}

TEST(SchedulingSet, PaperExampleEdgeDeletionForcesTwoMultipliers)
{
    // §2.2: after deleting {o1, '20x18 mult'} the graph cannot be covered
    // by one multiplier type any more.
    const sequencing_graph g = fig2_graph();
    const sonic_model model;
    wordlength_compatibility_graph wcg(g, model);
    res_id big = res_id::invalid();
    for (const res_id r : wcg.all_resources()) {
        if (wcg.resource(r) == op_shape::multiplier(20, 18)) {
            big = r;
        }
    }
    wcg.delete_edge(op_id(0), big);
    const scheduling_set_result cover = min_scheduling_set(wcg);
    EXPECT_TRUE(cover.proven_minimum);
    EXPECT_EQ(cover.members.size(), 3u); // two mult types + adder
}

TEST(SchedulingSet, EveryOpCoveredByResult)
{
    rng random(99);
    for (int trial = 0; trial < 20; ++trial) {
        tgff_options opts;
        opts.n_ops = 12;
        const sequencing_graph g = generate_tgff(opts, random);
        const sonic_model model;
        const wordlength_compatibility_graph wcg(g, model);
        const scheduling_set_result cover = min_scheduling_set(wcg);
        for (const op_id o : g.all_ops()) {
            bool covered = false;
            for (const res_id s : cover.members) {
                covered = covered || wcg.compatible(o, s);
            }
            EXPECT_TRUE(covered) << "trial " << trial << " op " << o.value();
        }
    }
}

TEST(SchedulingSet, MinimumIsNotLargerThanDistinctKindCountWhenJoinsCover)
{
    // All multiplications coverable by the global join -> one member per
    // kind suffices and the exact solver must find it.
    sequencing_graph g;
    g.add_operation(op_shape::multiplier(4, 4));
    g.add_operation(op_shape::multiplier(8, 6));
    g.add_operation(op_shape::multiplier(10, 2));
    const sonic_model model;
    const wordlength_compatibility_graph wcg(g, model);
    const scheduling_set_result cover = min_scheduling_set(wcg);
    EXPECT_TRUE(cover.proven_minimum);
    EXPECT_EQ(cover.members.size(), 1u);
}

TEST(SchedulingSet, EmptyGraphYieldsEmptySet)
{
    sequencing_graph g;
    const sonic_model model;
    const wordlength_compatibility_graph wcg(g, model);
    EXPECT_TRUE(min_scheduling_set(wcg).members.empty());
}

// ---------------------------------------------------------- priorities --

TEST(Priorities, SinkHasItsOwnLatency)
{
    const sequencing_graph g = fig2_graph();
    const std::vector<int> lat{3, 5, 2};
    const std::vector<int> prio = critical_path_priorities(g, lat);
    EXPECT_EQ(prio[2], 2);     // sink
    EXPECT_EQ(prio[0], 3 + 2); // through o3
    EXPECT_EQ(prio[1], 5 + 2);
}

TEST(Priorities, ChainAccumulates)
{
    sequencing_graph g;
    op_id prev = g.add_operation(op_shape::adder(4));
    for (int i = 0; i < 3; ++i) {
        const op_id next = g.add_operation(op_shape::adder(4));
        g.add_dependency(prev, next);
        prev = next;
    }
    const std::vector<int> lat{1, 2, 3, 4};
    const std::vector<int> prio = critical_path_priorities(g, lat);
    EXPECT_EQ(prio[0], 10);
    EXPECT_EQ(prio[3], 4);
}

// ------------------------------------------------------ list scheduler --

TEST(ListSchedule, UnlimitedResourcesReproduceAsap)
{
    const sequencing_graph g = fig2_graph();
    const std::vector<int> lat{3, 5, 2};
    const list_schedule_result res = list_schedule(g, lat, type_limits{});
    EXPECT_EQ(res.start, asap_start_times(g, lat));
    EXPECT_EQ(res.length, critical_path_length(g, lat));
}

TEST(ListSchedule, SingleMultiplierSerialisesMultiplications)
{
    const sequencing_graph g = fig2_graph();
    const std::vector<int> lat{3, 5, 2};
    type_limits limits;
    limits.mul = 1;
    const list_schedule_result res = list_schedule(g, lat, limits);
    expect_precedence_ok(g, lat, res.start);
    // o1 and o2 must not overlap.
    const bool disjoint = res.start[0] + lat[0] <= res.start[1] ||
                          res.start[1] + lat[1] <= res.start[0];
    EXPECT_TRUE(disjoint);
    EXPECT_GE(res.length, 3 + 5); // serialised mults then the add
}

TEST(ListSchedule, RespectsPerStepTypeLimit)
{
    // 4 independent adders, limit 2 -> no step may run more than 2.
    sequencing_graph g;
    for (int i = 0; i < 4; ++i) {
        g.add_operation(op_shape::adder(8));
    }
    const std::vector<int> lat(4, 2);
    type_limits limits;
    limits.add = 2;
    const list_schedule_result res = list_schedule(g, lat, limits);
    for (int t = 0; t < res.length; ++t) {
        int running = 0;
        for (std::size_t o = 0; o < 4; ++o) {
            if (res.start[o] <= t && t < res.start[o] + 2) {
                ++running;
            }
        }
        EXPECT_LE(running, 2);
    }
    EXPECT_EQ(res.length, 4); // two waves of two
}

TEST(ListSchedule, PriorityPrefersCriticalPath)
{
    // Two ready ops, one on a long chain: with limit 1 the chain head must
    // go first.
    sequencing_graph g;
    const op_id chain_head = g.add_operation(op_shape::adder(8), "head");
    const op_id chain_tail = g.add_operation(op_shape::adder(8), "tail");
    const op_id loner = g.add_operation(op_shape::adder(8), "loner");
    static_cast<void>(loner);
    g.add_dependency(chain_head, chain_tail);
    const std::vector<int> lat(3, 2);
    type_limits limits;
    limits.add = 1;
    const list_schedule_result res = list_schedule(g, lat, limits);
    EXPECT_EQ(res.start[chain_head.value()], 0);
    EXPECT_EQ(res.length, 6);
}

TEST(ListSchedule, InvalidLimitsThrow)
{
    const sequencing_graph g = fig2_graph();
    const std::vector<int> lat{3, 5, 2};
    type_limits limits;
    limits.mul = 0;
    EXPECT_THROW(list_schedule(g, lat, limits), precondition_error);
}

TEST(ListSchedule, EmptyGraph)
{
    sequencing_graph g;
    const list_schedule_result res = list_schedule(g, {}, type_limits{});
    EXPECT_EQ(res.length, 0);
    EXPECT_TRUE(res.start.empty());
}

// ------------------------------------------- incomplete-WL scheduler --

TEST(IncompleteSchedule, Fig2SerialisesSharedMultiplierMember)
{
    const sequencing_graph g = fig2_graph();
    const sonic_model model;
    const wordlength_compatibility_graph wcg(g, model);
    const incomplete_schedule_result res = schedule_incomplete(wcg);
    const std::vector<int> upper = wcg.latency_upper_bounds();
    expect_precedence_ok(g, upper, res.start);
    // Both mults map onto the single 20x18 member -> serialised at the
    // upper-bound latency (5 each).
    const bool disjoint =
        res.start[0] + upper[0] <= res.start[1] ||
        res.start[1] + upper[1] <= res.start[0];
    EXPECT_TRUE(disjoint);
    EXPECT_EQ(res.scheduling_set.size(), 2u);
}

TEST(IncompleteSchedule, CapacityTwoAllowsParallelism)
{
    const sequencing_graph g = fig2_graph();
    const sonic_model model;
    const wordlength_compatibility_graph wcg(g, model);
    const incomplete_schedule_result res = schedule_incomplete(wcg, 2);
    // With two instances per member both mults start immediately.
    EXPECT_EQ(res.start[0], 0);
    EXPECT_EQ(res.start[1], 0);
}

TEST(IncompleteSchedule, FractionalSharingConstraintEnforced)
{
    // Verify Eqn. 3' accounting on every step of a random batch: for each
    // member s, sum over running ops of 1/|S(o)| <= capacity.
    rng random(123);
    for (int trial = 0; trial < 10; ++trial) {
        tgff_options opts;
        opts.n_ops = 10;
        const sequencing_graph g = generate_tgff(opts, random);
        const sonic_model model;
        const wordlength_compatibility_graph wcg(g, model);
        const incomplete_schedule_result res = schedule_incomplete(wcg);
        const std::vector<int> upper = wcg.latency_upper_bounds();
        expect_precedence_ok(g, upper, res.start);

        for (const res_id s : res.scheduling_set) {
            for (int t = 0; t < res.length; ++t) {
                double usage = 0.0;
                for (const op_id o : g.all_ops()) {
                    if (!wcg.compatible(o, s)) {
                        continue;
                    }
                    if (res.start[o.value()] <= t &&
                        t < res.start[o.value()] + upper[o.value()]) {
                        int s_of_o = 0;
                        for (const res_id m : res.scheduling_set) {
                            s_of_o += wcg.compatible(o, m) ? 1 : 0;
                        }
                        usage += 1.0 / s_of_o;
                    }
                }
                EXPECT_LE(usage, 1.0 + 1e-9)
                    << "member " << s.value() << " step " << t;
            }
        }
    }
}

TEST(IncompleteSchedule, EmptyGraph)
{
    sequencing_graph g;
    const sonic_model model;
    const wordlength_compatibility_graph wcg(g, model);
    const incomplete_schedule_result res = schedule_incomplete(wcg);
    EXPECT_EQ(res.length, 0);
}

TEST(IncompleteSchedule, InvalidCapacityThrows)
{
    const sequencing_graph g = fig2_graph();
    const sonic_model model;
    const wordlength_compatibility_graph wcg(g, model);
    EXPECT_THROW(schedule_incomplete(wcg, 0), precondition_error);
}

TEST(IncompleteSchedule, DeterministicAcrossRuns)
{
    const sequencing_graph g = fig2_graph();
    const sonic_model model;
    const wordlength_compatibility_graph wcg(g, model);
    const incomplete_schedule_result a = schedule_incomplete(wcg);
    const incomplete_schedule_result b = schedule_incomplete(wcg);
    EXPECT_EQ(a.start, b.start);
    EXPECT_EQ(a.scheduling_set, b.scheduling_set);
}

// ------------------------------------------------------ force-directed --

TEST(ForceDirected, MeetsHorizonAndPrecedence)
{
    const sequencing_graph g = fig2_graph();
    const sonic_model model;
    const std::vector<int> native = native_latencies(g, model);
    const int cp = critical_path_length(g, native);
    const std::vector<int> start = force_directed_schedule(g, native, cp + 2);
    expect_precedence_ok(g, native, start);
    EXPECT_LE(schedule_length(g, native, start), cp + 2);
}

TEST(ForceDirected, HorizonBelowCriticalPathThrows)
{
    const sequencing_graph g = fig2_graph();
    const sonic_model model;
    const std::vector<int> native = native_latencies(g, model);
    const int cp = critical_path_length(g, native);
    EXPECT_THROW(force_directed_schedule(g, native, cp - 1),
                 infeasible_error);
}

TEST(ForceDirected, SlackSpreadsIndependentOps)
{
    // 3 independent adders, horizon 6: balancing must avoid stacking all
    // three at t=0 (expected occupancy flattens to one per 2-cycle slot).
    sequencing_graph g;
    for (int i = 0; i < 3; ++i) {
        g.add_operation(op_shape::adder(8));
    }
    const std::vector<int> lat(3, 2);
    const std::vector<int> start = force_directed_schedule(g, lat, 6);
    std::vector<int> sorted = start;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<int>{0, 2, 4}));
}

TEST(ForceDirected, ZeroSlackReproducesCriticalSchedule)
{
    const sequencing_graph g = fig2_graph();
    const sonic_model model;
    const std::vector<int> native = native_latencies(g, model);
    const int cp = critical_path_length(g, native);
    const std::vector<int> start = force_directed_schedule(g, native, cp);
    EXPECT_EQ(schedule_length(g, native, start), cp);
}

TEST(ForceDirected, RandomGraphsStayFeasible)
{
    rng random(321);
    for (int trial = 0; trial < 10; ++trial) {
        tgff_options opts;
        opts.n_ops = 8;
        const sequencing_graph g = generate_tgff(opts, random);
        const sonic_model model;
        const std::vector<int> native = native_latencies(g, model);
        const int cp = critical_path_length(g, native);
        const int horizon = cp + trial % 4;
        const std::vector<int> start =
            force_directed_schedule(g, native, horizon);
        expect_precedence_ok(g, native, start);
        EXPECT_LE(schedule_length(g, native, start), horizon);
    }
}

TEST(ForceDirected, EmptyGraph)
{
    sequencing_graph g;
    EXPECT_TRUE(force_directed_schedule(g, {}, 0).empty());
}

} // namespace
} // namespace mwl
