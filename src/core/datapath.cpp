#include "core/datapath.hpp"

#include <sstream>

namespace mwl {

std::string describe(const datapath& path, const sequencing_graph& graph)
{
    std::ostringstream out;
    out << "datapath: area " << path.total_area << ", latency "
        << path.latency << " cycles, " << path.instances.size()
        << " resource(s)\n";
    for (std::size_t i = 0; i < path.instances.size(); ++i) {
        const datapath_instance& inst = path.instances[i];
        out << "  [" << i << "] " << inst.shape.to_string() << " (area "
            << inst.area << ", latency " << inst.latency << "):";
        for (const op_id o : inst.ops) {
            const operation& op = graph.op(o);
            out << ' ';
            if (!op.name.empty()) {
                out << op.name;
            } else {
                out << 'o' << o.value();
            }
            const int s = path.start[o.value()];
            out << "@[" << s << ',' << s + inst.latency << ')';
        }
        out << '\n';
    }
    return out.str();
}

} // namespace mwl
