// Small descriptive-statistics helpers used by the benchmark harnesses to
// aggregate per-graph results the way the paper does (per-point means over a
// corpus of random designs).

#ifndef MWL_SUPPORT_STATS_HPP
#define MWL_SUPPORT_STATS_HPP

#include <cstddef>
#include <span>

namespace mwl {

/// Arithmetic mean; 0 for an empty sample.
[[nodiscard]] double mean(std::span<const double> sample);

/// Sample standard deviation (n-1 denominator); 0 for samples of size < 2.
[[nodiscard]] double stddev(std::span<const double> sample);

/// Geometric mean; requires every element > 0. 0 for an empty sample.
[[nodiscard]] double geomean(std::span<const double> sample);

/// Linear-interpolated percentile, p in [0, 100]. 0 for an empty sample.
[[nodiscard]] double percentile(std::span<const double> sample, double p);

/// Smallest / largest element; 0 for an empty sample.
[[nodiscard]] double min_of(std::span<const double> sample);
[[nodiscard]] double max_of(std::span<const double> sample);

} // namespace mwl

#endif // MWL_SUPPORT_STATS_HPP
