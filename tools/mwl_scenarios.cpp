// mwl_scenarios -- named DSP scenario corpus driver and golden
// allocation-quality gate.
//
// The scenario registry (src/scenarios/) holds deterministic named
// multiple-wordlength DSP kernels; this tool measures every allocator's
// quality on them (core/quality.hpp) and manages the checked-in golden
// reports under tests/goldens/:
//
//   mwl_scenarios --list                   catalogue: ops, edges, lambda_min
//   mwl_scenarios --emit                   print quality reports as JSON
//   mwl_scenarios --update-goldens DIR     write/refresh <name>.json goldens
//   mwl_scenarios --check DIR              recompute under each golden's own
//                                          recorded options and diff; prints
//                                          the per-metric drift table and
//                                          exits 1 on any drift
//   mwl_scenarios --verify                 differential value check: every
//                                          allocator's RTL == bit-true
//                                          reference on random signed inputs
//
// Golden policy: `--check` never writes; refresh goldens only via
// `--update-goldens` in a commit whose message justifies the quality
// change (see README "Scenario corpus & quality goldens").
//
// Exit codes: 0 ok, 1 drift or counterexample, 2 usage/malformed input.

#include "core/quality.hpp"
#include "dfg/analysis.hpp"
#include "model/hardware_model.hpp"
#include "scenarios/scenarios.hpp"
#include "tgff/corpus.hpp"
#include "verify/differential.hpp"

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace {

using namespace mwl;

[[noreturn]] void usage(int code)
{
    std::cout <<
        "usage: mwl_scenarios MODE [options]\n"
        "modes (exactly one):\n"
        "  --list                catalogue of named scenarios\n"
        "  --emit                print quality reports as JSON to stdout\n"
        "  --update-goldens DIR  write one <scenario>.json golden per entry\n"
        "  --check DIR           recompute + diff against goldens; exit 1\n"
        "                        with a per-metric drift table on any drift\n"
        "  --verify              differential value check of every\n"
        "                        allocator's RTL on every scenario\n"
        "options:\n"
        "  --scenario NAME   restrict to NAME (repeatable)\n"
        "  --slack PCT       latency relaxation over lambda_min [25]\n"
        "  --ilp-max-ops N   ILP reference on scenarios with <= N ops [8]\n"
        "  --tol PCT         relative area tolerance for --check [0]\n"
        "  --latency-tol N   absolute latency tolerance for --check [0]\n"
        "  --count-tol N     absolute FU/register/mux count tolerance [0]\n"
        "  --diff-out FILE   also write the drift table to FILE\n"
        "  --inputs N        input vectors per allocator for --verify [16]\n";
    std::exit(code);
}

std::vector<scenario> selected_scenarios(
    const std::vector<std::string>& names)
{
    if (names.empty()) {
        return all_scenarios();
    }
    std::vector<scenario> out;
    out.reserve(names.size());
    for (const std::string& name : names) {
        out.push_back(make_scenario(name));
    }
    return out;
}

} // namespace

int main(int argc, char** argv)
{
    std::string mode;
    std::string goldens_dir;
    std::string diff_out;
    std::vector<std::string> names;
    quality_options quality;
    drift_tolerances tolerances;
    std::size_t verify_inputs = 16;

    const auto set_mode = [&](const char* m) {
        if (!mode.empty()) {
            std::cerr << "mwl_scenarios: modes " << mode << " and " << m
                      << " are mutually exclusive\n";
            usage(2);
        }
        mode = m;
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "mwl_scenarios: missing value for " << arg
                          << '\n';
                usage(2);
            }
            return argv[++i];
        };
        const auto count_value = [&]() -> std::size_t {
            const std::string text = value();
            try {
                if (!text.empty() && text[0] == '-') {
                    throw std::invalid_argument(text);
                }
                return std::stoul(text);
            } catch (const std::exception&) {
                std::cerr << "mwl_scenarios: bad numeric value '" << text
                          << "' for " << arg << '\n';
                usage(2);
            }
        };
        try {
            if (arg == "--list" || arg == "--emit" || arg == "--verify") {
                set_mode(arg.c_str() + 2);
            } else if (arg == "--update-goldens") {
                set_mode("update");
                goldens_dir = value();
            } else if (arg == "--check") {
                set_mode("check");
                goldens_dir = value();
            } else if (arg == "--scenario") {
                names.push_back(value());
            } else if (arg == "--slack") {
                quality.slack = std::stod(value()) / 100.0;
            } else if (arg == "--ilp-max-ops") {
                quality.ilp_max_ops = count_value();
            } else if (arg == "--tol") {
                tolerances.area_rel = std::stod(value()) / 100.0;
            } else if (arg == "--latency-tol") {
                tolerances.latency_abs = static_cast<int>(count_value());
            } else if (arg == "--count-tol") {
                tolerances.count_abs = static_cast<int>(count_value());
            } else if (arg == "--diff-out") {
                diff_out = value();
            } else if (arg == "--inputs") {
                verify_inputs = count_value();
            } else if (arg == "--help" || arg == "-h") {
                usage(0);
            } else {
                std::cerr << "mwl_scenarios: unknown option " << arg << '\n';
                usage(2);
            }
        } catch (const std::exception&) {
            // invalid_argument and out_of_range alike: a typo must be a
            // diagnostic + exit 2, never an uncaught abort.
            std::cerr << "mwl_scenarios: bad value for " << arg << '\n';
            usage(2);
        }
    }
    if (mode.empty()) {
        std::cerr << "mwl_scenarios: pick a mode (--list, --emit, "
                     "--update-goldens, --check, --verify)\n";
        usage(2);
    }
    if (quality.slack < 0.0) {
        std::cerr << "mwl_scenarios: slack must be non-negative\n";
        usage(2);
    }
    if (tolerances.area_rel < 0.0) {
        std::cerr << "mwl_scenarios: tolerance must be non-negative\n";
        usage(2);
    }
    if (mode == "verify" && verify_inputs < 1) {
        std::cerr << "mwl_scenarios: --inputs must be >= 1\n";
        usage(2);
    }

    // Argument-shaped failures keep the usage exit code: an unknown
    // --scenario name is a bad argument, not a drift or a counterexample.
    std::vector<scenario> scenarios;
    try {
        scenarios = selected_scenarios(names);
    } catch (const precondition_error& e) {
        std::cerr << "mwl_scenarios: " << e.what() << '\n';
        return 2;
    }

    try {
        const sonic_model model;

        if (mode == "list") {
            table t("named DSP scenarios");
            t.header({"scenario", "ops", "edges", "lambda_min",
                      "description"});
            for (const scenario& s : scenarios) {
                t.row({s.name, table::num(static_cast<int>(s.graph.size())),
                       table::num(static_cast<int>(s.graph.edge_count())),
                       table::num(min_latency(s.graph, model)),
                       s.description});
            }
            t.print(std::cout);
            return 0;
        }

        if (mode == "emit" || mode == "update") {
            for (const scenario& s : scenarios) {
                const quality_report report = measure_quality_report(
                    s.graph, s.name, model, quality);
                if (mode == "emit") {
                    std::cout << to_json(report);
                    continue;
                }
                std::filesystem::create_directories(goldens_dir);
                const std::filesystem::path path =
                    std::filesystem::path(goldens_dir) / (s.name + ".json");
                std::ofstream out(path);
                if (!out) {
                    std::cerr << "mwl_scenarios: cannot write " << path
                              << '\n';
                    return 1;
                }
                out << to_json(report);
                std::cout << "golden written: " << path.string() << '\n';
            }
            return 0;
        }

        if (mode == "check") {
            std::vector<metric_drift> drifts;
            std::size_t checked = 0;
            for (const scenario& s : scenarios) {
                const std::filesystem::path path =
                    std::filesystem::path(goldens_dir) / (s.name + ".json");
                std::ifstream in(path);
                if (!in) {
                    drifts.push_back({s.name, "-", "golden file " +
                                      path.string() + " (missing)",
                                      1.0, 0.0, 0.0});
                    continue;
                }
                std::ostringstream text;
                text << in.rdbuf();
                quality_report golden;
                try {
                    golden = parse_quality_report(text.str());
                } catch (const quality_format_error& e) {
                    // A corrupted golden is malformed input (exit 2), not
                    // an allocation-quality regression (exit 1).
                    std::cerr << "mwl_scenarios: " << path.string() << ": "
                              << e.what() << '\n';
                    return 2;
                }
                // Recompute under the golden's own recorded protocol, so a
                // --slack passed here cannot fake agreement or drift.
                const quality_report current = measure_quality_report(
                    s.graph, s.name, model, golden.options);
                const auto delta = diff_quality(golden, current, tolerances);
                drifts.insert(drifts.end(), delta.begin(), delta.end());
                ++checked;
            }
            std::cout << "mwl_scenarios: checked " << checked << '/'
                      << scenarios.size() << " goldens in " << goldens_dir
                      << '\n';
            if (drifts.empty()) {
                std::cout << "OK: no allocation-quality drift\n";
                return 0;
            }
            const table t = render_drift_table(drifts);
            t.print(std::cout);
            if (!diff_out.empty()) {
                std::ofstream out(diff_out);
                if (out) {
                    t.print(out);
                    out << drifts.size() << " drifted metric(s)\n";
                }
            }
            std::cout << drifts.size()
                      << " drifted metric(s); if intentional, refresh with "
                         "mwl_scenarios --update-goldens " << goldens_dir
                      << '\n' << "FAIL\n";
            return 1;
        }

        // mode == "verify": every scenario through the differential
        // harness -- reference == datapath sim == RTL interpretation for
        // every allocator, ILP included on the small kernels.
        verify_options options;
        options.inputs_per_graph = verify_inputs;
        options.slack = quality.slack;
        options.ilp_max_ops = quality.ilp_max_ops;
        verify_report report;
        for (std::size_t i = 0; i < scenarios.size(); ++i) {
            const scenario& s = scenarios[i];
            const int lambda = relaxed_lambda(min_latency(s.graph, model),
                                              options.slack);
            report.merge(verify_graph(s.graph, s.name, model, lambda,
                                      options,
                                      verify_input_seed(options.seed, i)));
        }
        std::cout << "mwl_scenarios: " << report.graphs << " scenarios, "
                  << report.allocations << " allocations, "
                  << report.value_checks << " value checks\n";
        if (!report.ok()) {
            for (const counterexample& cx : report.counterexamples) {
                std::cout << "  " << cx.to_string() << '\n';
            }
            std::cout << "FAIL\n";
            return 1;
        }
        std::cout << "OK: reference == datapath sim == RTL interpretation\n";
        return 0;
    } catch (const error& e) {
        std::cerr << "mwl_scenarios: " << e.what() << '\n';
        return 1;
    }
}
