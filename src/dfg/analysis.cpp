#include "dfg/analysis.hpp"

#include "support/error.hpp"

#include <algorithm>

namespace mwl {
namespace {

void check_latencies(const sequencing_graph& graph,
                     std::span<const int> latencies)
{
    require(latencies.size() == graph.size(),
            "latency vector size must equal the number of operations");
    for (const int latency : latencies) {
        require(latency >= 1, "operation latencies must be >= 1");
    }
}

} // namespace

std::vector<int> native_latencies(const sequencing_graph& graph,
                                  const hardware_model& model)
{
    std::vector<int> latencies;
    latencies.reserve(graph.size());
    for (const op_id o : graph.all_ops()) {
        latencies.push_back(model.latency(graph.shape(o)));
    }
    return latencies;
}

std::vector<int> asap_start_times(const sequencing_graph& graph,
                                  std::span<const int> latencies)
{
    check_latencies(graph, latencies);
    std::vector<int> start(graph.size(), 0);
    for (const op_id o : graph.topological_order()) {
        int earliest = 0;
        for (const op_id p : graph.predecessors(o)) {
            earliest = std::max(earliest,
                                start[p.value()] + latencies[p.value()]);
        }
        start[o.value()] = earliest;
    }
    return start;
}

std::vector<int> alap_start_times(const sequencing_graph& graph,
                                  std::span<const int> latencies, int horizon)
{
    check_latencies(graph, latencies);
    require_feasible(horizon >= critical_path_length(graph, latencies),
                     "ALAP horizon below the critical-path length");

    std::vector<int> start(graph.size(), 0);
    const std::vector<op_id> order = graph.topological_order();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const op_id o = *it;
        int latest = horizon - latencies[o.value()];
        for (const op_id s : graph.successors(o)) {
            latest = std::min(latest, start[s.value()] - latencies[o.value()]);
        }
        start[o.value()] = latest;
    }
    return start;
}

int schedule_length(const sequencing_graph& graph,
                    std::span<const int> latencies,
                    std::span<const int> start_times)
{
    check_latencies(graph, latencies);
    require(start_times.size() == graph.size(),
            "start-time vector size must equal the number of operations");
    int length = 0;
    for (std::size_t i = 0; i < graph.size(); ++i) {
        length = std::max(length, start_times[i] + latencies[i]);
    }
    return length;
}

int critical_path_length(const sequencing_graph& graph,
                         std::span<const int> latencies)
{
    const std::vector<int> start = asap_start_times(graph, latencies);
    return schedule_length(graph, latencies, start);
}

int min_latency(const sequencing_graph& graph, const hardware_model& model)
{
    const std::vector<int> latencies = native_latencies(graph, model);
    return critical_path_length(graph, latencies);
}

} // namespace mwl
