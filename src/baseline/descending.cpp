#include "baseline/descending.hpp"

#include "baseline/grouping.hpp"
#include "dfg/analysis.hpp"
#include "sched/force_directed.hpp"

#include <algorithm>
#include <vector>

namespace mwl {

datapath descending_allocate(const sequencing_graph& graph,
                             const hardware_model& model, int lambda)
{
    if (graph.empty()) {
        return {};
    }

    const std::vector<int> native = native_latencies(graph, model);
    const std::vector<int> start =
        force_directed_schedule(graph, native, lambda);

    std::vector<op_id> order = graph.all_ops();
    std::sort(order.begin(), order.end(), [&](op_id a, op_id b) {
        const double aa = model.area(graph.shape(a));
        const double ab = model.area(graph.shape(b));
        if (aa != ab) {
            return aa > ab; // descending wordlength (area as proxy)
        }
        return a < b;
    });

    std::vector<std::vector<op_id>> groups;
    for (const op_id o : order) {
        bool placed = false;
        for (std::vector<op_id>& group : groups) {
            group.push_back(o);
            if (latency_preserving_shape(graph, model, group, start,
                                         native)) {
                placed = true;
                break;
            }
            group.pop_back();
        }
        if (!placed) {
            groups.push_back({o});
        }
    }

    return make_grouped_datapath(graph, model, groups, start);
}

} // namespace mwl
