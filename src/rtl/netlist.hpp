// RTL netlist construction and the extended area model.
//
// Turns an allocated datapath into the structural inventory a register-
// transfer implementation needs: functional units (one per datapath
// instance), registers (left-edge allocated), and the multiplexers in
// front of every shared functional-unit port and every multi-source
// register. The extended area model then prices the whole design, which
// the ext_area_model bench uses to check that the paper's conclusions
// survive register/mux overheads the original cost function ignores.

#ifndef MWL_RTL_NETLIST_HPP
#define MWL_RTL_NETLIST_HPP

#include "model/hardware_model.hpp"
#include "rtl/lifetimes.hpp"

#include <vector>

namespace mwl {

/// Area coefficients for the storage/steering fabric (LUT-ish units,
/// consistent with the functional-unit model: 1 unit ~ 1 bit-cell).
struct rtl_cost_model {
    double area_per_register_bit = 0.5;
    /// Per extra mux input, per bit (a 1-input "mux" is a wire).
    double area_per_mux_input_bit = 0.25;
};

/// One multiplexer: `fan_in` sources steering `width` bits.
struct rtl_mux {
    int width = 1;
    int fan_in = 1;
    /// True if it feeds a functional-unit operand port, false if it feeds
    /// a register's data input.
    bool feeds_fu = true;
};

struct rtl_netlist {
    std::vector<value_lifetime> lifetimes;
    std::vector<rtl_register> registers;
    std::vector<rtl_mux> muxes;

    double fu_area = 0.0;       ///< sum over datapath instances
    double register_area = 0.0;
    double mux_area = 0.0;

    [[nodiscard]] double total_area() const
    {
        return fu_area + register_area + mux_area;
    }
};

/// Build the netlist for an allocated datapath. `legacy_output_recycling`
/// is forwarded to `compute_lifetimes` (harness self-tests only).
[[nodiscard]] rtl_netlist build_rtl(const sequencing_graph& graph,
                                    const hardware_model& model,
                                    const datapath& path,
                                    const rtl_cost_model& cost = {},
                                    bool legacy_output_recycling = false);

} // namespace mwl

#endif // MWL_RTL_NETLIST_HPP
