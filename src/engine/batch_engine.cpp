#include "engine/batch_engine.hpp"

#include "support/error.hpp"
#include "support/hash.hpp"

#include <algorithm>
#include <chrono>

namespace mwl {

std::size_t batch_engine::job_key_hash::operator()(const job_key& key) const
{
    fnv1a_hasher h;
    h.mix(static_cast<std::int64_t>(key.graph_fp));
    h.mix(static_cast<std::int64_t>(key.model_fp));
    h.mix(static_cast<std::int64_t>(key.lambda));
    h.mix(static_cast<std::int64_t>(key.options.enable_growth));
    h.mix(static_cast<std::int64_t>(key.options.reassign_cheapest));
    h.mix(static_cast<std::int64_t>(key.options.classic_constraint));
    h.mix(static_cast<std::int64_t>(key.options.incremental));
    h.mix(static_cast<std::int64_t>(key.options.initial_capacity));
    h.mix(static_cast<std::int64_t>(key.options.max_iterations));
    return h.digest();
}

batch_engine::batch_engine(const batch_options& options)
    : owned_pool_(std::make_unique<thread_pool>(options.jobs)),
      pool_(owned_pool_.get()),
      cache_(options.cache_capacity)
{
}

batch_engine::batch_engine(thread_pool& pool, const batch_options& options)
    : pool_(&pool), cache_(options.cache_capacity)
{
}

batch_engine::~batch_engine()
{
    static_cast<void>(drain());
}

std::size_t batch_engine::submit(const sequencing_graph& graph,
                                 const hardware_model& model, int lambda,
                                 const dpalloc_options& options)
{
    const job_key key{graph_fingerprint(graph), model.fingerprint(), lambda,
                      options};

    std::unique_lock<std::mutex> lock(mutex_);
    const std::size_t index = entries_.size();
    outcome& entry = entries_.emplace_back();
    entry.key = job_key_hash{}(key);
    ++stats_.submitted;

    if (const auto* cached = cache_.get(key)) {
        entry.result = *cached;
        entry.from_cache = true;
        ++stats_.cache_hits;
        if (hook_) {
            // Hook with the lock released; the caller is inside submit(),
            // so the engine cannot be destroyed underneath the call.
            const completion_hook hook = hook_;
            const outcome out = entry;
            lock.unlock();
            hook(index, out);
        }
        return index;
    }
    const auto [it, fresh] = inflight_.try_emplace(key);
    it->second.push_back(index);
    if (!fresh) {
        entry.coalesced = true;
        ++stats_.coalesced;
        return index;
    }
    lock.unlock();
    // The future is intentionally dropped: execute() reports through
    // resolve() and never throws out of the task.
    static_cast<void>(pool_->submit(
        [this, key, &graph, &model] { execute(key, graph, model); }));
    return index;
}

void batch_engine::execute(const job_key& key, const sequencing_graph& graph,
                           const hardware_model& model)
{
    std::shared_ptr<const dpalloc_result> result;
    std::string error;
    try {
        result = std::make_shared<const dpalloc_result>(
            dpalloc(graph, model, key.lambda, key.options));
    } catch (const std::exception& e) {
        error = e.what();
        if (error.empty()) {
            error = "allocation failed";
        }
    }
    resolve(key, std::move(result), std::move(error));
}

void batch_engine::resolve(const job_key& key,
                           std::shared_ptr<const dpalloc_result> result,
                           std::string error)
{
    // The completion hook runs with the lock released but *before* the
    // resolution is published: while the key is still in inflight_, no
    // drain() can return, so the engine stays alive across the unlocked
    // calls. A submit that coalesces onto the key during a hook call is
    // picked up by the next pass of the loop, so every waiter is hooked
    // exactly once.
    std::vector<std::size_t> hooked;
    for (;;) {
        completion_hook hook;
        std::vector<std::pair<std::size_t, outcome>> fresh;
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            const auto it = inflight_.find(key);
            MWL_ASSERT(it != inflight_.end());
            hook = hook_;
            if (hook) {
                for (const std::size_t index : it->second) {
                    if (std::find(hooked.begin(), hooked.end(), index) !=
                        hooked.end()) {
                        continue;
                    }
                    outcome out = entries_[index]; // key + coalesced flag
                    out.result = result;
                    out.error = error;
                    fresh.emplace_back(index, std::move(out));
                }
            }
            if (fresh.empty()) {
                ++stats_.executed;
                if (!result) {
                    ++stats_.errors;
                }
                for (const std::size_t index : it->second) {
                    entries_[index].result = result;
                    entries_[index].error = error;
                }
                inflight_.erase(it);
                if (result) {
                    // Errors are not cached: they are cheap to rediscover
                    // and a bounded cache slot is better spent on a
                    // datapath.
                    cache_.put(key, std::move(result));
                }
                // Notify while still holding the mutex: the moment it is
                // released, a drain() that sees the batch complete may
                // return and let the engine be destroyed, so an unlocked
                // notify could touch a dead cv.
                idle_cv_.notify_all();
                return;
            }
        }
        for (const auto& [index, out] : fresh) {
            hook(index, out);
            hooked.push_back(index);
        }
    }
}

std::vector<batch_engine::outcome> batch_engine::drain()
{
    using namespace std::chrono_literals;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (inflight_.empty()) {
                std::vector<outcome> done;
                done.swap(entries_);
                return done;
            }
        }
        if (!pool_->run_one()) {
            // Every remaining job is running on a worker; wait for a
            // resolve() instead of spinning.
            std::unique_lock<std::mutex> lock(mutex_);
            if (!inflight_.empty()) {
                idle_cv_.wait_for(lock, 200us);
            }
        }
    }
}

void batch_engine::set_completion_hook(completion_hook hook)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    MWL_ASSERT(inflight_.empty());
    hook_ = std::move(hook);
}

std::size_t batch_engine::pending() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const outcome& entry : entries_) {
        if (!entry.result && entry.error.empty()) {
            ++n;
        }
    }
    return n;
}

batch_stats batch_engine::stats() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace mwl
