// Checkpointed on-disk campaign results.
//
// Layout of a campaign directory:
//
//   spec.campaign  the spec text, written once at creation (atomic)
//   snapshot.log   compacted results up to some point (atomic replace)
//   journal.log    append-only records since that snapshot (fsync each)
//
// Both .log files are framed-record files (io/record_journal.hpp) whose
// first record is a header carrying the store format_version and the
// campaign's point-list fingerprint. Crash safety is by construction:
//
//  * A completed point is journaled (append + fsync) before anyone can
//    observe it as done; a crash loses at most the record being written,
//    whose torn tail the checksummed framing detects and discards, so
//    the point simply re-runs on resume.
//  * Every `checkpoint_every` records the journal is compacted: a full
//    snapshot is atomically replaced, then the journal is atomically
//    reset to just its header. A crash between the two leaves records in
//    both files; loading deduplicates by point index (first occurrence
//    wins -- the values are deterministic, so duplicates agree anyway).
//
// MWL_CRASH_AFTER / MWL_CRASH_TORN (support/fault_inject.hpp) count
// exactly the writes described above, which is what lets the resume-
// equivalence tests crash a campaign at any persistence boundary.

#ifndef MWL_CAMPAIGN_RESULT_STORE_HPP
#define MWL_CAMPAIGN_RESULT_STORE_HPP

#include "io/record_journal.hpp"
#include "support/error.hpp"

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <string>

namespace mwl {

/// A campaign directory whose files do not form a valid store: missing
/// pieces, mid-file corruption, a format_version from a different build,
/// or a fingerprint from a different spec.
class store_format_error : public error {
public:
    using error::error;
};

/// Bump when the record payloads or file layout change incompatibly;
/// stores written by another version are rejected, not misread.
inline constexpr int store_format_version = 1;

/// Outcome of one campaign point. `error` empty means the allocation
/// succeeded and the metric fields are meaningful.
struct point_result {
    std::size_t index = 0;
    std::string key;
    int lambda = 0;
    int latency = 0;
    double area = 0.0;
    std::string error;

    [[nodiscard]] bool ok() const { return error.empty(); }

    friend bool operator==(const point_result&,
                           const point_result&) = default;
};

/// What loading found, for status reporting and the robustness tests.
struct store_load_stats {
    std::size_t snapshot_records = 0;
    std::size_t journal_records = 0;
    std::size_t duplicates = 0;   ///< same index seen again (compaction race)
    bool dropped_tail = false;    ///< torn final journal record discarded
    std::string tail_error;
};

class result_store {
public:
    /// Start a fresh store: creates `dir` if needed, writes the spec copy
    /// and a journal holding only the header. Throws `store_format_error`
    /// if `dir` already contains a campaign, `io_error` on I/O failure.
    [[nodiscard]] static result_store create(
        const std::filesystem::path& dir, const std::string& spec_text,
        std::uint64_t fingerprint, std::size_t total_points,
        std::size_t checkpoint_every = 64);

    /// Open an existing store: load the snapshot (if any), replay the
    /// journal, drop a torn tail (truncating it from the file so appends
    /// are safe), deduplicate, and verify header version + fingerprint.
    /// Pass `expected_fingerprint` when the caller re-expanded the spec
    /// (run/resume); `nullopt` trusts the stored header (status/report).
    [[nodiscard]] static result_store open(
        const std::filesystem::path& dir,
        std::optional<std::uint64_t> expected_fingerprint,
        std::size_t checkpoint_every = 64);

    /// True iff `dir` already holds a campaign (spec or store files).
    [[nodiscard]] static bool exists(const std::filesystem::path& dir);

    /// The spec text saved at creation. Throws `store_format_error` if
    /// missing (the directory is not a campaign).
    [[nodiscard]] static std::string load_spec_text(
        const std::filesystem::path& dir);

    /// Durably record one completed point (journal append; may trigger a
    /// compaction). A result for an already-recorded index is ignored.
    void record(const point_result& result);

    /// Compact now: snapshot everything, reset the journal. Called by the
    /// runner on drain-out (interrupt) and at campaign end.
    void flush_checkpoint();

    [[nodiscard]] bool has(std::size_t index) const
    {
        return results_.contains(index);
    }
    /// Completed results keyed (and therefore iterated) by point index.
    [[nodiscard]] const std::map<std::size_t, point_result>& results() const
    {
        return results_;
    }
    [[nodiscard]] std::size_t total_points() const { return total_points_; }
    [[nodiscard]] std::uint64_t fingerprint() const { return fingerprint_; }
    [[nodiscard]] const store_load_stats& load_stats() const
    {
        return load_stats_;
    }

private:
    result_store() = default;

    [[nodiscard]] std::string header_payload() const;
    void reset_journal();

    std::filesystem::path dir_;
    std::uint64_t fingerprint_ = 0;
    std::size_t total_points_ = 0;
    std::size_t checkpoint_every_ = 64;
    std::size_t since_checkpoint_ = 0;
    std::map<std::size_t, point_result> results_;
    store_load_stats load_stats_;
    std::unique_ptr<journal_writer> journal_;
};

/// Serialise / parse one point record payload ("point index=... key=...
/// lambda=... latency=... area=... status=..."); exposed for the store
/// format tests. Doubles round-trip exactly (%.17g). Parse throws
/// `store_format_error` on malformed payloads.
[[nodiscard]] std::string to_payload(const point_result& result);
[[nodiscard]] point_result parse_point_payload(const std::string& payload);

/// Exact-round-trip double formatting shared by the store and the
/// campaign report JSON, so equal results serialise byte-identically.
[[nodiscard]] std::string format_double(double value);

} // namespace mwl

#endif // MWL_CAMPAIGN_RESULT_STORE_HPP
