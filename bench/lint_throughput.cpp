// Static-analyzer throughput vs differential simulation.
//
// PR 3's harness proves value preservation by sampling: N random vectors
// through the reference simulator, the datapath simulator and the RTL
// interpreter. The static analyzer (src/analyze/) proves the same
// properties -- for *all* input values -- by one interval walk over the
// elaborated design. This bench allocates a corpus once (allocation cost
// is common to both and excluded), then times checking each datapath both
// ways and reports designs/s, so PERF.md can quote the cost of a static
// check next to the simulation it replaces.
//
// Soundness is cross-checked in-run: both arms must come back clean on
// the correct elaboration, and the static arm must flag a mutated
// (legacy unsigned-multiply) elaboration -- the bench exits non-zero
// otherwise, so the throughput numbers can never come from a check that
// stopped checking.

#include "bench_common.hpp"
#include "analyze/analyze.hpp"
#include "core/dpalloc.hpp"
#include "support/timer.hpp"
#include "verify/differential.hpp"

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

int main(int argc, char** argv)
{
    using namespace mwl;
    bench::bench_options opt =
        bench::parse_options(argc, argv, "lint_throughput");
    if (opt.graphs == 25) {
        opt.graphs = 48;
    }
    const std::size_t n_ops = opt.max_size != 0 ? opt.max_size : 12;
    constexpr std::size_t inputs_per_graph = 8;
    constexpr double slack = 0.25;

    const sonic_model model;
    const auto corpus = make_corpus(n_ops, opt.graphs, model, opt.seed);

    // Allocate once; both arms check the same datapaths.
    std::vector<datapath> paths;
    paths.reserve(corpus.size());
    for (const corpus_entry& e : corpus) {
        paths.push_back(
            dpalloc(e.graph, model,
                    relaxed_lambda(e.lambda_min, slack))
                .path);
    }
    // Input vectors are drawn outside the timed region too: their cost
    // belongs to the harness, not to the simulation being measured.
    std::vector<std::vector<sim_inputs>> vectors(corpus.size());
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        rng random(verify_input_seed(opt.seed, i));
        for (std::size_t v = 0; v < inputs_per_graph; ++v) {
            vectors[i].push_back(
                random_signed_inputs(corpus[i].graph, random));
        }
    }

    // Arm 1: differential simulation (the dynamic harness).
    stopwatch dynamic_clock;
    verify_report dynamic;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        std::string name = "g"; // split concat: gcc 12 -Wrestrict chokes
        name += std::to_string(i);
        dynamic.merge(verify_datapath(corpus[i].graph, name, "dpalloc",
                                      paths[i], model, vectors[i]));
    }
    const double dynamic_ms = dynamic_clock.milliseconds();
    if (!dynamic.ok()) {
        std::cerr << "lint_throughput: DYNAMIC HARNESS FOUND A DIVERGENCE "
                     "ON THE CORRECT ELABORATION\n";
        return 1;
    }

    // Arm 2: the static value-range analyzer on the same datapaths.
    stopwatch static_clock;
    analysis_report report;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        report.merge(analyze_allocation(corpus[i].graph, model, paths[i]));
    }
    const double static_ms = static_clock.milliseconds();
    if (!report.ok()) {
        std::cerr << "lint_throughput: STATIC ANALYZER FLAGGED THE CORRECT "
                     "ELABORATION (false positive)\n";
        return 1;
    }

    // Soundness canary: the analyzer must still catch a real bug.
    elaborate_options mutated;
    mutated.legacy_unsigned_multiply = true;
    analysis_report canary;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        canary.merge(
            analyze_allocation(corpus[i].graph, model, paths[i], mutated));
    }
    if (canary.ok()) {
        std::cerr << "lint_throughput: STATIC ANALYZER MISSED THE "
                     "unsigned-mul MUTATION (false negative)\n";
        return 1;
    }

    const std::size_t designs = corpus.size();
    const auto rate = [&](double ms) {
        return ms > 0.0 ? static_cast<double>(designs) / (ms / 1e3) : 0.0;
    };
    const double speedup = static_ms > 0.0 ? dynamic_ms / static_ms : 0.0;

    table t("Static lint vs differential simulation: " +
            std::to_string(designs) + " designs, |O| = " +
            std::to_string(n_ops) + ", " +
            std::to_string(inputs_per_graph) + " vectors/design");
    t.header({"arm", "ms", "designs/s", "checks", "speedup"});
    t.row({"differential sim", table::num(dynamic_ms, 1),
           table::num(rate(dynamic_ms), 1),
           std::to_string(dynamic.value_checks), "1.00x"});
    t.row({"static analyzer", table::num(static_ms, 1),
           table::num(rate(static_ms), 1), std::to_string(report.checks),
           table::num(speedup, 2) + "x"});
    bench::emit(t, opt);

    std::ostringstream json;
    json << "{\"bench\":\"lint_throughput\",\"graphs\":" << designs
         << ",\"n_ops\":" << n_ops << ",\"seed\":" << opt.seed
         << ",\"inputs_per_graph\":" << inputs_per_graph
         << ",\"designs\":" << designs << ',' << bench::env_json()
         << ",\"dynamic_ms\":" << dynamic_ms
         << ",\"dynamic_value_checks\":" << dynamic.value_checks
         << ",\"static_ms\":" << static_ms
         << ",\"static_checks\":" << report.checks
         << ",\"static_designs_per_s\":" << rate(static_ms)
         << ",\"dynamic_designs_per_s\":" << rate(dynamic_ms)
         << ",\"speedup_static_vs_dynamic\":" << speedup
         << ",\"mutation_canary_findings\":" << canary.findings.size()
         << "}";
    std::cout << '\n' << json.str() << '\n';

    if (opt.max_size != 0 && opt.out.empty()) {
        return 0;
    }
    const std::string path =
        opt.out.empty() ? "BENCH_lint_throughput.json" : opt.out;
    std::ofstream file(path);
    if (file) {
        file << json.str() << '\n';
    } else {
        std::cerr << "lint_throughput: cannot write " << path << '\n';
        return 1;
    }
    return 0;
}
