#include "bind/bind_select.hpp"

#include "support/error.hpp"
#include "wcg/chains.hpp"

#include <algorithm>

namespace mwl {
namespace {

timed_op make_timed(op_id o, std::span<const int> start,
                    std::span<const int> lat)
{
    return timed_op{o, start[o.value()], lat[o.value()]};
}

/// True iff `extra`'s members can be absorbed into `base` while keeping
/// `resource` feasible for everyone (Eqn. 4) and the union a chain.
///
/// Both inputs are sorted by start (chains have strictly ascending starts),
/// so the union is checked by a two-pointer merge walk testing `precedes`
/// between consecutive items -- no merged vector is materialized and no
/// allocation happens per probe.
bool can_absorb(const wordlength_compatibility_graph& wcg, res_id resource,
                const std::vector<timed_op>& base,
                const std::vector<op_id>& extra, std::span<const int> start,
                std::span<const int> lat)
{
    for (const op_id o : extra) {
        if (!wcg.compatible(o, resource)) {
            return false;
        }
    }
    std::size_t i = 0;
    std::size_t j = 0;
    timed_op prev{};
    bool have_prev = false;
    while (i < base.size() || j < extra.size()) {
        timed_op next;
        if (j == extra.size() ||
            (i < base.size() &&
             base[i].start <= start[extra[j].value()])) {
            next = base[i++];
        } else {
            next = make_timed(extra[j++], start, lat);
        }
        if (have_prev && !precedes(prev, next)) {
            return false;
        }
        prev = next;
        have_prev = true;
    }
    return true;
}

// -- reference (pre-incremental) implementations ------------------------
//
// The cache_chains = false arm reproduces the original BindSelect
// faithfully -- quadratic longest-chain DP with fresh allocations, the
// base-copying absorption probe, and the scan-everything cheapest-resource
// query -- so bench/iteration_scaling.cpp measures the real before/after
// of the §2.3 rework. Output-equivalence with the production path is
// enforced by tests/chains_property_test.cpp and
// tests/incremental_regression_test.cpp.

std::vector<timed_op> longest_chain_dp(std::span<const timed_op> items)
{
    if (items.empty()) {
        return {};
    }
    std::vector<timed_op> sorted(items.begin(), items.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const timed_op& a, const timed_op& b) {
                  if (a.start != b.start) {
                      return a.start < b.start;
                  }
                  if (a.finish() != b.finish()) {
                      return a.finish() < b.finish();
                  }
                  return a.op < b.op;
              });
    const std::size_t n = sorted.size();
    constexpr std::size_t npos = static_cast<std::size_t>(-1);
    std::vector<std::size_t> dp(n, 1);
    std::vector<std::size_t> back(n, npos);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < i; ++j) {
            if (precedes(sorted[j], sorted[i]) && dp[j] + 1 > dp[i]) {
                dp[i] = dp[j] + 1;
                back[i] = j;
            }
        }
    }
    std::size_t best = 0;
    for (std::size_t i = 1; i < n; ++i) {
        if (dp[i] > dp[best]) {
            best = i;
        }
    }
    std::vector<timed_op> chain;
    for (std::size_t at = best; at != npos; at = back[at]) {
        chain.push_back(sorted[at]);
    }
    std::reverse(chain.begin(), chain.end());
    return chain;
}

bool can_absorb_copying(const wordlength_compatibility_graph& wcg,
                        res_id resource, const std::vector<timed_op>& base,
                        const std::vector<op_id>& extra,
                        std::span<const int> start, std::span<const int> lat)
{
    std::vector<timed_op> merged = base;
    for (const op_id o : extra) {
        if (!wcg.compatible(o, resource)) {
            return false;
        }
        merged.push_back(make_timed(o, start, lat));
    }
    for (std::size_t i = 0; i < merged.size(); ++i) {
        for (std::size_t j = i + 1; j < merged.size(); ++j) {
            if (!precedes(merged[i], merged[j]) &&
                !precedes(merged[j], merged[i])) {
                return false;
            }
        }
    }
    return true;
}

res_id cheapest_common_resource_scan(
    const wordlength_compatibility_graph& wcg, std::span<const op_id> ops)
{
    res_id best = res_id::invalid();
    for (const res_id r : wcg.all_resources()) {
        bool covers_all = true;
        for (const op_id o : ops) {
            if (!wcg.compatible(o, r)) {
                covers_all = false;
                break;
            }
        }
        if (!covers_all) {
            continue;
        }
        if (!best.is_valid() || wcg.area(r) < wcg.area(best)) {
            best = r;
        }
    }
    return best;
}

// bind_chain_key (bind_select.hpp) orders the lazy Chvátal heap: maximise
// ratio, then chain length, then prefer the smaller res_id -- the exact
// tie-break order of the reference scan. res_ids are distinct, so keys are
// totally ordered and the argmax unique.

} // namespace

binding bind_select(const wordlength_compatibility_graph& wcg,
                    std::span<const int> start_times,
                    std::span<const int> latencies,
                    const bind_options& options, bind_scratch* scratch_arg)
{
    const sequencing_graph& graph = wcg.graph();
    const std::size_t n = graph.size();
    require(start_times.size() == n && latencies.size() == n,
            "schedule vectors must cover every operation");
    for (std::size_t i = 0; i < n; ++i) {
        require(start_times[i] >= 0, "operation is unscheduled");
        require(latencies[i] >= 1, "operation latencies must be >= 1");
    }

    binding result;
    std::vector<bool> covered(n, false);
    std::size_t n_covered = 0;

    bind_scratch local;
    bind_scratch& sc = scratch_arg ? *scratch_arg : local;
    const std::size_t n_res = wcg.resource_count();
    // Memo entries: valid flags reset per call; chain buffers keep their
    // capacity across calls through the scratch.
    sc.entry_valid.assign(n_res, 0);
    sc.entry_chain.resize(n_res);
    // chain_users[o]: resources whose cached chain contains operation o.
    // Covering o invalidates exactly these entries: removing candidates
    // *outside* a chain cannot change the canonical DP answer (dp values
    // of other items only decrease, so neither the first-index argmax nor
    // any first-maximal back pointer along the chain can move), so every
    // other cached chain stays exact. Entries may be stale (the resource
    // recomputed since); extra invalidations are harmless.
    sc.chain_users.resize(std::max(sc.chain_users.size(), n));
    for (std::size_t o = 0; o < n; ++o) {
        sc.chain_users[o].clear();
    }

    // Presorted candidate orders, built once per call: the canonical chain
    // order (start, finish, id) and the by-finish order are properties of
    // the schedule alone, so distributing two global op orders over the
    // O(r) rows yields every resource's candidate list in both orders in
    // O(|H|) -- Chvátal-round recomputes then only *filter* covered
    // operations out and never sort (wcg/chains.hpp,
    // longest_chain_presorted).
    if (options.cache_chains) {
        sc.res_canon.resize(std::max(sc.res_canon.size(), n_res));
        sc.res_finish.resize(std::max(sc.res_finish.size(), n_res));
        for (std::size_t r = 0; r < n_res; ++r) {
            sc.res_canon[r].clear();
            sc.res_finish[r].clear();
        }
        // Both global orders have keys bounded by the schedule horizon, so
        // three stable counting-sort passes replace two comparison sorts:
        //   ids asc --finish--> (finish, id) --start--> (start, finish, id)
        // which is the canonical order, then canonical --finish-->
        // (finish, canonical rank), the by-finish order.
        int max_finish = 0;
        for (std::size_t i = 0; i < n; ++i) {
            max_finish = std::max(max_finish, start_times[i] + latencies[i]);
        }
        auto& order = sc.order;
        auto& order2 = sc.order2;
        order.resize(n);
        order2.resize(n);
        auto& count = sc.count;
        const auto counting_pass = [&](auto&& key, const std::uint32_t* in,
                                       std::uint32_t* out) {
            count.assign(static_cast<std::size_t>(max_finish) + 1, 0);
            for (std::size_t i = 0; i < n; ++i) {
                ++count[static_cast<std::size_t>(
                    key(in ? in[i] : static_cast<std::uint32_t>(i)))];
            }
            std::uint32_t total = 0;
            for (auto& c : count) {
                const std::uint32_t c0 = c;
                c = total;
                total += c0;
            }
            for (std::size_t i = 0; i < n; ++i) {
                const std::uint32_t v =
                    in ? in[i] : static_cast<std::uint32_t>(i);
                out[count[static_cast<std::size_t>(key(v))]++] = v;
            }
        };
        const auto fin_key = [&](std::uint32_t v) {
            return start_times[v] + latencies[v];
        };
        const auto start_key = [&](std::uint32_t v) {
            return start_times[v];
        };
        counting_pass(fin_key, nullptr, order2.data());
        counting_pass(start_key, order2.data(), order.data());
        sc.canon_rank.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
            sc.canon_rank[order[i]] = static_cast<std::uint32_t>(i);
        }
        for (const std::uint32_t ov : order) {
            const op_id o{ov};
            const timed_op item = make_timed(o, start_times, latencies);
            for (const res_id r : wcg.resources_for(o)) {
                sc.res_canon[r.value()].push_back(item);
            }
        }
        // By-finish: (finish asc, canonical rank asc); restricted to each
        // O(r) this is exactly the (finish, local index) order the sweep
        // needs, because local indices increase with canonical rank.
        counting_pass(fin_key, order.data(), order2.data());
        order.swap(order2);
        for (const std::uint32_t ov : order) {
            const op_id o{ov};
            const std::uint32_t rank = sc.canon_rank[ov];
            for (const res_id r : wcg.resources_for(o)) {
                sc.res_finish[r.value()].push_back(rank);
            }
        }
        // Ranks -> local indices: the canonical distribution above visited
        // each row in ascending global rank, so a row position IS the local
        // index; one scratch map per row translates the stored ranks.
        auto& rank_to_local = sc.remap;
        rank_to_local.resize(std::max(rank_to_local.size(), n));
        for (std::size_t r = 0; r < n_res; ++r) {
            const auto& canon = sc.res_canon[r];
            for (std::size_t li = 0; li < canon.size(); ++li) {
                rank_to_local[sc.canon_rank[canon[li].op.value()]] =
                    static_cast<std::uint32_t>(li);
            }
            for (auto& entry : sc.res_finish[r]) {
                entry = rank_to_local[entry];
            }
        }
    }

    const auto recompute = [&](res_id r) -> const std::vector<timed_op>& {
        std::vector<timed_op>& chain = sc.entry_chain[r.value()];
        std::vector<timed_op>& candidates = sc.candidates;
        candidates.clear();
        if (options.cache_chains) {
            // Filter the presorted orders down to uncovered operations --
            // no per-round sorting (longest_chain_presorted) -- and keep
            // the compacted orders: a covered operation never becomes a
            // candidate again within this call, so later recomputes of the
            // same resource walk only the survivors.
            auto& canon = sc.res_canon[r.value()];
            auto& finish = sc.res_finish[r.value()];
            constexpr std::uint32_t npos32 = ~std::uint32_t{0};
            // The row was last compacted to exactly the then-uncovered
            // operations, so anything got covered since iff the survivor
            // count moved -- an O(1) test.
            if (sc.survivors[r.value()] != canon.size()) {
                auto& remap = sc.remap;
                remap.resize(std::max(remap.size(), canon.size()));
                for (std::size_t li = 0; li < canon.size(); ++li) {
                    if (!covered[canon[li].op.value()]) {
                        remap[li] =
                            static_cast<std::uint32_t>(candidates.size());
                        candidates.push_back(canon[li]);
                    } else {
                        remap[li] = npos32;
                    }
                }
                auto& finish_compact = sc.finish_compact;
                finish_compact.clear();
                for (const std::uint32_t li : finish) {
                    if (remap[li] != npos32) {
                        finish_compact.push_back(remap[li]);
                    }
                }
                canon.swap(candidates);
                finish.swap(finish_compact);
            }
            longest_chain_presorted(canon, finish, sc.chains, chain);
            for (const timed_op& item : chain) {
                sc.chain_users[item.op.value()].push_back(r);
            }
        } else {
            for (const op_id o : wcg.ops_for(r)) {
                if (!covered[o.value()]) {
                    candidates.push_back(
                        make_timed(o, start_times, latencies));
                }
            }
            chain = longest_chain_dp(candidates);
        }
        sc.entry_valid[r.value()] = 1;
        return chain;
    };
    const auto key_of = [&](res_id r, const std::vector<timed_op>& chain) {
        return bind_chain_key{
            static_cast<double>(chain.size()) / wcg.area(r), chain.size(),
            r};
    };
    auto& heap = sc.heap;
    heap.clear();
    const auto heap_push = [&](const bind_chain_key& key) {
        heap.push_back(key);
        std::push_heap(heap.begin(), heap.end());
    };
    const auto heap_pop = [&]() {
        const bind_chain_key top = heap.front();
        std::pop_heap(heap.begin(), heap.end());
        heap.pop_back();
        return top;
    };

    // Lazy Chvátal selection (Minoux-style): candidate sets only shrink as
    // operations are covered, so every chain length -- and thus every
    // selection key -- is non-increasing over rounds. Stale heap keys are
    // therefore upper bounds, and the first *fresh* key popped is the true
    // argmax. Only resources that surface at the heap top are recomputed,
    // instead of every dirtied resource every round. The heap is seeded
    // with the optimistic bound "number of distinct start times among
    // O(r)" -- a chain visits strictly increasing starts, so this is
    // admissible and much tighter than |O(r)| under a parallel schedule --
    // and no chain at all is computed for resources that never reach the
    // top.
    // survivors[r]: number of uncovered operations in O(r) -- an O(1)
    // upper bound on the chain length, maintained incrementally as
    // operations are covered. The lazy selection loop tightens stale heap
    // keys to this bound before paying for a full recompute, so resources
    // far from the top never walk their candidate rows at all.
    if (options.cache_chains) {
        sc.survivors.resize(std::max(sc.survivors.size(), n_res));
        for (const res_id r : wcg.all_resources()) {
            sc.survivors[r.value()] =
                static_cast<std::uint32_t>(wcg.ops_for(r).size());
        }
    }

    if (options.cache_chains) {
        // stamp[t] == current resource marker <=> start t already seen.
        int horizon = 0;
        for (std::size_t i = 0; i < n; ++i) {
            horizon = std::max(horizon, start_times[i] + 1);
        }
        auto& stamp = sc.stamp;
        stamp.assign(static_cast<std::size_t>(horizon), 0);
        std::uint32_t marker = 0;
        for (const res_id r : wcg.all_resources()) {
            ++marker;
            std::size_t distinct_starts = 0;
            for (const op_id o : wcg.ops_for(r)) {
                auto& cell =
                    stamp[static_cast<std::size_t>(start_times[o.value()])];
                if (cell != marker) {
                    cell = marker;
                    ++distinct_starts;
                }
            }
            if (distinct_starts > 0) {
                heap_push(bind_chain_key{
                    static_cast<double>(distinct_starts) / wcg.area(r),
                    distinct_starts, r});
            }
        }
    }

    while (n_covered < n) {
        // Chvátal ratio selection over the implicit column set: for each
        // resource type the best feasible column is a longest chain of
        // uncovered compatible operations.
        res_id best_r = res_id::invalid();
        const std::vector<timed_op>* best_chain_ptr = nullptr;

        if (options.cache_chains) {
            while (best_chain_ptr == nullptr) {
                // Every uncovered operation keeps at least one H edge, so
                // a key for some resource with candidates is always here.
                MWL_ASSERT(!heap.empty());
                const bind_chain_key top = heap_pop();
                if (!sc.entry_valid[top.r.value()]) {
                    // Tighten to the survivor bound first: chain length
                    // can never exceed the number of uncovered candidates,
                    // and pushing the smaller bound keeps every heap key an
                    // upper bound, so the argmax argument is untouched.
                    const std::size_t bound = sc.survivors[top.r.value()];
                    if (bound < top.length) {
                        if (bound > 0) {
                            heap_push(bind_chain_key{
                                static_cast<double>(bound) /
                                    wcg.area(top.r),
                                bound, top.r});
                        }
                        continue;
                    }
                    const std::vector<timed_op>& fresh = recompute(top.r);
                    if (!fresh.empty()) {
                        heap_push(key_of(top.r, fresh));
                    }
                    continue;
                }
                const std::vector<timed_op>& chain =
                    sc.entry_chain[top.r.value()];
                if (chain.size() != top.length) {
                    continue; // superseded duplicate of an older recompute
                }
                best_r = top.r;
                best_chain_ptr = &chain;
                // The resource stays selectable in later rounds; its ops
                // are about to be covered, which dirties the entry, so the
                // re-pushed key is a valid upper bound.
                heap_push(top);
            }
        } else {
            // Reference scan: recompute every resource's chain each round
            // (the original pre-incremental behaviour; identical output).
            double best_ratio = -1.0;
            for (const res_id r : wcg.all_resources()) {
                const std::vector<timed_op>& chain = recompute(r);
                if (chain.empty()) {
                    continue;
                }
                const double ratio =
                    static_cast<double>(chain.size()) / wcg.area(r);
                const bool better =
                    ratio > best_ratio ||
                    (ratio == best_ratio &&
                     (best_chain_ptr == nullptr ||
                      chain.size() > best_chain_ptr->size() ||
                      (chain.size() == best_chain_ptr->size() &&
                       r < best_r)));
                if (better) {
                    best_ratio = ratio;
                    best_r = r;
                    best_chain_ptr = &chain;
                }
            }
        }
        MWL_ASSERT(best_r.is_valid() && best_chain_ptr != nullptr &&
                   !best_chain_ptr->empty());
        std::vector<timed_op>& best_chain = sc.best_chain;
        best_chain.assign(best_chain_ptr->begin(), best_chain_ptr->end());

        for (const timed_op& item : best_chain) {
            MWL_ASSERT(!covered[item.op.value()]);
            covered[item.op.value()] = true;
            ++n_covered;
            if (options.cache_chains) {
                // Only chains that contain the newly covered operation
                // can change; everything else's chain is still exact.
                for (const res_id r : sc.chain_users[item.op.value()]) {
                    sc.entry_valid[r.value()] = 0;
                }
                sc.chain_users[item.op.value()].clear();
                for (const res_id r : wcg.resources_for(item.op)) {
                    --sc.survivors[r.value()];
                }
            }
        }

        if (options.enable_growth) {
            // Greed compensation: try to grow the new clique (keeping its
            // resource type, so total cost can only drop) to swallow
            // previously selected cliques; absorbed cliques are deleted.
            // `best_chain` stays sorted by start throughout, which
            // can_absorb's merge walk relies on.
            bool absorbed = true;
            while (absorbed) {
                absorbed = false;
                for (std::size_t j = 0; j < result.cliques.size(); ++j) {
                    const binding_clique& prev = result.cliques[j];
                    const bool fits =
                        options.cache_chains
                            ? can_absorb(wcg, best_r, best_chain, prev.ops,
                                         start_times, latencies)
                            : can_absorb_copying(wcg, best_r, best_chain,
                                                 prev.ops, start_times,
                                                 latencies);
                    if (!fits) {
                        continue;
                    }
                    // Keep the sorted-by-start invariant can_absorb's
                    // merge walk relies on (a chain has distinct starts);
                    // merge through a reused buffer, no allocation.
                    std::vector<timed_op>& merged = sc.merge_tmp;
                    merged.clear();
                    std::size_t bi = 0;
                    std::size_t ei = 0;
                    while (bi < best_chain.size() || ei < prev.ops.size()) {
                        if (ei == prev.ops.size() ||
                            (bi < best_chain.size() &&
                             best_chain[bi].start <=
                                 start_times[prev.ops[ei].value()])) {
                            merged.push_back(best_chain[bi++]);
                        } else {
                            merged.push_back(make_timed(prev.ops[ei++],
                                                        start_times,
                                                        latencies));
                        }
                    }
                    best_chain.swap(merged);
                    result.cliques.erase(result.cliques.begin() +
                                         static_cast<std::ptrdiff_t>(j));
                    absorbed = true;
                    break;
                }
            }
        }

        binding_clique clique;
        clique.resource = best_r;
        clique.ops.reserve(best_chain.size());
        for (const timed_op& item : best_chain) {
            clique.ops.push_back(item.op);
        }
        result.cliques.push_back(std::move(clique));
    }

    if (options.reassign_cheapest) {
        // Wordlength selection proper: each clique takes the cheapest
        // resource type still satisfying Eqn. 4 (pure improvement).
        for (binding_clique& k : result.cliques) {
            const res_id cheapest =
                options.cache_chains
                    ? cheapest_common_resource(wcg, k.ops, sc.hits)
                    : cheapest_common_resource_scan(wcg, k.ops);
            MWL_ASSERT(cheapest.is_valid()); // current resource qualifies
            if (wcg.area(cheapest) < wcg.area(k.resource)) {
                k.resource = cheapest;
            }
        }
    }

    finalize_binding(result, n, wcg);
    return result;
}

} // namespace mwl
