// Cooperative SIGINT/SIGTERM handling for the long-running tools.
//
// mwl_batch and mwl_campaign can run for hours; dying mid-corpus with no
// output (the default signal disposition) throws completed work away. The
// tools instead install this handler first thing in main(): the signal
// only sets a flag, the work loops poll it between chunks, drain whatever
// is in flight, flush results/checkpoints, and exit with a distinct code
// so scripts can tell "interrupted with partial results" (3) from success
// (0), failures (1) and usage errors (2).

#ifndef MWL_SUPPORT_INTERRUPT_HPP
#define MWL_SUPPORT_INTERRUPT_HPP

namespace mwl {

/// Exit code of a tool that was interrupted and drained cleanly.
inline constexpr int interrupt_exit_code = 3;

/// Route SIGINT and SIGTERM to a flag (with SA_RESTART, so blocking
/// reads in progress complete instead of failing with EINTR). A second
/// signal of either kind restores the default disposition, so an
/// impatient ^C ^C still kills the process immediately.
void install_interrupt_handler();

/// True once a handled signal has arrived.
[[nodiscard]] bool interrupt_requested();

} // namespace mwl

#endif // MWL_SUPPORT_INTERRUPT_HPP
