#include "ilp/exhaustive.hpp"

#include "dfg/analysis.hpp"
#include "support/error.hpp"
#include "wcg/resource_set.hpp"

#include <algorithm>
#include <vector>

namespace mwl {
namespace {

struct assignment {
    std::size_t resource_index = 0;
    int start = 0;
};

struct search {
    const sequencing_graph* graph = nullptr;
    const hardware_model* model = nullptr;
    std::vector<op_shape> resources;
    std::vector<int> res_latency;
    std::vector<double> res_area;
    std::vector<std::vector<std::size_t>> compatible; // per op
    std::vector<op_id> order;                         // topological
    std::vector<assignment> current;
    int lambda = 0;
    std::uint64_t states = 0;
    std::uint64_t max_states = 0;
    bool aborted = false;
    double best = 0.0;
    bool have_best = false;

    /// Area of the complete current assignment: per type, instances needed
    /// = max overlap of equal-length intervals.
    [[nodiscard]] double evaluate() const
    {
        double area = 0.0;
        for (std::size_t ri = 0; ri < resources.size(); ++ri) {
            const int lr = res_latency[ri];
            int max_overlap = 0;
            for (int t = 0; t < lambda; ++t) {
                int running = 0;
                for (std::size_t o = 0; o < current.size(); ++o) {
                    if (current[o].resource_index == ri &&
                        current[o].start <= t && t < current[o].start + lr) {
                        ++running;
                    }
                }
                max_overlap = std::max(max_overlap, running);
            }
            area += res_area[ri] * max_overlap;
        }
        return area;
    }

    void recurse(std::size_t depth)
    {
        if (aborted) {
            return;
        }
        if (++states > max_states) {
            aborted = true;
            return;
        }
        if (depth == order.size()) {
            const double area = evaluate();
            if (!have_best || area < best) {
                best = area;
                have_best = true;
            }
            return;
        }
        const op_id o = order[depth];
        // Earliest start given already-assigned predecessors (topological
        // order guarantees they are assigned).
        int earliest = 0;
        for (const op_id p : graph->predecessors(o)) {
            const assignment& pa = current[p.value()];
            earliest = std::max(
                earliest, pa.start + res_latency[pa.resource_index]);
        }
        for (const std::size_t ri : compatible[o.value()]) {
            const int lr = res_latency[ri];
            for (int s = earliest; s + lr <= lambda; ++s) {
                current[o.value()] = assignment{ri, s};
                recurse(depth + 1);
                if (aborted) {
                    return;
                }
            }
        }
    }
};

} // namespace

std::optional<double> exhaustive_optimal_area(const sequencing_graph& graph,
                                              const hardware_model& model,
                                              int lambda,
                                              std::uint64_t max_states)
{
    require(lambda >= 0, "latency constraint must be non-negative");
    if (graph.empty()) {
        return 0.0;
    }

    search s;
    s.graph = &graph;
    s.model = &model;
    s.lambda = lambda;
    s.max_states = max_states;
    s.resources = extract_resource_types(graph);
    for (const op_shape& r : s.resources) {
        s.res_latency.push_back(model.latency(r));
        s.res_area.push_back(model.area(r));
    }
    s.compatible.resize(graph.size());
    for (const op_id o : graph.all_ops()) {
        for (std::size_t ri = 0; ri < s.resources.size(); ++ri) {
            if (s.resources[ri].covers(graph.shape(o))) {
                s.compatible[o.value()].push_back(ri);
            }
        }
    }
    s.order = graph.topological_order();
    s.current.resize(graph.size());

    s.recurse(0);
    if (s.aborted || !s.have_best) {
        return std::nullopt;
    }
    return s.best;
}

} // namespace mwl
