// Unit tests for src/support: strong ids, error primitives, the
// deterministic RNG and the statistics helpers.

#include "support/error.hpp"
#include "support/ids.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/timer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>
#include <vector>

namespace mwl {
namespace {

// ---------------------------------------------------------------- ids --

TEST(StrongId, DefaultConstructedIsInvalid)
{
    op_id id;
    EXPECT_FALSE(id.is_valid());
    EXPECT_EQ(id, op_id::invalid());
}

TEST(StrongId, ValueRoundTrips)
{
    op_id id(42);
    EXPECT_TRUE(id.is_valid());
    EXPECT_EQ(id.value(), 42u);
}

TEST(StrongId, OrderingFollowsValues)
{
    EXPECT_LT(op_id(1), op_id(2));
    EXPECT_GT(op_id(5), op_id(3));
    EXPECT_EQ(op_id(7), op_id(7));
}

TEST(StrongId, DistinctTagsAreDistinctTypes)
{
    static_assert(!std::is_same_v<op_id, res_id>);
    static_assert(!std::is_same_v<res_id, clique_id>);
}

TEST(StrongId, HashWorksInUnorderedContainers)
{
    std::unordered_set<op_id> set;
    set.insert(op_id(1));
    set.insert(op_id(2));
    set.insert(op_id(1));
    EXPECT_EQ(set.size(), 2u);
}

TEST(StrongId, UsableAsOrderedKey)
{
    std::set<res_id> set{res_id(3), res_id(1), res_id(2)};
    EXPECT_EQ(set.begin()->value(), 1u);
}

// -------------------------------------------------------------- error --

TEST(Error, RequireThrowsPreconditionError)
{
    EXPECT_THROW(require(false, "boom"), precondition_error);
    EXPECT_NO_THROW(require(true, "fine"));
}

TEST(Error, RequireFeasibleThrowsInfeasibleError)
{
    EXPECT_THROW(require_feasible(false, "no way"), infeasible_error);
    EXPECT_NO_THROW(require_feasible(true, "ok"));
}

TEST(Error, ExceptionsDeriveFromMwlError)
{
    try {
        require(false, "message text");
        FAIL() << "should have thrown";
    } catch (const error& e) {
        EXPECT_STREQ(e.what(), "message text");
    }
}

TEST(Error, InfeasibleIsDistinctFromPrecondition)
{
    EXPECT_THROW(
        {
            try {
                require_feasible(false, "x");
            } catch (const precondition_error&) {
                FAIL() << "wrong type";
            }
        },
        infeasible_error);
}

// ---------------------------------------------------------------- rng --

TEST(Rng, DeterministicForEqualSeeds)
{
    rng a(123);
    rng b(123);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a(), b());
    }
}

TEST(Rng, DifferentSeedsDiverge)
{
    rng a(1);
    rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        same += (a() == b()) ? 1 : 0;
    }
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformRespectsBounds)
{
    rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.uniform(10, 20);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 20u);
    }
}

TEST(Rng, UniformCoversFullRange)
{
    rng r(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        seen.insert(r.uniform(0, 3));
    }
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, UniformDegenerateRangeIsConstant)
{
    rng r(5);
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(r.uniform(9, 9), 9u);
    }
}

TEST(Rng, UniformIntMatchesRange)
{
    rng r(3);
    for (int i = 0; i < 1000; ++i) {
        const int v = r.uniform_int(1, 6);
        EXPECT_GE(v, 1);
        EXPECT_LE(v, 6);
    }
}

TEST(Rng, UniformRealInHalfOpenUnitInterval)
{
    rng r(13);
    for (int i = 0; i < 10000; ++i) {
        const double v = r.uniform_real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, UniformRealMeanIsPlausible)
{
    rng r(17);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        sum += r.uniform_real();
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceExtremesAreDeterministic)
{
    rng r(19);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ForkProducesIndependentStream)
{
    rng parent(21);
    rng child = parent.fork(1);
    rng parent2(21);
    rng child2 = parent2.fork(1);
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(child(), child2());
    }
}

TEST(Rng, ForkSaltMatters)
{
    rng parent(21);
    rng a = parent.fork(1);
    rng parent2(21);
    rng b = parent2.fork(2);
    int same = 0;
    for (int i = 0; i < 50; ++i) {
        same += (a() == b()) ? 1 : 0;
    }
    EXPECT_LT(same, 3);
}

// -------------------------------------------------------------- stats --

TEST(Stats, MeanOfKnownSample)
{
    const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(v), 2.5);
}

TEST(Stats, MeanOfEmptyIsZero)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, StddevOfKnownSample)
{
    const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_NEAR(stddev(v), 2.138, 1e-3);
}

TEST(Stats, StddevOfSingletonIsZero)
{
    const std::vector<double> v{42.0};
    EXPECT_DOUBLE_EQ(stddev(v), 0.0);
}

TEST(Stats, GeomeanOfKnownSample)
{
    const std::vector<double> v{1.0, 100.0};
    EXPECT_NEAR(geomean(v), 10.0, 1e-9);
}

TEST(Stats, PercentileEndpoints)
{
    const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
}

TEST(Stats, PercentileInterpolates)
{
    const std::vector<double> v{0.0, 10.0};
    EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
}

TEST(Stats, MinMaxOfSample)
{
    const std::vector<double> v{3.0, 1.0, 2.0};
    EXPECT_DOUBLE_EQ(min_of(v), 1.0);
    EXPECT_DOUBLE_EQ(max_of(v), 3.0);
}

// -------------------------------------------------------------- timer --

TEST(Timer, MeasuresNonNegativeTime)
{
    stopwatch w;
    EXPECT_GE(w.seconds(), 0.0);
    EXPECT_GE(w.milliseconds(), 0.0);
}

TEST(Timer, ResetRestartsTheClock)
{
    stopwatch w;
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i) {
        sink = sink + 1.0;
    }
    w.reset();
    EXPECT_LT(w.seconds(), 1.0);
}

} // namespace
} // namespace mwl
