// Value lifetimes and left-edge register allocation.
//
// The paper's area model covers functional units only (Eqn. 5); a real
// datapath also spends area on registers holding values between control
// steps and on the multiplexers steering shared resources. This module
// derives those from an allocated datapath: each operation's result is a
// *value* live from the producer's finish to its last consumer's start,
// and registers are allocated to values with the classic left-edge
// algorithm (optimal for interval conflict graphs: register count equals
// the maximum number of simultaneously live values).

#ifndef MWL_RTL_LIFETIMES_HPP
#define MWL_RTL_LIFETIMES_HPP

#include "core/datapath.hpp"
#include "dfg/sequencing_graph.hpp"

#include <vector>

namespace mwl {

/// One value: the result of `producer`, live over [birth, death).
/// Values whose producer has no consumers are primary outputs and stay
/// live past the end of the schedule (death == latency + 1): they are
/// read from outside after the final capture edge, so their registers
/// must never be recycled by a last-cycle capture.
struct value_lifetime {
    op_id producer;
    int birth = 0;  ///< producer finish time
    int death = 0;  ///< last consumer start time (or schedule end)
    int width = 1;  ///< result width in bits
};

/// A physical register and the values time-multiplexed onto it.
struct rtl_register {
    int width = 1; ///< max width over assigned values
    std::vector<std::size_t> values; ///< indices into the lifetime vector
};

/// Result width of an operation: adders keep their operand width, an
/// n x m multiplier produces n + m bits.
[[nodiscard]] int result_width(const op_shape& shape);

/// Lifetimes of every operation's result under `path`'s schedule,
/// ordered by op id. Zero-length lifetimes (value consumed in the cycle
/// it appears) are kept with death == birth; they still need a register
/// (one cycle of storage) and are widened to death = birth + 1.
/// `legacy_output_recycling` restores the pre-fix output death of
/// `latency` (instead of latency + 1), letting a last-cycle capture
/// recycle an output's register -- only for harness self-tests
/// (elaborate_options::legacy_output_recycling).
[[nodiscard]] std::vector<value_lifetime> compute_lifetimes(
    const sequencing_graph& graph, const datapath& path,
    bool legacy_output_recycling = false);

/// Left-edge register allocation. Deterministic (birth, then op id).
/// The returned registers reference `lifetimes` by index.
[[nodiscard]] std::vector<rtl_register> left_edge_allocate(
    const std::vector<value_lifetime>& lifetimes);

} // namespace mwl

#endif // MWL_RTL_LIFETIMES_HPP
