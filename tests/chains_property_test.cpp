// Property / fuzz tests for the O(k log k) chain utilities against the
// original quadratic implementations, kept here as oracles.
//
// longest_chain's sweep is required to reproduce the original DP *exactly*
// (same chain, not merely the same length): BindSelect's output -- and
// hence every DPAlloc allocation -- depends on which maximum chain is
// picked, and the incremental-vs-reference regression suite
// (incremental_regression_test.cpp) relies on bit-identical results.

#include "support/rng.hpp"
#include "wcg/chains.hpp"

#include "test_seed.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace mwl {
namespace {

/// The original O(k^2) longest-chain DP, verbatim: canonical sort, strict
/// improvement scan (keeps the first maximal predecessor), first-index
/// argmax over chain ends.
std::vector<timed_op> longest_chain_dp(std::span<const timed_op> items)
{
    if (items.empty()) {
        return {};
    }

    std::vector<timed_op> sorted(items.begin(), items.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const timed_op& a, const timed_op& b) {
                  if (a.start != b.start) {
                      return a.start < b.start;
                  }
                  if (a.finish() != b.finish()) {
                      return a.finish() < b.finish();
                  }
                  return a.op < b.op;
              });

    const std::size_t n = sorted.size();
    constexpr std::size_t npos = static_cast<std::size_t>(-1);
    std::vector<std::size_t> dp(n, 1);
    std::vector<std::size_t> back(n, npos);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < i; ++j) {
            if (precedes(sorted[j], sorted[i]) && dp[j] + 1 > dp[i]) {
                dp[i] = dp[j] + 1;
                back[i] = j;
            }
        }
    }

    std::size_t best = 0;
    for (std::size_t i = 1; i < n; ++i) {
        if (dp[i] > dp[best]) {
            best = i;
        }
    }

    std::vector<timed_op> chain;
    for (std::size_t at = best; at != npos; at = back[at]) {
        chain.push_back(sorted[at]);
    }
    std::reverse(chain.begin(), chain.end());
    return chain;
}

/// The original all-pairs is_chain.
bool is_chain_pairwise(std::span<const timed_op> items)
{
    for (std::size_t i = 0; i < items.size(); ++i) {
        for (std::size_t j = i + 1; j < items.size(); ++j) {
            if (!precedes(items[i], items[j]) &&
                !precedes(items[j], items[i])) {
                return false;
            }
        }
    }
    return true;
}

std::vector<timed_op> random_items(rng& random, std::size_t max_k,
                                   int max_start, int max_latency)
{
    const std::size_t k = random.uniform(0, max_k);
    std::vector<timed_op> items;
    items.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
        items.push_back(timed_op{op_id(i), random.uniform_int(0, max_start),
                                 random.uniform_int(1, max_latency)});
    }
    return items;
}

void expect_same_chain(const std::vector<timed_op>& items, int trial)
{
    const std::vector<timed_op> oracle = longest_chain_dp(items);
    const std::vector<timed_op> sweep = longest_chain(items);
    ASSERT_EQ(sweep.size(), oracle.size()) << "trial " << trial;
    for (std::size_t i = 0; i < oracle.size(); ++i) {
        EXPECT_EQ(sweep[i].op, oracle[i].op) << "trial " << trial;
        EXPECT_EQ(sweep[i].start, oracle[i].start) << "trial " << trial;
        EXPECT_EQ(sweep[i].latency, oracle[i].latency) << "trial " << trial;
    }
}

TEST(ChainsProperty, SweepReproducesDpOnDenseRandomSets)
{
    // Heavily overlapping intervals: many ties, small chains.
    const std::uint64_t seed =
        testing::env_seed("MWL_CHAINS_SEED", 0xC4A1);
    MWL_TRACE_SEED("MWL_CHAINS_SEED", seed);
    rng random(seed);
    for (int trial = 0; trial < 400; ++trial) {
        expect_same_chain(random_items(random, 40, 12, 6), trial);
    }
}

TEST(ChainsProperty, SweepReproducesDpOnSparseRandomSets)
{
    // Spread-out intervals: long chains, few ties.
    const std::uint64_t seed =
        testing::env_seed("MWL_CHAINS_SEED", 0xC4A2);
    MWL_TRACE_SEED("MWL_CHAINS_SEED", seed);
    rng random(seed);
    for (int trial = 0; trial < 400; ++trial) {
        expect_same_chain(random_items(random, 40, 200, 4), trial);
    }
}

TEST(ChainsProperty, SweepReproducesDpAroundSmallInputCutover)
{
    // longest_chain switches implementation around k = 16 and has
    // dedicated k <= 2 fast paths; hammer exactly those sizes.
    const std::uint64_t seed =
        testing::env_seed("MWL_CHAINS_SEED", 0xC4A3);
    MWL_TRACE_SEED("MWL_CHAINS_SEED", seed);
    rng random(seed);
    for (int trial = 0; trial < 800; ++trial) {
        const std::size_t k = random.uniform(0, 18);
        std::vector<timed_op> items;
        for (std::size_t i = 0; i < k; ++i) {
            items.push_back(timed_op{op_id(i), random.uniform_int(0, 6),
                                     random.uniform_int(1, 4)});
        }
        expect_same_chain(items, trial);
    }
}

TEST(ChainsProperty, SweepReproducesDpWithDuplicateIntervals)
{
    // Identical (start, latency) pairs on distinct ops exercise every
    // tie-break level.
    const std::uint64_t seed =
        testing::env_seed("MWL_CHAINS_SEED", 0xC4A4);
    MWL_TRACE_SEED("MWL_CHAINS_SEED", seed);
    rng random(seed);
    for (int trial = 0; trial < 400; ++trial) {
        const std::size_t k = random.uniform(0, 24);
        std::vector<timed_op> items;
        for (std::size_t i = 0; i < k; ++i) {
            items.push_back(timed_op{op_id(i), random.uniform_int(0, 3),
                                     random.uniform_int(1, 2)});
        }
        expect_same_chain(items, trial);
    }
}

TEST(ChainsProperty, IsChainMatchesPairwiseOracle)
{
    const std::uint64_t seed =
        testing::env_seed("MWL_CHAINS_SEED", 0xC4A5);
    MWL_TRACE_SEED("MWL_CHAINS_SEED", seed);
    rng random(seed);
    int chains_seen = 0;
    for (int trial = 0; trial < 1000; ++trial) {
        const std::vector<timed_op> items =
            random_items(random, 8, 10, 3);
        const bool expected = is_chain_pairwise(items);
        EXPECT_EQ(is_chain(items), expected) << "trial " << trial;
        chains_seen += expected ? 1 : 0;
    }
    // The distribution must actually exercise both outcomes.
    EXPECT_GT(chains_seen, 0);
}

TEST(ChainsProperty, LongestChainIntoReusesCapacity)
{
    const std::uint64_t seed =
        testing::env_seed("MWL_CHAINS_SEED", 0xC4A6);
    MWL_TRACE_SEED("MWL_CHAINS_SEED", seed);
    rng random(seed);
    chain_scratch scratch;
    std::vector<timed_op> out;
    for (int trial = 0; trial < 100; ++trial) {
        const std::vector<timed_op> items = random_items(random, 30, 50, 5);
        longest_chain_into(items, scratch, out);
        const std::vector<timed_op> fresh = longest_chain(items);
        ASSERT_EQ(out.size(), fresh.size());
        for (std::size_t i = 0; i < out.size(); ++i) {
            EXPECT_EQ(out[i].op, fresh[i].op);
        }
    }
}

} // namespace
} // namespace mwl
