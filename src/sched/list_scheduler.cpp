#include "sched/list_scheduler.hpp"

#include "dfg/analysis.hpp"
#include "sched/priorities.hpp"
#include "support/error.hpp"

#include <algorithm>

namespace mwl {

list_schedule_result list_schedule(const sequencing_graph& graph,
                                   std::span<const int> latencies,
                                   const type_limits& limits)
{
    require(latencies.size() == graph.size(),
            "latency vector size must equal the number of operations");
    require(limits.add >= 1 && limits.mul >= 1,
            "resource limits must be at least 1");
    for (const int latency : latencies) {
        require(latency >= 1, "operation latencies must be >= 1");
    }

    list_schedule_result result;
    result.start.assign(graph.size(), -1);
    if (graph.empty()) {
        return result;
    }

    const std::vector<int> priority =
        critical_path_priorities(graph, latencies);

    // running[y][t]: type-y operations executing during step t.
    // Horizon bound: serialising everything is always feasible; the extra
    // max-latency slack keeps occupancy probes in range near the end.
    int horizon = 0;
    int max_latency = 0;
    for (const int latency : latencies) {
        horizon += latency;
        max_latency = std::max(max_latency, latency);
    }
    horizon += max_latency;
    std::vector<std::vector<int>> running(
        2, std::vector<int>(static_cast<std::size_t>(horizon), 0));
    const auto kind_index = [](op_kind kind) {
        return kind == op_kind::add ? std::size_t{0} : std::size_t{1};
    };

    std::size_t scheduled = 0;
    for (int t = 0; scheduled < graph.size(); ++t) {
        MWL_ASSERT(t < horizon);
        // Ready: unscheduled, every predecessor finished by t.
        std::vector<op_id> ready;
        for (const op_id o : graph.all_ops()) {
            if (result.start[o.value()] >= 0) {
                continue;
            }
            bool ok = true;
            for (const op_id p : graph.predecessors(o)) {
                const int ps = result.start[p.value()];
                if (ps < 0 || ps + latencies[p.value()] > t) {
                    ok = false;
                    break;
                }
            }
            if (ok) {
                ready.push_back(o);
            }
        }
        std::sort(ready.begin(), ready.end(), [&](op_id a, op_id b) {
            if (priority[a.value()] != priority[b.value()]) {
                return priority[a.value()] > priority[b.value()];
            }
            return a < b;
        });

        for (const op_id o : ready) {
            const op_kind kind = graph.shape(o).kind();
            const std::size_t y = kind_index(kind);
            const int limit = limits.of(kind);
            const int lat = latencies[o.value()];
            bool fits = true;
            for (int u = t; u < t + lat; ++u) {
                if (running[y][static_cast<std::size_t>(u)] + 1 > limit) {
                    fits = false;
                    break;
                }
            }
            if (!fits) {
                continue;
            }
            result.start[o.value()] = t;
            ++scheduled;
            for (int u = t; u < t + lat; ++u) {
                ++running[y][static_cast<std::size_t>(u)];
            }
        }
    }

    result.length = schedule_length(graph, latencies, result.start);
    return result;
}

} // namespace mwl
