#include "support/fault_inject.hpp"

#include <atomic>
#include <cstdlib>

namespace mwl::fault {

namespace {

/// Remaining store writes before the injected crash; <= 0 means unarmed
/// (0 from the start when MWL_CRASH_AFTER is unset or invalid).
std::atomic<long>& countdown()
{
    static std::atomic<long> remaining = [] {
        const char* env = std::getenv("MWL_CRASH_AFTER");
        return env != nullptr ? std::atol(env) : 0L;
    }();
    return remaining;
}

} // namespace

bool armed()
{
    return countdown().load(std::memory_order_relaxed) > 0;
}

bool torn()
{
    const char* env = std::getenv("MWL_CRASH_TORN");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

bool tick()
{
    if (!armed()) {
        return false;
    }
    return countdown().fetch_sub(1, std::memory_order_relaxed) == 1;
}

void crash()
{
    std::_Exit(crash_exit_code);
}

} // namespace mwl::fault
