// Unit tests for src/ilp: the time-indexed formulation of [5], decoding to
// a validator-clean datapath, agreement with the independent exhaustive
// optimum, and the variable-count scaling with lambda that drives the
// paper's Table 2.

#include "core/validate.hpp"
#include "dfg/analysis.hpp"
#include "ilp/exhaustive.hpp"
#include "ilp/formulation.hpp"
#include "model/hardware_model.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "tgff/generator.hpp"

#include <gtest/gtest.h>

namespace mwl {
namespace {

sequencing_graph fig1_graph()
{
    sequencing_graph g;
    const op_id m1 = g.add_operation(op_shape::multiplier(12, 12), "m1");
    const op_id m2 = g.add_operation(op_shape::multiplier(8, 4), "m2");
    const op_id a = g.add_operation(op_shape::adder(12), "a");
    g.add_dependency(m1, a);
    g.add_dependency(m2, a);
    return g;
}

// -------------------------------------------------------------- build --

TEST(IlpBuild, CountsMatchStructure)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    const ilp_model m = build_ilp(g, model, 5);
    // One n_r per closure resource + start variables.
    EXPECT_EQ(m.count_var.size(), m.resources.size());
    EXPECT_GT(m.x_vars.size(), 0u);
    EXPECT_EQ(m.problem.n_vars(), m.count_var.size() + m.x_vars.size());
}

TEST(IlpBuild, VariableCountGrowsWithLambda)
{
    // The paper: "The number of variables in the ILP model scales with the
    // latency constraint".
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    const std::size_t tight = build_ilp(g, model, 5).problem.n_vars();
    const std::size_t slack = build_ilp(g, model, 8).problem.n_vars();
    const std::size_t slacker = build_ilp(g, model, 12).problem.n_vars();
    EXPECT_LT(tight, slack);
    EXPECT_LT(slack, slacker);
}

TEST(IlpBuild, InfeasibleLambdaThrows)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    EXPECT_THROW(static_cast<void>(build_ilp(g, model, 4)),
                 infeasible_error);
}

TEST(IlpBuild, StartVariablesRespectWindows)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    const int lambda = 6;
    const ilp_model m = build_ilp(g, model, lambda);
    for (const auto& xv : m.x_vars) {
        const int lr = model.latency(m.resources[xv.resource_index]);
        EXPECT_GE(xv.t, 0);
        EXPECT_LE(xv.t + lr, lambda);
        EXPECT_TRUE(
            m.resources[xv.resource_index].covers(g.shape(xv.o)));
    }
}

// -------------------------------------------------------------- solve --

TEST(IlpSolve, Fig1TightOptimum)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    const ilp_result r = solve_ilp(g, model, 5);
    ASSERT_EQ(r.status, mip_status::optimal);
    require_valid(g, model, r.path, 5);
    EXPECT_DOUBLE_EQ(r.path.total_area, 188.0); // both mults + adder
}

TEST(IlpSolve, Fig1SlackOptimum)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    const ilp_result r = solve_ilp(g, model, 8);
    ASSERT_EQ(r.status, mip_status::optimal);
    require_valid(g, model, r.path, 8);
    EXPECT_DOUBLE_EQ(r.path.total_area, 156.0); // shared 12x12 + adder
}

TEST(IlpSolve, EmptyGraph)
{
    sequencing_graph g;
    const sonic_model model;
    const ilp_result r = solve_ilp(g, model, 0);
    EXPECT_EQ(r.status, mip_status::optimal);
    EXPECT_DOUBLE_EQ(r.path.total_area, 0.0);
}

TEST(IlpSolve, SingleOp)
{
    sequencing_graph g;
    g.add_operation(op_shape::adder(9));
    const sonic_model model;
    const ilp_result r = solve_ilp(g, model, 2);
    ASSERT_EQ(r.status, mip_status::optimal);
    require_valid(g, model, r.path, 2);
    EXPECT_DOUBLE_EQ(r.path.total_area, 9.0);
}

TEST(IlpSolve, SerialChainSharesOneResourcePerKind)
{
    sequencing_graph g;
    op_id prev = g.add_operation(op_shape::adder(8));
    for (int i = 0; i < 3; ++i) {
        const op_id next = g.add_operation(op_shape::adder(8));
        g.add_dependency(prev, next);
        prev = next;
    }
    const sonic_model model;
    const ilp_result r = solve_ilp(g, model, 8);
    ASSERT_EQ(r.status, mip_status::optimal);
    require_valid(g, model, r.path, 8);
    EXPECT_EQ(r.path.instances.size(), 1u);
    EXPECT_DOUBLE_EQ(r.path.total_area, 8.0);
}

TEST(IlpSolve, DecodedInstanceCountMatchesUsageBound)
{
    // Two overlapping identical mults need two instances.
    sequencing_graph g;
    g.add_operation(op_shape::multiplier(8, 8));
    g.add_operation(op_shape::multiplier(8, 8));
    const sonic_model model;
    const ilp_result r = solve_ilp(g, model, 2);
    ASSERT_EQ(r.status, mip_status::optimal);
    require_valid(g, model, r.path, 2);
    EXPECT_EQ(r.path.instances.size(), 2u);
    EXPECT_DOUBLE_EQ(r.path.total_area, 128.0);
}

TEST(IlpSolve, MatchesExhaustiveOnRandomTinyGraphs)
{
    rng random(31337);
    int solved = 0;
    for (int trial = 0; trial < 12; ++trial) {
        tgff_options opts;
        opts.n_ops = 2 + static_cast<std::size_t>(trial) % 4; // 2..5 ops
        opts.max_width = 12;
        const sequencing_graph g = generate_tgff(opts, random);
        const sonic_model model;
        const int lmin = min_latency(g, model);
        for (const int extra : {0, 1}) {
            const int lambda = lmin + extra;
            const auto reference =
                exhaustive_optimal_area(g, model, lambda);
            if (!reference.has_value()) {
                continue; // enumeration too large; skip
            }
            const ilp_result r = solve_ilp(g, model, lambda);
            ASSERT_EQ(r.status, mip_status::optimal)
                << "trial " << trial << " lambda " << lambda;
            require_valid(g, model, r.path, lambda);
            EXPECT_NEAR(r.path.total_area, *reference, 1e-6)
                << "trial " << trial << " lambda " << lambda;
            ++solved;
        }
    }
    EXPECT_GT(solved, 10); // the sweep must actually exercise instances
}

TEST(IlpSolve, OptimumNeverWorsensWithSlack)
{
    rng random(2718);
    tgff_options opts;
    opts.n_ops = 4;
    const sequencing_graph g = generate_tgff(opts, random);
    const sonic_model model;
    const int lmin = min_latency(g, model);
    double prev = std::numeric_limits<double>::infinity();
    for (int extra = 0; extra <= 3; ++extra) {
        const ilp_result r = solve_ilp(g, model, lmin + extra);
        ASSERT_EQ(r.status, mip_status::optimal);
        EXPECT_LE(r.path.total_area, prev + 1e-9);
        prev = r.path.total_area;
    }
}

// --------------------------------------------------------- exhaustive --

TEST(Exhaustive, EmptyGraphIsZero)
{
    sequencing_graph g;
    const sonic_model model;
    EXPECT_DOUBLE_EQ(exhaustive_optimal_area(g, model, 0).value(), 0.0);
}

TEST(Exhaustive, SingleOpIsOwnArea)
{
    sequencing_graph g;
    g.add_operation(op_shape::multiplier(10, 10));
    const sonic_model model;
    EXPECT_DOUBLE_EQ(exhaustive_optimal_area(g, model, 3).value(), 100.0);
}

TEST(Exhaustive, SharingBeatsParallelWhenSlackAllows)
{
    sequencing_graph g;
    g.add_operation(op_shape::multiplier(8, 8));
    g.add_operation(op_shape::multiplier(8, 8));
    const sonic_model model;
    EXPECT_DOUBLE_EQ(exhaustive_optimal_area(g, model, 2).value(), 128.0);
    EXPECT_DOUBLE_EQ(exhaustive_optimal_area(g, model, 4).value(), 64.0);
}

TEST(Exhaustive, StateCapReturnsNullopt)
{
    sequencing_graph g;
    for (int i = 0; i < 6; ++i) {
        g.add_operation(op_shape::multiplier(8 + i, 8));
    }
    const sonic_model model;
    EXPECT_FALSE(
        exhaustive_optimal_area(g, model, 30, /*max_states=*/100)
            .has_value());
}

} // namespace
} // namespace mwl
