// mwl_alloc -- command-line datapath allocator.
//
// Reads a sequencing graph in the .mwl text format (src/io/graph_io.hpp),
// allocates a datapath with the chosen algorithm, and reports the result;
// optionally emits Graphviz DOT for the graph and structural Verilog for
// the allocated design.
//
// Usage:
//   mwl_alloc GRAPH.mwl [--lambda N | --slack PCT] [--algorithm NAME]
//             [--sweep] [--jobs N] [--verilog FILE] [--dot] [--rtl] [--csv]
//
//   --algorithm dpalloc (default) | two-stage | descending | ilp
//   --slack PCT  : lambda = ceil(lambda_min * (1 + PCT/100)); default 0
//   --sweep      : print the Pareto frontier up to --slack (default 100%)
//                  instead of one allocation
//   --jobs N     : worker threads for --sweep (default 1 = serial order,
//                  identical results at every N)
//   --rtl        : also report register/mux inventory and extended area
//   echo 'op a mul 8 8' | mwl_alloc -   reads from stdin

#include "baseline/descending.hpp"
#include "baseline/two_stage.hpp"
#include "core/dpalloc.hpp"
#include "core/validate.hpp"
#include "dfg/analysis.hpp"
#include "dfg/dot.hpp"
#include "engine/parallel_pareto.hpp"
#include "ilp/formulation.hpp"
#include "io/graph_io.hpp"
#include "model/hardware_model.hpp"
#include "report/table.hpp"
#include "rtl/netlist.hpp"
#include "rtl/verilog.hpp"
#include "support/parse_num.hpp"
#include "tgff/corpus.hpp"

#include <fstream>
#include <iostream>
#include <optional>
#include <string>

namespace {

[[noreturn]] void usage(int code)
{
    std::cout <<
        "usage: mwl_alloc GRAPH.mwl [options]\n"
        "  --lambda N          latency constraint in control steps\n"
        "  --slack PCT         lambda = ceil(lambda_min*(1+PCT/100)) "
        "[default 0]\n"
        "  --algorithm NAME    dpalloc | two-stage | descending | ilp "
        "[dpalloc]\n"
        "  --sweep             print the Pareto frontier up to --slack "
        "[default 100]\n"
        "  --jobs N            worker threads for --sweep [1]\n"
        "  --verilog FILE      write structural Verilog\n"
        "  --dot               print the graph in DOT form\n"
        "  --rtl               report registers/muxes and extended area\n"
        "  GRAPH.mwl of '-' reads the graph from stdin\n";
    std::exit(code);
}

} // namespace

int main(int argc, char** argv)
{
    using namespace mwl;

    std::string graph_file;
    std::optional<int> lambda_arg;
    std::optional<double> slack_arg;
    std::string algorithm = "dpalloc";
    std::string verilog_file;
    bool want_dot = false;
    bool want_rtl = false;
    bool want_sweep = false;
    std::size_t sweep_jobs = 1;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "mwl_alloc: missing value for " << arg << '\n';
                usage(2);
            }
            return argv[++i];
        };
        // parse_*_checked throws on malformed or out-of-range numbers
        // (including trailing junk like "4x"), so a typo is a diagnostic
        // and exit 2 -- never an uncaught stoi abort.
        try {
        if (arg == "--lambda") {
            lambda_arg = parse_int_checked(value());
        } else if (arg == "--slack") {
            slack_arg = parse_double_checked(value()) / 100.0;
        } else if (arg == "--sweep") {
            want_sweep = true;
        } else if (arg == "--jobs") {
            sweep_jobs = parse_size_checked(value());
        } else if (arg == "--algorithm") {
            algorithm = value();
        } else if (arg == "--verilog") {
            verilog_file = value();
        } else if (arg == "--dot") {
            want_dot = true;
        } else if (arg == "--rtl") {
            want_rtl = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
            std::cerr << "mwl_alloc: unknown option " << arg << '\n';
            usage(2);
        } else {
            graph_file = arg;
        }
        } catch (const error& e) {
            std::cerr << "mwl_alloc: bad value for " << arg << ": "
                      << e.what() << '\n';
            usage(2);
        }
    }
    if (graph_file.empty()) {
        usage(2);
    }
    if (want_sweep &&
        (lambda_arg || algorithm != "dpalloc" || !verilog_file.empty() ||
         want_rtl)) {
        std::cerr << "mwl_alloc: --sweep explores dpalloc over a lambda"
                     " range; it cannot be combined with --lambda,"
                     " --algorithm, --verilog or --rtl\n";
        usage(2);
    }

    try {
        sequencing_graph graph;
        if (graph_file == "-") {
            graph = parse_graph(std::cin);
        } else {
            std::ifstream in(graph_file);
            if (!in) {
                std::cerr << "mwl_alloc: cannot open " << graph_file << '\n';
                return 1;
            }
            graph = parse_graph(in);
        }

        const sonic_model model;
        const int lambda_min = min_latency(graph, model);

        if (want_sweep) {
            pareto_options sweep;
            sweep.max_slack = slack_arg.value_or(1.0);
            std::cout << "graph: " << graph.size() << " operations, "
                      << graph.edge_count() << " dependencies, sweeping"
                      << " lambda " << lambda_min << ".."
                      << relaxed_lambda(lambda_min, sweep.max_slack) << '\n';
            if (want_dot) {
                std::cout << '\n' << to_dot(graph) << '\n';
            }
            const auto frontier =
                parallel_pareto_sweep(graph, model, sweep, sweep_jobs);
            table t("Pareto frontier (slack " +
                    table::num(sweep.max_slack * 100.0, 0) + "%, " +
                    std::to_string(sweep_jobs) + " jobs)");
            t.header({"lambda", "latency", "area", "instances"});
            for (const pareto_point& p : frontier) {
                require_valid(graph, model, p.path, p.lambda);
                t.row({table::num(p.lambda), table::num(p.latency),
                       table::num(p.area, 1),
                       table::num(static_cast<int>(p.path.instances.size()))});
            }
            std::cout << '\n';
            t.print(std::cout);
            return 0;
        }

        const int lambda = lambda_arg
                               ? *lambda_arg
                               : relaxed_lambda(lambda_min,
                                                slack_arg.value_or(0.0));
        std::cout << "graph: " << graph.size() << " operations, "
                  << graph.edge_count() << " dependencies, lambda_min "
                  << lambda_min << ", lambda " << lambda << '\n';
        if (want_dot) {
            std::cout << '\n' << to_dot(graph) << '\n';
        }

        datapath path;
        if (algorithm == "dpalloc") {
            const dpalloc_result r = dpalloc(graph, model, lambda);
            std::cout << "dpalloc: " << r.stats.iterations << " iterations, "
                      << r.stats.refinements << " refinements\n";
            path = r.path;
        } else if (algorithm == "two-stage") {
            const two_stage_result r =
                two_stage_allocate(graph, model, lambda);
            std::cout << "two-stage: optimal binding "
                      << (r.proven_optimal_binding ? "proven" : "capped")
                      << ", " << r.nodes << " B&B nodes\n";
            path = r.path;
        } else if (algorithm == "descending") {
            path = descending_allocate(graph, model, lambda);
        } else if (algorithm == "ilp") {
            const ilp_result r = solve_ilp(graph, model, lambda);
            std::cout << "ilp: " << r.n_variables << " vars, "
                      << r.n_constraints << " rows, " << r.nodes
                      << " B&B nodes, status "
                      << (r.status == mip_status::optimal ? "optimal"
                                                          : "limit")
                      << '\n';
            path = r.path;
        } else {
            std::cerr << "mwl_alloc: unknown algorithm '" << algorithm
                      << "'\n";
            return 2;
        }

        require_valid(graph, model, path, lambda);
        std::cout << '\n' << describe(path, graph);

        if (want_rtl || !verilog_file.empty()) {
            const rtl_netlist net = build_rtl(graph, model, path);
            if (want_rtl) {
                std::cout << "\nrtl: " << net.registers.size()
                          << " registers, " << net.muxes.size()
                          << " muxes\n";
                std::cout << "extended area: fu " << net.fu_area << " + reg "
                          << net.register_area << " + mux " << net.mux_area
                          << " = " << net.total_area() << '\n';
            }
            if (!verilog_file.empty()) {
                std::ofstream out(verilog_file);
                if (!out) {
                    std::cerr << "mwl_alloc: cannot write " << verilog_file
                              << '\n';
                    return 1;
                }
                out << to_verilog(graph, path, net, "mwl_datapath");
                std::cout << "verilog written to " << verilog_file << '\n';
            }
        }
        return 0;
    } catch (const error& e) {
        std::cerr << "mwl_alloc: " << e.what() << '\n';
        return 1;
    }
}
