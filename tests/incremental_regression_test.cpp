// Regression suite for the incremental DPAlloc pipeline: every cache and
// engine introduced for speed (event-driven scheduling, memoized /
// warm-started scheduling sets, chain memoization in BindSelect, cached
// WCG latency bounds) must leave results *byte-identical* to the
// from-scratch reference pipeline on the tgff corpus. See PERF.md for the
// invariants each cache maintains.

#include "core/dpalloc.hpp"
#include "sched/incomplete_scheduler.hpp"
#include "sched/list_scheduler.hpp"
#include "support/rng.hpp"
#include "tgff/corpus.hpp"
#include "tgff/generator.hpp"
#include "wcg/wcg.hpp"

#include <gtest/gtest.h>

namespace mwl {
namespace {

void expect_identical(const dpalloc_result& a, const dpalloc_result& b,
                      const std::string& label)
{
    // datapath
    EXPECT_EQ(a.path.start, b.path.start) << label;
    EXPECT_EQ(a.path.instance_of_op, b.path.instance_of_op) << label;
    EXPECT_EQ(a.path.total_area, b.path.total_area) << label;
    EXPECT_EQ(a.path.latency, b.path.latency) << label;
    ASSERT_EQ(a.path.instances.size(), b.path.instances.size()) << label;
    for (std::size_t i = 0; i < a.path.instances.size(); ++i) {
        const datapath_instance& x = a.path.instances[i];
        const datapath_instance& y = b.path.instances[i];
        EXPECT_EQ(x.shape, y.shape) << label << " instance " << i;
        EXPECT_EQ(x.latency, y.latency) << label << " instance " << i;
        EXPECT_EQ(x.area, y.area) << label << " instance " << i;
        EXPECT_EQ(x.ops, y.ops) << label << " instance " << i;
    }
    // stats
    EXPECT_EQ(a.stats.iterations, b.stats.iterations) << label;
    EXPECT_EQ(a.stats.refinements, b.stats.refinements) << label;
    EXPECT_EQ(a.stats.edges_deleted, b.stats.edges_deleted) << label;
    EXPECT_EQ(a.stats.final_capacity, b.stats.final_capacity) << label;
    EXPECT_EQ(a.stats.escalations, b.stats.escalations) << label;
    EXPECT_EQ(a.stats.cover_always_minimum, b.stats.cover_always_minimum)
        << label;
}

TEST(IncrementalRegression, DpallocIdenticalOnTgffCorpus)
{
    const sonic_model model;
    for (const std::size_t n : {4u, 8u, 12u, 16u, 20u}) {
        const auto corpus = make_corpus(n, 4, model, 777);
        for (std::size_t gi = 0; gi < corpus.size(); ++gi) {
            const corpus_entry& e = corpus[gi];
            for (const double slack : {0.0, 0.1, 0.3}) {
                const int lambda = relaxed_lambda(e.lambda_min, slack);
                dpalloc_options incremental;
                dpalloc_options reference;
                reference.incremental = false;
                const dpalloc_result a =
                    dpalloc(e.graph, model, lambda, incremental);
                const dpalloc_result b =
                    dpalloc(e.graph, model, lambda, reference);
                expect_identical(a, b,
                                 "n=" + std::to_string(n) + " graph=" +
                                     std::to_string(gi) + " slack=" +
                                     std::to_string(slack));
            }
        }
    }
}

TEST(IncrementalRegression, DpallocIdenticalUnderClassicConstraint)
{
    const sonic_model model;
    const auto corpus = make_corpus(12, 4, model, 778);
    for (std::size_t gi = 0; gi < corpus.size(); ++gi) {
        const corpus_entry& e = corpus[gi];
        dpalloc_options incremental;
        incremental.classic_constraint = true;
        dpalloc_options reference = incremental;
        reference.incremental = false;
        const dpalloc_result a =
            dpalloc(e.graph, model, e.lambda_min, incremental);
        const dpalloc_result b =
            dpalloc(e.graph, model, e.lambda_min, reference);
        expect_identical(a, b, "classic graph=" + std::to_string(gi));
    }
}

TEST(IncrementalRegression, DpallocIdenticalWithoutGrowthAndReassign)
{
    // The ablation arms exercise different BindSelect paths; the chain
    // memoization must be inert there too.
    const sonic_model model;
    const auto corpus = make_corpus(10, 3, model, 779);
    for (const corpus_entry& e : corpus) {
        dpalloc_options incremental;
        incremental.enable_growth = false;
        incremental.reassign_cheapest = false;
        dpalloc_options reference = incremental;
        reference.incremental = false;
        expect_identical(dpalloc(e.graph, model, e.lambda_min, incremental),
                         dpalloc(e.graph, model, e.lambda_min, reference),
                         "ablation");
    }
}

TEST(IncrementalRegression, EventScheduleMatchesReferenceScan)
{
    rng random(0xE7E7);
    const sonic_model model;
    for (int trial = 0; trial < 25; ++trial) {
        tgff_options opts;
        opts.n_ops = 4 + static_cast<std::size_t>(trial) % 14;
        const sequencing_graph g = generate_tgff(opts, random);
        wordlength_compatibility_graph wcg(g, model);
        for (const int capacity : {1, 2}) {
            incomplete_sched_scratch scratch;
            const incomplete_schedule_result ev = schedule_incomplete(
                wcg, capacity, &scratch, sched_engine::event);
            const incomplete_schedule_result ref = schedule_incomplete(
                wcg, capacity, nullptr, sched_engine::reference_scan);
            EXPECT_EQ(ev.start, ref.start) << "trial " << trial;
            EXPECT_EQ(ev.length, ref.length) << "trial " << trial;
            EXPECT_EQ(ev.scheduling_set, ref.scheduling_set)
                << "trial " << trial;
        }
        // Also after refinement shrank some H rows.
        for (const op_id o : g.all_ops()) {
            if (wcg.refinable(o)) {
                wcg.refine_op(o);
                break;
            }
        }
        const incomplete_schedule_result ev =
            schedule_incomplete(wcg, 1, nullptr, sched_engine::event);
        const incomplete_schedule_result ref = schedule_incomplete(
            wcg, 1, nullptr, sched_engine::reference_scan);
        EXPECT_EQ(ev.start, ref.start) << "refined trial " << trial;
    }
}

TEST(IncrementalRegression, EventListScheduleMatchesReferenceScan)
{
    rng random(0xE7E8);
    const sonic_model model;
    for (int trial = 0; trial < 25; ++trial) {
        tgff_options opts;
        opts.n_ops = 4 + static_cast<std::size_t>(trial) % 14;
        const sequencing_graph g = generate_tgff(opts, random);
        std::vector<int> lat;
        lat.reserve(g.size());
        for (const op_id o : g.all_ops()) {
            lat.push_back(model.latency(g.shape(o)));
        }
        for (const int limit : {1, 2, 1000}) {
            type_limits limits;
            limits.add = limit;
            limits.mul = limit;
            event_schedule_workspace ws;
            const list_schedule_result ev = list_schedule(
                g, lat, limits, &ws, sched_engine::event);
            const list_schedule_result ref = list_schedule(
                g, lat, limits, nullptr, sched_engine::reference_scan);
            EXPECT_EQ(ev.start, ref.start)
                << "trial " << trial << " limit " << limit;
            EXPECT_EQ(ev.length, ref.length)
                << "trial " << trial << " limit " << limit;
        }
    }
}

TEST(IncrementalRegression, CachedWcgBoundsMatchRescan)
{
    // The cached latency bounds must track delete_edge/refine_op exactly.
    rng random(0xE7E9);
    const sonic_model model;
    tgff_options opts;
    opts.n_ops = 14;
    const sequencing_graph g = generate_tgff(opts, random);
    wordlength_compatibility_graph wcg(g, model);

    const auto check_all = [&]() {
        for (const op_id o : g.all_ops()) {
            int upper = 0;
            int lower = 0;
            for (const res_id r : wcg.resources_for(o)) {
                upper = std::max(upper, wcg.latency(r));
                lower = lower == 0 ? wcg.latency(r)
                                   : std::min(lower, wcg.latency(r));
            }
            EXPECT_EQ(wcg.latency_upper_bound(o), upper);
            EXPECT_EQ(wcg.latency_lower_bound(o), lower);
            EXPECT_EQ(wcg.refinable(o), lower < upper);
        }
    };

    check_all();
    std::uint64_t version = wcg.edge_version();
    // Refine every op to exhaustion, re-checking the caches at each step.
    bool progress = true;
    while (progress) {
        progress = false;
        for (const op_id o : g.all_ops()) {
            if (wcg.refinable(o)) {
                const int deleted = wcg.refine_op(o);
                EXPECT_EQ(wcg.edge_version(),
                          version + static_cast<std::uint64_t>(deleted));
                version = wcg.edge_version();
                check_all();
                progress = true;
                break;
            }
        }
    }
}

TEST(IncrementalRegression, SchedulingSetCacheHitsAndWarmStarts)
{
    const sonic_model model;
    rng random(0xE7EA);
    tgff_options opts;
    opts.n_ops = 12;
    const sequencing_graph g = generate_tgff(opts, random);
    wordlength_compatibility_graph wcg(g, model);

    scheduling_set_cache cache;
    const scheduling_set_result cold = min_scheduling_set(wcg);
    const scheduling_set_result warm = min_scheduling_set(wcg, cache);
    EXPECT_EQ(cold.members, warm.members);
    EXPECT_EQ(cold.proven_minimum, warm.proven_minimum);

    // Unchanged version: memo hit must return the identical cover.
    const scheduling_set_result hit = min_scheduling_set(wcg, cache);
    EXPECT_EQ(hit.members, warm.members);

    // After each refinement the cached path must agree with a cold solve.
    bool progress = true;
    while (progress) {
        progress = false;
        for (const op_id o : g.all_ops()) {
            if (wcg.refinable(o)) {
                wcg.refine_op(o);
                progress = true;
                break;
            }
        }
        const scheduling_set_result a = min_scheduling_set(wcg);
        const scheduling_set_result b = min_scheduling_set(wcg, cache);
        EXPECT_EQ(a.members, b.members);
        EXPECT_EQ(a.proven_minimum, b.proven_minimum);
    }
}

} // namespace
} // namespace mwl
