// Static value-range / known-sign analyzer for elaborated RTL.
//
// The differential harness (src/verify/) proves value preservation by
// *sampling*: random vectors through the simulator and the RTL
// interpreter. This module proves it by *analysis*, without executing a
// single input: starting from the declared wordlengths it propagates
// conservative signed intervals (analyze/value_range.hpp) through the
// structural RTL IR (rtl/rtl_design.hpp) in capture order, tracking for
// every shared register which operation's value it holds and at what
// effective width, and checks that every width adaptation -- operand mux
// slices, FU port extensions, register captures, primary-output slices --
// admits the full incoming range. The flagged classes are exactly the
// value-corruption bugs PR 3 could only find dynamically:
//
//   range.operand-zero-extend   negative operand zero-extended into a port
//   range.operand-trunc         operand sliced below its value range
//   range.operand-unwrapped     no wrap at the operation's native width
//   range.capture-zero-extend   negative result zero-extended into a
//                               wider shared register (stale upper bits
//                               on readback)
//   range.capture-trunc / range.capture-unwrapped
//   range.unsigned-mul          unsigned multiply body on signed operands
//   range.stale-operand         shared register clobbered before a read
//   range.output-clobbered      output register recycled by a later value
//   range.uninitialized-read / range.missing-select / range.input-narrow
//
// A key property, tested by the mutation harness (tests/analyze_test.cpp):
// on a correctly elaborated design every adaptation is *structurally*
// exact (slice width == the required native width), so the analyzer
// reports nothing without consulting a single interval -- zero false
// positives by construction. Intervals only decide whether a *mismatched*
// adaptation still happens to be value-preserving, and over-approximation
// errs toward flagging, never toward missing (zero false negatives).
//
// Structural lints ride on the same walk (select overlaps, same-cycle
// write-write races, dead/unwritten registers, unread inputs, capture
// cardinality), and `analyze_allocation` re-derives schedule precedence,
// instance exclusivity and register lifetime overlap independently of
// core/validate.

#ifndef MWL_ANALYZE_ANALYZE_HPP
#define MWL_ANALYZE_ANALYZE_HPP

#include "model/hardware_model.hpp"
#include "rtl/elaborate.hpp"
#include "support/finding.hpp"

#include <cstddef>
#include <vector>

namespace mwl {

struct analyze_options {
    bool structural = true; ///< IR lints (overlaps, dead nodes, races)
    bool ranges = true;     ///< value-range / known-sign propagation
    bool schedule = true;   ///< datapath-level re-derivations
                            ///< (analyze_allocation only)
    /// Stop collecting after this many findings (pathological designs).
    std::size_t max_findings = 256;
};

struct analysis_report {
    std::vector<finding> findings;
    std::size_t checks = 0;  ///< individual facts verified
    bool truncated = false;  ///< finding list hit max_findings

    [[nodiscard]] bool ok() const { return findings.empty(); }
    void merge(analysis_report other);
};

/// Analyze one elaborated design against the graph that defines its
/// reference semantics. Never throws on malformed designs: inconsistent
/// indices and widths become findings, and the value walk degrades
/// gracefully around them.
[[nodiscard]] analysis_report analyze_design(const sequencing_graph& graph,
                                             const rtl_design& design,
                                             const analyze_options& options = {});

/// Full static verification of one allocation: re-derive schedule
/// precedence / exclusivity / register-lifetime overlap, then elaborate
/// (honouring the legacy bug knobs, for the mutation harness) and run
/// `analyze_design`. An elaboration failure is itself a finding
/// ("lint.elaborate-error"), never an exception.
[[nodiscard]] analysis_report analyze_allocation(
    const sequencing_graph& graph, const hardware_model& model,
    const datapath& path, const elaborate_options& elaborate_opts = {},
    const analyze_options& options = {});

} // namespace mwl

#endif // MWL_ANALYZE_ANALYZE_HPP
