#include "wordlength/tune_spec.hpp"

#include "scenarios/scenarios.hpp"
#include "support/parse_num.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_set>

namespace mwl {

namespace {

[[noreturn]] void fail_line(std::size_t line_no, const std::string& message)
{
    throw spec_error("spec line " + std::to_string(line_no) + ": " +
                     message);
}

/// Run one of the checked numeric parsers, turning its
/// `precondition_error` into a line-numbered `spec_error`.
template <typename Parse>
auto on_line(std::size_t line_no, Parse&& parse)
{
    try {
        return parse();
    } catch (const error& e) {
        fail_line(line_no, e.what());
    }
}

bool split_kv(const std::string& token, std::string& key, std::string& value)
{
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
        return false;
    }
    key = token.substr(0, eq);
    value = token.substr(eq + 1);
    return true;
}

} // namespace

tune_spec tune_spec::parse(std::istream& in)
{
    tune_spec spec;
    std::unordered_set<std::string> seen_names;
    bool saw_budget = false;
    bool saw_frac = false;
    bool saw_search = false;
    bool saw_gain = false;
    bool saw_lambda = false;

    const std::vector<std::string> known = scenario_names();
    std::string raw;
    std::size_t line_no = 0;
    while (std::getline(in, raw)) {
        ++line_no;
        std::istringstream line(raw);
        std::string keyword;
        if (!(line >> keyword) || keyword.front() == '#') {
            continue;
        }
        if (keyword == "scenario") {
            std::string name;
            bool any = false;
            while (line >> name) {
                any = true;
                if (name == "all") {
                    for (const std::string& each : known) {
                        if (seen_names.insert(each).second) {
                            spec.entries.push_back({each, {}});
                        }
                    }
                    continue;
                }
                if (std::find(known.begin(), known.end(), name) ==
                    known.end()) {
                    fail_line(line_no, "unknown scenario '" + name + "'");
                }
                if (!seen_names.insert(name).second) {
                    fail_line(line_no, "duplicate design '" + name + "'");
                }
                spec.entries.push_back({name, {}});
            }
            if (!any) {
                fail_line(line_no, "expected 'scenario NAME ...'");
            }
        } else if (keyword == "graph") {
            std::string file;
            bool any = false;
            while (line >> file) {
                any = true;
                if (!seen_names.insert(file).second) {
                    fail_line(line_no, "duplicate design '" + file + "'");
                }
                spec.entries.push_back({{}, file});
            }
            if (!any) {
                fail_line(line_no, "expected 'graph FILE ...'");
            }
        } else if (keyword == "budget") {
            if (saw_budget) {
                fail_line(line_no, "duplicate budget line");
            }
            saw_budget = true;
            std::string token;
            while (line >> token) {
                const double value = on_line(line_no, [&] {
                    return parse_double_checked(token);
                });
                if (value <= 0.0) {
                    fail_line(line_no, "budgets must be positive, got '" +
                                           token + "'");
                }
                if (std::find(spec.budgets.begin(), spec.budgets.end(),
                              value) != spec.budgets.end()) {
                    fail_line(line_no,
                              "duplicate budget '" + token + "'");
                }
                spec.budgets.push_back(value);
            }
            if (spec.budgets.empty()) {
                fail_line(line_no, "expected 'budget VALUE ...'");
            }
        } else if (keyword == "frac") {
            if (saw_frac) {
                fail_line(line_no, "duplicate frac line");
            }
            saw_frac = true;
            std::string token;
            std::string key;
            std::string value;
            while (line >> token) {
                if (!split_kv(token, key, value)) {
                    fail_line(line_no,
                              "expected key=value, got '" + token + "'");
                }
                if (key == "min") {
                    spec.min_frac_bits = on_line(line_no, [&] {
                        return parse_int_checked(value, token);
                    });
                } else if (key == "max") {
                    spec.max_frac_bits = on_line(line_no, [&] {
                        return parse_int_checked(value, token);
                    });
                } else {
                    fail_line(line_no, "unknown frac key '" + key + "'");
                }
            }
            if (spec.min_frac_bits < 0 ||
                spec.max_frac_bits < spec.min_frac_bits) {
                fail_line(line_no, "frac range must be 0 <= min <= max");
            }
        } else if (keyword == "search") {
            if (saw_search) {
                fail_line(line_no, "duplicate search line");
            }
            saw_search = true;
            std::string token;
            std::string key;
            std::string value;
            while (line >> token) {
                if (!split_kv(token, key, value)) {
                    fail_line(line_no,
                              "expected key=value, got '" + token + "'");
                }
                if (key == "seed") {
                    spec.seed = on_line(line_no, [&] {
                        return parse_u64_checked(value, token);
                    });
                } else if (key == "max-steps") {
                    spec.max_steps = on_line(line_no, [&] {
                        return parse_size_checked(value, token);
                    });
                } else if (key == "anneal") {
                    spec.anneal_iterations = on_line(line_no, [&] {
                        return parse_size_checked(value, token);
                    });
                } else if (key == "temp") {
                    spec.anneal_temp = on_line(line_no, [&] {
                        return parse_double_checked(value, token);
                    });
                    if (spec.anneal_temp <= 0.0) {
                        fail_line(line_no, "temp must be positive");
                    }
                } else {
                    fail_line(line_no, "unknown search key '" + key + "'");
                }
            }
        } else if (keyword == "gain") {
            if (saw_gain) {
                fail_line(line_no, "duplicate gain line");
            }
            saw_gain = true;
            std::string token;
            std::string key;
            std::string value;
            while (line >> token) {
                if (!split_kv(token, key, value)) {
                    fail_line(line_no,
                              "expected key=value, got '" + token + "'");
                }
                if (key == "model") {
                    if (value == "unit") {
                        spec.gains = gain_model::unit;
                    } else if (value == "attenuating") {
                        spec.gains = gain_model::attenuating;
                    } else {
                        fail_line(line_no, "unknown gain model '" + value +
                                               "' (unit | attenuating)");
                    }
                } else if (key == "base-frac") {
                    spec.base_frac_bits = on_line(line_no, [&] {
                        return parse_int_checked(value, token);
                    });
                    if (spec.base_frac_bits < 0) {
                        fail_line(line_no, "base-frac must be >= 0");
                    }
                } else if (key == "cap") {
                    spec.width_cap = on_line(line_no, [&] {
                        return parse_int_checked(value, token);
                    });
                    if (spec.width_cap < 4 || spec.width_cap > 48) {
                        fail_line(line_no, "cap must be in [4, 48]");
                    }
                } else {
                    fail_line(line_no, "unknown gain key '" + key + "'");
                }
            }
        } else if (keyword == "lambda") {
            if (saw_lambda) {
                fail_line(line_no, "duplicate lambda line");
            }
            saw_lambda = true;
            std::string token;
            std::string key;
            std::string value;
            while (line >> token) {
                if (!split_kv(token, key, value)) {
                    fail_line(line_no,
                              "expected key=value, got '" + token + "'");
                }
                if (key == "slack") {
                    const double percent = on_line(line_no, [&] {
                        return parse_double_checked(value, token);
                    });
                    if (percent < 0.0) {
                        fail_line(line_no, "slack must be non-negative");
                    }
                    spec.slack = percent / 100.0;
                } else {
                    fail_line(line_no, "unknown lambda key '" + key + "'");
                }
            }
        } else {
            fail_line(line_no, "unknown keyword '" + keyword + "'");
        }
    }
    if (spec.entries.empty()) {
        throw spec_error("spec names no designs");
    }
    if (spec.budgets.empty()) {
        throw spec_error("spec names no budgets");
    }
    return spec;
}

tune_spec tune_spec::parse(const std::string& text)
{
    std::istringstream in(text);
    return parse(in);
}

} // namespace mwl
