// Chain (clique) utilities on the schedule-derived orientation C.
//
// Once start times are fixed, "o1 completes before o2 starts" defines an
// interval order on operations; C is its transitive orientation, and the
// subgraph of G'(O, C) induced by any O(r) is a comparability graph whose
// cliques are exactly chains of pairwise non-overlapping, ordered
// operations (Golumbic [11]). Maximum cliques are therefore longest chains
// and are found by a simple DP instead of general clique search -- the
// linear-time observation the paper leans on in §2.3.

#ifndef MWL_WCG_CHAINS_HPP
#define MWL_WCG_CHAINS_HPP

#include "support/ids.hpp"

#include <span>
#include <vector>

namespace mwl {

/// One operation with its scheduled interval [start, start + latency).
struct timed_op {
    op_id op;
    int start = 0;
    int latency = 1;

    [[nodiscard]] int finish() const { return start + latency; }
};

/// True iff a precedes b in C: a finishes no later than b starts.
[[nodiscard]] inline bool precedes(const timed_op& a, const timed_op& b)
{
    return a.finish() <= b.start;
}

/// Maximum-cardinality chain among `items` under `precedes`. Deterministic:
/// ties are broken towards earlier start, then smaller op id. Returns the
/// chosen items in chain (time) order.
[[nodiscard]] std::vector<timed_op> longest_chain(
    std::span<const timed_op> items);

/// True iff every pair of `items` is ordered by `precedes` one way or the
/// other, i.e. the set is a clique of G'(O, C).
[[nodiscard]] bool is_chain(std::span<const timed_op> items);

} // namespace mwl

#endif // MWL_WCG_CHAINS_HPP
