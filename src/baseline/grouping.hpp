// Latency-preserving grouping rules shared by the two-stage baselines.
//
// Both baselines bind on a *fixed* schedule computed with native operation
// latencies, so two operations may share one physical resource only if the
// shared resource does not increase either operation's latency (the
// characterisation this paper gives of [4]): the group's covering resource
// (the join of its shapes) must have the same latency as every member's
// native latency, and members must be pairwise non-overlapping in time.

#ifndef MWL_BASELINE_GROUPING_HPP
#define MWL_BASELINE_GROUPING_HPP

#include "core/datapath.hpp"
#include "dfg/sequencing_graph.hpp"
#include "model/hardware_model.hpp"
#include "support/ids.hpp"

#include <optional>
#include <span>
#include <vector>

namespace mwl {

/// Shape of the cheapest resource for a latency-preserving group = join of
/// member shapes. Returns nullopt if the ops cannot legally share:
/// different kinds, unequal native latencies, join latency above the
/// members' native latency, or time overlap under the fixed schedule.
[[nodiscard]] std::optional<op_shape> latency_preserving_shape(
    const sequencing_graph& graph, const hardware_model& model,
    std::span<const op_id> ops, std::span<const int> start,
    std::span<const int> native);

/// Assemble a datapath from groups produced under the rule above.
/// Each group becomes one instance with the join shape.
[[nodiscard]] datapath make_grouped_datapath(
    const sequencing_graph& graph, const hardware_model& model,
    std::span<const std::vector<op_id>> groups, std::span<const int> start);

} // namespace mwl

#endif // MWL_BASELINE_GROUPING_HPP
