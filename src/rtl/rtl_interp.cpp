#include "rtl/rtl_interp.hpp"

#include "support/error.hpp"

#include <string>

namespace mwl {
namespace {

/// Apply an adaptation node to a source value held as a signed integer:
/// take the low `slice_width` bits, then extend to `out_width`. Matches
/// the printed {{n{sel}}, src[w-1:0]} concatenation bit for bit, with the
/// result interpreted as a signed `out_width`-bit quantity.
std::int64_t apply_adapt(std::int64_t value, const rtl_adapt& adapt)
{
    if (adapt.sign_extend) {
        // Slice + sign-extension: a two's-complement wrap at the slice
        // width; the widening to out_width preserves the signed value.
        return wrap_to_width(value, adapt.slice_width);
    }
    // Slice + zero-extension: the upper out_width - slice_width bits are
    // zero, so the value is the non-negative slice pattern -- unless the
    // slice already fills the sink, where bit out_width-1 is the sign.
    const std::uint64_t mask =
        (std::uint64_t{1} << adapt.slice_width) - 1;
    const std::int64_t pattern =
        static_cast<std::int64_t>(static_cast<std::uint64_t>(value) & mask);
    return wrap_to_width(pattern, adapt.out_width);
}

} // namespace

rtl_interp_result interpret(const rtl_design& design,
                            const sim_inputs& external)
{
    // Latch the primary inputs once: ports are constant wires for the
    // whole run, wrapped at their declared width like any hardware pin.
    std::vector<std::int64_t> input_value(design.inputs.size(), 0);
    for (std::size_t i = 0; i < design.inputs.size(); ++i) {
        const rtl_input& in = design.inputs[i];
        const std::size_t o = in.op.value();
        require(o < external.size() && in.ext_index < external[o].size(),
                "missing external operand " + std::to_string(in.ext_index) +
                    " for op " + std::to_string(o));
        input_value[i] = wrap_to_width(external[o][in.ext_index], in.width);
    }

    rtl_interp_result result;
    result.value_of_op.assign(design.n_ops, 0);
    result.capture_cycle_of_op.assign(design.n_ops, -1);
    result.cycles = design.latency;

    std::vector<std::int64_t> reg_value(design.register_width.size(), 0);

    // The FU operand registers are combinationally re-driven every cycle,
    // so evaluating a unit lazily at its capture cycles is exact: the
    // operand selection active in that cycle fully determines the value.
    const auto port_value = [&](const rtl_fu& fu, int port,
                                int cycle) -> std::int64_t {
        for (const rtl_operand_select& sel :
             fu.select[static_cast<std::size_t>(port)]) {
            if (sel.first_cycle <= cycle && cycle <= sel.last_cycle) {
                const std::int64_t raw =
                    sel.source.from == rtl_source::kind::reg
                        ? reg_value[sel.source.index]
                        : input_value[sel.source.index];
                return apply_adapt(raw, sel.adapt);
            }
        }
        return 0; // the mux default assignment
    };

    // Captures are sorted by cycle; process one posedge at a time with
    // nonblocking semantics: every functional unit latching this cycle is
    // evaluated against the register values of the *previous* edge, then
    // all writes commit together. (A value dying exactly when its register
    // is recycled has its last read and the overwriting capture on the
    // same edge; committing eagerly would leak the new value backwards.)
    for (std::size_t c = 0; c < design.captures.size();) {
        const int cycle = design.captures[c].cycle;
        const std::size_t first = c;
        std::vector<std::int64_t> staged;
        for (; c < design.captures.size() &&
               design.captures[c].cycle == cycle;
             ++c) {
            const rtl_capture& cap = design.captures[c];
            const rtl_fu& fu = design.fus[cap.fu];
            const std::int64_t a = port_value(fu, 0, cycle);
            const std::int64_t b = port_value(fu, 1, cycle);
            std::int64_t y = 0;
            if (fu.kind == op_kind::add) {
                // Addition is identical signed or unsigned mod 2^n.
                y = wrap_to_width(a + b, fu.width_y);
            } else if (fu.signed_arith) {
                y = wrap_to_width(a * b, fu.width_y);
            } else {
                // Legacy unsigned `*`: the product of the raw operand bit
                // patterns, which diverges from the signed product in the
                // upper half whenever an operand is negative.
                const std::uint64_t mask_a =
                    (std::uint64_t{1} << fu.width_a) - 1;
                const std::uint64_t mask_b =
                    (std::uint64_t{1} << fu.width_b) - 1;
                const std::uint64_t raw =
                    (static_cast<std::uint64_t>(a) & mask_a) *
                    (static_cast<std::uint64_t>(b) & mask_b);
                y = wrap_to_width(static_cast<std::int64_t>(raw),
                                  fu.width_y);
            }
            staged.push_back(apply_adapt(y, cap.adapt));
            // The op's value is the captured slice as a signed quantity --
            // what a consumer reading the (sign-extended) register sees.
            result.value_of_op[cap.op.value()] =
                wrap_to_width(y, cap.adapt.slice_width);
            result.capture_cycle_of_op[cap.op.value()] = cycle;
        }
        for (std::size_t k = first; k < c; ++k) {
            reg_value[design.captures[k].reg] = staged[k - first];
        }
    }

    result.outputs.reserve(design.outputs.size());
    for (const rtl_output& out : design.outputs) {
        result.outputs.push_back(
            wrap_to_width(reg_value[out.reg], out.width));
    }
    return result;
}

} // namespace mwl
