// Chain (clique) utilities on the schedule-derived orientation C.
//
// Once start times are fixed, "o1 completes before o2 starts" defines an
// interval order on operations; C is its transitive orientation, and the
// subgraph of G'(O, C) induced by any O(r) is a comparability graph whose
// cliques are exactly chains of pairwise non-overlapping, ordered
// operations (Golumbic [11]). Maximum cliques are therefore longest chains
// and are found by an O(k log k) sorted sweep instead of general clique
// search -- the linear-time observation the paper leans on in §2.3. The
// sweep reproduces, item for item, the chain the original O(k^2) DP
// returned (property-tested against the DP oracle in
// tests/chains_property_test.cpp).

#ifndef MWL_WCG_CHAINS_HPP
#define MWL_WCG_CHAINS_HPP

#include "support/ids.hpp"

#include <cstdint>
#include <span>
#include <vector>

namespace mwl {

/// One operation with its scheduled interval [start, start + latency).
struct timed_op {
    op_id op;
    int start = 0;
    int latency = 1;

    [[nodiscard]] int finish() const { return start + latency; }
};

/// True iff a precedes b in C: a finishes no later than b starts.
[[nodiscard]] inline bool precedes(const timed_op& a, const timed_op& b)
{
    return a.finish() <= b.start;
}

/// Reusable buffers for longest_chain, so a caller invoking it in a loop
/// (bind/bind_select.cpp does, once per Chvátal round per dirty resource)
/// performs no per-call allocations beyond the returned chain.
struct chain_scratch {
    std::vector<timed_op> sorted;
    std::vector<std::size_t> by_finish;
    std::vector<std::size_t> dp;
    std::vector<std::size_t> back;
};

/// Maximum-cardinality chain among `items` under `precedes`. Deterministic:
/// ties are broken towards earlier start, then smaller op id. Returns the
/// chosen items in chain (time) order. O(k log k).
[[nodiscard]] std::vector<timed_op> longest_chain(
    std::span<const timed_op> items);

/// As above, reusing `scratch`'s buffers.
[[nodiscard]] std::vector<timed_op> longest_chain(
    std::span<const timed_op> items, chain_scratch& scratch);

/// As above, writing the chain into `out` (cleared first) so a looping
/// caller reuses its capacity. This is the zero-allocation form.
void longest_chain_into(std::span<const timed_op> items,
                        chain_scratch& scratch, std::vector<timed_op>& out);

/// Sort-free form for callers that amortise the ordering work: `sorted`
/// must already be in canonical order (start asc, finish asc, op id asc)
/// and `by_finish` must hold the indices of `sorted` ordered by
/// (finish asc, index asc). Produces exactly the chain longest_chain_into
/// returns for the same item set in O(k). bind/bind_select.cpp builds both
/// orders once per schedule and filters them per Chvátal round.
void longest_chain_presorted(std::span<const timed_op> sorted,
                             std::span<const std::uint32_t> by_finish,
                             chain_scratch& scratch,
                             std::vector<timed_op>& out);

/// True iff every pair of `items` is ordered by `precedes` one way or the
/// other, i.e. the set is a clique of G'(O, C). O(k log k):
/// sort by start and check adjacent pairs (precedes is transitive).
[[nodiscard]] bool is_chain(std::span<const timed_op> items);

} // namespace mwl

#endif // MWL_WCG_CHAINS_HPP
