// The product of datapath allocation: a self-contained description of the
// scheduled, bound, wordlength-selected design -- what Fig. 1(b) of the
// paper depicts. Self-contained means it survives the internal wordlength
// compatibility graph it was derived from: resource types are stored as
// shapes with resolved latency/area.

#ifndef MWL_CORE_DATAPATH_HPP
#define MWL_CORE_DATAPATH_HPP

#include "dfg/sequencing_graph.hpp"
#include "model/op_shape.hpp"
#include "support/ids.hpp"

#include <string>
#include <vector>

namespace mwl {

/// One physical resource instance of the allocated datapath.
struct datapath_instance {
    op_shape shape;         ///< resource-wordlength type
    int latency = 1;        ///< cycles per execution on this instance
    double area = 0.0;      ///< model area units
    std::vector<op_id> ops; ///< operations it executes, in time order
};

/// A complete allocation result.
struct datapath {
    std::vector<int> start;                   ///< start step, per op id
    std::vector<std::size_t> instance_of_op;  ///< instance index, per op id
    std::vector<datapath_instance> instances; ///< physical resources
    double total_area = 0.0;                  ///< sum of instance areas
    int latency = 0; ///< achieved makespan (bound latencies)

    /// Latency actually incurred by operation o (its instance's latency).
    [[nodiscard]] int bound_latency(op_id o) const
    {
        return instances[instance_of_op[o.value()]].latency;
    }

    /// Wordlength the operation was selected to execute at.
    [[nodiscard]] const op_shape& selected_shape(op_id o) const
    {
        return instances[instance_of_op[o.value()]].shape;
    }
};

/// Multi-line human-readable rendering (one line per instance with its
/// operations and time intervals), used by the examples.
[[nodiscard]] std::string describe(const datapath& path,
                                   const sequencing_graph& graph);

} // namespace mwl

#endif // MWL_CORE_DATAPATH_HPP
