#include "core/dpalloc.hpp"

#include "bind/bind_select.hpp"
#include "core/critical.hpp"
#include "dfg/analysis.hpp"
#include "sched/incomplete_scheduler.hpp"
#include "sched/list_scheduler.hpp"
#include "support/error.hpp"
#include "wcg/wcg.hpp"

#include <algorithm>
#include <cstdint>
#include <optional>

namespace mwl {
namespace {

/// Assemble the self-contained result from the internal representations.
datapath make_datapath(const sequencing_graph& graph,
                       const wordlength_compatibility_graph& wcg,
                       const std::vector<int>& start, const binding& bind)
{
    datapath path;
    path.start = start;
    path.instance_of_op.assign(graph.size(), 0);
    path.instances.reserve(bind.cliques.size());
    for (std::size_t ci = 0; ci < bind.cliques.size(); ++ci) {
        const binding_clique& k = bind.cliques[ci];
        datapath_instance inst;
        inst.shape = wcg.resource(k.resource);
        inst.latency = wcg.latency(k.resource);
        inst.area = wcg.area(k.resource);
        inst.ops = k.ops;
        // Execution order within an instance is by start time.
        std::sort(inst.ops.begin(), inst.ops.end(),
                  [&](op_id a, op_id b) {
                      return start[a.value()] < start[b.value()];
                  });
        for (const op_id o : inst.ops) {
            path.instance_of_op[o.value()] = ci;
        }
        path.total_area += inst.area;
        path.instances.push_back(std::move(inst));
    }
    for (const op_id o : graph.all_ops()) {
        path.latency = std::max(path.latency,
                                start[o.value()] + path.bound_latency(o));
    }
    return path;
}

/// §2.4 candidate metric: refining o deletes d(o) edges out of the pool of
/// H edges incident to resources compatible with o. Smaller proportion =
/// less sharing potential destroyed. Compared exactly via cross
/// multiplication.
struct refine_metric {
    std::int64_t deleted = 0;
    std::int64_t pool = 1;
    bool bound_below_upper = false; // tie-break 1
};

refine_metric metric_for(const wordlength_compatibility_graph& wcg, op_id o,
                         int bound_latency_of_o)
{
    refine_metric m;
    m.pool = 0;
    const int top = wcg.latency_upper_bound(o);
    for (const res_id r : wcg.resources_for(o)) {
        m.pool += static_cast<std::int64_t>(wcg.ops_for(r).size());
        if (wcg.latency(r) == top) {
            ++m.deleted;
        }
    }
    MWL_ASSERT(m.pool >= 1); // o itself is in O(r) for every r in H(o)
    m.bound_below_upper = bound_latency_of_o < top;
    return m;
}

bool better_candidate(op_id a, const refine_metric& ma, op_id b,
                      const refine_metric& mb)
{
    const std::int64_t lhs = ma.deleted * mb.pool;
    const std::int64_t rhs = mb.deleted * ma.pool;
    if (lhs != rhs) {
        return lhs < rhs;
    }
    if (ma.bound_below_upper != mb.bound_below_upper) {
        return ma.bound_below_upper;
    }
    return a < b;
}

} // namespace

dpalloc_result dpalloc(const sequencing_graph& graph,
                       const hardware_model& model, int lambda,
                       const dpalloc_options& options)
{
    require(lambda >= 0, "latency constraint must be non-negative");
    require(options.initial_capacity >= 1, "initial capacity must be >= 1");

    dpalloc_result result;
    result.stats.final_capacity = options.initial_capacity;
    if (graph.empty()) {
        return result;
    }
    require_feasible(lambda >= min_latency(graph, model),
                     "latency constraint below the minimum achievable "
                     "latency of the sequencing graph");

    wordlength_compatibility_graph wcg(graph, model);
    int capacity = options.initial_capacity;

    const bind_options bind_opts{.enable_growth = options.enable_growth,
                                 .reassign_cheapest =
                                     options.reassign_cheapest,
                                 .cache_chains = options.incremental};
    const sched_engine engine = options.incremental
                                    ? sched_engine::event
                                    : sched_engine::reference_scan;

    // Cross-iteration scratch: scheduling buffers plus the scheduling-set
    // memo keyed on the WCG edge version. refine_op bumps the version, so
    // refinement iterations recompute the cover (warm-started by the
    // previous optimum) while capacity escalations reuse it outright.
    incomplete_sched_scratch scratch;
    incomplete_sched_scratch* const scratch_ptr =
        options.incremental ? &scratch : nullptr;

    // Per-iteration views of the tentative allocation, reused across
    // iterations (capacity persists; contents rewritten each round).
    std::vector<int> bound_lat;
    std::vector<std::size_t> instance_of_op;
    bind_scratch bind_sc;
    bind_scratch* const bind_sc_ptr = options.incremental ? &bind_sc : nullptr;
    critical_path_scratch critical_sc;
    critical_path_scratch* const critical_sc_ptr =
        options.incremental ? &critical_sc : nullptr;

    for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
        ++result.stats.iterations;
        std::vector<int> upper;
        if (options.incremental) {
            upper = wcg.latency_upper_bounds(); // O(|O|) from the cache
        } else {
            // Reference pipeline: re-derive every bound from the H rows,
            // as the pre-incremental implementation did.
            upper.reserve(graph.size());
            for (const op_id o : graph.all_ops()) {
                int bound = 0;
                for (const res_id r : wcg.resources_for(o)) {
                    bound = std::max(bound, wcg.latency(r));
                }
                upper.push_back(bound);
            }
        }

        // Schedule with incomplete wordlength information.
        std::vector<int> start;
        if (options.classic_constraint) {
            // Ablation arm: Eqn. 2 with N_y = capacity x (scheduling-set
            // members of kind y), the closest classic counterpart.
            const scheduling_set_result cover =
                options.incremental
                    ? min_scheduling_set(wcg, scratch.cover_cache)
                    : min_scheduling_set(wcg);
            result.stats.cover_always_minimum &= cover.proven_minimum;
            type_limits limits{.add = 0, .mul = 0};
            for (const res_id s : cover.members) {
                (wcg.resource(s).kind() == op_kind::add ? limits.add
                                                        : limits.mul) +=
                    capacity;
            }
            limits.add = std::max(limits.add, 1);
            limits.mul = std::max(limits.mul, 1);
            start = list_schedule(graph, upper, limits,
                                  scratch_ptr ? &scratch.ws : nullptr,
                                  engine)
                        .start;
        } else {
            incomplete_schedule_result sched =
                schedule_incomplete(wcg, capacity, scratch_ptr, engine);
            result.stats.cover_always_minimum &= sched.cover_proven_minimum;
            start = std::move(sched.start);
        }

        // Bind and select wordlengths. Only the per-op bound latencies and
        // the instance grouping are needed unless the allocation is
        // feasible, so the incremental pipeline assembles the full
        // datapath just once, on exit; the reference pipeline materialises
        // it every iteration, as the original loop did.
        const binding bind =
            bind_select(wcg, start, upper, bind_opts, bind_sc_ptr);
        bound_lat.assign(graph.size(), 0);
        instance_of_op.assign(graph.size(), 0);
        int achieved = 0;
        std::optional<datapath> reference_path;
        if (options.incremental) {
            for (std::size_t ci = 0; ci < bind.cliques.size(); ++ci) {
                const binding_clique& k = bind.cliques[ci];
                const int lat = wcg.latency(k.resource);
                for (const op_id o : k.ops) {
                    bound_lat[o.value()] = lat;
                    instance_of_op[o.value()] = ci;
                    achieved = std::max(achieved, start[o.value()] + lat);
                }
            }
        } else {
            reference_path = make_datapath(graph, wcg, start, bind);
            for (const op_id o : graph.all_ops()) {
                bound_lat[o.value()] = reference_path->bound_latency(o);
            }
            instance_of_op = reference_path->instance_of_op;
            achieved = reference_path->latency;
        }

        if (achieved <= lambda) {
            result.path = reference_path
                              ? std::move(*reference_path)
                              : make_datapath(graph, wcg, start, bind);
            return result;
        }

        // Refinement (§2.4): restrict to the bound critical path, prefer
        // operations that still finish within lambda under their upper
        // bound, and require refinability (a strictly faster resource).
        const bound_critical_path qb = compute_bound_critical_path(
            graph, start, bound_lat, instance_of_op, critical_sc_ptr);

        std::vector<op_id> candidates;
        for (const op_id o : qb.ops) {
            if (wcg.refinable(o) &&
                start[o.value()] + upper[o.value()] <= lambda) {
                candidates.push_back(o);
            }
        }
        if (candidates.empty()) {
            for (const op_id o : qb.ops) {
                if (wcg.refinable(o)) {
                    candidates.push_back(o);
                }
            }
        }
        if (candidates.empty()) {
            // Fall back to any refinable operation: off-path refinement can
            // still grow the scheduling set and unlock parallelism.
            for (const op_id o : graph.all_ops()) {
                if (wcg.refinable(o)) {
                    candidates.push_back(o);
                }
            }
        }

        if (!candidates.empty()) {
            op_id chosen = candidates.front();
            refine_metric best =
                metric_for(wcg, chosen, bound_lat[chosen.value()]);
            for (std::size_t i = 1; i < candidates.size(); ++i) {
                const op_id o = candidates[i];
                const refine_metric m =
                    metric_for(wcg, o, bound_lat[o.value()]);
                if (better_candidate(o, m, chosen, best)) {
                    chosen = o;
                    best = m;
                }
            }
            result.stats.edges_deleted +=
                static_cast<std::size_t>(wcg.refine_op(chosen));
            ++result.stats.refinements;
        } else {
            // Wordlength information is fully refined everywhere yet the
            // constraint is still violated: the design needs parallelism,
            // not shorter operations. Escalate capacity (DESIGN.md).
            ++capacity;
            ++result.stats.escalations;
            result.stats.final_capacity = capacity;
            require_feasible(
                capacity <= static_cast<int>(graph.size()) + 1,
                "internal: capacity escalation failed to converge");
        }
    }
    throw error("dpalloc exceeded max_iterations without converging");
}

} // namespace mwl
