#include "improve/local_search.hpp"

#include "core/validate.hpp"
#include "support/error.hpp"

#include <algorithm>

namespace mwl {
namespace {

/// Recompute instance latency/area from shapes and the path aggregates.
void refresh(const sequencing_graph& graph, const hardware_model& model,
             datapath& path)
{
    path.total_area = 0.0;
    for (datapath_instance& inst : path.instances) {
        inst.latency = model.latency(inst.shape);
        inst.area = model.area(inst.shape);
        path.total_area += inst.area;
        std::sort(inst.ops.begin(), inst.ops.end(), [&](op_id a, op_id b) {
            return path.start[a.value()] < path.start[b.value()];
        });
    }
    path.latency = 0;
    for (const op_id o : graph.all_ops()) {
        path.latency = std::max(path.latency,
                                path.start[o.value()] + path.bound_latency(o));
    }
}

[[nodiscard]] bool is_valid(const sequencing_graph& graph,
                            const hardware_model& model,
                            const datapath& path, int lambda)
{
    return validate_datapath(graph, model, path, lambda).empty();
}

/// Downsize every instance to the join of its members' shapes; returns
/// true if any instance changed and the result stayed valid.
bool downsize_pass(const sequencing_graph& graph, const hardware_model& model,
                   datapath& path, int lambda)
{
    bool changed = false;
    for (std::size_t i = 0; i < path.instances.size(); ++i) {
        datapath_instance& inst = path.instances[i];
        MWL_ASSERT(!inst.ops.empty());
        op_shape join = graph.shape(inst.ops.front());
        for (const op_id o : inst.ops) {
            join = op_shape::join(join, graph.shape(o));
        }
        if (join == inst.shape) {
            continue;
        }
        datapath candidate = path;
        candidate.instances[i].shape = join;
        refresh(graph, model, candidate);
        if (candidate.total_area < path.total_area - 1e-9 &&
            is_valid(graph, model, candidate, lambda)) {
            path = std::move(candidate);
            changed = true;
        }
    }
    return changed;
}

/// Try to move one operation to another instance (strict area win only:
/// the win comes from the donor emptying or downsizing). Returns true on
/// the first accepted move.
bool rebind_pass(const sequencing_graph& graph, const hardware_model& model,
                 datapath& path, int lambda)
{
    for (const op_id o : graph.all_ops()) {
        const std::size_t from = path.instance_of_op[o.value()];
        for (std::size_t to = 0; to < path.instances.size(); ++to) {
            if (to == from ||
                !path.instances[to].shape.covers(graph.shape(o))) {
                continue;
            }
            datapath candidate = path;
            auto& donor = candidate.instances[from].ops;
            donor.erase(std::find(donor.begin(), donor.end(), o));
            candidate.instances[to].ops.push_back(o);
            candidate.instance_of_op[o.value()] = to;

            if (donor.empty()) {
                // Delete the emptied instance, remapping indices.
                candidate.instances.erase(
                    candidate.instances.begin() +
                    static_cast<std::ptrdiff_t>(from));
                for (auto& index : candidate.instance_of_op) {
                    if (index > from) {
                        --index;
                    }
                }
            } else {
                // Shrink the donor to its remaining members.
                op_shape join = graph.shape(donor.front());
                for (const op_id rest : donor) {
                    join = op_shape::join(join, graph.shape(rest));
                }
                candidate.instances[from].shape = join;
            }
            refresh(graph, model, candidate);
            if (candidate.total_area < path.total_area - 1e-9 &&
                is_valid(graph, model, candidate, lambda)) {
                path = std::move(candidate);
                return true;
            }
        }
    }
    return false;
}

/// ASAP-retime all operations, preserving the binding and the relative
/// execution order on each instance. Accepted if it strictly reduces the
/// makespan (more room for rebinds) and stays valid.
bool compaction_pass(const sequencing_graph& graph,
                     const hardware_model& model, datapath& path, int lambda)
{
    datapath candidate = path;
    // Process in current start order; each op starts at the max of its
    // predecessors' finishes and its instance's availability.
    std::vector<op_id> order = graph.all_ops();
    std::sort(order.begin(), order.end(), [&](op_id a, op_id b) {
        if (path.start[a.value()] != path.start[b.value()]) {
            return path.start[a.value()] < path.start[b.value()];
        }
        return a < b;
    });
    std::vector<int> instance_free(path.instances.size(), 0);
    for (const op_id o : order) {
        const std::size_t i = candidate.instance_of_op[o.value()];
        int earliest = instance_free[i];
        for (const op_id p : graph.predecessors(o)) {
            earliest = std::max(earliest, candidate.start[p.value()] +
                                              candidate.bound_latency(p));
        }
        candidate.start[o.value()] = earliest;
        instance_free[i] = earliest + candidate.instances[i].latency;
    }
    refresh(graph, model, candidate);
    if (candidate.latency < path.latency &&
        is_valid(graph, model, candidate, lambda)) {
        path = std::move(candidate);
        return true;
    }
    return false;
}

} // namespace

improve_result improve_datapath(const sequencing_graph& graph,
                                const hardware_model& model, datapath seed,
                                int lambda, const improve_options& options)
{
    require_valid(graph, model, seed, lambda);

    improve_result result;
    const double seed_area = seed.total_area;
    result.path = std::move(seed);

    for (std::size_t pass = 0; pass < options.max_passes; ++pass) {
        bool changed = false;
        // Area moves first: compaction tightens the schedule and can
        // destroy serialisations that rebinding would have merged, so it
        // runs last -- its role is to free room for the *next* pass.
        if (options.enable_rebind) {
            // Rebinds accept one move at a time; loop them to exhaustion
            // inside the pass so a pass does all available work.
            while (rebind_pass(graph, model, result.path, lambda)) {
                ++result.moves_applied;
                changed = true;
            }
        }
        if (options.enable_downsize) {
            changed |= downsize_pass(graph, model, result.path, lambda);
        }
        if (options.enable_compaction) {
            changed |= compaction_pass(graph, model, result.path, lambda);
        }
        if (changed) {
            ++result.moves_applied;
        } else {
            break;
        }
    }

    result.area_saved = seed_area - result.path.total_area;
    MWL_ASSERT(result.area_saved >= -1e-9);
    require_valid(graph, model, result.path, lambda);
    return result;
}

} // namespace mwl
