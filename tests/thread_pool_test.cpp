// Tests for src/support/thread_pool.hpp: futures, task groups, nested
// submits (help-while-waiting), exception propagation, deterministic
// collection order, and a stress mix. Run under -fsanitize=thread in CI.

#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace mwl {
namespace {

TEST(ThreadPool, SubmitReturnsValueThroughFuture)
{
    thread_pool pool(2);
    auto f = pool.submit([] { return 6 * 7; });
    EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SizeDefaultsToAtLeastOne)
{
    thread_pool pool(0);
    EXPECT_GE(pool.size(), 1u);
    thread_pool one(1);
    EXPECT_EQ(one.size(), 1u);
}

TEST(ThreadPool, ManyTasksAllRun)
{
    for (const std::size_t threads : {1u, 2u, 4u}) {
        thread_pool pool(threads);
        std::atomic<int> count{0};
        task_group group(pool);
        for (int i = 0; i < 500; ++i) {
            group.run([&count] { count.fetch_add(1); });
        }
        group.wait();
        EXPECT_EQ(count.load(), 500) << threads << " threads";
    }
}

TEST(ThreadPool, ResultsCollectInSubmissionOrder)
{
    // Tasks write into preallocated slots; the slot index, not execution
    // order, determines where a result lands -- the engine's determinism
    // pattern.
    thread_pool pool(4);
    std::vector<int> slots(200, -1);
    task_group group(pool);
    for (int i = 0; i < 200; ++i) {
        group.run([&slots, i] { slots[static_cast<std::size_t>(i)] = i; });
    }
    group.wait();
    for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(slots[static_cast<std::size_t>(i)], i);
    }
}

TEST(ThreadPool, NestedSubmitsDoNotDeadlock)
{
    // A task fans out subtasks on the same pool and waits for them.
    // help-while-waiting makes this safe even on a single-thread pool.
    for (const std::size_t threads : {1u, 2u, 4u}) {
        thread_pool pool(threads);
        std::atomic<int> leaves{0};
        task_group outer(pool);
        for (int i = 0; i < 8; ++i) {
            outer.run([&pool, &leaves] {
                task_group inner(pool);
                for (int j = 0; j < 8; ++j) {
                    inner.run([&leaves] { leaves.fetch_add(1); });
                }
                inner.wait();
            });
        }
        outer.wait();
        EXPECT_EQ(leaves.load(), 64) << threads << " threads";
    }
}

TEST(ThreadPool, DeeplyNestedRecursiveFanout)
{
    // Recursive tree sum: every node spawns its children and waits.
    thread_pool pool(3);
    struct tree {
        static int sum(thread_pool& pool, int depth)
        {
            if (depth == 0) {
                return 1;
            }
            std::vector<int> child(2, 0);
            task_group group(pool);
            for (std::size_t c = 0; c < child.size(); ++c) {
                int* slot = &child[c];
                group.run([&pool, depth, slot] {
                    *slot = sum(pool, depth - 1);
                });
            }
            group.wait();
            return 1 + child[0] + child[1];
        }
    };
    EXPECT_EQ(tree::sum(pool, 6), (1 << 7) - 1); // full binary tree
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    thread_pool pool(2);
    auto f = pool.submit(
        []() -> int { throw std::runtime_error("task failed"); });
    EXPECT_THROW(static_cast<void>(f.get()), std::runtime_error);
}

TEST(ThreadPool, TaskGroupRethrowsAfterAllTasksComplete)
{
    thread_pool pool(2);
    std::atomic<int> completed{0};
    task_group group(pool);
    group.run([] { throw std::runtime_error("first failure"); });
    for (int i = 0; i < 50; ++i) {
        group.run([&completed] { completed.fetch_add(1); });
    }
    EXPECT_THROW(group.wait(), std::runtime_error);
    // wait() only returns (or throws) once every task has finished.
    EXPECT_EQ(completed.load(), 50);
    EXPECT_EQ(group.pending(), 0u);
}

TEST(ThreadPool, RunOneFromExternalThreadExecutesWork)
{
    thread_pool pool(1);
    // Park the single worker on a blocking wait (not a spin: the test
    // machine may have one core), and only proceed once the worker has
    // definitely picked the blocker up, so the next submit stays queued.
    std::promise<void> release;
    std::shared_future<void> released = release.get_future().share();
    std::atomic<bool> started{false};
    auto blocker = pool.submit([&started, released] {
        started.store(true);
        released.wait();
    });
    while (!started.load()) {
        std::this_thread::yield();
    }
    std::atomic<int> ran{0};
    auto f = pool.submit([&ran] { ran.fetch_add(1); });
    // The worker is parked, so the task must still be queued.
    EXPECT_TRUE(pool.run_one());
    EXPECT_EQ(ran.load(), 1);
    release.set_value();
    blocker.get();
    f.get();
}

TEST(ThreadPool, DestructorDrainsQueuedTasks)
{
    std::future<int> f;
    {
        thread_pool pool(1);
        for (int i = 0; i < 32; ++i) {
            static_cast<void>(pool.submit([] { return 0; }));
        }
        f = pool.submit([] { return 99; });
    }
    // The pool drained its queues before joining: the future is fulfilled,
    // not abandoned.
    EXPECT_EQ(f.get(), 99);
}

TEST(ThreadPool, StressMixedNestedWorkAndExceptions)
{
    thread_pool pool(4);
    std::atomic<long> total{0};
    task_group outer(pool);
    for (int i = 0; i < 64; ++i) {
        outer.run([&pool, &total, i] {
            std::vector<long> parts(8, 0);
            task_group inner(pool);
            for (std::size_t j = 0; j < parts.size(); ++j) {
                long* slot = &parts[j];
                const long value = i * 8 + static_cast<long>(j);
                inner.run([slot, value] { *slot = value; });
            }
            inner.wait();
            total.fetch_add(std::accumulate(parts.begin(), parts.end(), 0L));
        });
    }
    outer.wait();
    const long n = 64 * 8;
    EXPECT_EQ(total.load(), n * (n - 1) / 2);
}

} // namespace
} // namespace mwl
