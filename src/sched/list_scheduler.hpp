// Classic resource-constrained list scheduling with the standard per-type
// constraint (paper Eqn. 2):  for every control step t and operation type y,
// the number of type-y operations executing at t is at most N_y.
//
// The paper shows this constraint is *too relaxed* for multiple-wordlength
// systems (§2.2); it is provided here as the comparison point and for the
// ablation benches, while sched/incomplete_scheduler.hpp implements the
// paper's replacement.

#ifndef MWL_SCHED_LIST_SCHEDULER_HPP
#define MWL_SCHED_LIST_SCHEDULER_HPP

#include "dfg/sequencing_graph.hpp"
#include "model/op_shape.hpp"
#include "sched/event_engine.hpp"

#include <limits>
#include <span>
#include <vector>

namespace mwl {

/// Per-operation-kind resource limits (N_y of Eqn. 2).
struct type_limits {
    int add = std::numeric_limits<int>::max();
    int mul = std::numeric_limits<int>::max();

    [[nodiscard]] int of(op_kind kind) const
    {
        return kind == op_kind::add ? add : mul;
    }
};

struct list_schedule_result {
    std::vector<int> start; ///< start control step per operation
    int length = 0;         ///< makespan under the given latencies
};

/// Latency-weighted list scheduling. `latencies[o]` is the latency assumed
/// for operation o. Deterministic (critical-path priority, op-id
/// tie-break). Throws `precondition_error` on non-positive limits or
/// latency/graph size mismatch. `scratch` (optional) reuses the event
/// engine's buffers across calls; `engine` selects the event-driven engine
/// or the original full-rescan reference (identical output).
[[nodiscard]] list_schedule_result list_schedule(
    const sequencing_graph& graph, std::span<const int> latencies,
    const type_limits& limits, event_schedule_workspace* scratch = nullptr,
    sched_engine engine = sched_engine::event);

} // namespace mwl

#endif // MWL_SCHED_LIST_SCHEDULER_HPP
