#include "verify/differential.hpp"

#include "baseline/descending.hpp"
#include "baseline/two_stage.hpp"
#include "core/dpalloc.hpp"
#include "ilp/formulation.hpp"
#include "rtl/rtl_interp.hpp"
#include "support/error.hpp"

#include <sstream>
#include <utility>

namespace mwl {
namespace {

std::int64_t random_operand(rng& random, int width)
{
    const std::int64_t lo = -(std::int64_t{1} << (width - 1));
    const std::int64_t hi = (std::int64_t{1} << (width - 1)) - 1;
    // A quarter of the draws hit the corners that flush out extension
    // bugs: the most negative value, the all-ones pattern, zero, and max.
    if (random.chance(0.25)) {
        switch (random.uniform_int(0, 3)) {
        case 0: return lo;
        case 1: return -1;
        case 2: return 0;
        default: return hi;
        }
    }
    return lo + static_cast<std::int64_t>(
                    random.uniform(0, static_cast<std::uint64_t>(hi - lo)));
}

} // namespace

std::string counterexample::to_string() const
{
    std::ostringstream os;
    os << "graph " << graph_name << ", allocator " << allocator
       << ", input " << input_index << ", stage " << stage;
    if (op.is_valid()) {
        os << ": op " << op;
        if (cycle >= 0) {
            os << " (capture cycle " << cycle << ")";
        }
        os << " expected " << expected << ", got " << actual;
    }
    if (!detail.empty()) {
        os << (op.is_valid() ? " -- " : ": ") << detail;
    }
    return os.str();
}

void verify_report::merge(verify_report other)
{
    graphs += other.graphs;
    allocations += other.allocations;
    input_vectors += other.input_vectors;
    value_checks += other.value_checks;
    for (counterexample& cx : other.counterexamples) {
        counterexamples.push_back(std::move(cx));
    }
}

sim_inputs random_signed_inputs(const sequencing_graph& graph, rng& random)
{
    sim_inputs in(graph.size());
    for (const op_id o : graph.all_ops()) {
        const std::size_t n_preds = graph.predecessors(o).size();
        for (int port = static_cast<int>(n_preds); port < 2; ++port) {
            in[o.value()].push_back(
                random_operand(random,
                               operand_width(graph.shape(o), port)));
        }
    }
    return in;
}

namespace {

/// The reference is allocator-independent; callers checking several
/// allocations over one input set evaluate it once and pass it down.
verify_report verify_against(const sequencing_graph& graph,
                             const std::string& graph_name,
                             const std::string& allocator,
                             const datapath& path,
                             const hardware_model& model,
                             const std::vector<sim_inputs>& inputs,
                             const std::vector<sim_result>& references,
                             const elaborate_options& elaborate_opts,
                             std::size_t max_counterexamples)
{
    verify_report report;
    report.allocations = 1;

    const auto blame = [&](std::size_t input_index, std::string stage,
                           op_id op, int cycle, std::int64_t expected,
                           std::int64_t actual, std::string detail = {}) {
        counterexample cx;
        cx.graph_name = graph_name;
        cx.allocator = allocator;
        cx.input_index = input_index;
        cx.stage = std::move(stage);
        cx.op = op;
        cx.cycle = cycle;
        cx.expected = expected;
        cx.actual = actual;
        cx.detail = std::move(detail);
        report.counterexamples.push_back(std::move(cx));
    };

    const rtl_netlist net = build_rtl(graph, model, path, {},
                                      elaborate_opts.legacy_output_recycling);
    const rtl_design design =
        elaborate(graph, path, net, "dut", elaborate_opts);

    // Static IR check first: a structurally broken design (e.g. a widening
    // zero-extension) is a finding even before any value diverges. Skipped
    // when a legacy bug was *requested*, where violations are the point
    // and the interesting question is whether values diverge too.
    if (!elaborate_opts.any()) {
        for (const finding& violation : validate_design(design)) {
            if (report.counterexamples.size() >= max_counterexamples) {
                return report;
            }
            blame(0, "validate", op_id::invalid(), -1, 0, 0,
                  violation.to_string());
        }
        if (!report.counterexamples.empty()) {
            return report;
        }
    }

    for (std::size_t k = 0; k < inputs.size(); ++k) {
        if (report.counterexamples.size() >= max_counterexamples) {
            break;
        }
        const sim_inputs& in = inputs[k];
        ++report.input_vectors;
        const sim_result& ref = references[k];

        bool diverged = false;
        try {
            const sim_result sim = simulate_datapath(graph, path, in);
            for (const op_id o : graph.all_ops()) {
                ++report.value_checks;
                if (sim.value_of_op[o.value()] != ref.value_of_op[o.value()]) {
                    blame(k, "datapath-sim", o, -1,
                          ref.value_of_op[o.value()],
                          sim.value_of_op[o.value()]);
                    diverged = true;
                    break;
                }
            }
        } catch (const error& e) {
            // Structural/timing violations are input-independent; one
            // report covers every vector, so stop instead of filling the
            // counterexample budget with duplicates.
            blame(k, "datapath-sim", op_id::invalid(), -1, 0, 0, e.what());
            break;
        }
        if (diverged) {
            continue;
        }

        const rtl_interp_result rtl = interpret(design, in);
        for (const op_id o : graph.all_ops()) {
            ++report.value_checks;
            if (rtl.value_of_op[o.value()] != ref.value_of_op[o.value()]) {
                blame(k, "rtl-interp", o,
                      rtl.capture_cycle_of_op[o.value()],
                      ref.value_of_op[o.value()],
                      rtl.value_of_op[o.value()]);
                diverged = true;
                break;
            }
        }
        if (diverged) {
            continue;
        }
        for (std::size_t j = 0; j < design.outputs.size(); ++j) {
            ++report.value_checks;
            const op_id o = design.outputs[j].op;
            if (rtl.outputs[j] != ref.value_of_op[o.value()]) {
                blame(k, "rtl-output", o, -1, ref.value_of_op[o.value()],
                      rtl.outputs[j]);
                break;
            }
        }
    }
    return report;
}

std::vector<sim_result> evaluate_references(
    const sequencing_graph& graph, const std::vector<sim_inputs>& inputs)
{
    std::vector<sim_result> references;
    references.reserve(inputs.size());
    for (const sim_inputs& in : inputs) {
        references.push_back(reference_evaluate(graph, in));
    }
    return references;
}

} // namespace

verify_report verify_datapath(const sequencing_graph& graph,
                              const std::string& graph_name,
                              const std::string& allocator,
                              const datapath& path,
                              const hardware_model& model,
                              const std::vector<sim_inputs>& inputs,
                              const elaborate_options& elaborate_opts,
                              std::size_t max_counterexamples)
{
    return verify_against(graph, graph_name, allocator, path, model, inputs,
                          evaluate_references(graph, inputs), elaborate_opts,
                          max_counterexamples);
}

verify_report verify_graph(const sequencing_graph& graph,
                           const std::string& graph_name,
                           const hardware_model& model, int lambda,
                           const verify_options& options)
{
    return verify_graph(graph, graph_name, model, lambda, options,
                        options.seed);
}

verify_report verify_graph(const sequencing_graph& graph,
                           const std::string& graph_name,
                           const hardware_model& model, int lambda,
                           const verify_options& options,
                           std::uint64_t input_seed)
{
    verify_report report;
    report.graphs = 1;
    if (graph.empty()) {
        return report;
    }
    // The simulator's int64 wrap contract holds for widths < 63; reject
    // wider operations (e.g. a mul32x32 from a hand-written .mwl) with a
    // diagnostic instead of letting wrap_to_width's assertion abort.
    for (const op_id o : graph.all_ops()) {
        require(result_width(graph.shape(o)) < 63,
                "graph " + graph_name + ": op " + std::to_string(o.value()) +
                    " (" + graph.shape(o).to_string() +
                    ") is too wide to simulate (result must be < 63 bits)");
    }

    rng random(input_seed);
    std::vector<sim_inputs> inputs;
    inputs.reserve(options.inputs_per_graph);
    for (std::size_t k = 0; k < options.inputs_per_graph; ++k) {
        inputs.push_back(random_signed_inputs(graph, random));
    }
    const std::vector<sim_result> references =
        evaluate_references(graph, inputs);

    const auto remaining = [&]() -> std::size_t {
        const std::size_t used = report.counterexamples.size();
        return used >= options.max_counterexamples
                   ? 0
                   : options.max_counterexamples - used;
    };
    const auto check = [&](const std::string& allocator,
                           const datapath& path) {
        report.merge(verify_against(graph, graph_name, allocator, path,
                                    model, inputs, references,
                                    options.elaborate, remaining()));
    };

    if (options.use_heuristic && remaining() > 0) {
        check("dpalloc", dpalloc(graph, model, lambda).path);
    }
    if (options.use_two_stage && remaining() > 0) {
        check("two_stage", two_stage_allocate(graph, model, lambda).path);
    }
    if (options.use_descending && remaining() > 0) {
        check("descending", descending_allocate(graph, model, lambda));
    }
    if (options.ilp_max_ops > 0 && graph.size() <= options.ilp_max_ops &&
        remaining() > 0) {
        const ilp_result ilp = solve_ilp(graph, model, lambda);
        if (ilp.status == mip_status::optimal ||
            ilp.status == mip_status::limit_feasible) {
            check("ilp", ilp.path);
        }
    }
    return report;
}

analysis_report static_verify_graph(const sequencing_graph& graph,
                                    const std::string& graph_name,
                                    const hardware_model& model, int lambda,
                                    const verify_options& options)
{
    analysis_report report;
    if (graph.empty()) {
        return report;
    }
    const auto check = [&](const std::string& allocator,
                           const datapath& path) {
        analysis_report one =
            analyze_allocation(graph, model, path, options.elaborate);
        for (finding& f : one.findings) {
            f.location = graph_name + "/" + allocator + ": " + f.location;
        }
        report.merge(std::move(one));
    };

    if (options.use_heuristic) {
        check("dpalloc", dpalloc(graph, model, lambda).path);
    }
    if (options.use_two_stage) {
        check("two_stage", two_stage_allocate(graph, model, lambda).path);
    }
    if (options.use_descending) {
        check("descending", descending_allocate(graph, model, lambda));
    }
    if (options.ilp_max_ops > 0 && graph.size() <= options.ilp_max_ops) {
        const ilp_result ilp = solve_ilp(graph, model, lambda);
        if (ilp.status == mip_status::optimal ||
            ilp.status == mip_status::limit_feasible) {
            check("ilp", ilp.path);
        }
    }
    return report;
}

analysis_report static_verify_corpus(const corpus_spec& spec,
                                     const hardware_model& model,
                                     const verify_options& options,
                                     thread_pool* pool)
{
    const std::vector<corpus_entry> corpus = make_corpus(spec, model);

    std::vector<analysis_report> slots(corpus.size());
    const auto run_one = [&](std::size_t i) {
        const corpus_entry& e = corpus[i];
        const int lambda = relaxed_lambda(e.lambda_min, options.slack);
        const std::string name = "tgff(ops=" + std::to_string(spec.n_ops) +
                                 ",seed=" + std::to_string(spec.seed) +
                                 ")#" + std::to_string(i);
        slots[i] = static_verify_graph(e.graph, name, model, lambda, options);
    };

    if (pool != nullptr && corpus.size() > 1) {
        task_group tasks(*pool);
        for (std::size_t i = 0; i < corpus.size(); ++i) {
            tasks.run([&run_one, i] { run_one(i); });
        }
        tasks.wait();
    } else {
        for (std::size_t i = 0; i < corpus.size(); ++i) {
            run_one(i);
        }
    }

    analysis_report report;
    for (analysis_report& slot : slots) {
        report.merge(std::move(slot));
    }
    return report;
}

verify_report verify_corpus(const corpus_spec& spec,
                            const hardware_model& model,
                            const verify_options& options, thread_pool* pool)
{
    const std::vector<corpus_entry> corpus = make_corpus(spec, model);

    std::vector<verify_report> slots(corpus.size());
    const auto run_one = [&](std::size_t i) {
        const corpus_entry& e = corpus[i];
        const int lambda = relaxed_lambda(e.lambda_min, options.slack);
        const std::string name = "tgff(ops=" + std::to_string(spec.n_ops) +
                                 ",seed=" + std::to_string(spec.seed) +
                                 ")#" + std::to_string(i);
        slots[i] = verify_graph(e.graph, name, model, lambda, options,
                                verify_input_seed(options.seed, i));
    };

    if (pool != nullptr && corpus.size() > 1) {
        task_group tasks(*pool);
        for (std::size_t i = 0; i < corpus.size(); ++i) {
            tasks.run([&run_one, i] { run_one(i); });
        }
        tasks.wait();
    } else {
        for (std::size_t i = 0; i < corpus.size(); ++i) {
            run_one(i);
        }
    }

    verify_report report;
    for (verify_report& slot : slots) {
        report.merge(std::move(slot));
    }
    // The merged list can exceed the cap when graphs fail in parallel;
    // trim so callers see a bounded, deterministic prefix.
    if (report.counterexamples.size() > options.max_counterexamples) {
        report.counterexamples.resize(options.max_counterexamples);
    }
    return report;
}

} // namespace mwl
