// Campaign status and cross-grid Pareto reporting.
//
// A campaign's value is the frontier it maps: for each scenario, the
// non-dominated (latency, area) points *across the whole grid* -- every
// hardware-model combination, every wordlength variant, every slack.
// `merge_scenario_frontiers` computes that merge from the result store;
// `report_json` serialises the full result set plus the frontiers in a
// canonical form (sorted by point index, exact double round-trip, no
// timestamps), which is what the resume-equivalence tests and the CI
// kill-and-resume soak diff byte-for-byte against an uninterrupted run.

#ifndef MWL_CAMPAIGN_REPORT_HPP
#define MWL_CAMPAIGN_REPORT_HPP

#include "campaign/campaign_spec.hpp"
#include "campaign/result_store.hpp"
#include "report/table.hpp"

#include <map>
#include <string>
#include <vector>

namespace mwl {

struct campaign_status {
    std::size_t total = 0;
    std::size_t completed = 0;
    std::size_t failed = 0; ///< completed points whose allocation errored
    std::map<std::string, std::size_t> per_scenario_completed;
    std::map<std::string, std::size_t> per_scenario_total;
};

[[nodiscard]] campaign_status status_of(
    const std::vector<campaign_point>& points, const result_store& store);

[[nodiscard]] table render_status(const campaign_status& status);

/// One surviving point of a merged frontier.
struct frontier_entry {
    int latency = 0;
    double area = 0.0;
    std::string key; ///< grid point that achieved it
};

/// Per-scenario non-dominated (latency, area) sets over every successful
/// result in the store: ascending latency, strictly descending area; at
/// equal latency the smallest area (ties broken by key, so the merge is
/// deterministic). Scenarios with no successful point map to an empty
/// frontier.
[[nodiscard]] std::map<std::string, std::vector<frontier_entry>>
merge_scenario_frontiers(const std::vector<campaign_point>& points,
                         const result_store& store);

[[nodiscard]] table render_frontiers(
    const std::map<std::string, std::vector<frontier_entry>>& frontiers);

/// Canonical JSON: header (format version, fingerprint, counts), every
/// result sorted by point index, and the merged frontiers. Identical
/// stores serialise to identical bytes.
[[nodiscard]] std::string report_json(
    const std::vector<campaign_point>& points, const result_store& store);

} // namespace mwl

#endif // MWL_CAMPAIGN_REPORT_HPP
