// Bounded least-recently-used cache.
//
// The batch engine keeps completed allocation results keyed on the job
// fingerprint; the bound keeps a long-running service's memory flat while a
// Pareto sweep over a corpus still hits on every repeated (graph, lambda)
// pair. Not internally synchronised -- the engine serialises access under
// its own mutex.

#ifndef MWL_SUPPORT_LRU_CACHE_HPP
#define MWL_SUPPORT_LRU_CACHE_HPP

#include "support/error.hpp"

#include <cstddef>
#include <list>
#include <unordered_map>
#include <utility>

namespace mwl {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class lru_cache {
public:
    explicit lru_cache(std::size_t capacity) : capacity_(capacity)
    {
        require(capacity >= 1, "lru_cache capacity must be >= 1");
    }

    /// Pointer to the cached value (marked most-recently-used), or nullptr.
    /// The pointer stays valid until the entry is evicted or replaced.
    [[nodiscard]] const Value* get(const Key& key)
    {
        const auto it = index_.find(key);
        if (it == index_.end()) {
            return nullptr;
        }
        order_.splice(order_.begin(), order_, it->second);
        return &it->second->second;
    }

    /// Insert or overwrite; evicts the least-recently-used entry when full.
    /// Returns true when an entry was evicted to make room (the signal the
    /// sharded engine cache aggregates into its eviction counter).
    bool put(const Key& key, Value value)
    {
        const auto it = index_.find(key);
        if (it != index_.end()) {
            it->second->second = std::move(value);
            order_.splice(order_.begin(), order_, it->second);
            return false;
        }
        bool evicted = false;
        if (order_.size() == capacity_) {
            index_.erase(order_.back().first);
            order_.pop_back();
            evicted = true;
        }
        order_.emplace_front(key, std::move(value));
        index_[key] = order_.begin();
        return evicted;
    }

    [[nodiscard]] std::size_t size() const { return order_.size(); }
    [[nodiscard]] std::size_t capacity() const { return capacity_; }

private:
    using entry = std::pair<Key, Value>;

    std::size_t capacity_;
    std::list<entry> order_; ///< front = most recently used
    std::unordered_map<Key, typename std::list<entry>::iterator, Hash> index_;
};

} // namespace mwl

#endif // MWL_SUPPORT_LRU_CACHE_HPP
