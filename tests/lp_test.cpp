// Unit tests for src/lp: the problem builder, the bounded-variable primal
// simplex on hand-checkable LPs, and branch-and-bound cross-validated
// against explicit enumeration on random small integer programs.

#include "lp/branch_bound.hpp"
#include "lp/problem.hpp"
#include "lp/simplex.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace mwl {
namespace {

// ------------------------------------------------------------ builder --

TEST(LpProblem, AddVariableValidatesBounds)
{
    lp_problem p;
    EXPECT_THROW(p.add_variable(1.0, 2.0, 1.0), precondition_error);
    EXPECT_THROW(
        p.add_variable(1.0, 0.0, std::numeric_limits<double>::infinity()),
        precondition_error);
    EXPECT_EQ(p.add_variable(1.0, 0.0, 5.0), 0u);
    EXPECT_EQ(p.n_vars(), 1u);
}

TEST(LpProblem, AddRowValidatesIndices)
{
    lp_problem p;
    p.add_variable(1.0, 0.0, 1.0);
    lp_row row;
    row.terms = {{3, 1.0}};
    EXPECT_THROW(p.add_row(row), precondition_error);
}

TEST(LpProblem, FeasibilityChecker)
{
    lp_problem p;
    p.add_variable(1.0, 0.0, 10.0);
    p.add_variable(1.0, 0.0, 10.0);
    p.add_row({{{0, 1.0}, {1, 1.0}}, row_sense::le, 5.0});
    EXPECT_TRUE(p.is_feasible({2.0, 3.0}));
    EXPECT_FALSE(p.is_feasible({4.0, 3.0}));
    EXPECT_FALSE(p.is_feasible({-1.0, 0.0}));
    EXPECT_FALSE(p.is_feasible({1.0}));
}

// ------------------------------------------------------------ simplex --

TEST(Simplex, UnconstrainedMinimumAtBounds)
{
    // min 2x - 3y, x in [1,4], y in [0,5]  ->  x=1, y=5.
    lp_problem p;
    p.add_variable(2.0, 1.0, 4.0);
    p.add_variable(-3.0, 0.0, 5.0);
    const lp_solution s = solve_lp(p);
    ASSERT_EQ(s.status, lp_status::optimal);
    EXPECT_NEAR(s.x[0], 1.0, 1e-9);
    EXPECT_NEAR(s.x[1], 5.0, 1e-9);
    EXPECT_NEAR(s.objective, 2.0 - 15.0, 1e-9);
}

TEST(Simplex, ClassicTwoVariableLp)
{
    // min -(3x + 5y) s.t. x <= 4; 2y <= 12; 3x + 2y <= 18; x,y >= 0.
    // Known optimum (x=2, y=6), objective -36.
    lp_problem p;
    p.add_variable(-3.0, 0.0, 100.0);
    p.add_variable(-5.0, 0.0, 100.0);
    p.add_row({{{0, 1.0}}, row_sense::le, 4.0});
    p.add_row({{{1, 2.0}}, row_sense::le, 12.0});
    p.add_row({{{0, 3.0}, {1, 2.0}}, row_sense::le, 18.0});
    const lp_solution s = solve_lp(p);
    ASSERT_EQ(s.status, lp_status::optimal);
    EXPECT_NEAR(s.x[0], 2.0, 1e-7);
    EXPECT_NEAR(s.x[1], 6.0, 1e-7);
    EXPECT_NEAR(s.objective, -36.0, 1e-7);
}

TEST(Simplex, EqualityConstraint)
{
    // min x + 2y s.t. x + y = 3, x,y in [0,10]  ->  x=3, y=0.
    lp_problem p;
    p.add_variable(1.0, 0.0, 10.0);
    p.add_variable(2.0, 0.0, 10.0);
    p.add_row({{{0, 1.0}, {1, 1.0}}, row_sense::eq, 3.0});
    const lp_solution s = solve_lp(p);
    ASSERT_EQ(s.status, lp_status::optimal);
    EXPECT_NEAR(s.x[0], 3.0, 1e-7);
    EXPECT_NEAR(s.x[1], 0.0, 1e-7);
    EXPECT_NEAR(s.objective, 3.0, 1e-7);
}

TEST(Simplex, GreaterEqualConstraint)
{
    // min x + y s.t. x + 2y >= 4, x,y in [0,10] -> y=2, x=0.
    lp_problem p;
    p.add_variable(1.0, 0.0, 10.0);
    p.add_variable(1.0, 0.0, 10.0);
    p.add_row({{{0, 1.0}, {1, 2.0}}, row_sense::ge, 4.0});
    const lp_solution s = solve_lp(p);
    ASSERT_EQ(s.status, lp_status::optimal);
    EXPECT_NEAR(s.objective, 2.0, 1e-7);
    EXPECT_NEAR(s.x[1], 2.0, 1e-7);
}

TEST(Simplex, DetectsInfeasibility)
{
    // x <= 1 and x >= 2 cannot both hold.
    lp_problem p;
    p.add_variable(1.0, 0.0, 10.0);
    p.add_row({{{0, 1.0}}, row_sense::le, 1.0});
    p.add_row({{{0, 1.0}}, row_sense::ge, 2.0});
    EXPECT_EQ(solve_lp(p).status, lp_status::infeasible);
}

TEST(Simplex, InfeasibleBoundsShortCircuit)
{
    lp_problem p;
    p.add_variable(1.0, 0.0, 10.0);
    const std::vector<double> lo{5.0};
    const std::vector<double> hi{4.0};
    EXPECT_EQ(solve_lp(p, {}, lo, hi).status, lp_status::infeasible);
}

TEST(Simplex, BoundOverridesApply)
{
    lp_problem p;
    p.add_variable(-1.0, 0.0, 10.0); // min -x -> x at upper
    const std::vector<double> lo{0.0};
    const std::vector<double> hi{3.0};
    const lp_solution s = solve_lp(p, {}, lo, hi);
    ASSERT_EQ(s.status, lp_status::optimal);
    EXPECT_NEAR(s.x[0], 3.0, 1e-9);
}

TEST(Simplex, NegativeLowerBoundsWork)
{
    // min x s.t. x + y >= -2, x in [-5,5], y in [-1,1] -> x=-1 at y=1...
    // actually x >= -2 - y >= -3, and x's own bound is -5 -> optimum -3.
    lp_problem p;
    p.add_variable(1.0, -5.0, 5.0);
    p.add_variable(0.0, -1.0, 1.0);
    p.add_row({{{0, 1.0}, {1, 1.0}}, row_sense::ge, -2.0});
    const lp_solution s = solve_lp(p);
    ASSERT_EQ(s.status, lp_status::optimal);
    EXPECT_NEAR(s.objective, -3.0, 1e-7);
}

TEST(Simplex, DegenerateProblemTerminates)
{
    // Multiple redundant constraints through one vertex.
    lp_problem p;
    p.add_variable(-1.0, 0.0, 10.0);
    p.add_variable(-1.0, 0.0, 10.0);
    p.add_row({{{0, 1.0}, {1, 1.0}}, row_sense::le, 4.0});
    p.add_row({{{0, 2.0}, {1, 2.0}}, row_sense::le, 8.0});
    p.add_row({{{0, 1.0}}, row_sense::le, 4.0});
    p.add_row({{{1, 1.0}}, row_sense::le, 4.0});
    const lp_solution s = solve_lp(p);
    ASSERT_EQ(s.status, lp_status::optimal);
    EXPECT_NEAR(s.objective, -4.0, 1e-7);
}

TEST(Simplex, DuplicateTermsAccumulate)
{
    // x + x <= 4  ==  2x <= 4.
    lp_problem p;
    p.add_variable(-1.0, 0.0, 10.0);
    p.add_row({{{0, 1.0}, {0, 1.0}}, row_sense::le, 4.0});
    const lp_solution s = solve_lp(p);
    ASSERT_EQ(s.status, lp_status::optimal);
    EXPECT_NEAR(s.x[0], 2.0, 1e-7);
}

TEST(Simplex, SolutionIsAlwaysFeasible)
{
    rng random(42);
    for (int trial = 0; trial < 50; ++trial) {
        lp_problem p;
        const int nv = random.uniform_int(1, 5);
        for (int v = 0; v < nv; ++v) {
            p.add_variable(random.uniform_int(0, 10) - 5.0, 0.0,
                           random.uniform_int(1, 8));
        }
        const int nr = random.uniform_int(1, 4);
        for (int r = 0; r < nr; ++r) {
            lp_row row;
            for (int v = 0; v < nv; ++v) {
                if (random.chance(0.7)) {
                    row.terms.emplace_back(
                        static_cast<std::size_t>(v),
                        random.uniform_int(0, 6) - 3.0);
                }
            }
            if (row.terms.empty()) {
                continue;
            }
            row.sense = random.chance(0.5) ? row_sense::le : row_sense::ge;
            row.rhs = random.uniform_int(0, 20) - 10.0;
            p.add_row(row);
        }
        const lp_solution s = solve_lp(p);
        if (s.status == lp_status::optimal) {
            EXPECT_TRUE(p.is_feasible(s.x, 1e-5)) << "trial " << trial;
        }
    }
}

// ---------------------------------------------------- branch and bound --

TEST(Mip, IntegerRoundingBeatsNaiveTruncation)
{
    // min -(x + y) s.t. 2x + 2y <= 5, x,y integer in [0,2].
    // LP relaxation: x+y = 2.5; best integral: 2.
    lp_problem p;
    p.add_variable(-1.0, 0.0, 2.0, var_kind::integer);
    p.add_variable(-1.0, 0.0, 2.0, var_kind::integer);
    p.add_row({{{0, 2.0}, {1, 2.0}}, row_sense::le, 5.0});
    const mip_solution s = solve_mip(p);
    ASSERT_EQ(s.status, mip_status::optimal);
    EXPECT_NEAR(s.objective, -2.0, 1e-9);
}

TEST(Mip, KnapsackOptimum)
{
    // max 10a + 13b + 7c (min negative), weights 3,4,2, capacity 6,
    // binaries. Best: b + c = 20 (weight 6).
    lp_problem p;
    p.add_binary(-10.0);
    p.add_binary(-13.0);
    p.add_binary(-7.0);
    p.add_row({{{0, 3.0}, {1, 4.0}, {2, 2.0}}, row_sense::le, 6.0});
    const mip_solution s = solve_mip(p);
    ASSERT_EQ(s.status, mip_status::optimal);
    EXPECT_NEAR(s.objective, -20.0, 1e-9);
    EXPECT_NEAR(s.x[1], 1.0, 1e-9);
    EXPECT_NEAR(s.x[2], 1.0, 1e-9);
}

TEST(Mip, InfeasibleIntegrality)
{
    // 2x = 3 has no integer solution in [0, 5].
    lp_problem p;
    p.add_variable(1.0, 0.0, 5.0, var_kind::integer);
    p.add_row({{{0, 2.0}}, row_sense::eq, 3.0});
    EXPECT_EQ(solve_mip(p).status, mip_status::infeasible);
}

TEST(Mip, MixedIntegerContinuous)
{
    // min x + y, x integer, s.t. x + y >= 2.5, x in [0,5], y in [0,0.4].
    // y maxes at 0.4 -> x >= 2.1 -> x = 3? No: x integer >= 2.1 -> 3;
    // but x=2, y=0.5 impossible. Optimum: x=3, y=0 -> wait x+y>=2.5 with
    // x=2,y=0.4 gives 2.4 < 2.5. So x=3,y=0: objective 3. Check y=0.4,
    // x=2.1 -> x=3 still. Objective = 3.
    lp_problem p;
    p.add_variable(1.0, 0.0, 5.0, var_kind::integer);
    p.add_variable(1.0, 0.0, 0.4);
    p.add_row({{{0, 1.0}, {1, 1.0}}, row_sense::ge, 2.5});
    const mip_solution s = solve_mip(p);
    ASSERT_EQ(s.status, mip_status::optimal);
    EXPECT_NEAR(s.objective, 3.0, 1e-6);
}

TEST(Mip, CutoffPrunesWorseSolutions)
{
    lp_problem p;
    p.add_binary(-5.0);
    mip_options opt;
    opt.cutoff = -10.0; // better than anything achievable
    const mip_solution s = solve_mip(p, opt);
    EXPECT_EQ(s.status, mip_status::infeasible); // nothing beats the cutoff
}

TEST(Mip, NodeLimitReported)
{
    // A problem needing branching with max_nodes = 1.
    lp_problem p;
    p.add_variable(-1.0, 0.0, 3.0, var_kind::integer);
    p.add_variable(-1.0, 0.0, 3.0, var_kind::integer);
    p.add_row({{{0, 2.0}, {1, 2.0}}, row_sense::le, 3.0});
    mip_options opt;
    opt.max_nodes = 1;
    const mip_solution s = solve_mip(p, opt);
    EXPECT_TRUE(s.status == mip_status::limit_feasible ||
                s.status == mip_status::limit_nofeasible);
}

TEST(Mip, SolutionIsIntegral)
{
    rng random(7);
    for (int trial = 0; trial < 30; ++trial) {
        lp_problem p;
        const int nv = random.uniform_int(1, 4);
        for (int v = 0; v < nv; ++v) {
            p.add_variable(random.uniform_int(0, 8) - 4.0, 0.0,
                           random.uniform_int(1, 3), var_kind::integer);
        }
        lp_row row;
        for (int v = 0; v < nv; ++v) {
            row.terms.emplace_back(static_cast<std::size_t>(v),
                                   random.uniform_int(1, 3));
        }
        row.sense = row_sense::le;
        row.rhs = random.uniform_int(1, 6);
        p.add_row(row);
        const mip_solution s = solve_mip(p);
        if (s.status != mip_status::optimal) {
            continue;
        }
        for (int v = 0; v < nv; ++v) {
            const double x = s.x[static_cast<std::size_t>(v)];
            EXPECT_NEAR(x, std::round(x), 1e-9);
        }
        EXPECT_TRUE(p.is_feasible(s.x, 1e-6));
    }
}

/// Exhaustive reference: enumerate every integer point of the box.
double enumerate_optimum(const lp_problem& p, bool& found)
{
    std::vector<double> x(p.n_vars(), 0.0);
    double best = std::numeric_limits<double>::infinity();
    found = false;
    const std::size_t n = p.n_vars();
    std::vector<int> point(n);
    const auto recurse = [&](auto&& self, std::size_t depth) -> void {
        if (depth == n) {
            for (std::size_t v = 0; v < n; ++v) {
                x[v] = point[v];
            }
            if (p.is_feasible(x, 1e-9)) {
                found = true;
                best = std::min(best, p.objective_of(x));
            }
            return;
        }
        for (int v = static_cast<int>(p.lower(depth));
             v <= static_cast<int>(p.upper(depth)); ++v) {
            point[depth] = v;
            self(self, depth + 1);
        }
    };
    recurse(recurse, 0);
    return best;
}

TEST(Mip, MatchesExhaustiveEnumerationOnRandomIps)
{
    rng random(99);
    for (int trial = 0; trial < 60; ++trial) {
        lp_problem p;
        const int nv = random.uniform_int(2, 5);
        for (int v = 0; v < nv; ++v) {
            p.add_variable(random.uniform_int(0, 12) - 6.0, 0.0,
                           random.uniform_int(1, 3), var_kind::integer);
        }
        const int nr = random.uniform_int(1, 3);
        for (int r = 0; r < nr; ++r) {
            lp_row row;
            for (int v = 0; v < nv; ++v) {
                const int coeff = random.uniform_int(0, 8) - 4;
                if (coeff != 0) {
                    row.terms.emplace_back(static_cast<std::size_t>(v),
                                           coeff);
                }
            }
            if (row.terms.empty()) {
                continue;
            }
            const int pick = random.uniform_int(0, 2);
            row.sense = pick == 0   ? row_sense::le
                        : pick == 1 ? row_sense::ge
                                    : row_sense::eq;
            row.rhs = random.uniform_int(0, 10) - 5;
            p.add_row(row);
        }

        bool reachable = false;
        const double reference = enumerate_optimum(p, reachable);
        const mip_solution s = solve_mip(p);
        if (reachable) {
            ASSERT_EQ(s.status, mip_status::optimal) << "trial " << trial;
            EXPECT_NEAR(s.objective, reference, 1e-6) << "trial " << trial;
        } else {
            EXPECT_EQ(s.status, mip_status::infeasible) << "trial " << trial;
        }
    }
}

} // namespace
} // namespace mwl
