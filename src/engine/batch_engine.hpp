// Concurrent batch allocation service.
//
// Turns the one-shot `dpalloc` call into a service: allocation jobs --
// (graph, model, lambda, options) tuples -- are submitted from any thread,
// deduplicated by a content fingerprint of their inputs, fanned out across
// a work-stealing thread pool, and collected in submission order. Two
// mechanisms make repeated work free:
//
//  * In-flight coalescing: a job identical to one currently executing
//    attaches to it and shares its result instead of running again.
//  * A bounded LRU result cache keyed on the job fingerprint, surviving
//    across batches for the lifetime of the engine, so a service replaying
//    popular designs (or a sweep revisiting a lambda) answers from memory.
//
// Identity is structural: the graph fingerprint covers shapes and edges
// (io/graph_io.hpp), the model contributes hardware_model::fingerprint(),
// and options compare field-wise. Equal keys therefore imply inputs the
// allocator cannot distinguish, which (dpalloc being deterministic and
// pure) implies byte-identical results -- the invariant that makes serving
// a cached datapath indistinguishable from recomputing it. Asserted
// against direct serial dpalloc calls in tests/engine_test.cpp.

#ifndef MWL_ENGINE_BATCH_ENGINE_HPP
#define MWL_ENGINE_BATCH_ENGINE_HPP

#include "core/dpalloc.hpp"
#include "io/graph_io.hpp"
#include "support/lru_cache.hpp"
#include "support/thread_pool.hpp"

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace mwl {

struct batch_options {
    /// Worker threads for an engine-owned pool; 0 = hardware concurrency.
    std::size_t jobs = 0;
    /// Bound on the LRU result cache (completed jobs retained).
    std::size_t cache_capacity = 1024;
};

struct batch_stats {
    std::size_t submitted = 0; ///< jobs accepted by submit()
    std::size_t executed = 0;  ///< dpalloc runs actually performed
    std::size_t cache_hits = 0; ///< served from the LRU at submit time
    std::size_t coalesced = 0;  ///< attached to an identical in-flight job
    std::size_t errors = 0;     ///< executions that threw (e.g. infeasible)
};

class batch_engine {
public:
    /// Per-job outcome, in submission order. Coalesced and cached jobs
    /// share one immutable result object with the job that computed it.
    struct outcome {
        std::shared_ptr<const dpalloc_result> result; ///< null on error
        std::string error;     ///< what() of the failure, empty on success
        std::uint64_t key = 0; ///< job fingerprint (reported by mwl_batch)
        bool from_cache = false;
        bool coalesced = false;

        [[nodiscard]] bool ok() const { return result != nullptr; }
    };

    /// Engine with its own pool.
    explicit batch_engine(const batch_options& options = {});

    /// Engine sharing an external pool (e.g. with a parallel Pareto sweep);
    /// `pool` must outlive the engine.
    batch_engine(thread_pool& pool, const batch_options& options = {});

    /// Completes all in-flight work (an implicit drain) before returning.
    ~batch_engine();

    batch_engine(const batch_engine&) = delete;
    batch_engine& operator=(const batch_engine&) = delete;

    /// Enqueue one allocation job; returns its index into the vector the
    /// next drain() returns. `graph` and `model` are borrowed and must stay
    /// alive until that drain() completes. Thread-safe.
    std::size_t submit(const sequencing_graph& graph,
                       const hardware_model& model, int lambda,
                       const dpalloc_options& options = {});

    /// Wait for every submitted job (helping the pool while blocked, so
    /// drain() may be called from inside a pool task) and return the
    /// outcomes in submission order, starting the next batch. The result
    /// cache persists across batches.
    [[nodiscard]] std::vector<outcome> drain();

    /// Jobs submitted but not yet resolved in the current batch.
    [[nodiscard]] std::size_t pending() const;

    /// Per-job checkpoint hook: invoked exactly once per submitted index
    /// the moment its outcome is known (cache hit at submit, execution,
    /// or coalesced resolution), with the engine lock *not* held, from
    /// whichever thread resolved the job. Every hook call for a batch
    /// completes before that batch's drain() returns, so a caller may
    /// reuse its index-keyed state across batches. The campaign runner
    /// journals completed points from here (src/campaign/). The hook must
    /// not call back into the engine; it must be set while no jobs are in
    /// flight.
    using completion_hook =
        std::function<void(std::size_t index, const outcome&)>;
    void set_completion_hook(completion_hook hook);

    [[nodiscard]] batch_stats stats() const;

    [[nodiscard]] thread_pool& pool() { return *pool_; }

private:
    struct job_key {
        std::uint64_t graph_fp = 0;
        std::uint64_t model_fp = 0;
        int lambda = 0;
        dpalloc_options options;

        friend bool operator==(const job_key&, const job_key&) = default;
    };
    struct job_key_hash {
        std::size_t operator()(const job_key& key) const;
    };

    void execute(const job_key& key, const sequencing_graph& graph,
                 const hardware_model& model);
    void resolve(const job_key& key,
                 std::shared_ptr<const dpalloc_result> result,
                 std::string error);

    std::unique_ptr<thread_pool> owned_pool_; ///< null when pool is shared
    thread_pool* pool_;

    mutable std::mutex mutex_;
    std::condition_variable idle_cv_;
    std::vector<outcome> entries_;
    std::unordered_map<job_key, std::vector<std::size_t>, job_key_hash>
        inflight_; ///< key -> waiting entry indices
    lru_cache<job_key, std::shared_ptr<const dpalloc_result>, job_key_hash>
        cache_;
    batch_stats stats_;
    completion_hook hook_; ///< set while idle, read under mutex_
};

} // namespace mwl

#endif // MWL_ENGINE_BATCH_ENGINE_HPP
