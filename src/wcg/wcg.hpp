// Wordlength compatibility graph G(V, E), V = O u R, E = C u H (paper §2.1).
//
// This class owns the *H* side of the graph: the bipartite, mutable
// "operation o may execute on resource-wordlength type r" relation, together
// with cached latency/area of every resource type and the per-operation
// latency bounds derived from H. Refinement (paper §2.4) deletes H edges.
//
// The *C* side (schedule-derived transitive orientation on O) is a function
// of the current schedule, not persistent state; it is represented
// implicitly by (start time, latency bound) pairs and handled by the chain
// utilities in wcg/chains.hpp.

#ifndef MWL_WCG_WCG_HPP
#define MWL_WCG_WCG_HPP

#include "dfg/sequencing_graph.hpp"
#include "model/hardware_model.hpp"
#include "support/bitset.hpp"
#include "support/ids.hpp"

#include <cstdint>
#include <span>
#include <vector>

namespace mwl {

class wordlength_compatibility_graph {
public:
    /// Build the initial graph: resources are the join-closure of the
    /// operation shapes (wcg/resource_set.hpp) and {o,r} is in H exactly
    /// when r covers o's shape. `graph` and `model` must outlive *this.
    wordlength_compatibility_graph(const sequencing_graph& graph,
                                   const hardware_model& model);

    [[nodiscard]] const sequencing_graph& graph() const { return *graph_; }
    [[nodiscard]] const hardware_model& model() const { return *model_; }

    // -- resource-wordlength types -------------------------------------

    [[nodiscard]] std::size_t resource_count() const
    {
        return resources_.size();
    }
    [[nodiscard]] const op_shape& resource(res_id r) const;
    [[nodiscard]] int latency(res_id r) const;
    [[nodiscard]] double area(res_id r) const;
    [[nodiscard]] std::vector<res_id> all_resources() const;

    // -- H edges ---------------------------------------------------------

    /// O(1): one bit probe of the op-major incidence matrix.
    [[nodiscard]] bool compatible(op_id o, res_id r) const
    {
        check_op(o);
        check_res(r);
        return bits_test(res_bits_.data() + o.value() * res_words_,
                         r.value());
    }
    /// H(o): resource types that may still execute o, ascending res_id.
    /// A slice of the flat CSR pool; rows only shrink under refinement.
    [[nodiscard]] std::span<const res_id> resources_for(op_id o) const;
    /// O(r): operations that resource type r may still execute.
    [[nodiscard]] std::span<const op_id> ops_for(res_id r) const;
    [[nodiscard]] std::size_t edge_count() const { return edge_count_; }

    // -- word-parallel views of H ----------------------------------------
    //
    // Rows of the two incidence bit matrices, maintained in lockstep with
    // the CSR adjacency. Set-cover coverage rows, clique compatibility
    // probes, and common-resource intersections consume these directly.

    /// Words per ops_row (== bits_words(graph().size())).
    [[nodiscard]] std::size_t op_words() const { return op_words_; }
    /// Words per resources_row (== bits_words(resource_count())).
    [[nodiscard]] std::size_t res_words() const { return res_words_; }
    /// Bit o set iff {o, r} is in H.
    [[nodiscard]] std::span<const std::uint64_t> ops_row(res_id r) const
    {
        check_res(r);
        return {op_bits_.data() + r.value() * op_words_, op_words_};
    }
    /// Bit r set iff {o, r} is in H.
    [[nodiscard]] std::span<const std::uint64_t> resources_row(op_id o) const
    {
        check_op(o);
        return {res_bits_.data() + o.value() * res_words_, res_words_};
    }

    /// Monotone counter bumped by every successful `delete_edge` (and hence
    /// by `refine_op`). Downstream caches key on it to detect staleness:
    /// equal versions guarantee an identical H edge set.
    [[nodiscard]] std::uint64_t edge_version() const { return version_; }

    /// Delete one H edge. Throws `precondition_error` if the edge is absent
    /// or if deleting it would leave o with no compatible resource.
    void delete_edge(op_id o, res_id r);

    // -- latency bounds (paper: L_o and the native lower bound) ----------
    //
    // Both bounds and refinability are cached per operation and maintained
    // incrementally by delete_edge / refine_op, so every query is O(1); a
    // deletion only rescans H(o) when it removed an extremal-latency edge.

    /// L_o = max latency over H(o).
    [[nodiscard]] int latency_upper_bound(op_id o) const;
    /// min latency over H(o).
    [[nodiscard]] int latency_lower_bound(op_id o) const;
    /// Upper bounds for all operations, indexed by op id.
    [[nodiscard]] std::vector<int> latency_upper_bounds() const;

    /// True iff o still has an H edge to a resource with latency strictly
    /// below L_o -- i.e. the §2.4 refinement step can shrink o's bound.
    [[nodiscard]] bool refinable(op_id o) const;

    /// §2.4 refinement: delete every {o,r} in H with latency(r) == L_o.
    /// Returns the number of edges deleted. Throws `precondition_error`
    /// if o is not refinable.
    int refine_op(op_id o);

private:
    void check_op(op_id o) const;
    void check_res(res_id r) const;
    void recompute_bounds(op_id o);

    const sequencing_graph* graph_;
    const hardware_model* model_;
    std::vector<op_shape> resources_;
    std::vector<int> res_latency_;
    std::vector<double> res_area_;

    // H adjacency as CSR: row i of h_op_data_ spans
    // [op_row_begin_[i], op_row_end_[i]), ascending res_id; likewise
    // h_res_data_ for O(r) rows, ascending op_id. Rows never grow after
    // construction, so deletion shifts within the row slice and begin
    // offsets stay fixed -- one contiguous pool, no per-row heap rows.
    std::vector<res_id> h_op_data_;
    std::vector<std::uint32_t> op_row_begin_;
    std::vector<std::uint32_t> op_row_end_;
    std::vector<op_id> h_res_data_;
    std::vector<std::uint32_t> res_row_begin_;
    std::vector<std::uint32_t> res_row_end_;

    // Incidence bit matrices mirroring the CSR rows (see ops_row).
    std::size_t op_words_ = 0;
    std::size_t res_words_ = 0;
    std::vector<std::uint64_t> op_bits_;
    std::vector<std::uint64_t> res_bits_;

    std::vector<int> lat_upper_;                // cached max latency of H(o)
    std::vector<int> lat_lower_;                // cached min latency of H(o)
    std::size_t edge_count_ = 0;
    std::uint64_t version_ = 0;
};

} // namespace mwl

#endif // MWL_WCG_WCG_HPP
