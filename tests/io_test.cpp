// Unit tests for src/io: .mwl parsing, error reporting with line numbers,
// and write/parse round-trips.

#include "io/graph_io.hpp"
#include "support/rng.hpp"
#include "tgff/generator.hpp"

#include <gtest/gtest.h>

namespace mwl {
namespace {

TEST(GraphIo, ParsesOperationsAndDependencies)
{
    const sequencing_graph g = parse_graph_string(
        "# a tiny graph\n"
        "op m1 mul 12 8\n"
        "op a1 add 16\n"
        "\n"
        "dep m1 a1\n");
    ASSERT_EQ(g.size(), 2u);
    EXPECT_EQ(g.shape(op_id(0)), op_shape::multiplier(12, 8));
    EXPECT_EQ(g.shape(op_id(1)), op_shape::adder(16));
    EXPECT_EQ(g.op(op_id(0)).name, "m1");
    ASSERT_EQ(g.successors(op_id(0)).size(), 1u);
    EXPECT_EQ(g.successors(op_id(0))[0], op_id(1));
}

TEST(GraphIo, CommentsAndBlankLinesIgnored)
{
    const sequencing_graph g = parse_graph_string(
        "\n# only comments\n\n# another\nop x add 4\n");
    EXPECT_EQ(g.size(), 1u);
}

TEST(GraphIo, MultiplierOperandOrderNormalised)
{
    const sequencing_graph g = parse_graph_string("op m mul 4 20\n");
    EXPECT_EQ(g.shape(op_id(0)), op_shape::multiplier(20, 4));
}

TEST(GraphIo, DuplicateNameRejectedWithLineNumber)
{
    try {
        static_cast<void>(
            parse_graph_string("op x add 4\nop x add 5\n"));
        FAIL() << "should have thrown";
    } catch (const parse_error& e) {
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("duplicate"),
                  std::string::npos);
    }
}

TEST(GraphIo, UnknownKeywordRejected)
{
    EXPECT_THROW(static_cast<void>(parse_graph_string("node x add 4\n")),
                 parse_error);
}

TEST(GraphIo, UnknownKindRejected)
{
    EXPECT_THROW(static_cast<void>(parse_graph_string("op x div 4\n")),
                 parse_error);
}

TEST(GraphIo, MissingWidthRejected)
{
    EXPECT_THROW(static_cast<void>(parse_graph_string("op x add\n")),
                 parse_error);
    EXPECT_THROW(static_cast<void>(parse_graph_string("op x mul 4\n")),
                 parse_error);
}

TEST(GraphIo, NonPositiveWidthRejected)
{
    EXPECT_THROW(static_cast<void>(parse_graph_string("op x add 0\n")),
                 parse_error);
    EXPECT_THROW(static_cast<void>(parse_graph_string("op x mul 4 -2\n")),
                 parse_error);
}

TEST(GraphIo, TrailingTokensRejected)
{
    EXPECT_THROW(static_cast<void>(parse_graph_string("op x add 4 junk\n")),
                 parse_error);
}

TEST(GraphIo, DanglingDependencyRejected)
{
    EXPECT_THROW(
        static_cast<void>(parse_graph_string("op x add 4\ndep x y\n")),
        parse_error);
    EXPECT_THROW(
        static_cast<void>(parse_graph_string("op x add 4\ndep y x\n")),
        parse_error);
}

TEST(GraphIo, CycleRejectedWithLineNumber)
{
    try {
        static_cast<void>(parse_graph_string(
            "op a add 4\nop b add 4\ndep a b\ndep b a\n"));
        FAIL() << "should have thrown";
    } catch (const parse_error& e) {
        EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos);
    }
}

TEST(GraphIo, SelfDependencyRejected)
{
    EXPECT_THROW(
        static_cast<void>(parse_graph_string("op a add 4\ndep a a\n")),
        parse_error);
}

TEST(GraphIo, RoundTripPreservesStructure)
{
    rng random(7);
    for (int trial = 0; trial < 10; ++trial) {
        tgff_options opts;
        opts.n_ops = 12;
        const sequencing_graph original = generate_tgff(opts, random);
        const sequencing_graph copy =
            parse_graph_string(write_graph(original));
        ASSERT_EQ(copy.size(), original.size());
        ASSERT_EQ(copy.edge_count(), original.edge_count());
        for (const op_id o : original.all_ops()) {
            EXPECT_EQ(copy.shape(o), original.shape(o));
            const auto so = original.successors(o);
            const auto sc = copy.successors(o);
            ASSERT_EQ(so.size(), sc.size());
            for (std::size_t i = 0; i < so.size(); ++i) {
                EXPECT_EQ(so[i], sc[i]);
            }
        }
    }
}

TEST(GraphIo, WriterNamesUnnamedOpsStably)
{
    sequencing_graph g;
    g.add_operation(op_shape::adder(4)); // unnamed
    g.add_operation(op_shape::multiplier(6, 6), "named");
    const std::string text = write_graph(g);
    EXPECT_NE(text.find("op o0 add 4"), std::string::npos);
    EXPECT_NE(text.find("op named mul 6 6"), std::string::npos);
}

TEST(GraphIo, EmptyInputYieldsEmptyGraph)
{
    EXPECT_TRUE(parse_graph_string("").empty());
}

} // namespace
} // namespace mwl
