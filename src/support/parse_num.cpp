#include "support/parse_num.hpp"

#include "support/error.hpp"

#include <cmath>
#include <stdexcept>

namespace mwl {
namespace {

[[noreturn]] void bad_value(const std::string& text,
                            const std::string& context)
{
    if (context.empty()) {
        throw precondition_error("bad numeric value '" + text + "'");
    }
    throw precondition_error("bad numeric value in '" + context + "'");
}

[[noreturn]] void out_of_range(const std::string& text,
                               const std::string& context)
{
    if (context.empty()) {
        throw precondition_error("numeric value out of range '" + text +
                                 "'");
    }
    throw precondition_error("numeric value out of range in '" + context +
                             "'");
}

/// Runs one of the std::sto* functions under the shared contract: the
/// whole token consumed, range errors distinct from parse errors.
template <typename Fn>
auto checked(Fn&& convert, const std::string& text,
             const std::string& context)
{
    std::size_t used = 0;
    try {
        const auto value = convert(text, &used);
        if (used != text.size()) {
            bad_value(text, context);
        }
        return value;
    } catch (const std::out_of_range&) {
        out_of_range(text, context);
    } catch (const std::invalid_argument&) {
        bad_value(text, context);
    }
}

void reject_sign(const std::string& text, const std::string& context)
{
    // stoul wraps negatives silently ("-1" -> 1.8e19); reject up front.
    if (!text.empty() && text[0] == '-') {
        bad_value(text, context);
    }
}

} // namespace

int parse_int_checked(const std::string& text, const std::string& context)
{
    return checked(
        [](const std::string& t, std::size_t* used) {
            return std::stoi(t, used);
        },
        text, context);
}

std::size_t parse_size_checked(const std::string& text,
                               const std::string& context)
{
    reject_sign(text, context);
    const unsigned long long value = checked(
        [](const std::string& t, std::size_t* used) {
            return std::stoull(t, used);
        },
        text, context);
    if (value > static_cast<unsigned long long>(SIZE_MAX)) {
        out_of_range(text, context);
    }
    return static_cast<std::size_t>(value);
}

std::uint64_t parse_u64_checked(const std::string& text,
                                const std::string& context)
{
    reject_sign(text, context);
    return checked(
        [](const std::string& t, std::size_t* used) {
            return std::stoull(t, used);
        },
        text, context);
}

double parse_double_checked(const std::string& text,
                            const std::string& context)
{
    const double value = checked(
        [](const std::string& t, std::size_t* used) {
            return std::stod(t, used);
        },
        text, context);
    if (!std::isfinite(value)) {
        out_of_range(text, context);
    }
    return value;
}

} // namespace mwl
