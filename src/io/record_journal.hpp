// Checksummed, append-only record framing.
//
// The campaign result store journals one line per completed point. A
// crash (or an injected one, support/fault_inject.hpp) can interrupt an
// append anywhere, so every record is framed to make torn output
// *detectable*: a line is `<fnv1a64-hex16> <payload>\n`, the checksum
// covering the payload bytes exactly. On load, a final line that is
// incomplete (no newline), too short to frame, or checksum-mismatched is
// a torn tail: it is reported and discarded, never propagated -- the
// appender then truncates it away before writing anything new, because
// appending after half a record would destroy the next record too. The
// same malformation anywhere *before* the final record cannot be produced
// by a crash of this writer and is therefore corruption, a hard error.
//
// Payloads are opaque single-line strings; the result store defines what
// goes in them (src/campaign/result_store.cpp). Tested in isolation by
// tests/atomic_write_test.cpp: truncated tail, corrupted checksum,
// duplicate record, empty file.

#ifndef MWL_IO_RECORD_JOURNAL_HPP
#define MWL_IO_RECORD_JOURNAL_HPP

#include "support/error.hpp"

#include <cstddef>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace mwl {

/// A journal (or snapshot) file is corrupt in a way no crash of the
/// writer explains: a bad record before the final one.
class journal_format_error : public error {
public:
    using error::error;
};

/// `<fnv1a64-hex16> <payload>\n` -- the one framing shared by the writer,
/// the loader and the snapshot serialiser. Throws `precondition_error` if
/// the payload contains a newline.
[[nodiscard]] std::string frame_record(std::string_view payload);

/// What loading a journal found.
struct journal_load {
    std::vector<std::string> payloads; ///< valid records, file order
    std::size_t valid_bytes = 0; ///< prefix length holding those records
    bool dropped_tail = false;   ///< a torn/corrupt final record was cut
    std::string tail_error;      ///< why the tail was dropped, for logs
};

/// Parse framed records out of `text` (shared by file loading and
/// snapshot parsing). Throws `journal_format_error` on mid-file
/// corruption; a bad final record is dropped and reported instead.
[[nodiscard]] journal_load parse_records(std::string_view text);

/// Load a journal file. A missing or empty file is a valid empty journal.
[[nodiscard]] journal_load load_journal(const std::filesystem::path& path);

/// Appender with per-record durability: every `append` writes one framed
/// record and fsyncs before returning, so a record the caller saw succeed
/// survives any later crash. Each append is a store write for the
/// crash-injection countdown; in torn mode the elected record is half
/// written -- exactly the damage `parse_records` must catch.
class journal_writer {
public:
    /// Open for appending, truncating the file to `valid_bytes` first
    /// (pass `journal_load::valid_bytes` to cut a torn tail; pass the
    /// current size -- or open a fresh file -- to keep everything).
    /// Throws `io_error` on failure.
    journal_writer(const std::filesystem::path& path,
                   std::size_t valid_bytes);

    /// Open a new or intact journal for appending at its end.
    explicit journal_writer(const std::filesystem::path& path);

    ~journal_writer();

    journal_writer(const journal_writer&) = delete;
    journal_writer& operator=(const journal_writer&) = delete;

    /// Durably append one record. Throws `io_error` on failure.
    void append(std::string_view payload);

private:
    void open(const std::filesystem::path& path);

    int fd_ = -1;
};

} // namespace mwl

#endif // MWL_IO_RECORD_JOURNAL_HPP
