// Multiple-wordlength FIR filter allocation.
//
// The motivating workload of the multiple-wordlength literature: a
// direct-form FIR filter whose coefficient wordlengths have been shrunk
// per-tap by an error-analysis tool (Synoptix in the paper's references),
// so every tap multiplier and every accumulation adder has its own shape.
// This example allocates an 8-tap filter across the whole slack range and
// compares DPAlloc against both baselines, printing the area/latency
// trade-off table the designer would look at.
//
// Build & run:  ./build/examples/fir_filter

#include "baseline/descending.hpp"
#include "baseline/two_stage.hpp"
#include "core/dpalloc.hpp"
#include "core/validate.hpp"
#include "dfg/analysis.hpp"
#include "model/hardware_model.hpp"
#include "report/table.hpp"
#include "tgff/corpus.hpp"

#include <algorithm>
#include <iostream>
#include <vector>

namespace {

/// Direct-form FIR: y = sum_i c_i * x[n-i]. `coeff_widths[i]` is the
/// wordlength of coefficient i after error-driven optimisation; the data
/// path is `data_width` bits. Accumulation is a serial adder chain whose
/// widths grow towards the output tap.
mwl::sequencing_graph make_fir(const std::vector<int>& coeff_widths,
                               int data_width)
{
    using namespace mwl;
    sequencing_graph g;
    std::vector<op_id> products;
    products.reserve(coeff_widths.size());
    for (std::size_t i = 0; i < coeff_widths.size(); ++i) {
        products.push_back(g.add_operation(
            op_shape::multiplier(data_width, coeff_widths[i]),
            "tap" + std::to_string(i)));
    }
    op_id acc = products[0];
    for (std::size_t i = 1; i < products.size(); ++i) {
        // Accumulator width grows slowly; model it as data width plus the
        // number of additions so far, capped at a 24-bit accumulator.
        const int width =
            std::min(24, data_width + static_cast<int>(i));
        const op_id sum =
            g.add_operation(op_shape::adder(width),
                            "sum" + std::to_string(i));
        g.add_dependency(acc, sum);
        g.add_dependency(products[i], sum);
        acc = sum;
    }
    return g;
}

} // namespace

int main()
{
    using namespace mwl;

    // Per-tap coefficient wordlengths, as an error-shaping tool would
    // produce them: wide around the impulse-response peak, narrow in the
    // tails.
    const std::vector<int> coeff_widths{5, 8, 12, 16, 16, 12, 8, 5};
    const int data_width = 12;
    const sequencing_graph graph = make_fir(coeff_widths, data_width);
    const sonic_model model;
    const int lambda_min = min_latency(graph, model);

    std::cout << "8-tap multiple-wordlength FIR: " << graph.size()
              << " operations, lambda_min = " << lambda_min << " cycles\n\n";

    table t("FIR area vs latency slack (area units; lower is better)");
    t.header({"slack", "lambda", "DPAlloc", "two-stage [4]",
              "descending [14]", "DPAlloc resources"});
    for (const double slack : {0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30}) {
        const int lambda = relaxed_lambda(lambda_min, slack);
        const dpalloc_result heur = dpalloc(graph, model, lambda);
        require_valid(graph, model, heur.path, lambda);
        const two_stage_result two = two_stage_allocate(graph, model, lambda);
        const datapath desc = descending_allocate(graph, model, lambda);
        t.row({table::num(static_cast<int>(slack * 100)) + "%",
               table::num(lambda), table::num(heur.path.total_area, 0),
               table::num(two.path.total_area, 0),
               table::num(desc.total_area, 0),
               table::num(static_cast<int>(heur.path.instances.size()))});
    }
    t.print(std::cout);

    std::cout << "\nAllocation at 30% slack:\n";
    const int lambda = relaxed_lambda(lambda_min, 0.30);
    const dpalloc_result heur = dpalloc(graph, model, lambda);
    std::cout << describe(heur.path, graph);
    return 0;
}
