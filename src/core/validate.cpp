#include "core/validate.hpp"

#include "support/error.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace mwl {
namespace {

template <typename... Parts>
void report(std::vector<finding>& out, const char* rule,
            std::string location, const Parts&... parts)
{
    std::ostringstream os;
    (os << ... << parts);
    out.push_back(make_finding(rule, finding_severity::error,
                               std::move(location), os.str()));
}

std::string op_loc(std::size_t o)
{
    return "op " + std::to_string(o);
}

std::string inst_loc(std::size_t i)
{
    return "instance " + std::to_string(i);
}

} // namespace

std::vector<finding> validate_datapath(const sequencing_graph& graph,
                                       const hardware_model& model,
                                       const datapath& path, int lambda)
{
    std::vector<finding> bad;
    const std::size_t n = graph.size();

    if (path.start.size() != n || path.instance_of_op.size() != n) {
        report(bad, "datapath.size-mismatch", "path",
               "vector sizes do not match the graph (", n, " ops)");
        return bad; // everything else would index out of range
    }

    // Instance-level checks: model consistency and membership.
    std::vector<std::size_t> seen(n, 0);
    double area_sum = 0.0;
    for (std::size_t i = 0; i < path.instances.size(); ++i) {
        const datapath_instance& inst = path.instances[i];
        if (inst.ops.empty()) {
            report(bad, "datapath.empty-instance", inst_loc(i),
                   "executes no operation");
        }
        if (inst.latency != model.latency(inst.shape)) {
            report(bad, "datapath.latency-model", inst_loc(i), "latency ",
                   inst.latency, " != model latency ",
                   model.latency(inst.shape));
        }
        if (inst.area != model.area(inst.shape)) {
            report(bad, "datapath.area-model", inst_loc(i), "area ",
                   inst.area, " != model area ", model.area(inst.shape));
        }
        area_sum += inst.area;
        for (const op_id o : inst.ops) {
            if (o.value() >= n) {
                report(bad, "datapath.unknown-op", inst_loc(i),
                       "lists unknown op ", o.value());
                continue;
            }
            ++seen[o.value()];
            if (path.instance_of_op[o.value()] != i) {
                report(bad, "datapath.membership", op_loc(o.value()),
                       "membership disagrees with instance_of_op");
            }
            if (!inst.shape.covers(graph.shape(o))) {
                report(bad, "datapath.coverage", inst_loc(i), "(",
                       inst.shape.to_string(), ") cannot execute op ",
                       o.value(), " (", graph.shape(o).to_string(), ")");
            }
        }
    }
    for (std::size_t o = 0; o < n; ++o) {
        if (seen[o] != 1) {
            report(bad, "datapath.op-count", op_loc(o), "appears in ",
                   seen[o], " instances (expected exactly 1)");
        }
        if (path.instance_of_op[o] >= path.instances.size()) {
            report(bad, "datapath.unknown-instance", op_loc(o),
                   "bound to unknown instance");
        }
        if (path.start[o] < 0) {
            report(bad, "datapath.unscheduled", op_loc(o),
                   "is unscheduled");
        }
    }
    if (!bad.empty()) {
        return bad; // timing checks below assume structural sanity
    }

    // Data dependencies: a predecessor completes (at its *bound* latency)
    // no later than the successor starts.
    for (const op_id o : graph.all_ops()) {
        for (const op_id s : graph.successors(o)) {
            const int finish = path.start[o.value()] + path.bound_latency(o);
            if (finish > path.start[s.value()]) {
                report(bad, "datapath.dependency", op_loc(o.value()),
                       "finishes at ", finish, " but op ", s.value(),
                       " starts at ", path.start[s.value()]);
            }
        }
    }

    // Exclusivity: operations sharing an instance must not overlap.
    for (std::size_t i = 0; i < path.instances.size(); ++i) {
        const datapath_instance& inst = path.instances[i];
        for (std::size_t a = 0; a < inst.ops.size(); ++a) {
            for (std::size_t b = a + 1; b < inst.ops.size(); ++b) {
                const int sa = path.start[inst.ops[a].value()];
                const int sb = path.start[inst.ops[b].value()];
                const bool disjoint =
                    sa + inst.latency <= sb || sb + inst.latency <= sa;
                if (!disjoint) {
                    report(bad, "datapath.exclusivity", inst_loc(i), "ops ",
                           inst.ops[a].value(), " and ",
                           inst.ops[b].value(), " overlap in time");
                }
            }
        }
    }

    // Aggregates.
    int makespan = 0;
    for (const op_id o : graph.all_ops()) {
        makespan =
            std::max(makespan, path.start[o.value()] + path.bound_latency(o));
    }
    if (makespan != path.latency) {
        report(bad, "datapath.latency-sum", "path", "recorded latency ",
               path.latency, " != recomputed ", makespan);
    }
    if (std::abs(area_sum - path.total_area) > 1e-9) {
        report(bad, "datapath.area-sum", "path", "recorded area ",
               path.total_area, " != recomputed ", area_sum);
    }
    if (lambda >= 0 && makespan > lambda) {
        report(bad, "datapath.latency-constraint", "path",
               "latency constraint violated: ", makespan, " > ", lambda);
    }
    return bad;
}

void require_valid(const sequencing_graph& graph, const hardware_model& model,
                   const datapath& path, int lambda)
{
    const std::vector<finding> bad =
        validate_datapath(graph, model, path, lambda);
    if (bad.empty()) {
        return;
    }
    throw error("invalid datapath (" + std::to_string(bad.size()) +
                " violations):" + format_findings(bad));
}

} // namespace mwl
