// Graphviz DOT export of sequencing graphs, for documentation and for
// eyeballing generated workloads.

#ifndef MWL_DFG_DOT_HPP
#define MWL_DFG_DOT_HPP

#include "dfg/sequencing_graph.hpp"

#include <string>

namespace mwl {

/// Render `graph` in Graphviz DOT syntax. Node labels show the operation
/// name (if any) and its shape, e.g. "x1\nmul16x12".
[[nodiscard]] std::string to_dot(const sequencing_graph& graph);

} // namespace mwl

#endif // MWL_DFG_DOT_HPP
