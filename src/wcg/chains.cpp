#include "wcg/chains.hpp"

#include "support/error.hpp"

#include <algorithm>
#include <numeric>

namespace mwl {
namespace {

/// Canonical processing order shared with the original quadratic DP:
/// ascending start, then finish, then op id. A chain visits strictly
/// ascending starts, so this order lists every possible predecessor of an
/// item before the item itself.
bool canonical_less(const timed_op& a, const timed_op& b)
{
    if (a.start != b.start) {
        return a.start < b.start;
    }
    if (a.finish() != b.finish()) {
        return a.finish() < b.finish();
    }
    return a.op < b.op;
}

} // namespace

std::vector<timed_op> longest_chain(std::span<const timed_op> items)
{
    chain_scratch scratch;
    return longest_chain(items, scratch);
}

std::vector<timed_op> longest_chain(std::span<const timed_op> items,
                                    chain_scratch& scratch)
{
    std::vector<timed_op> out;
    longest_chain_into(items, scratch, out);
    return out;
}

void longest_chain_into(std::span<const timed_op> items,
                        chain_scratch& scratch, std::vector<timed_op>& out)
{
    out.clear();
    if (items.empty()) {
        return;
    }
    if (items.size() == 1) {
        out.push_back(items[0]);
        return;
    }
    if (items.size() == 2) {
        // Mirrors the general sweep: with the pair in canonical order, the
        // later-starting item can never precede the earlier one (latencies
        // are >= 1), so the chain is either both items or, on a tie in
        // length, the canonically first.
        const bool swapped = canonical_less(items[1], items[0]);
        const timed_op& a = swapped ? items[1] : items[0];
        const timed_op& b = swapped ? items[0] : items[1];
        out.push_back(a);
        if (precedes(a, b)) {
            out.push_back(b);
        }
        return;
    }

    std::vector<timed_op>& sorted = scratch.sorted;
    sorted.assign(items.begin(), items.end());
    std::sort(sorted.begin(), sorted.end(), canonical_less);
    const std::size_t n = sorted.size();
    constexpr std::size_t npos = static_cast<std::size_t>(-1);

    // Small inputs (the common case in BindSelect's late Chvátal rounds):
    // the quadratic DP over the canonical order beats the sweep's extra
    // finish-order sort, and computes the identical dp/back values -- on
    // strict improvement only, so back[i] is the first maximal predecessor.
    if (n <= 16) {
        std::vector<std::size_t>& dp = scratch.dp;
        std::vector<std::size_t>& back = scratch.back;
        dp.assign(n, 1);
        back.assign(n, npos);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < i; ++j) {
                if (precedes(sorted[j], sorted[i]) && dp[j] + 1 > dp[i]) {
                    dp[i] = dp[j] + 1;
                    back[i] = j;
                }
            }
        }
        std::size_t best = 0;
        for (std::size_t i = 1; i < n; ++i) {
            if (dp[i] > dp[best]) {
                best = i;
            }
        }
        out.reserve(dp[best]);
        for (std::size_t at = best; at != npos; at = back[at]) {
            out.push_back(sorted[at]);
        }
        std::reverse(out.begin(), out.end());
        return;
    }

    // dp[i]: length of the longest chain ending at sorted[i]; back[i]: the
    // smallest canonical index attaining dp[i]-1 among predecessors of i,
    // or npos. These are exactly the values the original O(k^2) DP
    // computed (its scan updated on strict improvement only, so it kept
    // the first maximal predecessor); computed here by a sweep in O(k log k).
    //
    // Predecessors of i are the items with finish <= start_i. Since every
    // latency is >= 1, such items start (and therefore sort) strictly
    // before i, so processing items in canonical order and absorbing them
    // into a pool ordered by finish keeps the pool exactly equal to i's
    // predecessor set -- the pool only ever grows because start is
    // non-decreasing along the sweep.
    std::vector<std::size_t>& by_finish = scratch.by_finish;
    by_finish.resize(n);
    std::iota(by_finish.begin(), by_finish.end(), std::size_t{0});
    std::sort(by_finish.begin(), by_finish.end(),
              [&](std::size_t a, std::size_t b) {
                  if (sorted[a].finish() != sorted[b].finish()) {
                      return sorted[a].finish() < sorted[b].finish();
                  }
                  return a < b;
              });

    std::vector<std::size_t>& dp = scratch.dp;
    std::vector<std::size_t>& back = scratch.back;
    dp.assign(n, 1);
    back.assign(n, npos);
    std::size_t pool_best = npos; // min canonical index with maximal dp
    std::size_t absorbed = 0;
    for (std::size_t i = 0; i < n; ++i) {
        while (absorbed < n &&
               sorted[by_finish[absorbed]].finish() <= sorted[i].start) {
            const std::size_t j = by_finish[absorbed++];
            if (pool_best == npos || dp[j] > dp[pool_best] ||
                (dp[j] == dp[pool_best] && j < pool_best)) {
                pool_best = j;
            }
        }
        if (pool_best != npos) {
            dp[i] = dp[pool_best] + 1;
            back[i] = pool_best;
        }
    }

    std::size_t best = 0;
    for (std::size_t i = 1; i < n; ++i) {
        if (dp[i] > dp[best]) {
            best = i;
        }
    }

    out.reserve(dp[best]);
    for (std::size_t at = best; at != npos; at = back[at]) {
        out.push_back(sorted[at]);
    }
    std::reverse(out.begin(), out.end());
    for (std::size_t i = 0; i + 1 < out.size(); ++i) {
        MWL_ASSERT(precedes(out[i], out[i + 1]));
    }
}

void longest_chain_presorted(std::span<const timed_op> sorted,
                             std::span<const std::uint32_t> by_finish,
                             chain_scratch& scratch, std::vector<timed_op>& out)
{
    out.clear();
    const std::size_t n = sorted.size();
    MWL_ASSERT(by_finish.size() == n);
    if (n == 0) {
        return;
    }
    constexpr std::size_t npos = static_cast<std::size_t>(-1);

    // Same predecessor-pool sweep as longest_chain_into, minus its two
    // sorts: dp/back are identical because both orders are identical, so
    // the emitted chain matches item for item (property-tested against the
    // DP oracle in tests/chains_property_test.cpp).
    std::vector<std::size_t>& dp = scratch.dp;
    std::vector<std::size_t>& back = scratch.back;
    dp.assign(n, 1);
    back.assign(n, npos);
    std::size_t pool_best = npos; // min canonical index with maximal dp
    std::size_t absorbed = 0;
    for (std::size_t i = 0; i < n; ++i) {
        while (absorbed < n &&
               sorted[by_finish[absorbed]].finish() <= sorted[i].start) {
            const std::size_t j = by_finish[absorbed++];
            if (pool_best == npos || dp[j] > dp[pool_best] ||
                (dp[j] == dp[pool_best] && j < pool_best)) {
                pool_best = j;
            }
        }
        if (pool_best != npos) {
            dp[i] = dp[pool_best] + 1;
            back[i] = pool_best;
        }
    }

    std::size_t best = 0;
    for (std::size_t i = 1; i < n; ++i) {
        if (dp[i] > dp[best]) {
            best = i;
        }
    }

    out.reserve(dp[best]);
    for (std::size_t at = best; at != npos; at = back[at]) {
        out.push_back(sorted[at]);
    }
    std::reverse(out.begin(), out.end());
}

bool is_chain(std::span<const timed_op> items)
{
    if (items.size() < 2) {
        return true;
    }
    // `precedes` is transitive and two items can only be comparable with
    // the earlier-starting one first, so after sorting by start the set is
    // a chain iff every adjacent pair is ordered (two items sharing a
    // start never are, as latencies are >= 1).
    std::vector<timed_op> sorted(items.begin(), items.end());
    std::sort(sorted.begin(), sorted.end(), canonical_less);
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
        if (!precedes(sorted[i], sorted[i + 1])) {
            return false;
        }
    }
    return true;
}

} // namespace mwl
