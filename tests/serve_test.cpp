// Allocation-service suite (src/serve/): wire framing and payload
// grammar over socketpairs, endpoint parsing, an in-process server
// exercised through real sockets (round trips, caching, admission
// control, malformed/oversized/disconnect recovery, drain), and the
// acceptance cases against the real binaries -- SIGTERM mid-load must
// drain with exit 3 and no torn frames, and a soak through 8 concurrent
// mwl_client connections must reproduce mwl_batch's allocations
// byte-for-byte on the same corpus manifest (MWL_TOOL_DIR).

#include "core/dpalloc.hpp"
#include "dfg/analysis.hpp"
#include "io/graph_io.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "tgff/corpus.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

namespace mwl {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

// ------------------------------------------------------------- helpers --

/// Unique unix socket path, kept short (sun_path is ~108 bytes) and
/// relative to the build dir ctest runs in.
std::string socket_path(const std::string& name)
{
    fs::create_directories("serve_test_tmp");
    const std::string path = "serve_test_tmp/" + name + ".sock";
    ::unlink(path.c_str());
    return path;
}

serve::endpoint unix_endpoint(const std::string& path)
{
    return serve::parse_endpoint("unix:" + path);
}

/// In-process server on its own thread, stoppable like the real daemon.
struct test_server {
    explicit test_server(serve::server_options options)
        : srv(std::make_unique<serve::server>(options))
    {
        runner = std::thread([this] {
            srv->run([this] { return stop.load(); });
        });
    }

    ~test_server() { halt(); }

    void halt()
    {
        stop.store(true);
        if (runner.joinable()) {
            runner.join();
        }
    }

    std::unique_ptr<serve::server> srv;
    std::thread runner;
    std::atomic<bool> stop{false};
};

/// Sets MWL_SERVE_STALL_MS for a scope; construct *before* the server so
/// its pool threads observe the write without racing it.
struct stall_guard {
    explicit stall_guard(int ms)
    {
        ::setenv("MWL_SERVE_STALL_MS", std::to_string(ms).c_str(), 1);
    }
    ~stall_guard() { ::unsetenv("MWL_SERVE_STALL_MS"); }
};

/// Read frames until the stream ends; every well-framed payload must
/// parse as a response (anything else is a torn/foreign frame).
std::vector<serve::response> drain_responses(int fd,
                                             serve::frame_status& final)
{
    std::vector<serve::response> out;
    for (;;) {
        std::string payload;
        const serve::frame_status status =
            serve::read_frame(fd, payload, serve::default_max_frame);
        if (status != serve::frame_status::ok) {
            final = status;
            return out;
        }
        out.push_back(serve::parse_response(payload));
    }
}

/// A small deterministic graph and its serialised form.
struct sample_graph {
    sequencing_graph graph;
    std::string text;
    int lambda_min = 0;
};

sample_graph make_sample(std::size_t n_ops = 8, std::uint64_t seed = 7)
{
    const sonic_model model;
    sample_graph out;
    std::vector<corpus_entry> corpus = make_corpus(n_ops, 1, model, seed);
    out.graph = std::move(corpus.front().graph);
    out.lambda_min = corpus.front().lambda_min;
    out.text = write_graph(out.graph);
    return out;
}

// -------------------------------------------------------------- framing --

struct socket_pair {
    socket_pair()
    {
        EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds.data()), 0);
    }
    ~socket_pair()
    {
        for (const int fd : fds) {
            if (fd >= 0) {
                ::close(fd);
            }
        }
    }
    void close_writer()
    {
        ::close(fds[0]);
        fds[0] = -1;
    }
    std::array<int, 2> fds{-1, -1};
};

TEST(ServeFraming, RoundTripThenCleanEof)
{
    socket_pair sp;
    const std::string payload = "ping id=42";
    ASSERT_TRUE(serve::write_frame(sp.fds[0], payload));
    std::string got;
    EXPECT_EQ(serve::read_frame(sp.fds[1], got, serve::default_max_frame),
              serve::frame_status::ok);
    EXPECT_EQ(got, payload);
    // An empty payload frames fine too.
    ASSERT_TRUE(serve::write_frame(sp.fds[0], ""));
    EXPECT_EQ(serve::read_frame(sp.fds[1], got, serve::default_max_frame),
              serve::frame_status::ok);
    EXPECT_EQ(got, "");
    sp.close_writer();
    EXPECT_EQ(serve::read_frame(sp.fds[1], got, serve::default_max_frame),
              serve::frame_status::eof);
}

TEST(ServeFraming, BadMagicIsMalformed)
{
    socket_pair sp;
    const char junk[8] = {'H', 'T', 'T', 'P', 0, 0, 0, 1};
    ASSERT_EQ(::write(sp.fds[0], junk, sizeof junk),
              static_cast<ssize_t>(sizeof junk));
    std::string got;
    EXPECT_EQ(serve::read_frame(sp.fds[1], got, serve::default_max_frame),
              serve::frame_status::malformed);
}

TEST(ServeFraming, DeclaredLengthOverBoundIsOversized)
{
    socket_pair sp;
    // MWL1 + length 0x00010000 (65536) against a 256-byte bound.
    const unsigned char header[8] = {'M', 'W', 'L', '1', 0, 1, 0, 0};
    ASSERT_EQ(::write(sp.fds[0], header, sizeof header),
              static_cast<ssize_t>(sizeof header));
    std::string got;
    EXPECT_EQ(serve::read_frame(sp.fds[1], got, 256),
              serve::frame_status::oversized);
}

TEST(ServeFraming, StreamEndingMidFrameIsTruncated)
{
    { // mid-header
        socket_pair sp;
        ASSERT_EQ(::write(sp.fds[0], "MWL", 3), 3);
        sp.close_writer();
        std::string got;
        EXPECT_EQ(
            serve::read_frame(sp.fds[1], got, serve::default_max_frame),
            serve::frame_status::truncated);
    }
    { // mid-payload
        socket_pair sp;
        const unsigned char header[8] = {'M', 'W', 'L', '1', 0, 0, 0, 10};
        ASSERT_EQ(::write(sp.fds[0], header, sizeof header),
                  static_cast<ssize_t>(sizeof header));
        ASSERT_EQ(::write(sp.fds[0], "abc", 3), 3);
        sp.close_writer();
        std::string got;
        EXPECT_EQ(
            serve::read_frame(sp.fds[1], got, serve::default_max_frame),
            serve::frame_status::truncated);
    }
}

// -------------------------------------------------------------- grammar --

TEST(ServeGrammar, RequestRoundTrips)
{
    const std::string with_lambda =
        serve::format_alloc_request(9, 12, 0.0, "v a 1 2\n");
    const serve::request a = serve::parse_request(with_lambda);
    EXPECT_EQ(a.what, serve::request::kind::alloc);
    EXPECT_EQ(a.id, 9u);
    ASSERT_TRUE(a.lambda.has_value());
    EXPECT_EQ(*a.lambda, 12);
    EXPECT_EQ(a.graph_text, "v a 1 2\n");

    const serve::request b = serve::parse_request(
        serve::format_alloc_request(3, std::nullopt, 0.25, "g\n"));
    EXPECT_FALSE(b.lambda.has_value());
    EXPECT_DOUBLE_EQ(b.slack, 0.25);

    const serve::request s =
        serve::parse_request(serve::format_stats_request(77));
    EXPECT_EQ(s.what, serve::request::kind::stats);
    EXPECT_EQ(s.id, 77u);
    const serve::request p =
        serve::parse_request(serve::format_ping_request(1));
    EXPECT_EQ(p.what, serve::request::kind::ping);
}

TEST(ServeGrammar, RequestErrorsAreProtocolErrors)
{
    EXPECT_THROW(static_cast<void>(serve::parse_request("launch id=1")),
                 serve::protocol_error);
    EXPECT_THROW(static_cast<void>(serve::parse_request(
                     "alloc id=1 lambda=4 slack=10\ng")),
                 serve::protocol_error);
    EXPECT_THROW(
        static_cast<void>(serve::parse_request("alloc id=1 wibble=2\ng")),
        serve::protocol_error);
    EXPECT_THROW(
        static_cast<void>(serve::parse_request("alloc id=nope\ng")),
        serve::protocol_error);
    EXPECT_THROW(
        static_cast<void>(serve::parse_request("alloc id=1 slack=-3\ng")),
        serve::protocol_error);
}

TEST(ServeGrammar, ResponseRoundTripsBitExactDoubles)
{
    serve::response ok;
    ok.what = serve::response::status::ok;
    ok.id = 11;
    ok.lambda = 9;
    ok.latency = 8;
    ok.area = 100.0 / 3.0; // not representable in 6 digits
    ok.cached = true;
    ok.coalesced = false;
    ok.micros = 1234.5678;
    const serve::response ok2 =
        serve::parse_response(serve::format_response(ok));
    EXPECT_EQ(ok2.what, serve::response::status::ok);
    EXPECT_EQ(ok2.id, 11u);
    EXPECT_EQ(ok2.lambda, 9);
    EXPECT_EQ(ok2.latency, 8);
    EXPECT_EQ(ok2.area, ok.area); // %.17g: bit-exact, not approximately
    EXPECT_TRUE(ok2.cached);
    EXPECT_FALSE(ok2.coalesced);
    EXPECT_EQ(ok2.micros, ok.micros);

    serve::response busy;
    busy.what = serve::response::status::busy;
    busy.id = 5;
    busy.retry_after_ms = 40;
    const serve::response busy2 =
        serve::parse_response(serve::format_response(busy));
    EXPECT_EQ(busy2.what, serve::response::status::busy);
    EXPECT_EQ(busy2.retry_after_ms, 40);

    serve::response err;
    err.what = serve::response::status::error;
    err.id = 6;
    err.message = "lambda 1 below minimum latency";
    const serve::response err2 =
        serve::parse_response(serve::format_response(err));
    EXPECT_EQ(err2.what, serve::response::status::error);
    EXPECT_EQ(err2.message, "lambda 1 below minimum latency");

    serve::response stats;
    stats.what = serve::response::status::ok;
    stats.id = 2;
    stats.body = "{\"engine\":{}}";
    const serve::response stats2 =
        serve::parse_response(serve::format_response(stats));
    EXPECT_EQ(stats2.body, "{\"engine\":{}}");

    EXPECT_THROW(static_cast<void>(serve::parse_response("yes id=1")),
                 serve::protocol_error);
}

TEST(ServeGrammar, IntFieldsBeyondIntRangeAreMalformedNotTruncated)
{
    // Regression: these parsed as long and were cast to int unchecked, so
    // a wire value like 99999999999 silently wrapped. They must be
    // protocol errors like any other malformed numeric.
    EXPECT_THROW(static_cast<void>(serve::parse_response(
                     "busy id=5 retry-after-ms=99999999999")),
                 serve::protocol_error);
    EXPECT_THROW(static_cast<void>(serve::parse_response(
                     "ok id=1 lambda=99999999999 latency=3 area=1")),
                 serve::protocol_error);
    EXPECT_THROW(static_cast<void>(serve::parse_request(
                     "alloc id=1 lambda=99999999999\ng")),
                 serve::protocol_error);
}

TEST(ServeGrammar, EndpointParsing)
{
    const serve::endpoint u = serve::parse_endpoint("unix:/tmp/x.sock");
    EXPECT_EQ(u.what, serve::endpoint::kind::unix_socket);
    EXPECT_EQ(u.path, "/tmp/x.sock");
    EXPECT_EQ(serve::to_string(u), "unix:/tmp/x.sock");

    const serve::endpoint t = serve::parse_endpoint("tcp:127.0.0.1:7447");
    EXPECT_EQ(t.what, serve::endpoint::kind::tcp);
    EXPECT_EQ(t.host, "127.0.0.1");
    EXPECT_EQ(t.port, 7447);

    for (const char* bad :
         {"wibble", "unix:", "tcp:", "tcp:localhost", "tcp::7447",
          "tcp:h:", "tcp:h:0", "tcp:h:99999", "tcp:h:7x"}) {
        EXPECT_THROW(static_cast<void>(serve::parse_endpoint(bad)),
                     precondition_error)
            << bad;
    }
}

// ----------------------------------------------- in-process round trips --

TEST(ServeServer, PingAllocCacheAndStatsRoundTrip)
{
    const sample_graph sample = make_sample();
    const sonic_model model;
    const int lambda = relaxed_lambda(min_latency(sample.graph, model), 0.1);
    const dpalloc_result expected = dpalloc(sample.graph, model, lambda);

    serve::server_options options;
    options.unix_path = socket_path("roundtrip");
    options.jobs = 2;
    test_server ts(options);
    serve::client_connection conn(unix_endpoint(options.unix_path));

    ASSERT_TRUE(conn.send(serve::format_ping_request(1)));
    auto pong = conn.receive();
    ASSERT_TRUE(pong.has_value());
    EXPECT_EQ(pong->what, serve::response::status::ok);
    EXPECT_EQ(pong->id, 1u);

    ASSERT_TRUE(conn.send(
        serve::format_alloc_request(2, std::nullopt, 0.1, sample.text)));
    auto first = conn.receive();
    ASSERT_TRUE(first.has_value());
    ASSERT_EQ(first->what, serve::response::status::ok)
        << first->message;
    EXPECT_EQ(first->id, 2u);
    EXPECT_EQ(first->lambda, lambda);
    EXPECT_EQ(first->latency, expected.path.latency);
    EXPECT_EQ(first->area, expected.path.total_area); // wire is bit-exact
    EXPECT_FALSE(first->cached);

    // The identical job again: served from the lock-striped cache.
    ASSERT_TRUE(conn.send(
        serve::format_alloc_request(3, std::nullopt, 0.1, sample.text)));
    auto second = conn.receive();
    ASSERT_TRUE(second.has_value());
    ASSERT_EQ(second->what, serve::response::status::ok);
    EXPECT_TRUE(second->cached);
    EXPECT_EQ(second->lambda, first->lambda);
    EXPECT_EQ(second->latency, first->latency);
    EXPECT_EQ(second->area, first->area);

    ASSERT_TRUE(conn.send(serve::format_stats_request(4)));
    auto stats = conn.receive();
    ASSERT_TRUE(stats.has_value());
    ASSERT_EQ(stats->what, serve::response::status::ok);
    for (const char* field :
         {"\"uptime_seconds\"", "\"queue_depth\"", "\"max_inflight\"",
          "\"cache_hits\"", "\"hit_rate\"", "\"in_flight\"",
          "\"evictions\"", "\"p50\"", "\"p99\""}) {
        EXPECT_NE(stats->body.find(field), std::string::npos)
            << field << " missing from: " << stats->body;
    }
    EXPECT_NE(stats->body.find("\"cache_hits\":1"), std::string::npos)
        << stats->body;

    ts.halt();
    const serve::server_counters c = ts.srv->counters();
    EXPECT_EQ(c.accepted, 1u);
    EXPECT_EQ(c.alloc_requests, 2u);
    EXPECT_EQ(c.stats_requests, 1u);
    EXPECT_EQ(c.ok_responses, 2u); // ok/error tallies cover alloc jobs
    const engine_stats e = ts.srv->engine_snapshot();
    EXPECT_EQ(e.submitted, 2u);
    EXPECT_EQ(e.cache_hits, 1u);
    EXPECT_EQ(e.executed, 1u);
}

TEST(ServeServer, BadJobsGetErrorResponsesAndTheConnectionSurvives)
{
    const sample_graph sample = make_sample();
    serve::server_options options;
    options.unix_path = socket_path("badjobs");
    options.jobs = 2;
    test_server ts(options);
    serve::client_connection conn(unix_endpoint(options.unix_path));

    // lambda below the minimum latency: infeasible, reported per-job.
    ASSERT_TRUE(
        conn.send(serve::format_alloc_request(1, 0, 0.0, sample.text)));
    auto infeasible = conn.receive();
    ASSERT_TRUE(infeasible.has_value());
    EXPECT_EQ(infeasible->what, serve::response::status::error);
    EXPECT_EQ(infeasible->id, 1u);
    EXPECT_FALSE(infeasible->message.empty());

    // A body that is not a graph.
    ASSERT_TRUE(conn.send(serve::format_alloc_request(
        2, std::nullopt, 0.0, "this is not a graph\n")));
    auto garbage = conn.receive();
    ASSERT_TRUE(garbage.has_value());
    EXPECT_EQ(garbage->what, serve::response::status::error);

    // The connection is still fine.
    ASSERT_TRUE(conn.send(serve::format_ping_request(3)));
    auto pong = conn.receive();
    ASSERT_TRUE(pong.has_value());
    EXPECT_EQ(pong->what, serve::response::status::ok);
}

// ------------------------------------- protocol abuse against a server --

TEST(ServeServer, MalformedFrameClosesThatConnectionOnly)
{
    serve::server_options options;
    options.unix_path = socket_path("malformed");
    options.jobs = 1;
    test_server ts(options);

    {
        serve::client_connection conn(unix_endpoint(options.unix_path));
        const char junk[] = "GET / HTTP/1.1\r\n\r\n";
        ASSERT_GT(::write(conn.fd(), junk, sizeof junk - 1), 0);
        // The server answers with one error frame, then closes.
        auto reply = conn.receive();
        ASSERT_TRUE(reply.has_value());
        EXPECT_EQ(reply->what, serve::response::status::error);
        EXPECT_FALSE(conn.receive().has_value());
    }

    // A fresh connection is unaffected.
    serve::client_connection conn(unix_endpoint(options.unix_path));
    ASSERT_TRUE(conn.send(serve::format_ping_request(1)));
    auto pong = conn.receive();
    ASSERT_TRUE(pong.has_value());
    EXPECT_EQ(pong->what, serve::response::status::ok);

    ts.halt();
    EXPECT_EQ(ts.srv->counters().protocol_errors, 1u);
}

TEST(ServeServer, OversizedGraphIsRejectedWithoutReadingIt)
{
    const sample_graph big = make_sample(20, 11);
    serve::server_options options;
    options.unix_path = socket_path("oversized");
    options.jobs = 1;
    options.max_frame = 128; // far below the serialised graph
    test_server ts(options);
    ASSERT_GT(big.text.size(), options.max_frame);

    serve::client_connection conn(unix_endpoint(options.unix_path));
    ASSERT_TRUE(conn.send(
        serve::format_alloc_request(1, std::nullopt, 0.0, big.text)));
    auto reply = conn.receive();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->what, serve::response::status::error);
    EXPECT_NE(reply->message.find("exceeds"), std::string::npos)
        << reply->message;
    // The stream is desynced by design; the server closes it.
    EXPECT_FALSE(conn.receive().has_value());

    serve::client_connection again(unix_endpoint(options.unix_path));
    ASSERT_TRUE(again.send(serve::format_ping_request(1)));
    EXPECT_TRUE(again.receive().has_value());
}

TEST(ServeServer, TruncatedFrameLeavesServerHealthy)
{
    serve::server_options options;
    options.unix_path = socket_path("truncated");
    options.jobs = 1;
    test_server ts(options);

    {
        serve::client_connection conn(unix_endpoint(options.unix_path));
        const unsigned char header[8] = {'M', 'W', 'L', '1', 0, 0, 0, 64};
        ASSERT_EQ(::write(conn.fd(), header, sizeof header),
                  static_cast<ssize_t>(sizeof header));
        ASSERT_EQ(::write(conn.fd(), "half", 4), 4);
        // Disconnect mid-payload.
    }

    serve::client_connection conn(unix_endpoint(options.unix_path));
    ASSERT_TRUE(conn.send(serve::format_ping_request(1)));
    auto pong = conn.receive();
    ASSERT_TRUE(pong.has_value());
    EXPECT_EQ(pong->what, serve::response::status::ok);
}

// --------------------------------------------------- admission control --

TEST(ServeServer, QueueFullRejectsWithBusyAndRetryAfter)
{
    const sample_graph sample = make_sample();
    const stall_guard stall(150); // before the server: pool sees it
    serve::server_options options;
    options.unix_path = socket_path("queuefull");
    options.jobs = 1;
    options.queue_depth = 1;
    options.max_inflight = 1;
    options.retry_after_ms = 7;
    test_server ts(options);
    serve::client_connection conn(unix_endpoint(options.unix_path));

    // Four distinct jobs back-to-back; with one admitted slot and a
    // 150ms stall, the later ones must bounce.
    for (std::uint64_t id = 1; id <= 4; ++id) {
        ASSERT_TRUE(conn.send(serve::format_alloc_request(
            id, sample.lambda_min + static_cast<int>(id), 0.0,
            sample.text)));
    }
    std::size_t ok = 0;
    std::size_t busy = 0;
    for (int i = 0; i < 4; ++i) {
        auto reply = conn.receive();
        ASSERT_TRUE(reply.has_value());
        if (reply->what == serve::response::status::busy) {
            ++busy;
            EXPECT_EQ(reply->retry_after_ms, 7);
        } else {
            ASSERT_EQ(reply->what, serve::response::status::ok)
                << reply->message;
            ++ok;
        }
    }
    EXPECT_GE(ok, 1u);
    EXPECT_GE(busy, 1u);
    EXPECT_EQ(ok + busy, 4u);

    ts.halt();
    EXPECT_EQ(ts.srv->counters().rejected_busy, busy);
}

TEST(ServeServer, DisconnectWithJobsInFlightLeavesServerHealthy)
{
    const sample_graph sample = make_sample();
    const stall_guard stall(100);
    serve::server_options options;
    options.unix_path = socket_path("disco");
    options.jobs = 2;
    test_server ts(options);

    {
        serve::client_connection conn(unix_endpoint(options.unix_path));
        ASSERT_TRUE(conn.send(
            serve::format_alloc_request(1, std::nullopt, 0.0, sample.text)));
        ASSERT_TRUE(conn.send(
            serve::format_alloc_request(2, std::nullopt, 0.1, sample.text)));
        // Vanish while both jobs are (probably) still stalled.
    }

    serve::client_connection conn(unix_endpoint(options.unix_path));
    ASSERT_TRUE(conn.send(serve::format_ping_request(1)));
    auto pong = conn.receive();
    ASSERT_TRUE(pong.has_value());
    EXPECT_EQ(pong->what, serve::response::status::ok);

    // Drain must not hang on the dead connection's unanswered jobs.
    ts.halt();
}

// ---------------------------------------------------------------- drain --

TEST(ServeServer, DrainAnswersEveryAdmittedJobWholeThenEof)
{
    const sample_graph sample = make_sample();
    const stall_guard stall(100);
    serve::server_options options;
    options.unix_path = socket_path("drain");
    options.jobs = 2;
    test_server ts(options);

    const auto fd =
        serve::connect_with_retry(unix_endpoint(options.unix_path), 2000);
    ASSERT_TRUE(fd.has_value());
    for (std::uint64_t id = 1; id <= 4; ++id) {
        // Distinct lambdas: four distinct jobs, no cache shortcuts.
        ASSERT_TRUE(serve::write_frame(
            *fd, serve::format_alloc_request(id, sample.lambda_min +
                                                     static_cast<int>(id),
                                             0.0, sample.text)));
    }
    // Wait until at least one job is admitted, then pull the plug.
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    while (ts.srv->counters().alloc_requests == 0 &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(1ms);
    }
    ASSERT_GT(ts.srv->counters().alloc_requests, 0u);
    ts.stop.store(true);

    serve::frame_status final = serve::frame_status::ok;
    const std::vector<serve::response> replies =
        drain_responses(*fd, final);
    ::close(*fd);
    // Never a torn or foreign frame: the stream ends exactly at a
    // frame boundary after the last admitted job's response.
    EXPECT_EQ(final, serve::frame_status::eof);
    for (const serve::response& r : replies) {
        EXPECT_EQ(r.what, serve::response::status::ok) << r.message;
    }

    ts.halt();
    const serve::server_counters c = ts.srv->counters();
    EXPECT_EQ(replies.size(), c.ok_responses + c.error_responses +
                                  c.rejected_busy);
    EXPECT_EQ(c.queued, 0u);
}

// ------------------------------------------ the real binaries, under fire --

std::string tool(const std::string& name)
{
    return std::string(MWL_TOOL_DIR) + "/" + name;
}

struct run_result {
    int exit_code = -1;
    std::string output;
};

run_result run(const std::string& command)
{
    run_result result;
    FILE* pipe = popen((command + " 2>&1").c_str(), "r");
    if (pipe == nullptr) {
        ADD_FAILURE() << "popen failed for: " << command;
        return result;
    }
    std::array<char, 4096> buffer;
    std::size_t got = 0;
    while ((got = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
        result.output.append(buffer.data(), got);
    }
    const int status = pclose(pipe);
    result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return result;
}

std::string slurp(const fs::path& path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return std::move(buffer).str();
}

/// Fork/exec mwl_serve on a unix socket; stdout+stderr land in a file.
struct daemon_process {
    pid_t pid = -1;
    std::string sock;
    std::string out_path;

    void start(const std::string& name, int stall_ms,
               std::vector<std::string> extra_args = {})
    {
        sock = socket_path(name);
        out_path = "serve_test_tmp/" + name + ".out";
        pid = fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            if (stall_ms > 0) {
                ::setenv("MWL_SERVE_STALL_MS",
                         std::to_string(stall_ms).c_str(), 1);
            } else {
                ::unsetenv("MWL_SERVE_STALL_MS");
            }
            if (std::freopen(out_path.c_str(), "w", stdout) == nullptr) {
                _exit(126);
            }
            ::dup2(::fileno(stdout), STDERR_FILENO);
            const std::string exe = tool("mwl_serve");
            std::vector<std::string> args = {exe, "--unix", sock,
                                             "--jobs", "2"};
            args.insert(args.end(), extra_args.begin(), extra_args.end());
            std::vector<char*> argv;
            argv.reserve(args.size() + 1);
            for (std::string& a : args) {
                argv.push_back(a.data());
            }
            argv.push_back(nullptr);
            ::execv(exe.c_str(), argv.data());
            _exit(127);
        }
    }

    int wait_exit()
    {
        int status = 0;
        if (::waitpid(pid, &status, 0) != pid) {
            return -1;
        }
        pid = -1;
        return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    }

    ~daemon_process()
    {
        if (pid > 0) {
            ::kill(pid, SIGKILL);
            int status = 0;
            ::waitpid(pid, &status, 0);
        }
    }
};

TEST(ServeAcceptance, SigtermMidLoadDrainsWholeFramesAndExits3)
{
    const sample_graph sample = make_sample();
    daemon_process daemon;
    daemon.start("sigterm", /*stall_ms=*/120);

    const serve::endpoint ep = unix_endpoint(daemon.sock);
    const auto fd = serve::connect_with_retry(ep, 5000);
    ASSERT_TRUE(fd.has_value()) << slurp(daemon.out_path);

    for (std::uint64_t id = 1; id <= 6; ++id) {
        ASSERT_TRUE(serve::write_frame(
            *fd, serve::format_alloc_request(id, sample.lambda_min +
                                                     static_cast<int>(id),
                                             0.0, sample.text)));
    }
    // One response proves the daemon is mid-load, then SIGTERM.
    std::string payload;
    ASSERT_EQ(serve::read_frame(*fd, payload, serve::default_max_frame),
              serve::frame_status::ok);
    const serve::response first = serve::parse_response(payload);
    EXPECT_EQ(first.what, serve::response::status::ok) << first.message;
    ASSERT_EQ(::kill(daemon.pid, SIGTERM), 0);

    serve::frame_status final = serve::frame_status::ok;
    const std::vector<serve::response> rest = drain_responses(*fd, final);
    ::close(*fd);
    EXPECT_EQ(final, serve::frame_status::eof)
        << "torn frame during drain: " << serve::to_string(final);
    for (const serve::response& r : rest) {
        EXPECT_EQ(r.what, serve::response::status::ok) << r.message;
    }

    EXPECT_EQ(daemon.wait_exit(), 3) << slurp(daemon.out_path);
    EXPECT_NE(slurp(daemon.out_path).find("drained"), std::string::npos);
}

/// Pull the ordered (entry, lambda, latency, area) tuples out of a
/// results JSON -- the fields both tools print with identical formatting.
std::vector<std::string> result_tuples(const std::string& json)
{
    std::vector<std::string> out;
    std::size_t at = 0;
    while ((at = json.find("{\"entry\":", at)) != std::string::npos) {
        const std::size_t end = json.find('}', at);
        EXPECT_NE(end, std::string::npos);
        const std::string object = json.substr(at, end - at);
        const std::size_t status = object.find(",\"status\"");
        EXPECT_NE(status, std::string::npos) << object;
        out.push_back(object.substr(0, status)); // entry..area, verbatim
        at = end;
    }
    return out;
}

TEST(ServeAcceptance, EightConnectionSoakMatchesBatchByteForByte)
{
    fs::create_directories("serve_test_tmp");
    const std::string manifest = "serve_test_tmp/soak.manifest";
    std::ofstream(manifest) << "corpus ops=8 count=12 seed=7 slack=10\n"
                               "corpus ops=6 count=8 seed=9\n";

    const run_result batch =
        run(tool("mwl_batch") + " " + manifest +
            " --jobs 4 --json serve_test_tmp/batch.json");
    ASSERT_EQ(batch.exit_code, 0) << batch.output;

    daemon_process daemon;
    daemon.start("soak", /*stall_ms=*/0);
    ASSERT_TRUE(serve::connect_with_retry(unix_endpoint(daemon.sock), 5000)
                    .has_value())
        << slurp(daemon.out_path);

    const run_result client =
        run(tool("mwl_client") + " unix:" + daemon.sock + " --manifest " +
            manifest + " --conns 8 --json serve_test_tmp/serve.json");
    ASSERT_EQ(client.exit_code, 0) << client.output;

    const std::vector<std::string> expect =
        result_tuples(slurp("serve_test_tmp/batch.json"));
    const std::vector<std::string> got =
        result_tuples(slurp("serve_test_tmp/serve.json"));
    ASSERT_EQ(expect.size(), 20u);
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i) {
        EXPECT_EQ(got[i], expect[i]) << "entry " << i;
    }

    // Stats are visible while the daemon is up, and a soak pass runs
    // clean over the (now warm) cache.
    const run_result stats =
        run(tool("mwl_client") + " unix:" + daemon.sock + " stats");
    EXPECT_EQ(stats.exit_code, 0) << stats.output;
    for (const char* field : {"\"hit_rate\"", "\"p50\"", "\"in_flight\""}) {
        EXPECT_NE(stats.output.find(field), std::string::npos)
            << field << " missing from: " << stats.output;
    }
    const run_result soak =
        run(tool("mwl_client") + " unix:" + daemon.sock + " --manifest " +
            manifest + " --conns 8 --soak 5");
    EXPECT_EQ(soak.exit_code, 0) << soak.output;
    EXPECT_NE(soak.output.find("req/s"), std::string::npos) << soak.output;

    ASSERT_EQ(::kill(daemon.pid, SIGTERM), 0);
    EXPECT_EQ(daemon.wait_exit(), 3) << slurp(daemon.out_path);
}

} // namespace
} // namespace mwl
