// Time-constrained force-directed scheduling (Paulin & Knight), the
// classic wordlength-blind scheduler used as stage 1 of the two-stage
// baseline [4]: given a latency budget, spread operations inside their
// ASAP/ALAP frames so that the expected number of concurrently active
// operations per type is as flat as possible, maximising later sharing.
//
// We implement the lookahead-variance formulation: fixing operation o at
// start s is scored by the sum over types y and steps t of DG_y(t)^2 after
// the fix (DG = distribution graph of expected occupancy); the lowest score
// wins. This minimises the same objective as Paulin's self+neighbour forces
// and is deterministic.

#ifndef MWL_SCHED_FORCE_DIRECTED_HPP
#define MWL_SCHED_FORCE_DIRECTED_HPP

#include "dfg/sequencing_graph.hpp"

#include <span>
#include <vector>

namespace mwl {

/// Schedule every operation within `horizon` control steps (throws
/// `infeasible_error` if `horizon` is below the critical-path length under
/// `latencies`). Returns per-operation start times.
[[nodiscard]] std::vector<int> force_directed_schedule(
    const sequencing_graph& graph, std::span<const int> latencies,
    int horizon);

} // namespace mwl

#endif // MWL_SCHED_FORCE_DIRECTED_HPP
