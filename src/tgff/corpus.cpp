#include "tgff/corpus.hpp"

#include "dfg/analysis.hpp"
#include "support/error.hpp"

#include <cmath>

namespace mwl {

std::vector<corpus_entry> make_corpus(std::size_t n_ops, std::size_t count,
                                      const hardware_model& model,
                                      std::uint64_t base_seed,
                                      const tgff_options& prototype)
{
    tgff_options options = prototype;
    options.n_ops = n_ops;

    std::vector<corpus_entry> corpus;
    corpus.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        // Seed derivation keeps entries independent of `count`: asking for
        // more graphs later extends the corpus without changing a prefix.
        rng random(base_seed * 0x100000001b3ULL + n_ops * 0x9e3779b9ULL + i);
        corpus_entry entry{generate_tgff(options, random), 0};
        entry.lambda_min = min_latency(entry.graph, model);
        corpus.push_back(std::move(entry));
    }
    return corpus;
}

int relaxed_lambda(int lambda_min, double slack)
{
    require(slack >= 0.0, "slack must be non-negative");
    return static_cast<int>(
        std::ceil(static_cast<double>(lambda_min) * (1.0 + slack)));
}

} // namespace mwl
