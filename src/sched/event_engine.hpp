// Event-driven list-scheduling engine shared by the classic (Eqn. 2) and
// incomplete-wordlength (Eqn. 3') schedulers.
//
// The reference schedulers rescan the whole graph at every control step to
// find ready operations -- O(T * N * deg) for a schedule of length T. This
// engine discovers readiness by *events* instead: each operation carries a
// pending-predecessor counter, and when its last predecessor completes it is
// dropped into a time bucket at its earliest start step. A step then only
// touches the operations that are actually ready, making one full pass
// O(V + E + sum over steps of |ready|), and steps with nothing ready are
// skipped outright by jumping to the next bucket event.
//
// The engine reproduces the reference schedulers' output exactly: at every
// step the ready pool is sorted by the same (priority desc, op id asc) total
// order the reference scan used, and placement attempts happen in that
// order. Regression-tested in tests/sched_test.cpp and
// tests/incremental_regression_test.cpp.
//
// All per-pass buffers live in an event_schedule_workspace so a caller
// iterating schedule/refine rounds (core/dpalloc.cpp) pays no per-iteration
// allocations: vectors are cleared, never shrunk, and the `usage` /
// `running` occupancy rows are flat arenas indexed [row * horizon + step].

#ifndef MWL_SCHED_EVENT_ENGINE_HPP
#define MWL_SCHED_EVENT_ENGINE_HPP

#include "dfg/sequencing_graph.hpp"
#include "support/error.hpp"

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <span>
#include <vector>

namespace mwl {

/// Which scheduling engine a scheduler entry point should run. `event` is
/// the production engine; `reference_scan` keeps the original per-step
/// full-graph rescan alive for regression tests and the before/after bench
/// (bench/iteration_scaling.cpp).
enum class sched_engine {
    event,
    reference_scan,
};

/// Reusable buffers for event_schedule and its callers. Safe to reuse
/// across passes of different sizes; all state is reinitialised per pass.
struct event_schedule_workspace {
    std::vector<int> pending;            ///< unscheduled predecessor count
    std::vector<int> ready_step;         ///< max completion step of preds
    std::vector<std::vector<op_id>> bucket; ///< ops becoming ready at step t
    std::vector<op_id> active;           ///< ready but not yet placed
    std::vector<op_id> merged;           ///< merge buffer for arrivals
    std::vector<std::int64_t> usage;     ///< flat occupancy arena (callers)
};

/// Run one event-driven list-scheduling pass.
///
/// `try_place(o, t)` must return true iff operation o fits at step t under
/// the caller's resource constraint, committing its occupancy on success.
/// `start` is resized and filled with the chosen start step per operation.
/// `priority` is the list-scheduling priority (larger = first).
template <typename TryPlace>
void event_schedule(const sequencing_graph& graph,
                    std::span<const int> latencies,
                    std::span<const int> priority, int horizon,
                    std::vector<int>& start, event_schedule_workspace& ws,
                    TryPlace&& try_place)
{
    const std::size_t n = graph.size();
    start.assign(n, -1);
    if (n == 0) {
        return;
    }

    ws.pending.assign(n, 0);
    ws.ready_step.assign(n, 0);
    if (ws.bucket.size() < static_cast<std::size_t>(horizon)) {
        ws.bucket.resize(static_cast<std::size_t>(horizon));
    }
    for (auto& b : ws.bucket) {
        b.clear();
    }
    ws.active.clear();

    for (const op_id o : graph.all_ops()) {
        const std::size_t n_preds = graph.predecessors(o).size();
        ws.pending[o.value()] = static_cast<int>(n_preds);
        if (n_preds == 0) {
            ws.bucket[0].push_back(o);
        }
    }

    const auto by_priority = [&](op_id a, op_id b) {
        if (priority[a.value()] != priority[b.value()]) {
            return priority[a.value()] > priority[b.value()];
        }
        return a < b;
    };

    std::size_t scheduled = 0;
    for (int t = 0; scheduled < n;) {
        MWL_ASSERT(t < horizon);
        auto& arrivals = ws.bucket[static_cast<std::size_t>(t)];
        if (!arrivals.empty()) {
            // Merge the (few) arrivals into the already-sorted survivors:
            // the (priority, id) order is a strict total order, so the
            // merged pool equals a full re-sort of the union. Merging goes
            // through a reused buffer -- no per-step allocation.
            std::sort(arrivals.begin(), arrivals.end(), by_priority);
            if (ws.active.empty()) {
                ws.active.swap(arrivals);
            } else {
                ws.merged.clear();
                std::merge(ws.active.begin(), ws.active.end(),
                           arrivals.begin(), arrivals.end(),
                           std::back_inserter(ws.merged), by_priority);
                ws.active.swap(ws.merged);
            }
            arrivals.clear();
        }
        if (ws.active.empty()) {
            // Nothing can be placed before the next readiness event.
            ++t;
            while (t < horizon &&
                   ws.bucket[static_cast<std::size_t>(t)].empty()) {
                ++t;
            }
            continue;
        }

        std::size_t kept = 0;
        for (const op_id o : ws.active) {
            if (!try_place(o, t)) {
                ws.active[kept++] = o;
                continue;
            }
            start[o.value()] = t;
            ++scheduled;
            const int done = t + latencies[o.value()];
            for (const op_id s : graph.successors(o)) {
                ws.ready_step[s.value()] =
                    std::max(ws.ready_step[s.value()], done);
                if (--ws.pending[s.value()] == 0) {
                    ws.bucket[static_cast<std::size_t>(
                                  ws.ready_step[s.value()])]
                        .push_back(s);
                }
            }
        }
        ws.active.resize(kept);
        ++t;
    }
}

/// Schedule horizon shared by both schedulers: serialising everything is
/// always feasible, and the extra max-latency slack keeps occupancy probes
/// in range near the end.
[[nodiscard]] inline int serial_horizon(std::span<const int> latencies)
{
    int horizon = 0;
    int max_latency = 0;
    for (const int latency : latencies) {
        horizon += latency;
        max_latency = std::max(max_latency, latency);
    }
    return horizon + max_latency;
}

} // namespace mwl

#endif // MWL_SCHED_EVENT_ENGINE_HPP
