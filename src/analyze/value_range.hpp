// Abstract-interpretation value ranges over the sequencing graph.
//
// For every operation, derive a conservative signed interval of the values
// the *reference semantics* (sim/reference_evaluate) can produce, starting
// from the full two's-complement range of every external operand at its
// declared wordlength. Three intervals per operation:
//
//   * `operand[p]` -- the value the reference feeds into port p, i.e. the
//     predecessor's result wrapped at the operation's native operand width
//     (or the full external range for ports with no predecessor);
//   * `math`   -- the exact arithmetic result (sum/product of the operand
//     intervals) *before* any wrap;
//   * `result` -- `math` wrapped at the operation's native result width:
//     equal to `math` whenever it provably fits, the full range otherwise.
//
// The static analyzer (analyze.hpp) uses these to decide which width
// adaptations in the elaborated RTL are value-preserving: a slice is
// harmless iff the incoming interval fits the slice width; a
// zero-extension is harmless iff the incoming interval is provably
// non-negative. Over-approximation is sound in the only direction that
// matters -- an interval that is too wide can flag a benign adaptation on
// a *broken* design, never miss a corrupting one.
//
// All arithmetic is exact: widths are capped (result < 63 bits, enforced
// upstream by the simulator contract) so sums stay within int64 and
// products are formed in 128-bit before the fit check.

#ifndef MWL_ANALYZE_VALUE_RANGE_HPP
#define MWL_ANALYZE_VALUE_RANGE_HPP

#include "dfg/sequencing_graph.hpp"

#include <array>
#include <cstdint>
#include <vector>

namespace mwl {

/// Inclusive signed interval [lo, hi].
struct value_interval {
    std::int64_t lo = 0;
    std::int64_t hi = 0;

    [[nodiscard]] bool contains_negative() const { return lo < 0; }

    friend bool operator==(const value_interval&,
                           const value_interval&) = default;
};

/// The full two's-complement range at `width` bits (width in [1, 63]).
[[nodiscard]] value_interval full_range(int width);

/// True iff every value in `v` is representable in `width`-bit two's
/// complement (width >= 63 always fits: signals are narrower by contract).
[[nodiscard]] bool fits_width(const value_interval& v, int width);

/// `v` wrapped at `width` bits: `v` itself when it fits, the full range
/// otherwise (sound, and exact in the case the analyzer must be exact in).
[[nodiscard]] value_interval wrap_interval(const value_interval& v,
                                           int width);

struct range_analysis {
    /// Per op id, reference operand value intervals at ports 0/1.
    std::vector<std::array<value_interval, 2>> operand;
    /// Per op id, exact pre-wrap arithmetic result interval.
    std::vector<value_interval> math;
    /// Per op id, post-wrap interval at the native result width.
    std::vector<value_interval> result;
};

/// Propagate intervals through `graph` in topological order.
[[nodiscard]] range_analysis analyze_ranges(const sequencing_graph& graph);

} // namespace mwl

#endif // MWL_ANALYZE_VALUE_RANGE_HPP
