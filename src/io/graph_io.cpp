#include "io/graph_io.hpp"

#include "support/hash.hpp"

#include <map>
#include <sstream>

namespace mwl {
namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message)
{
    throw parse_error("line " + std::to_string(line) + ": " + message);
}

int parse_width(std::istringstream& in, std::size_t line,
                const char* what)
{
    int width = 0;
    if (!(in >> width)) {
        fail(line, std::string("expected ") + what);
    }
    if (width < 1) {
        fail(line, std::string(what) + " must be >= 1");
    }
    return width;
}

} // namespace

sequencing_graph parse_graph(std::istream& in)
{
    sequencing_graph graph;
    std::map<std::string, op_id> by_name;

    std::string raw;
    std::size_t line_no = 0;
    while (std::getline(in, raw)) {
        ++line_no;
        std::istringstream line(raw);
        std::string keyword;
        if (!(line >> keyword) || keyword.front() == '#') {
            continue; // blank or comment
        }
        if (keyword == "op") {
            std::string name;
            std::string kind;
            if (!(line >> name >> kind)) {
                fail(line_no, "expected 'op <name> <add|mul> ...'");
            }
            if (by_name.contains(name)) {
                fail(line_no, "duplicate operation name '" + name + "'");
            }
            op_shape shape = op_shape::adder(1);
            if (kind == "add") {
                shape = op_shape::adder(
                    parse_width(line, line_no, "adder width"));
            } else if (kind == "mul") {
                const int a =
                    parse_width(line, line_no, "multiplier width_a");
                const int b =
                    parse_width(line, line_no, "multiplier width_b");
                shape = op_shape::multiplier(a, b);
            } else {
                fail(line_no, "unknown operation kind '" + kind + "'");
            }
            std::string extra;
            if (line >> extra) {
                fail(line_no, "trailing tokens after operation");
            }
            by_name.emplace(name, graph.add_operation(shape, name));
        } else if (keyword == "dep") {
            std::string from;
            std::string to;
            if (!(line >> from >> to)) {
                fail(line_no, "expected 'dep <producer> <consumer>'");
            }
            const auto fi = by_name.find(from);
            const auto ti = by_name.find(to);
            if (fi == by_name.end()) {
                fail(line_no, "unknown operation '" + from + "'");
            }
            if (ti == by_name.end()) {
                fail(line_no, "unknown operation '" + to + "'");
            }
            try {
                graph.add_dependency(fi->second, ti->second);
            } catch (const precondition_error& e) {
                fail(line_no, e.what());
            }
        } else {
            fail(line_no, "unknown keyword '" + keyword + "'");
        }
    }
    return graph;
}

sequencing_graph parse_graph_string(const std::string& text)
{
    std::istringstream in(text);
    return parse_graph(in);
}

std::string write_graph(const sequencing_graph& graph)
{
    std::ostringstream out;
    const auto name_of = [&](op_id o) {
        const std::string& name = graph.op(o).name;
        if (!name.empty()) {
            return name;
        }
        std::string fallback = "o"; // split concat: gcc 12 -Wrestrict
        fallback += std::to_string(o.value());
        return fallback;
    };
    for (const op_id o : graph.all_ops()) {
        const op_shape& s = graph.shape(o);
        out << "op " << name_of(o) << ' ';
        if (s.kind() == op_kind::add) {
            out << "add " << s.width_a();
        } else {
            out << "mul " << s.width_a() << ' ' << s.width_b();
        }
        out << '\n';
    }
    for (const op_id o : graph.all_ops()) {
        for (const op_id t : graph.successors(o)) {
            out << "dep " << name_of(o) << ' ' << name_of(t) << '\n';
        }
    }
    return out.str();
}

std::uint64_t graph_fingerprint(const sequencing_graph& graph)
{
    // Predecessors are hashed in stored order, not sorted: equal
    // fingerprints then guarantee the allocator sees byte-identical
    // adjacency (any tie-break that scans edges behaves the same), which
    // is the property the engine's cache correctness rests on.
    fnv1a_hasher h;
    h.mix("mwl-graph-v1");
    h.mix(static_cast<std::int64_t>(graph.size()));
    for (const op_id o : graph.all_ops()) {
        const op_shape& s = graph.shape(o);
        h.mix(static_cast<std::int64_t>(s.kind()));
        h.mix(static_cast<std::int64_t>(s.width_a()));
        h.mix(static_cast<std::int64_t>(s.width_b()));
        const auto preds = graph.predecessors(o);
        h.mix(static_cast<std::int64_t>(preds.size()));
        for (const op_id p : preds) {
            h.mix(static_cast<std::int64_t>(p.value()));
        }
    }
    return h.digest();
}

} // namespace mwl
