// Determinism suite for src/engine/: the batch engine and the parallel
// Pareto sweep must be byte-identical to their serial counterparts on the
// tgff corpus at every pool size, and the caching/dedup layers must be
// output-invisible. Run under -fsanitize=thread in CI.

#include "engine/batch_engine.hpp"
#include "engine/parallel_pareto.hpp"
#include "io/graph_io.hpp"
#include "support/error.hpp"
#include "tgff/corpus.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace mwl {
namespace {

void expect_identical_path(const datapath& a, const datapath& b,
                           const std::string& label)
{
    EXPECT_EQ(a.start, b.start) << label;
    EXPECT_EQ(a.instance_of_op, b.instance_of_op) << label;
    EXPECT_EQ(a.total_area, b.total_area) << label;
    EXPECT_EQ(a.latency, b.latency) << label;
    ASSERT_EQ(a.instances.size(), b.instances.size()) << label;
    for (std::size_t i = 0; i < a.instances.size(); ++i) {
        const datapath_instance& x = a.instances[i];
        const datapath_instance& y = b.instances[i];
        EXPECT_EQ(x.shape, y.shape) << label << " instance " << i;
        EXPECT_EQ(x.latency, y.latency) << label << " instance " << i;
        EXPECT_EQ(x.area, y.area) << label << " instance " << i;
        EXPECT_EQ(x.ops, y.ops) << label << " instance " << i;
    }
}

void expect_identical_front(const std::vector<pareto_point>& a,
                            const std::vector<pareto_point>& b,
                            const std::string& label)
{
    ASSERT_EQ(a.size(), b.size()) << label;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].lambda, b[i].lambda) << label << " point " << i;
        EXPECT_EQ(a[i].latency, b[i].latency) << label << " point " << i;
        EXPECT_EQ(a[i].area, b[i].area) << label << " point " << i;
        expect_identical_path(a[i].path, b[i].path,
                              label + " point " + std::to_string(i));
    }
}

TEST(BatchEngine, MatchesSerialDpallocOnTgffCorpus)
{
    const sonic_model model;
    for (const std::size_t jobs : {1u, 2u, 4u, 8u}) {
        batch_options options;
        options.jobs = jobs;
        batch_engine engine(options);
        std::vector<corpus_entry> corpus;
        std::vector<int> lambdas;
        for (const std::size_t n : {6u, 10u, 14u}) {
            for (corpus_entry& e : make_corpus(n, 3, model, 97)) {
                corpus.push_back(std::move(e));
            }
        }
        for (const corpus_entry& e : corpus) {
            for (const double slack : {0.0, 0.2}) {
                const int lambda = relaxed_lambda(e.lambda_min, slack);
                lambdas.push_back(lambda);
                engine.submit(e.graph, model, lambda);
            }
        }
        const auto outcomes = engine.drain();
        ASSERT_EQ(outcomes.size(), corpus.size() * 2);
        std::size_t job = 0;
        for (const corpus_entry& e : corpus) {
            for (int s = 0; s < 2; ++s, ++job) {
                ASSERT_TRUE(outcomes[job].ok()) << outcomes[job].error;
                const dpalloc_result serial =
                    dpalloc(e.graph, model, lambdas[job]);
                expect_identical_path(
                    outcomes[job].result->path, serial.path,
                    "jobs=" + std::to_string(jobs) + " job " +
                        std::to_string(job));
            }
        }
    }
}

TEST(BatchEngine, CoalescesIdenticalInflightJobs)
{
    const sonic_model model;
    const auto corpus = make_corpus(12, 1, model, 11);
    batch_options options;
    options.jobs = 2;
    batch_engine engine(options);
    const int lambda = corpus[0].lambda_min;
    for (int i = 0; i < 6; ++i) {
        engine.submit(corpus[0].graph, model, lambda);
    }
    const auto outcomes = engine.drain();
    const batch_stats stats = engine.stats();
    EXPECT_EQ(stats.submitted, 6u);
    // At least one execution; every duplicate was coalesced or served from
    // cache, never recomputed.
    EXPECT_GE(stats.executed, 1u);
    EXPECT_EQ(stats.executed + stats.coalesced + stats.cache_hits, 6u);
    for (const auto& out : outcomes) {
        ASSERT_TRUE(out.ok());
        // All six share the one immutable result object.
        EXPECT_EQ(out.result.get(), outcomes[0].result.get());
    }
}

TEST(BatchEngine, CacheServesRepeatsAcrossBatches)
{
    const sonic_model model;
    const auto corpus = make_corpus(10, 2, model, 23);
    batch_engine engine(batch_options{.jobs = 2, .cache_capacity = 16});
    for (const corpus_entry& e : corpus) {
        engine.submit(e.graph, model, e.lambda_min);
    }
    const auto first = engine.drain();
    for (const corpus_entry& e : corpus) {
        engine.submit(e.graph, model, e.lambda_min);
    }
    const auto second = engine.drain();
    const batch_stats stats = engine.stats();
    EXPECT_EQ(stats.cache_hits, corpus.size());
    EXPECT_EQ(stats.executed, corpus.size());
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        ASSERT_TRUE(second[i].ok());
        EXPECT_TRUE(second[i].from_cache);
        expect_identical_path(second[i].result->path, first[i].result->path,
                              "batch replay " + std::to_string(i));
    }
}

TEST(BatchEngine, BoundedCacheEvictsLeastRecentlyUsed)
{
    const sonic_model model;
    const auto corpus = make_corpus(8, 3, model, 31);
    // One stripe: recency ordering is exact. (With several stripes the
    // bound still holds but eviction order is per-shard -- see the
    // sharded_lru suite.)
    batch_engine engine(
        batch_options{.jobs = 1, .cache_capacity = 2, .cache_shards = 1});
    const auto run_one = [&](const corpus_entry& e) {
        engine.submit(e.graph, model, e.lambda_min);
        return engine.drain();
    };
    run_one(corpus[0]);
    run_one(corpus[1]);
    run_one(corpus[2]); // evicts corpus[0]
    const auto again = run_one(corpus[0]);
    EXPECT_FALSE(again[0].from_cache);
    EXPECT_EQ(engine.stats().executed, 4u);
}

TEST(BatchEngine, RelabelledGraphSharesTheCacheSlot)
{
    // graph_fingerprint ignores operation names, so a re-labelled copy of
    // a graph must dedup against the original.
    const std::string original = "op x mul 8 6\nop y add 8\ndep x y\n";
    const std::string relabelled = "op p mul 8 6\nop q add 8\ndep p q\n";
    const sequencing_graph a = parse_graph_string(original);
    const sequencing_graph b = parse_graph_string(relabelled);
    EXPECT_EQ(graph_fingerprint(a), graph_fingerprint(b));

    const sonic_model model;
    batch_engine engine(batch_options{.jobs = 1});
    engine.submit(a, model, 10);
    static_cast<void>(engine.drain());
    engine.submit(b, model, 10);
    const auto outcomes = engine.drain();
    EXPECT_TRUE(outcomes[0].from_cache);
    EXPECT_EQ(engine.stats().executed, 1u);
}

TEST(BatchEngine, CompletionHookFiresExactlyOncePerIndex)
{
    // The campaign checkpointer journals from this hook, so the contract
    // is strict: one call per submitted index, covering executed,
    // coalesced and cache-hit jobs alike, all before drain() returns.
    const sonic_model model;
    const auto corpus = make_corpus(10, 3, model, 67);
    batch_engine engine(batch_options{.jobs = 4, .cache_capacity = 16});
    std::mutex seen_mutex;
    std::map<std::size_t, int> calls;
    std::map<std::size_t, bool> ok;
    engine.set_completion_hook(
        [&](std::size_t index, const batch_engine::outcome& out) {
            const std::lock_guard<std::mutex> lock(seen_mutex);
            ++calls[index];
            ok[index] = out.ok();
        });

    // Duplicates exercise coalescing; a second batch exercises the cache
    // path (hook fires straight from submit there).
    std::size_t submitted = 0;
    for (int batch = 0; batch < 2; ++batch) {
        for (const corpus_entry& e : corpus) {
            for (int rep = 0; rep < 3; ++rep) {
                engine.submit(e.graph, model, e.lambda_min);
                ++submitted;
            }
        }
        const auto outcomes = engine.drain();
        // Every hook call has landed by now, no waiting needed.
        ASSERT_EQ(calls.size(), outcomes.size());
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
            EXPECT_EQ(calls[i], 1) << "index " << i;
            EXPECT_EQ(ok[i], outcomes[i].ok()) << "index " << i;
        }
        calls.clear();
        ok.clear();
    }
    const batch_stats stats = engine.stats();
    EXPECT_EQ(stats.submitted, submitted);
    EXPECT_GE(stats.coalesced + stats.cache_hits, submitted / 2);
}

TEST(BatchEngine, CompletionHookSeesErrorsToo)
{
    const sonic_model model;
    const auto corpus = make_corpus(10, 1, model, 41);
    batch_engine engine(batch_options{.jobs = 2});
    std::mutex seen_mutex;
    std::vector<std::pair<std::size_t, bool>> seen;
    engine.set_completion_hook(
        [&](std::size_t index, const batch_engine::outcome& out) {
            const std::lock_guard<std::mutex> lock(seen_mutex);
            seen.emplace_back(index, out.ok());
        });
    engine.submit(corpus[0].graph, model, 1); // infeasible
    engine.submit(corpus[0].graph, model, corpus[0].lambda_min);
    static_cast<void>(engine.drain());
    ASSERT_EQ(seen.size(), 2u);
    std::sort(seen.begin(), seen.end());
    EXPECT_FALSE(seen[0].second);
    EXPECT_TRUE(seen[1].second);
}

TEST(BatchEngine, InfeasibleJobReportsErrorWithoutPoisoningTheBatch)
{
    const sonic_model model;
    const auto corpus = make_corpus(10, 1, model, 41);
    batch_engine engine(batch_options{.jobs = 2});
    engine.submit(corpus[0].graph, model, 1); // below lambda_min
    engine.submit(corpus[0].graph, model, corpus[0].lambda_min);
    const auto outcomes = engine.drain();
    EXPECT_FALSE(outcomes[0].ok());
    EXPECT_FALSE(outcomes[0].error.empty());
    ASSERT_TRUE(outcomes[1].ok()) << outcomes[1].error;
    EXPECT_EQ(engine.stats().errors, 1u);
}

// ----------------------------- the serve-facing blocking path: run() --

TEST(BatchEngine, RunMatchesDpallocAndHitsTheCacheOnRepeat)
{
    const sonic_model model;
    const auto corpus = make_corpus(10, 2, model, 47);
    batch_engine engine(batch_options{.jobs = 2, .cache_capacity = 16});
    for (const corpus_entry& e : corpus) {
        const dpalloc_result expected = dpalloc(e.graph, model,
                                                e.lambda_min);
        const batch_engine::outcome first =
            engine.run(e.graph, model, e.lambda_min);
        ASSERT_TRUE(first.ok()) << first.error;
        EXPECT_FALSE(first.from_cache);
        expect_identical_path(first.result->path, expected.path, "run");
        const batch_engine::outcome again =
            engine.run(e.graph, model, e.lambda_min);
        ASSERT_TRUE(again.ok());
        EXPECT_TRUE(again.from_cache);
        // The cache hands back the same immutable result object.
        EXPECT_EQ(again.result.get(), first.result.get());
    }
    const engine_stats s = engine.snapshot();
    EXPECT_EQ(s.submitted, 2 * corpus.size());
    EXPECT_EQ(s.cache_hits, corpus.size());
    EXPECT_EQ(s.executed, corpus.size());
    EXPECT_EQ(s.in_flight, 0u);
}

TEST(BatchEngine, RunReportsInfeasibleJobsAsErrors)
{
    const sonic_model model;
    const auto corpus = make_corpus(10, 1, model, 51);
    batch_engine engine(batch_options{.jobs = 1});
    const batch_engine::outcome out = engine.run(corpus[0].graph, model, 1);
    EXPECT_FALSE(out.ok());
    EXPECT_FALSE(out.error.empty());
    EXPECT_EQ(engine.snapshot().errors, 1u);
}

TEST(BatchEngine, ConcurrentRunsAreDeterministicAndAccounted)
{
    // The serve topology: many threads calling run() on a shared engine.
    // Every caller must see the identical allocation, and the snapshot
    // counters must balance -- each submit was a hit, a coalesce, or an
    // execution. (A probe racing a just-finishing twin may legitimately
    // execute twice; equal keys give byte-identical results.)
    const sonic_model model;
    const auto corpus = make_corpus(12, 3, model, 53);
    batch_engine engine(batch_options{.jobs = 4, .cache_capacity = 64});
    constexpr int threads_per_job = 4;
    std::vector<std::vector<batch_engine::outcome>> results(
        corpus.size(),
        std::vector<batch_engine::outcome>(threads_per_job));
    {
        std::vector<std::thread> threads;
        for (std::size_t g = 0; g < corpus.size(); ++g) {
            for (int t = 0; t < threads_per_job; ++t) {
                threads.emplace_back([&, g, t] {
                    results[g][t] = engine.run(corpus[g].graph, model,
                                               corpus[g].lambda_min);
                });
            }
        }
        for (std::thread& t : threads) {
            t.join();
        }
    }
    for (std::size_t g = 0; g < corpus.size(); ++g) {
        const dpalloc_result expected =
            dpalloc(corpus[g].graph, model, corpus[g].lambda_min);
        for (int t = 0; t < threads_per_job; ++t) {
            ASSERT_TRUE(results[g][t].ok()) << results[g][t].error;
            expect_identical_path(results[g][t].result->path, expected.path,
                                  "graph " + std::to_string(g));
        }
    }
    const engine_stats s = engine.snapshot();
    EXPECT_EQ(s.submitted,
              corpus.size() * static_cast<std::size_t>(threads_per_job));
    EXPECT_EQ(s.cache_hits + s.coalesced + s.executed, s.submitted);
    EXPECT_GE(s.executed, corpus.size());
    EXPECT_EQ(s.in_flight, 0u);
    EXPECT_EQ(s.errors, 0u);
}

TEST(BatchEngine, RunAndSubmitShareOneCache)
{
    const sonic_model model;
    const auto corpus = make_corpus(9, 2, model, 59);
    batch_engine engine(batch_options{.jobs = 2, .cache_capacity = 16});
    for (const corpus_entry& e : corpus) {
        engine.submit(e.graph, model, e.lambda_min);
    }
    static_cast<void>(engine.drain());
    for (const corpus_entry& e : corpus) {
        const batch_engine::outcome out =
            engine.run(e.graph, model, e.lambda_min);
        ASSERT_TRUE(out.ok());
        EXPECT_TRUE(out.from_cache);
    }
}

TEST(BatchEngine, SnapshotCountsEvictionsOfTheStripedCache)
{
    const sonic_model model;
    const auto corpus = make_corpus(8, 6, model, 61);
    // One stripe of capacity 2: runs 3..6 must evict 1..4.
    batch_engine engine(
        batch_options{.jobs = 1, .cache_capacity = 2, .cache_shards = 1});
    for (const corpus_entry& e : corpus) {
        ASSERT_TRUE(engine.run(e.graph, model, e.lambda_min).ok());
    }
    const engine_stats s = engine.snapshot();
    EXPECT_EQ(s.executed, corpus.size());
    EXPECT_EQ(s.evictions, corpus.size() - 2);
    EXPECT_EQ(s.cache_size, 2u);
    EXPECT_EQ(s.cache_capacity, 2u);
}

TEST(ParallelPareto, ByteIdenticalToSerialSweepAcrossJobCounts)
{
    const sonic_model model;
    for (const std::size_t n : {6u, 10u, 16u}) {
        const auto corpus = make_corpus(n, 4, model, 53);
        for (std::size_t gi = 0; gi < corpus.size(); ++gi) {
            const auto serial = pareto_sweep(corpus[gi].graph, model);
            for (const std::size_t jobs : {1u, 2u, 3u, 8u}) {
                const auto parallel = parallel_pareto_sweep(
                    corpus[gi].graph, model, {}, jobs);
                expect_identical_front(
                    parallel, serial,
                    "n=" + std::to_string(n) + " graph " +
                        std::to_string(gi) + " jobs=" +
                        std::to_string(jobs));
            }
        }
    }
}

TEST(ParallelPareto, MatchesSerialOnShortAndPatienceBoundedRanges)
{
    const sonic_model model;
    const auto corpus = make_corpus(12, 2, model, 59);
    for (const corpus_entry& e : corpus) {
        for (const double max_slack : {0.0, 0.05, 2.0}) {
            for (const int patience : {1, 2, 100}) {
                pareto_options options;
                options.max_slack = max_slack;
                options.patience = patience;
                const auto serial = pareto_sweep(e.graph, model, options);
                const auto parallel =
                    parallel_pareto_sweep(e.graph, model, options, 4);
                expect_identical_front(parallel, serial,
                                       "slack=" + std::to_string(max_slack) +
                                           " patience=" +
                                           std::to_string(patience));
            }
        }
    }
}

TEST(ParallelPareto, EmptyGraphAndInvalidOptionsBehaveLikeSerial)
{
    const sonic_model model;
    sequencing_graph empty;
    EXPECT_TRUE(parallel_pareto_sweep(empty, model, {}, 2).empty());

    const auto corpus = make_corpus(6, 1, model, 61);
    pareto_options bad;
    bad.max_slack = -1.0;
    EXPECT_THROW(static_cast<void>(parallel_pareto_sweep(
                     corpus[0].graph, model, bad, 2)),
                 precondition_error);
    bad = {};
    bad.patience = 0;
    EXPECT_THROW(static_cast<void>(parallel_pareto_sweep(
                     corpus[0].graph, model, bad, 2)),
                 precondition_error);
}

TEST(ParallelPareto, NestedSweepsOnASharedPoolStayIdentical)
{
    // The mwl_batch/bench pattern: per-graph sweep tasks on one pool, each
    // fanning out per-lambda subtasks on the same pool.
    const sonic_model model;
    const auto corpus = make_corpus(10, 6, model, 67);
    thread_pool pool(4);
    std::vector<std::vector<pareto_point>> fronts(corpus.size());
    task_group group(pool);
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        const sequencing_graph* graph = &corpus[i].graph;
        std::vector<pareto_point>* slot = &fronts[i];
        group.run([&pool, &model, graph, slot] {
            *slot = parallel_pareto_sweep(*graph, model, {}, pool);
        });
    }
    group.wait();
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        expect_identical_front(fronts[i],
                               pareto_sweep(corpus[i].graph, model),
                               "nested graph " + std::to_string(i));
    }
}

} // namespace
} // namespace mwl
