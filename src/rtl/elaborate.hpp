// Elaboration: allocated datapath -> structural RTL IR.
//
// Lowers a (graph, datapath, netlist) triple into an `rtl_design`:
// one functional unit per datapath instance, the left-edge register file,
// operand selections held for each operation's whole execution span, the
// capture schedule, and primary I/O. All multiple-wordlength adaptation
// semantics are decided here, once:
//
//  * an operand read from a register or primary input is sliced at the
//    *operation's* native operand width (the two's-complement wrap the
//    simulator applies upstream of a wider shared unit) and sign-extended
//    to the physical port width;
//  * a result is sliced at the operation's native result width and stored
//    sign-extended to the (possibly wider, shared) register's width.
//
// The legacy_* options reproduce the historical emitter's zero-extension
// bugs so the differential harness (src/verify/) can demonstrate the
// failure class it guards against; never enable them for real designs.

#ifndef MWL_RTL_ELABORATE_HPP
#define MWL_RTL_ELABORATE_HPP

#include "rtl/netlist.hpp"
#include "rtl/rtl_design.hpp"

#include <string>

namespace mwl {

struct elaborate_options {
    /// Reproduce the pre-IR emitter's operand handling: no slice at the
    /// operation's native width, zero-extension of narrower sources into
    /// wider ports. Corrupts negative operands; for harness self-tests.
    bool legacy_operand_extension = false;
    /// Reproduce the pre-IR emitter's register capture: result slices
    /// zero-extended into wider shared registers, so negative results
    /// read back with zero upper bits. For harness self-tests.
    bool legacy_capture_extension = false;
    /// Reproduce the historical unsigned multiplier body (`a * b` on raw
    /// bit patterns instead of `$signed` operands): the upper half of a
    /// full-width product is wrong whenever an operand is negative. For
    /// harness self-tests.
    bool legacy_unsigned_multiply = false;
    /// Reproduce the pre-fix output lifetime (death == latency instead of
    /// latency + 1): a last-cycle capture may recycle the register of a
    /// primary output still being read from outside. Takes effect through
    /// `build_rtl` / `compute_lifetimes`, which accept the same flag. For
    /// harness self-tests.
    bool legacy_output_recycling = false;

    /// True when any historical bug is being reproduced (callers skip the
    /// structural validator and expect the harness to flag the design).
    [[nodiscard]] bool any() const
    {
        return legacy_operand_extension || legacy_capture_extension ||
               legacy_unsigned_multiply || legacy_output_recycling;
    }
};

/// Build the structural RTL IR for an allocated datapath. `net` must have
/// been built for the same (graph, path) pair. Throws `precondition_error`
/// on an empty module name or a netlist/datapath that does not match the
/// graph. The result passes `validate_design` whenever both legacy options
/// are off.
[[nodiscard]] rtl_design elaborate(const sequencing_graph& graph,
                                   const datapath& path,
                                   const rtl_netlist& net,
                                   const std::string& module_name,
                                   const elaborate_options& options = {});

} // namespace mwl

#endif // MWL_RTL_ELABORATE_HPP
