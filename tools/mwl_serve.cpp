// mwl_serve -- long-running allocation-as-a-service daemon.
//
// Wraps the batch engine (src/engine/) in a socket server (src/serve/):
// clients stream sequencing graphs over a length-delimited framed
// protocol (unix and/or TCP), jobs are deduplicated against a
// lock-striped LRU shared by every connection, admission control keeps
// the backlog bounded (excess requests get `busy retry-after-ms=R`
// instead of unbounded queueing), and a `stats` request reports cache
// hit rate, queue depth, in-flight count, and p50/p99 allocation
// latency live. See src/serve/protocol.hpp for the wire format and
// tools/mwl_client for the matching client.
//
// SIGINT/SIGTERM drain: stop accepting, finish every admitted job,
// write the responses whole, then exit 3 -- the same contract as
// mwl_batch and mwl_campaign (0 success, 1 failure, 2 usage, 3
// interrupted-and-drained).
//
// Usage:
//   mwl_serve --unix /tmp/mwl.sock [--jobs 8] [--cache 4096]
//   mwl_serve --tcp 7447 [--host 0.0.0.0]
//   mwl_serve --unix /tmp/mwl.sock --tcp 0     # ephemeral port, printed

#include "serve/server.hpp"
#include "support/interrupt.hpp"

#include <csignal>
#include <iostream>
#include <string>

namespace {

using namespace mwl;

[[noreturn]] void usage(int code)
{
    std::cout <<
        "usage: mwl_serve (--unix PATH | --tcp PORT) [options]\n"
        "  --unix PATH          listen on a unix socket\n"
        "  --tcp PORT           listen on TCP (0 = ephemeral, printed)\n"
        "  --host ADDR          TCP bind address [127.0.0.1]\n"
        "  --jobs N             worker threads [hardware concurrency]\n"
        "  --cache N            result cache capacity [4096]\n"
        "  --queue-depth N      per-connection admitted-job bound [64]\n"
        "  --max-inflight N     global admitted-job bound [4 x threads]\n"
        "  --max-frame BYTES    reject larger request frames [4194304]\n"
        "  --retry-after-ms N   backoff hint on busy rejections [25]\n"
        "  --max-conns N        connection cap [256]\n"
        "at least one of --unix / --tcp is required\n"
        "SIGINT/SIGTERM drain admitted jobs, answer them, and exit 3\n";
    std::exit(code);
}

} // namespace

int main(int argc, char** argv)
{
    install_interrupt_handler();
    // A response racing a client disconnect must fail with EPIPE (handled
    // per connection), never kill the daemon.
    std::signal(SIGPIPE, SIG_IGN);

    serve::server_options options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "mwl_serve: missing value for " << arg << '\n';
                usage(2);
            }
            return argv[++i];
        };
        const auto count_value = [&]() -> std::size_t {
            const std::string text = value();
            try {
                if (!text.empty() && text[0] == '-') {
                    throw std::invalid_argument(text);
                }
                return std::stoul(text);
            } catch (const std::exception&) {
                std::cerr << "mwl_serve: bad numeric value '" << text
                          << "' for " << arg << '\n';
                usage(2);
            }
        };
        if (arg == "--unix") {
            options.unix_path = value();
        } else if (arg == "--tcp") {
            options.tcp_port = static_cast<int>(count_value());
        } else if (arg == "--host") {
            options.tcp_host = value();
        } else if (arg == "--jobs") {
            options.jobs = count_value();
        } else if (arg == "--cache") {
            options.cache_capacity = count_value();
        } else if (arg == "--queue-depth") {
            options.queue_depth = count_value();
        } else if (arg == "--max-inflight") {
            options.max_inflight = count_value();
        } else if (arg == "--max-frame") {
            options.max_frame = count_value();
        } else if (arg == "--retry-after-ms") {
            options.retry_after_ms = static_cast<int>(count_value());
        } else if (arg == "--max-conns") {
            options.max_connections = count_value();
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else {
            std::cerr << "mwl_serve: unknown option " << arg << '\n';
            usage(2);
        }
    }
    if (options.unix_path.empty() && options.tcp_port < 0) {
        std::cerr << "mwl_serve: one of --unix or --tcp is required\n";
        usage(2);
    }

    try {
        serve::server server(options);
        if (!options.unix_path.empty()) {
            std::cout << "mwl_serve: listening on unix:" << options.unix_path
                      << '\n';
        }
        if (options.tcp_port >= 0) {
            std::cout << "mwl_serve: listening on tcp:" << options.tcp_host
                      << ':' << server.tcp_port() << '\n';
        }
        std::cout.flush();

        server.run(interrupt_requested);

        const serve::server_counters c = server.counters();
        const engine_stats e = server.engine_snapshot();
        const latency_summary l = server.latency();
        const double hit_rate =
            e.submitted != 0 ? static_cast<double>(e.cache_hits) /
                                   static_cast<double>(e.submitted)
                             : 0.0;
        std::cout << "mwl_serve: drained; " << c.accepted
                  << " connections, " << c.alloc_requests
                  << " alloc requests (" << c.ok_responses << " ok, "
                  << c.error_responses << " errors, " << c.rejected_busy
                  << " busy, " << c.protocol_errors
                  << " protocol errors), cache hit rate " << hit_rate
                  << ", p50 " << l.p50 << " ms, p99 " << l.p99 << " ms\n";
        return interrupt_requested() ? interrupt_exit_code : 0;
    } catch (const error& e) {
        std::cerr << "mwl_serve: " << e.what() << '\n';
        return 1;
    }
}
