#include "lp/branch_bound.hpp"

#include "support/error.hpp"
#include "support/timer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mwl {
namespace {

struct node {
    std::vector<double> lo;
    std::vector<double> hi;
    double bound; ///< parent LP objective: dive into promising nodes first
};

/// Most fractional integer variable, or npos if x is integral.
std::size_t pick_branch_var(const lp_problem& problem,
                            const std::vector<double>& x, double tol)
{
    const std::size_t npos = static_cast<std::size_t>(-1);
    std::size_t best = npos;
    double best_frac_dist = tol;
    for (std::size_t v = 0; v < problem.n_vars(); ++v) {
        if (problem.kind(v) != var_kind::integer) {
            continue;
        }
        const double frac = x[v] - std::floor(x[v]);
        const double dist = std::min(frac, 1.0 - frac);
        if (dist > best_frac_dist) {
            best_frac_dist = dist;
            best = v;
        }
    }
    return best;
}

} // namespace

mip_solution solve_mip(const lp_problem& problem, const mip_options& opt)
{
    mip_solution result;
    const stopwatch clock;
    const std::size_t npos = static_cast<std::size_t>(-1);

    double incumbent_obj = std::isnan(opt.cutoff)
                               ? std::numeric_limits<double>::infinity()
                               : opt.cutoff;
    bool have_incumbent = false;

    std::vector<node> stack;
    {
        node root;
        root.lo.reserve(problem.n_vars());
        root.hi.reserve(problem.n_vars());
        for (std::size_t v = 0; v < problem.n_vars(); ++v) {
            root.lo.push_back(problem.lower(v));
            root.hi.push_back(problem.upper(v));
        }
        root.bound = -std::numeric_limits<double>::infinity();
        stack.push_back(std::move(root));
    }

    bool hit_limit = false;
    while (!stack.empty()) {
        if (result.nodes >= opt.max_nodes ||
            (opt.time_limit_seconds > 0.0 &&
             clock.seconds() > opt.time_limit_seconds)) {
            hit_limit = true;
            break;
        }
        node current = std::move(stack.back());
        stack.pop_back();
        if (current.bound >= incumbent_obj - 1e-9) {
            continue; // parent bound already dominated
        }
        ++result.nodes;

        const lp_solution relax =
            solve_lp(problem, opt.lp, current.lo, current.hi);
        result.lp_iterations += relax.iterations;
        if (relax.status == lp_status::infeasible) {
            continue;
        }
        if (relax.status == lp_status::iteration_limit) {
            hit_limit = true; // cannot trust the node; be conservative
            break;
        }
        if (relax.objective >= incumbent_obj - 1e-9) {
            continue; // bound-dominated
        }

        const std::size_t branch_var =
            pick_branch_var(problem, relax.x, opt.integrality_tol);
        if (branch_var == npos) {
            // Integral: new incumbent (strictly better by the bound check).
            incumbent_obj = relax.objective;
            result.x = relax.x;
            // Snap integer variables exactly.
            for (std::size_t v = 0; v < problem.n_vars(); ++v) {
                if (problem.kind(v) == var_kind::integer) {
                    result.x[v] = std::round(result.x[v]);
                }
            }
            result.objective = problem.objective_of(result.x);
            have_incumbent = true;
            continue;
        }

        const double value = relax.x[branch_var];
        node down = current;
        down.hi[branch_var] = std::floor(value);
        down.bound = relax.objective;
        node up = std::move(current);
        up.lo[branch_var] = std::ceil(value);
        up.bound = relax.objective;
        // DFS diving: push the "up" branch first so the "down" branch
        // (usually the cheaper one for covering-style minimisation) is
        // explored next.
        stack.push_back(std::move(up));
        stack.push_back(std::move(down));
    }

    if (have_incumbent) {
        result.status = hit_limit ? mip_status::limit_feasible
                                  : mip_status::optimal;
        MWL_ASSERT(problem.is_feasible(result.x, 1e-5));
    } else {
        result.status = hit_limit ? mip_status::limit_nofeasible
                                  : mip_status::infeasible;
    }
    return result;
}

} // namespace mwl
