// Cross-algorithm integration and property tests, parameterised over
// problem size, latency slack and RNG seed (TEST_P sweeps). These encode
// the relationships the paper's evaluation relies on:
//
//  * every algorithm's output passes the independent validator;
//  * the ILP optimum lower-bounds every heuristic/baseline solution;
//  * DPAlloc never loses to the baselines *on average* (Fig. 3's claim);
//  * execution never depends on hidden state (determinism).

#include "baseline/descending.hpp"
#include "baseline/two_stage.hpp"
#include "core/dpalloc.hpp"
#include "core/validate.hpp"
#include "dfg/analysis.hpp"
#include "ilp/formulation.hpp"
#include "model/hardware_model.hpp"
#include "tgff/corpus.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace mwl {
namespace {

struct sweep_param {
    std::size_t n_ops;
    double slack;
    std::uint64_t seed;
};

std::string param_name(const testing::TestParamInfo<sweep_param>& info)
{
    return "n" + std::to_string(info.param.n_ops) + "_slack" +
           std::to_string(static_cast<int>(info.param.slack * 100)) +
           "_seed" + std::to_string(info.param.seed);
}

class AllocationSweep : public testing::TestWithParam<sweep_param> {};

TEST_P(AllocationSweep, AllAlgorithmsProduceValidDatapaths)
{
    const sweep_param p = GetParam();
    const sonic_model model;
    const auto corpus = make_corpus(p.n_ops, 6, model, p.seed);
    for (const corpus_entry& e : corpus) {
        const int lambda = relaxed_lambda(e.lambda_min, p.slack);

        const dpalloc_result heur = dpalloc(e.graph, model, lambda);
        require_valid(e.graph, model, heur.path, lambda);

        const two_stage_result two = two_stage_allocate(e.graph, model,
                                                        lambda);
        require_valid(e.graph, model, two.path, lambda);

        const datapath desc = descending_allocate(e.graph, model, lambda);
        require_valid(e.graph, model, desc, lambda);

        // Optimal B&B binding can only improve on the greedy partition.
        EXPECT_LE(two.path.total_area, desc.total_area + 1e-9);
    }
}

TEST_P(AllocationSweep, DpallocNeverLosesOnAverage)
{
    const sweep_param p = GetParam();
    const sonic_model model;
    const auto corpus = make_corpus(p.n_ops, 6, model, p.seed);
    double heur_total = 0.0;
    double baseline_total = 0.0;
    for (const corpus_entry& e : corpus) {
        const int lambda = relaxed_lambda(e.lambda_min, p.slack);
        heur_total += dpalloc(e.graph, model, lambda).path.total_area;
        baseline_total +=
            two_stage_allocate(e.graph, model, lambda).path.total_area;
    }
    // Fig. 3's claim is about corpus means; allow a small per-corpus
    // tolerance since individual samples are heuristic-vs-optimal-binding.
    EXPECT_LE(heur_total, baseline_total * 1.05 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSlacks, AllocationSweep,
    testing::Values(sweep_param{3, 0.0, 11}, sweep_param{3, 0.3, 11},
                    sweep_param{6, 0.0, 12}, sweep_param{6, 0.15, 12},
                    sweep_param{6, 0.3, 12}, sweep_param{10, 0.0, 13},
                    sweep_param{10, 0.15, 13}, sweep_param{10, 0.3, 13},
                    sweep_param{16, 0.1, 14}, sweep_param{20, 0.2, 15}),
    param_name);

class OptimalitySweep : public testing::TestWithParam<sweep_param> {};

TEST_P(OptimalitySweep, IlpLowerBoundsEveryAlgorithm)
{
    const sweep_param p = GetParam();
    const sonic_model model;
    const auto corpus = make_corpus(p.n_ops, 4, model, p.seed);
    for (const corpus_entry& e : corpus) {
        const int lambda = relaxed_lambda(e.lambda_min, p.slack);
        mip_options mopt;
        mopt.max_nodes = 200000;
        const ilp_result opt = solve_ilp(e.graph, model, lambda, mopt);
        if (opt.status != mip_status::optimal) {
            continue; // node cap: no optimality claim to check
        }
        require_valid(e.graph, model, opt.path, lambda);

        const dpalloc_result heur = dpalloc(e.graph, model, lambda);
        const two_stage_result two = two_stage_allocate(e.graph, model,
                                                        lambda);
        EXPECT_GE(heur.path.total_area, opt.path.total_area - 1e-6);
        EXPECT_GE(two.path.total_area, opt.path.total_area - 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(
    SmallSizes, OptimalitySweep,
    testing::Values(sweep_param{2, 0.0, 21}, sweep_param{3, 0.0, 22},
                    sweep_param{4, 0.0, 23}, sweep_param{4, 0.3, 23},
                    sweep_param{5, 0.0, 24}, sweep_param{5, 0.15, 24},
                    sweep_param{6, 0.0, 25}),
    param_name);

class DeterminismSweep : public testing::TestWithParam<sweep_param> {};

TEST_P(DeterminismSweep, RepeatedRunsAgreeExactly)
{
    const sweep_param p = GetParam();
    const sonic_model model;
    const auto corpus = make_corpus(p.n_ops, 3, model, p.seed);
    for (const corpus_entry& e : corpus) {
        const int lambda = relaxed_lambda(e.lambda_min, p.slack);
        const dpalloc_result a = dpalloc(e.graph, model, lambda);
        const dpalloc_result b = dpalloc(e.graph, model, lambda);
        EXPECT_EQ(a.path.start, b.path.start);
        EXPECT_EQ(a.path.instances.size(), b.path.instances.size());
        EXPECT_DOUBLE_EQ(a.path.total_area, b.path.total_area);
        const two_stage_result ta = two_stage_allocate(e.graph, model,
                                                       lambda);
        const two_stage_result tb = two_stage_allocate(e.graph, model,
                                                       lambda);
        EXPECT_DOUBLE_EQ(ta.path.total_area, tb.path.total_area);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Determinism, DeterminismSweep,
    testing::Values(sweep_param{8, 0.0, 31}, sweep_param{8, 0.2, 31},
                    sweep_param{14, 0.1, 32}),
    param_name);

TEST(Integration, SlackMonotonicityOnCorpusMeans)
{
    // More slack must not increase DPAlloc's mean area (the paper's whole
    // premise: slack is traded for area).
    const sonic_model model;
    const auto corpus = make_corpus(8, 10, model, 71);
    double prev = 1e18;
    for (const double slack : {0.0, 0.1, 0.2, 0.3}) {
        double total = 0.0;
        for (const corpus_entry& e : corpus) {
            const int lambda = relaxed_lambda(e.lambda_min, slack);
            total += dpalloc(e.graph, model, lambda).path.total_area;
        }
        EXPECT_LE(total, prev + 1e-6) << "slack " << slack;
        prev = total;
    }
}

TEST(Integration, UniformLatencyModelKeepsAllAlgorithmsValid)
{
    const uniform_latency_model model(2);
    const auto corpus = make_corpus(9, 5, model, 81);
    for (const corpus_entry& e : corpus) {
        const int lambda = relaxed_lambda(e.lambda_min, 0.2);
        const dpalloc_result heur = dpalloc(e.graph, model, lambda);
        require_valid(e.graph, model, heur.path, lambda);
        const two_stage_result two = two_stage_allocate(e.graph, model,
                                                        lambda);
        require_valid(e.graph, model, two.path, lambda);
    }
}

} // namespace
} // namespace mwl
