// Time-indexed ILP for combined scheduling, resource binding and
// wordlength selection -- the optimal reference of [5] (Constantinides,
// Cheung, Luk, IEE Electronics Letters 36(17), 2000), reconstructed (the
// letter's text is not available; see DESIGN.md §3).
//
// Decision variables:
//   x[o,r,t] in {0,1}:  operation o starts at control step t on a resource
//                       of wordlength-type r (r compatible with o, t inside
//                       o's feasibility window);
//   n[r]     in Z>=0:   instances of resource type r in the datapath.
// Constraints:
//   assignment  sum_{r,t} x[o,r,t] = 1                      for every o;
//   precedence  sum (t + l(r)) x[o1,r,t] <= sum t x[o2,r,t] for (o1,o2) in S;
//   usage       sum_{o} sum_{t' in (t - l(r), t]} x[o,r,t'] <= n[r]
//                                                for every r and step t.
// Objective: minimise sum_r area(r) * n[r].
//
// The usage constraint is exact: operations assigned to one type conflict
// as intervals, and an interval graph needs exactly max-overlap many
// colours, so n[r] instances always suffice. The variable count grows with
// the latency constraint -- the behaviour the paper's Table 2 probes.

#ifndef MWL_ILP_FORMULATION_HPP
#define MWL_ILP_FORMULATION_HPP

#include "core/datapath.hpp"
#include "dfg/sequencing_graph.hpp"
#include "lp/branch_bound.hpp"
#include "model/hardware_model.hpp"

#include <vector>

namespace mwl {

/// The built model plus the tables needed to decode a solution.
struct ilp_model {
    lp_problem problem;

    struct start_var {
        op_id o;
        std::size_t resource_index; ///< into `resources`
        int t;
        std::size_t var; ///< lp variable index
    };
    std::vector<start_var> x_vars;
    std::vector<std::size_t> count_var; ///< n[r] variable per resource
    std::vector<op_shape> resources;    ///< candidate types (join closure)
};

/// Build the ILP. Throws `infeasible_error` if some operation has an empty
/// start window under `lambda`.
[[nodiscard]] ilp_model build_ilp(const sequencing_graph& graph,
                                  const hardware_model& model, int lambda);

struct ilp_result {
    mip_status status = mip_status::infeasible;
    datapath path;      ///< populated when a solution was found
    std::size_t n_variables = 0;
    std::size_t n_constraints = 0;
    std::size_t nodes = 0;
    std::size_t lp_iterations = 0;
};

/// Build, solve, and decode. The decoded datapath is self-contained and
/// validator-clean; instances are derived from the per-type counts by
/// first-fit interval colouring.
[[nodiscard]] ilp_result solve_ilp(const sequencing_graph& graph,
                                   const hardware_model& model, int lambda,
                                   const mip_options& options = {});

} // namespace mwl

#endif // MWL_ILP_FORMULATION_HPP
