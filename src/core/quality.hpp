// Allocation-quality report extraction and the golden regression gate.
//
// Structural tests prove an allocation is *valid*; nothing in the seed
// suite stopped a refactor from silently making every valid allocation
// *worse* (more area, more instances, fatter steering fabric). This module
// closes that hole: `measure_quality_report` runs every enabled allocator
// on a named workload and extracts the numbers a designer actually ships
// -- achieved latency, functional-unit area (the paper's objective),
// register/mux inventory from the RTL netlist, and the extended area --
// into a `quality_report` that serialises to versioned JSON. Checked-in
// reports under tests/goldens/ become the golden baseline; `diff_quality`
// compares a recomputed report against its golden with per-metric
// tolerances and `render_drift_table` prints the readable per-scenario
// table the ctest gate and the mwl_scenarios tool show on drift.
//
// Every allocator here is deterministic, so the default tolerance is
// exact; the relative knob exists for intentionally-fuzzy area models.

#ifndef MWL_CORE_QUALITY_HPP
#define MWL_CORE_QUALITY_HPP

#include "core/datapath.hpp"
#include "dfg/sequencing_graph.hpp"
#include "model/hardware_model.hpp"
#include "report/table.hpp"
#include "support/error.hpp"

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace mwl {

/// A golden file that is not a valid serialised quality_report; `what()`
/// includes the offending position or key.
class quality_format_error : public error {
public:
    using error::error;
};

/// Bump when the serialised layout changes incompatibly; parse rejects
/// files with a different version so stale goldens fail loudly, not by
/// accidentally comparing renamed fields.
inline constexpr int quality_format_version = 1;

/// What one allocator achieved on one workload.
struct quality_metrics {
    int lambda = 0;   ///< latency constraint the allocator ran under
    int latency = 0;  ///< achieved makespan (<= lambda)
    std::size_t fu_count = 0;
    double fu_area = 0.0; ///< the paper's objective (sum of instance areas)
    std::size_t register_count = 0;
    double register_area = 0.0;
    std::size_t mux_count = 0;
    double mux_area = 0.0;
    double ext_area = 0.0; ///< fu + register + mux (extended model)

    friend bool operator==(const quality_metrics&,
                           const quality_metrics&) = default;
};

struct allocator_quality {
    std::string allocator; ///< "dpalloc", "two_stage", "descending", "ilp"
    quality_metrics metrics;

    friend bool operator==(const allocator_quality&,
                           const allocator_quality&) = default;
};

struct quality_options {
    /// Latency relaxation over lambda_min (the verify harness's default).
    double slack = 0.25;
    /// Run the ILP reference on graphs with at most this many operations
    /// (0 disables it). Only *proven optimal* solutions are recorded, and
    /// the node cap below is deterministic, so inclusion of the "ilp" row
    /// is machine-independent.
    std::size_t ilp_max_ops = 8;
    std::size_t ilp_max_nodes = 250000;
    bool use_dpalloc = true;
    bool use_two_stage = true;
    bool use_descending = true;

    friend bool operator==(const quality_options&,
                           const quality_options&) = default;
};

/// One workload's quality across allocators, plus enough provenance
/// (graph size, lambda_min, measurement options) that a checker can
/// recompute it under identical conditions and spot protocol drift.
struct quality_report {
    std::string scenario;
    std::size_t ops = 0;
    std::size_t edges = 0;
    int lambda_min = 0;
    quality_options options;
    std::vector<allocator_quality> allocators;

    friend bool operator==(const quality_report&,
                           const quality_report&) = default;
};

/// Metrics of one allocated datapath: FU inventory from the datapath
/// itself, register/mux inventory from the RTL netlist it elaborates to.
[[nodiscard]] quality_metrics measure_quality(const sequencing_graph& graph,
                                              const hardware_model& model,
                                              const datapath& path,
                                              int lambda);

/// Allocate `graph` with every enabled allocator at
/// relaxed_lambda(lambda_min, options.slack) and measure each result.
/// Throws `precondition_error` on an empty graph.
[[nodiscard]] quality_report measure_quality_report(
    const sequencing_graph& graph, std::string name,
    const hardware_model& model, const quality_options& options = {});

/// Serialise; `parse_quality_report(to_json(r)) == r`.
[[nodiscard]] std::string to_json(const quality_report& report);

/// Parse a serialised report. Throws `quality_format_error` on malformed
/// JSON, unknown keys, or a format_version mismatch.
[[nodiscard]] quality_report parse_quality_report(const std::string& text);

/// One metric that moved outside its tolerance, golden vs. recomputed.
struct metric_drift {
    std::string scenario;
    std::string allocator; ///< "-" for report-level (structural) drift
    std::string metric;
    double expected = 0.0;
    double actual = 0.0;
    double allowed = 0.0; ///< absolute tolerance that was applied
};

struct drift_tolerances {
    /// Relative tolerance on areas (fu/register/mux/ext), as a fraction.
    double area_rel = 0.0;
    /// Absolute tolerance on achieved latency, in control steps.
    int latency_abs = 0;
    /// Absolute tolerance on inventory counts (fu/register/mux).
    int count_abs = 0;
};

/// Compare a recomputed report against its golden. Structural mismatches
/// (graph size, lambda_min, options, missing/extra allocators) are
/// reported as drift rows with allocator "-"; matched allocators are
/// compared metric by metric under `tol`. Empty result = no drift.
[[nodiscard]] std::vector<metric_drift> diff_quality(
    const quality_report& golden, const quality_report& current,
    const drift_tolerances& tol = {});

/// The readable per-metric drift table the ctest gate and mwl_scenarios
/// print: one row per drifted metric with expected/actual/allowed.
[[nodiscard]] table render_drift_table(std::span<const metric_drift> drifts);

} // namespace mwl

#endif // MWL_CORE_QUALITY_HPP
