#include "core/pareto.hpp"

#include "dfg/analysis.hpp"
#include "support/error.hpp"

#include <cmath>

namespace mwl {

std::vector<pareto_point> pareto_sweep(const sequencing_graph& graph,
                                       const hardware_model& model,
                                       const pareto_options& options)
{
    require(options.max_slack >= 0.0, "max_slack must be non-negative");
    require(options.patience >= 1, "patience must be >= 1");
    if (graph.empty()) {
        return {};
    }

    const int lambda_min = min_latency(graph, model);
    const int lambda_max = static_cast<int>(std::ceil(
        static_cast<double>(lambda_min) * (1.0 + options.max_slack)));

    std::vector<pareto_point> frontier;
    int stale = 0;
    for (int lambda = lambda_min; lambda <= lambda_max; ++lambda) {
        dpalloc_result r = dpalloc(graph, model, lambda, options.allocator);
        if (frontier_admits(frontier, r.path.total_area)) {
            pareto_point point;
            point.lambda = lambda;
            point.latency = r.path.latency;
            point.area = r.path.total_area;
            point.path = std::move(r.path);
            frontier_insert(frontier, std::move(point));
            stale = 0;
        } else if (++stale >= options.patience) {
            break;
        }
    }
    MWL_ASSERT(!frontier.empty());
    return frontier;
}

bool frontier_admits(const std::vector<pareto_point>& frontier, double area)
{
    // The frontier's areas descend, so the back holds the best area seen.
    return frontier.empty() ||
           area < frontier.back().area - pareto_area_epsilon;
}

void frontier_insert(std::vector<pareto_point>& frontier, pareto_point point)
{
    MWL_ASSERT(frontier_admits(frontier, point.area));
    // Dominance also covers achieved latency: a new point with the same
    // achieved latency but lower area replaces its predecessor.
    while (!frontier.empty() && frontier.back().latency >= point.latency) {
        frontier.pop_back();
    }
    frontier.push_back(std::move(point));
}

void merge_frontiers(std::vector<pareto_point>& dst,
                     std::vector<pareto_point> src)
{
    for (pareto_point& point : src) {
        if (frontier_admits(dst, point.area)) {
            frontier_insert(dst, std::move(point));
        }
    }
}

} // namespace mwl
