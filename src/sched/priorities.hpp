// List-scheduling priority function: longest path from an operation to any
// sink, inclusive of the operation's own latency. Scheduling ops with the
// largest remaining critical path first is the classic latency-weighted
// list-scheduling rule (De Micheli [7]).

#ifndef MWL_SCHED_PRIORITIES_HPP
#define MWL_SCHED_PRIORITIES_HPP

#include "dfg/sequencing_graph.hpp"

#include <span>
#include <vector>

namespace mwl {

/// priority[o] = latencies[o] + max over successors s of priority[s]
/// (= length of the longest dependency path starting at o).
[[nodiscard]] std::vector<int> critical_path_priorities(
    const sequencing_graph& graph, std::span<const int> latencies);

} // namespace mwl

#endif // MWL_SCHED_PRIORITIES_HPP
