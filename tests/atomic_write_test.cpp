// Isolation suite for the two durability primitives the campaign store
// is built on: atomic whole-file replacement (support/atomic_write.hpp)
// and checksummed record framing (io/record_journal.hpp). Each case
// fabricates one concrete kind of on-disk damage -- truncated tail,
// corrupted checksum, duplicated record, empty file -- and pins the
// recovery contract: torn *final* records are detected and discarded,
// mid-file corruption is a hard error, and duplicates deduplicate.

#include "campaign/result_store.hpp"
#include "io/record_journal.hpp"
#include "support/atomic_write.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

namespace mwl {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test, removed up front so reruns in the
/// same build tree start clean.
fs::path scratch(const std::string& name)
{
    const fs::path dir = fs::path("atomic_write_test_tmp") / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::string slurp(const fs::path& path)
{
    std::string text;
    EXPECT_TRUE(read_file(path, text)) << path;
    return text;
}

// ------------------------------------------------------- atomic_write --

TEST(AtomicWrite, CreatesAndReplacesWholeFiles)
{
    const fs::path dir = scratch("replace");
    const fs::path target = dir / "file.txt";
    atomic_write_file(target, "first contents\n");
    EXPECT_EQ(slurp(target), "first contents\n");
    atomic_write_file(target, "second contents, longer than the first\n");
    EXPECT_EQ(slurp(target), "second contents, longer than the first\n");
    // No temp file may survive a successful replacement.
    std::size_t entries = 0;
    for (const auto& entry : fs::directory_iterator(dir)) {
        static_cast<void>(entry);
        ++entries;
    }
    EXPECT_EQ(entries, 1u);
}

TEST(AtomicWrite, MissingDirectoryIsAnIoError)
{
    EXPECT_THROW(atomic_write_file(
                     fs::path("atomic_write_test_no_such_dir") / "x.txt",
                     "content"),
                 io_error);
}

TEST(AtomicWrite, ReadFileReportsMissingFilesAsFalse)
{
    std::string text = "sentinel";
    EXPECT_FALSE(read_file("atomic_write_test_missing_file", text));
}

// ------------------------------------------------------------ framing --

TEST(RecordJournal, FrameAndParseRoundTrip)
{
    const std::string framed = frame_record("hello world") +
                               frame_record("") +
                               frame_record("key=value detail=spaces ok");
    const journal_load loaded = parse_records(framed);
    EXPECT_FALSE(loaded.dropped_tail);
    EXPECT_EQ(loaded.valid_bytes, framed.size());
    ASSERT_EQ(loaded.payloads.size(), 3u);
    EXPECT_EQ(loaded.payloads[0], "hello world");
    EXPECT_EQ(loaded.payloads[1], "");
    EXPECT_EQ(loaded.payloads[2], "key=value detail=spaces ok");
}

TEST(RecordJournal, PayloadsMayNotContainNewlines)
{
    EXPECT_THROW(static_cast<void>(frame_record("two\nlines")), error);
}

TEST(RecordJournal, EmptyInputIsAValidEmptyJournal)
{
    const journal_load loaded = parse_records("");
    EXPECT_TRUE(loaded.payloads.empty());
    EXPECT_EQ(loaded.valid_bytes, 0u);
    EXPECT_FALSE(loaded.dropped_tail);
}

TEST(RecordJournal, TruncatedFinalRecordIsDroppedNotPropagated)
{
    const std::string good = frame_record("record one") +
                             frame_record("record two");
    const std::string torn = frame_record("record three");
    // Tear the last record at every byte boundary, including losing just
    // the trailing newline: all of them must recover the first two.
    for (std::size_t cut = 0; cut < torn.size(); ++cut) {
        const journal_load loaded =
            parse_records(good + torn.substr(0, cut));
        EXPECT_EQ(loaded.payloads.size(), 2u) << "cut=" << cut;
        EXPECT_EQ(loaded.valid_bytes, good.size()) << "cut=" << cut;
        if (cut > 0) {
            EXPECT_TRUE(loaded.dropped_tail) << "cut=" << cut;
            EXPECT_FALSE(loaded.tail_error.empty()) << "cut=" << cut;
        }
    }
}

TEST(RecordJournal, CorruptedChecksumOnFinalRecordIsDropped)
{
    const std::string good = frame_record("kept");
    std::string bad = frame_record("flipped");
    bad[0] = bad[0] == '0' ? '1' : '0'; // damage the checksum hex
    const journal_load loaded = parse_records(good + bad);
    ASSERT_EQ(loaded.payloads.size(), 1u);
    EXPECT_EQ(loaded.payloads[0], "kept");
    EXPECT_TRUE(loaded.dropped_tail);
    EXPECT_EQ(loaded.valid_bytes, good.size());
}

TEST(RecordJournal, CorruptedPayloadOnFinalRecordIsDropped)
{
    const std::string good = frame_record("kept");
    std::string bad = frame_record("flipped");
    bad[bad.size() - 2] ^= 1; // damage the payload, checksum now mismatches
    const journal_load loaded = parse_records(good + bad);
    ASSERT_EQ(loaded.payloads.size(), 1u);
    EXPECT_TRUE(loaded.dropped_tail);
}

TEST(RecordJournal, MidFileCorruptionIsAHardErrorNotARecovery)
{
    std::string bad = frame_record("damaged");
    bad[0] = bad[0] == '0' ? '1' : '0';
    const std::string text = bad + frame_record("later record");
    // A bad record *followed by* a good one cannot be a crash of our
    // appender; silently resuming would drop acknowledged data.
    EXPECT_THROW(static_cast<void>(parse_records(text)),
                 journal_format_error);
}

// ---------------------------------------------------- journal_writer --

TEST(JournalWriter, AppendsSurviveReopen)
{
    const fs::path dir = scratch("append");
    const fs::path path = dir / "journal.log";
    {
        journal_writer writer(path);
        writer.append("one");
        writer.append("two");
    }
    {
        journal_writer writer(path, slurp(path).size());
        writer.append("three");
    }
    const journal_load loaded = load_journal(path);
    ASSERT_EQ(loaded.payloads.size(), 3u);
    EXPECT_EQ(loaded.payloads[2], "three");
    EXPECT_FALSE(loaded.dropped_tail);
}

TEST(JournalWriter, TruncatingToValidBytesCutsATornTailBeforeAppending)
{
    const fs::path dir = scratch("truncate");
    const fs::path path = dir / "journal.log";
    {
        journal_writer writer(path);
        writer.append("kept record");
    }
    // Simulate a crash mid-append: half a framed record at the end.
    const std::string torn = frame_record("torn record");
    {
        std::ofstream out(path, std::ios::app | std::ios::binary);
        out << torn.substr(0, torn.size() / 2);
    }
    const journal_load damaged = load_journal(path);
    ASSERT_TRUE(damaged.dropped_tail);
    ASSERT_EQ(damaged.payloads.size(), 1u);
    {
        journal_writer writer(path, damaged.valid_bytes);
        writer.append("after recovery");
    }
    const journal_load loaded = load_journal(path);
    EXPECT_FALSE(loaded.dropped_tail);
    ASSERT_EQ(loaded.payloads.size(), 2u);
    EXPECT_EQ(loaded.payloads[0], "kept record");
    EXPECT_EQ(loaded.payloads[1], "after recovery");
}

TEST(JournalWriter, MissingFileLoadsAsEmpty)
{
    const journal_load loaded =
        load_journal("atomic_write_test_no_such_journal.log");
    EXPECT_TRUE(loaded.payloads.empty());
    EXPECT_FALSE(loaded.dropped_tail);
}

// ------------------------------------------- store-level damage cases --

point_result make_result(std::size_t index)
{
    point_result r;
    r.index = index;
    r.key = "fir4/v0/a2m8/s" + std::to_string(10 * index);
    r.lambda = 10 + static_cast<int>(index);
    r.latency = 9 + static_cast<int>(index);
    r.area = 1234.5 + 0.125 * static_cast<double>(index);
    return r;
}

TEST(ResultStoreDamage, PointPayloadRoundTripsExactly)
{
    point_result r = make_result(3);
    r.area = 0.1 + 0.2; // not representable; %.17g must round-trip it
    EXPECT_EQ(parse_point_payload(to_payload(r)), r);

    point_result failed = make_result(4);
    failed.error = "infeasible: lambda below lambda_min";
    EXPECT_EQ(parse_point_payload(to_payload(failed)), failed);
}

TEST(ResultStoreDamage, DuplicateRecordsDeduplicateFirstWins)
{
    const fs::path dir = scratch("duplicates");
    // A crash between snapshot replacement and journal reset leaves the
    // same records in both files; fabricate exactly that state.
    result_store store = result_store::create(dir, "scenario fir4\n",
                                              /*fingerprint=*/0x1234,
                                              /*total_points=*/4);
    store.record(make_result(0));
    store.record(make_result(1));
    store.flush_checkpoint(); // snapshot now holds records 0 and 1
    {
        // Re-append record 1 to the (reset) journal behind the store's
        // back, as if the reset had been lost.
        journal_writer writer(dir / "journal.log",
                              slurp(dir / "journal.log").size());
        writer.append(to_payload(make_result(1)));
    }
    const result_store reopened =
        result_store::open(dir, std::uint64_t{0x1234});
    EXPECT_EQ(reopened.results().size(), 2u);
    EXPECT_EQ(reopened.load_stats().duplicates, 1u);
    EXPECT_EQ(reopened.results().at(1), make_result(1));
}

TEST(ResultStoreDamage, TornJournalTailIsDroppedAndTruncatedOnOpen)
{
    const fs::path dir = scratch("torn_tail");
    result_store store = result_store::create(dir, "scenario fir4\n",
                                              /*fingerprint=*/0x5678,
                                              /*total_points=*/4);
    store.record(make_result(0));
    const std::string torn = frame_record(to_payload(make_result(1)));
    {
        std::ofstream out(dir / "journal.log",
                          std::ios::app | std::ios::binary);
        out << torn.substr(0, torn.size() - 3);
    }
    result_store reopened = result_store::open(dir, std::uint64_t{0x5678});
    EXPECT_TRUE(reopened.load_stats().dropped_tail);
    EXPECT_EQ(reopened.results().size(), 1u);
    EXPECT_FALSE(reopened.has(1)); // the torn point re-runs on resume
    // Appending after recovery must leave a clean journal.
    reopened.record(make_result(1));
    const journal_load loaded = load_journal(dir / "journal.log");
    EXPECT_FALSE(loaded.dropped_tail);
    const result_store again = result_store::open(dir, std::uint64_t{0x5678});
    EXPECT_EQ(again.results().size(), 2u);
}

TEST(ResultStoreDamage, EmptyJournalRecoversViaExpectedFingerprint)
{
    const fs::path dir = scratch("empty_journal");
    // Crash after the spec write but before the header append: the
    // journal exists and is empty.
    atomic_write_file(dir / "spec.campaign", "scenario fir4\n");
    { std::ofstream out(dir / "journal.log", std::ios::binary); }
    // Without the spec's fingerprint there is nothing to validate against.
    EXPECT_THROW(static_cast<void>(result_store::open(dir, std::nullopt)),
                 store_format_error);
    result_store store = result_store::open(dir, std::uint64_t{0x9abc});
    EXPECT_TRUE(store.results().empty());
    store.record(make_result(0));
    const result_store reopened =
        result_store::open(dir, std::uint64_t{0x9abc});
    EXPECT_EQ(reopened.results().size(), 1u);
    EXPECT_EQ(reopened.fingerprint(), 0x9abcu);
}

TEST(ResultStoreDamage, CorruptSnapshotIsAHardError)
{
    const fs::path dir = scratch("bad_snapshot");
    result_store store = result_store::create(dir, "scenario fir4\n",
                                              /*fingerprint=*/0xdef0,
                                              /*total_points=*/2);
    store.record(make_result(0));
    store.flush_checkpoint();
    // Snapshots are atomically replaced; a torn one means real corruption.
    std::string snapshot = slurp(dir / "snapshot.log");
    snapshot.resize(snapshot.size() - 4);
    std::ofstream(dir / "snapshot.log", std::ios::binary) << snapshot;
    EXPECT_THROW(
        static_cast<void>(result_store::open(dir, std::uint64_t{0xdef0})),
        store_format_error);
}

TEST(ResultStoreDamage, FingerprintMismatchIsRejected)
{
    const fs::path dir = scratch("fingerprint");
    result_store store = result_store::create(dir, "scenario fir4\n",
                                              /*fingerprint=*/0x1111,
                                              /*total_points=*/2);
    store.record(make_result(0));
    EXPECT_THROW(
        static_cast<void>(result_store::open(dir, std::uint64_t{0x2222})),
        store_format_error);
}

TEST(ResultStoreDamage, CreateRefusesADirectoryThatAlreadyHoldsACampaign)
{
    const fs::path dir = scratch("recreate");
    static_cast<void>(result_store::create(dir, "scenario fir4\n", 0x1, 1));
    EXPECT_THROW(static_cast<void>(
                     result_store::create(dir, "scenario fir4\n", 0x1, 1)),
                 store_format_error);
}

} // namespace
} // namespace mwl
