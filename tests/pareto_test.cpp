// Unit tests for src/core/pareto.hpp: frontier shape, dominance, validity
// of every point, and early stopping.

#include "core/pareto.hpp"
#include "core/validate.hpp"
#include "dfg/analysis.hpp"
#include "model/hardware_model.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "tgff/corpus.hpp"

#include "test_seed.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

namespace mwl {
namespace {

sequencing_graph fig1_graph()
{
    sequencing_graph g;
    const op_id m1 = g.add_operation(op_shape::multiplier(12, 12), "m1");
    const op_id m2 = g.add_operation(op_shape::multiplier(8, 4), "m2");
    const op_id a = g.add_operation(op_shape::adder(12), "a");
    g.add_dependency(m1, a);
    g.add_dependency(m2, a);
    return g;
}

TEST(Pareto, Fig1FrontierHasBothKnownDesigns)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    const auto frontier = pareto_sweep(g, model);
    ASSERT_GE(frontier.size(), 2u);
    // Fastest point: lambda_min design, area 188; a later point reaches
    // the shared-multiplier design at 156.
    EXPECT_EQ(frontier.front().latency, 5);
    EXPECT_DOUBLE_EQ(frontier.front().area, 188.0);
    EXPECT_DOUBLE_EQ(frontier.back().area, 156.0);
}

TEST(Pareto, FrontierIsStrictlyMonotone)
{
    const sonic_model model;
    const auto corpus = make_corpus(10, 5, model, 41);
    for (const corpus_entry& e : corpus) {
        const auto frontier = pareto_sweep(e.graph, model);
        ASSERT_FALSE(frontier.empty());
        for (std::size_t i = 1; i < frontier.size(); ++i) {
            EXPECT_GT(frontier[i].latency, frontier[i - 1].latency);
            EXPECT_LT(frontier[i].area, frontier[i - 1].area);
        }
    }
}

TEST(Pareto, EveryPointIsValidAtItsLambda)
{
    const sonic_model model;
    const auto corpus = make_corpus(8, 5, model, 43);
    for (const corpus_entry& e : corpus) {
        const auto frontier = pareto_sweep(e.graph, model);
        for (const pareto_point& p : frontier) {
            require_valid(e.graph, model, p.path, p.lambda);
            EXPECT_LE(p.latency, p.lambda);
            EXPECT_GE(p.lambda, e.lambda_min);
        }
    }
}

TEST(Pareto, FirstPointIsAtLambdaMin)
{
    const sonic_model model;
    const auto corpus = make_corpus(6, 5, model, 47);
    for (const corpus_entry& e : corpus) {
        const auto frontier = pareto_sweep(e.graph, model);
        EXPECT_EQ(frontier.front().lambda, e.lambda_min);
    }
}

TEST(Pareto, EmptyGraphYieldsEmptyFrontier)
{
    sequencing_graph g;
    const sonic_model model;
    EXPECT_TRUE(pareto_sweep(g, model).empty());
}

TEST(Pareto, ZeroSlackYieldsSinglePoint)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    pareto_options opts;
    opts.max_slack = 0.0;
    const auto frontier = pareto_sweep(g, model, opts);
    ASSERT_EQ(frontier.size(), 1u);
    EXPECT_EQ(frontier[0].lambda, 5);
}

TEST(Pareto, InvalidOptionsThrow)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    pareto_options opts;
    opts.max_slack = -0.5;
    EXPECT_THROW(static_cast<void>(pareto_sweep(g, model, opts)),
                 precondition_error);
    opts = {};
    opts.patience = 0;
    EXPECT_THROW(static_cast<void>(pareto_sweep(g, model, opts)),
                 precondition_error);
}

pareto_point make_point(int lambda, int latency, double area)
{
    pareto_point p;
    p.lambda = lambda;
    p.latency = latency;
    p.area = area;
    return p;
}

TEST(Pareto, MergeFrontiersDropsDominatedAndKeepsImprovements)
{
    std::vector<pareto_point> dst;
    frontier_insert(dst, make_point(5, 5, 188.0));
    std::vector<pareto_point> src;
    src.push_back(make_point(6, 6, 200.0)); // worse area: dropped
    src.push_back(make_point(8, 8, 156.0)); // improvement: kept
    merge_frontiers(dst, std::move(src));
    ASSERT_EQ(dst.size(), 2u);
    EXPECT_EQ(dst[0].lambda, 5);
    EXPECT_EQ(dst[1].lambda, 8);
    EXPECT_DOUBLE_EQ(dst[1].area, 156.0);
}

TEST(Pareto, MergeFrontiersReplacesEqualLatencyPredecessor)
{
    // The equal-latency edge case: a constraint relaxation that yields the
    // *same achieved latency* at lower area must replace its predecessor,
    // not sit beside it -- the frontier stays strictly monotone.
    std::vector<pareto_point> dst;
    frontier_insert(dst, make_point(5, 4, 100.0));
    std::vector<pareto_point> src;
    src.push_back(make_point(6, 4, 80.0)); // same latency, lower area
    merge_frontiers(dst, std::move(src));
    ASSERT_EQ(dst.size(), 1u);
    EXPECT_EQ(dst[0].lambda, 6);
    EXPECT_EQ(dst[0].latency, 4);
    EXPECT_DOUBLE_EQ(dst[0].area, 80.0);
}

TEST(Pareto, MergeFrontiersPopsEveryDominatedTailPoint)
{
    // One cheap slow point can dominate several faster predecessors.
    std::vector<pareto_point> dst;
    frontier_insert(dst, make_point(5, 5, 100.0));
    frontier_insert(dst, make_point(6, 6, 90.0));
    frontier_insert(dst, make_point(7, 7, 80.0));
    std::vector<pareto_point> src;
    src.push_back(make_point(9, 6, 40.0)); // dominates the last two
    merge_frontiers(dst, std::move(src));
    ASSERT_EQ(dst.size(), 2u);
    EXPECT_EQ(dst[0].lambda, 5);
    EXPECT_EQ(dst[1].lambda, 9);
    EXPECT_EQ(dst[1].latency, 6);
}

TEST(Pareto, FrontierAdmitsUsesStrictImprovementWithEpsilon)
{
    std::vector<pareto_point> frontier;
    EXPECT_TRUE(frontier_admits(frontier, 1e18)); // empty admits anything
    frontier_insert(frontier, make_point(5, 5, 100.0));
    EXPECT_FALSE(frontier_admits(frontier, 100.0));
    EXPECT_FALSE(frontier_admits(frontier, 100.0 - 1e-12)); // within eps
    EXPECT_TRUE(frontier_admits(frontier, 99.0));
}

// ---- property tests: frontier invariants over random streams / sweeps ----

/// Point `a` dominates `b`: no worse in both coordinates, better in one.
bool dominates(const pareto_point& a, const pareto_point& b)
{
    return a.latency <= b.latency &&
           a.area <= b.area + pareto_area_epsilon &&
           (a.latency < b.latency || a.area < b.area - pareto_area_epsilon);
}

void expect_frontier_invariants(const std::vector<pareto_point>& frontier)
{
    for (std::size_t i = 1; i < frontier.size(); ++i) {
        EXPECT_GT(frontier[i].lambda, frontier[i - 1].lambda);
        EXPECT_GT(frontier[i].latency, frontier[i - 1].latency);
        EXPECT_LT(frontier[i].area,
                  frontier[i - 1].area - pareto_area_epsilon);
    }
    for (std::size_t i = 0; i < frontier.size(); ++i) {
        for (std::size_t j = 0; j < frontier.size(); ++j) {
            if (i != j) {
                EXPECT_FALSE(dominates(frontier[i], frontier[j]))
                    << "frontier point " << i << " dominates " << j;
            }
        }
    }
}

/// A random sweep-shaped stream: lambdas strictly ascend, achieved latency
/// and area are arbitrary (the heuristic makes no promise per lambda).
std::vector<pareto_point> random_stream(rng& random)
{
    std::vector<pareto_point> stream;
    int lambda = random.uniform_int(1, 5);
    const std::size_t n = random.uniform(0, 40);
    for (std::size_t i = 0; i < n; ++i) {
        stream.push_back(make_point(
            lambda, random.uniform_int(1, 30),
            static_cast<double>(random.uniform_int(1, 400)) / 4.0));
        lambda += random.uniform_int(1, 3);
    }
    return stream;
}

std::vector<pareto_point> build_serial(
    const std::vector<pareto_point>& stream)
{
    std::vector<pareto_point> frontier;
    for (const pareto_point& p : stream) {
        if (frontier_admits(frontier, p.area)) {
            frontier_insert(frontier, p);
        }
    }
    return frontier;
}

TEST(ParetoProperty, SerialInsertionYieldsNoDominatedPoint)
{
    const std::uint64_t seed =
        mwl::testing::env_seed("MWL_PARETO_SEED", 0x9A12);
    MWL_TRACE_SEED("MWL_PARETO_SEED", seed);
    rng random(seed);
    for (int trial = 0; trial < 200; ++trial) {
        SCOPED_TRACE("trial " + std::to_string(trial));
        expect_frontier_invariants(build_serial(random_stream(random)));
    }
}

TEST(ParetoProperty, ChunkedMergeReproducesSerialInsertion)
{
    // The parallel sweep's correctness argument in miniature: partition a
    // stream into contiguous chunks, build each chunk's frontier
    // independently, and dominance-merge in order -- the result must be
    // byte-for-byte the serial frontier, for every random partition.
    const std::uint64_t seed =
        mwl::testing::env_seed("MWL_PARETO_SEED", 0x9A13);
    MWL_TRACE_SEED("MWL_PARETO_SEED", seed);
    rng random(seed);
    for (int trial = 0; trial < 200; ++trial) {
        SCOPED_TRACE("trial " + std::to_string(trial));
        const std::vector<pareto_point> stream = random_stream(random);
        const std::vector<pareto_point> serial = build_serial(stream);

        std::vector<pareto_point> merged;
        std::size_t at = 0;
        while (at < stream.size()) {
            const std::size_t len =
                random.uniform(1, stream.size() - at);
            const std::vector<pareto_point> chunk(
                stream.begin() + static_cast<std::ptrdiff_t>(at),
                stream.begin() + static_cast<std::ptrdiff_t>(at + len));
            merge_frontiers(merged, build_serial(chunk));
            at += len;
        }
        ASSERT_EQ(merged.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(merged[i].lambda, serial[i].lambda);
            EXPECT_EQ(merged[i].latency, serial[i].latency);
            EXPECT_DOUBLE_EQ(merged[i].area, serial[i].area);
        }
        expect_frontier_invariants(merged);
    }
}

TEST(ParetoProperty, RealSweepsSatisfyInvariantsAndMatchReconstruction)
{
    // End to end on real allocations: the sweep's frontier must (a) hold
    // the invariants, (b) equal the frontier rebuilt from per-lambda
    // dpalloc results through frontier_admits/frontier_insert alone.
    const std::uint64_t seed =
        mwl::testing::env_seed("MWL_PARETO_SEED", 0x9A14);
    MWL_TRACE_SEED("MWL_PARETO_SEED", seed);
    const sonic_model model;
    pareto_options opts;
    opts.max_slack = 0.3;
    opts.patience = 1 << 20; // no early stop: cover the whole range
    const auto corpus = make_corpus(9, 6, model, seed);
    for (const corpus_entry& e : corpus) {
        const auto frontier = pareto_sweep(e.graph, model, opts);
        expect_frontier_invariants(frontier);
        EXPECT_EQ(frontier.front().lambda, e.lambda_min);

        std::vector<pareto_point> rebuilt;
        const int lambda_max = static_cast<int>(std::ceil(
            static_cast<double>(e.lambda_min) * (1.0 + opts.max_slack)));
        for (int lambda = e.lambda_min; lambda <= lambda_max; ++lambda) {
            dpalloc_result r = dpalloc(e.graph, model, lambda);
            pareto_point p = make_point(lambda, r.path.latency,
                                        r.path.total_area);
            EXPECT_LE(p.latency, lambda);
            if (frontier_admits(rebuilt, p.area)) {
                frontier_insert(rebuilt, std::move(p));
            }
        }
        ASSERT_EQ(frontier.size(), rebuilt.size());
        for (std::size_t i = 0; i < frontier.size(); ++i) {
            EXPECT_EQ(frontier[i].lambda, rebuilt[i].lambda);
            EXPECT_EQ(frontier[i].latency, rebuilt[i].latency);
            EXPECT_DOUBLE_EQ(frontier[i].area, rebuilt[i].area);
        }
    }
}

TEST(Pareto, UniformModelFrontierIsSinglePointWhenNoTradeExists)
{
    // With uniform latencies there is no latency-for-area trade at all on
    // a serial chain: the frontier collapses.
    sequencing_graph g;
    op_id prev = g.add_operation(op_shape::adder(8));
    for (int i = 0; i < 3; ++i) {
        const op_id next = g.add_operation(op_shape::adder(8));
        g.add_dependency(prev, next);
        prev = next;
    }
    const uniform_latency_model model(2);
    const auto frontier = pareto_sweep(g, model);
    EXPECT_EQ(frontier.size(), 1u);
}

} // namespace
} // namespace mwl
