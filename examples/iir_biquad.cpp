// Multiple-wordlength IIR biquad cascade.
//
// A second realistic workload: two cascaded direct-form-I biquad sections.
// Feedback coefficients need more precision than feedforward ones, so the
// five multipliers of each section carry different wordlengths -- exactly
// the situation where a single uniform-wordlength multiplier bank wastes
// area. The example sweeps the latency constraint and shows how DPAlloc's
// resource set evolves from "everything parallel" to "a few big shared
// resources".
//
// Build & run:  ./build/examples/iir_biquad

#include "core/dpalloc.hpp"
#include "core/validate.hpp"
#include "dfg/analysis.hpp"
#include "model/hardware_model.hpp"
#include "report/table.hpp"

#include <iostream>
#include <map>
#include <string>
#include <vector>

namespace {

/// One direct-form-I biquad: y = b0*x + b1*x1 + b2*x2 - a1*y1 - a2*y2.
/// `in` is the op producing this section's input (invalid for the first
/// section); returns the op producing the section output.
mwl::op_id add_biquad(mwl::sequencing_graph& g, mwl::op_id in,
                      const std::string& prefix, int data_width,
                      int ff_width, int fb_width)
{
    using namespace mwl;
    // Five coefficient multipliers; feedback taps are wider.
    const op_id b0 = g.add_operation(
        op_shape::multiplier(data_width, ff_width), prefix + "b0");
    const op_id b1 = g.add_operation(
        op_shape::multiplier(data_width, ff_width), prefix + "b1");
    const op_id b2 = g.add_operation(
        op_shape::multiplier(data_width, ff_width - 2), prefix + "b2");
    const op_id a1 = g.add_operation(
        op_shape::multiplier(data_width, fb_width), prefix + "a1");
    const op_id a2 = g.add_operation(
        op_shape::multiplier(data_width, fb_width - 2), prefix + "a2");
    if (in.is_valid()) {
        // The section input feeds the feedforward multipliers.
        g.add_dependency(in, b0);
        g.add_dependency(in, b1);
        g.add_dependency(in, b2);
    }
    // Accumulation tree.
    const op_id s1 = g.add_operation(op_shape::adder(data_width + 2),
                                     prefix + "s1");
    const op_id s2 = g.add_operation(op_shape::adder(data_width + 2),
                                     prefix + "s2");
    const op_id s3 = g.add_operation(op_shape::adder(data_width + 3),
                                     prefix + "s3");
    const op_id s4 = g.add_operation(op_shape::adder(data_width + 3),
                                     prefix + "s4");
    g.add_dependency(b0, s1);
    g.add_dependency(b1, s1);
    g.add_dependency(b2, s2);
    g.add_dependency(a1, s2);
    g.add_dependency(s1, s3);
    g.add_dependency(s2, s3);
    g.add_dependency(a2, s4);
    g.add_dependency(s3, s4);
    return s4;
}

} // namespace

int main()
{
    using namespace mwl;

    sequencing_graph graph;
    const op_id out1 =
        add_biquad(graph, op_id::invalid(), "s1_", 12, 10, 14);
    const op_id out2 = add_biquad(graph, out1, "s2_", 12, 8, 12);
    static_cast<void>(out2);

    const sonic_model model;
    const int lambda_min = min_latency(graph, model);
    std::cout << "2-section multiple-wordlength biquad cascade: "
              << graph.size() << " operations, lambda_min = " << lambda_min
              << " cycles\n\n";

    table t("IIR cascade: DPAlloc area and resource mix vs lambda");
    t.header({"lambda", "area", "#instances", "resource mix"});
    for (int lambda = lambda_min; lambda <= lambda_min + 8; lambda += 2) {
        const dpalloc_result r = dpalloc(graph, model, lambda);
        require_valid(graph, model, r.path, lambda);
        std::map<std::string, int> mix;
        for (const datapath_instance& inst : r.path.instances) {
            ++mix[inst.shape.to_string()];
        }
        std::string mix_text;
        for (const auto& [shape, count] : mix) {
            if (!mix_text.empty()) {
                mix_text += ' ';
            }
            mix_text += std::to_string(count) + "x" + shape;
        }
        t.row({table::num(lambda), table::num(r.path.total_area, 0),
               table::num(static_cast<int>(r.path.instances.size())),
               mix_text});
    }
    t.print(std::cout);

    std::cout << "\nEvery row is validator-checked; larger lambda lets the\n"
                 "allocator fold small multipliers into big ones.\n";
    return 0;
}
