#include "serve/protocol.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <limits>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

namespace mwl::serve {

namespace {

constexpr char frame_magic[4] = {'M', 'W', 'L', '1'};

/// Read exactly `n` bytes unless the stream ends first; returns the
/// number of bytes actually read (EINTR retried).
std::size_t read_exact(int fd, char* buffer, std::size_t n)
{
    std::size_t got = 0;
    while (got < n) {
        const ssize_t r = ::read(fd, buffer + got, n - got);
        if (r < 0) {
            if (errno == EINTR) {
                continue;
            }
            return got;
        }
        if (r == 0) {
            return got;
        }
        got += static_cast<std::size_t>(r);
    }
    return got;
}

} // namespace

const char* to_string(frame_status status)
{
    switch (status) {
    case frame_status::ok: return "ok";
    case frame_status::eof: return "eof";
    case frame_status::truncated: return "truncated";
    case frame_status::malformed: return "malformed";
    case frame_status::oversized: return "oversized";
    }
    return "?";
}

frame_status read_frame(int fd, std::string& payload,
                        std::size_t max_payload)
{
    char header[frame_header_bytes];
    const std::size_t got = read_exact(fd, header, sizeof header);
    if (got == 0) {
        return frame_status::eof;
    }
    if (got < sizeof header) {
        return frame_status::truncated;
    }
    if (std::memcmp(header, frame_magic, sizeof frame_magic) != 0) {
        return frame_status::malformed;
    }
    const auto b = [&](int i) {
        return static_cast<std::uint32_t>(
            static_cast<unsigned char>(header[4 + i]));
    };
    const std::uint32_t length = (b(0) << 24) | (b(1) << 16) | (b(2) << 8) |
                                 b(3);
    if (length > max_payload) {
        return frame_status::oversized;
    }
    payload.resize(length);
    if (read_exact(fd, payload.data(), length) < length) {
        return frame_status::truncated;
    }
    return frame_status::ok;
}

bool write_frame(int fd, std::string_view payload)
{
    std::string frame;
    frame.reserve(frame_header_bytes + payload.size());
    frame.append(frame_magic, sizeof frame_magic);
    const auto length = static_cast<std::uint32_t>(payload.size());
    frame.push_back(static_cast<char>((length >> 24) & 0xff));
    frame.push_back(static_cast<char>((length >> 16) & 0xff));
    frame.push_back(static_cast<char>((length >> 8) & 0xff));
    frame.push_back(static_cast<char>(length & 0xff));
    frame.append(payload);

    std::size_t sent = 0;
    while (sent < frame.size()) {
        // MSG_NOSIGNAL: a response racing a client disconnect must fail
        // with EPIPE, not kill the server. Falls back to write() for
        // non-socket fds (protocol unit tests over pipes).
        ssize_t w = ::send(fd, frame.data() + sent, frame.size() - sent,
                           MSG_NOSIGNAL);
        if (w < 0 && errno == ENOTSOCK) {
            w = ::write(fd, frame.data() + sent, frame.size() - sent);
        }
        if (w < 0) {
            if (errno == EINTR) {
                continue;
            }
            return false;
        }
        sent += static_cast<std::size_t>(w);
    }
    return true;
}

// --------------------------------------------------------------- grammar --

namespace {

[[noreturn]] void bad(const std::string& message)
{
    throw protocol_error(message);
}

/// Split "key=value"; returns false when `token` has no '='.
bool split_kv(const std::string& token, std::string& key, std::string& value)
{
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
        return false;
    }
    key = token.substr(0, eq);
    value = token.substr(eq + 1);
    return true;
}

std::uint64_t parse_u64(const std::string& token, const std::string& value)
{
    try {
        if (value.empty() || value[0] == '-') {
            throw std::invalid_argument(value);
        }
        return std::stoull(value);
    } catch (const std::exception&) {
        bad("bad numeric value in '" + token + "'");
    }
}

long parse_long(const std::string& token, const std::string& value)
{
    try {
        std::size_t used = 0;
        const long parsed = std::stol(value, &used);
        if (used != value.size()) {
            throw std::invalid_argument(value);
        }
        return parsed;
    } catch (const std::exception&) {
        bad("bad numeric value in '" + token + "'");
    }
}

/// `parse_long` + an explicit int range check: a value like
/// retry-after-ms=99999999999 parses as a long on LP64, so an unchecked
/// `static_cast<int>` would silently truncate it to garbage. Out-of-range
/// is a malformed frame, same as an unparseable one.
int parse_int(const std::string& token, const std::string& value)
{
    const long parsed = parse_long(token, value);
    if (parsed < std::numeric_limits<int>::min() ||
        parsed > std::numeric_limits<int>::max()) {
        bad("numeric value out of range in '" + token + "'");
    }
    return static_cast<int>(parsed);
}

double parse_double(const std::string& token, const std::string& value)
{
    try {
        std::size_t used = 0;
        const double parsed = std::stod(value, &used);
        if (used != value.size()) {
            throw std::invalid_argument(value);
        }
        return parsed;
    } catch (const std::exception&) {
        bad("bad numeric value in '" + token + "'");
    }
}

/// First line of the payload as tokens, plus the body after it.
std::vector<std::string> split_header(const std::string& payload,
                                      std::string& body)
{
    const std::size_t newline = payload.find('\n');
    const std::string header = payload.substr(0, newline);
    body = newline == std::string::npos ? std::string()
                                        : payload.substr(newline + 1);
    std::vector<std::string> tokens;
    std::istringstream in(header);
    std::string token;
    while (in >> token) {
        tokens.push_back(token);
    }
    return tokens;
}

/// Doubles survive the wire bit-exactly: shortest round-trip formatting.
std::string wire_double(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    return buffer;
}

} // namespace

request parse_request(const std::string& payload)
{
    std::string body;
    const std::vector<std::string> tokens = split_header(payload, body);
    if (tokens.empty()) {
        bad("empty request");
    }
    request r;
    if (tokens[0] == "alloc") {
        r.what = request::kind::alloc;
    } else if (tokens[0] == "stats") {
        r.what = request::kind::stats;
    } else if (tokens[0] == "ping") {
        r.what = request::kind::ping;
    } else {
        bad("unknown request verb '" + tokens[0] + "'");
    }
    bool have_lambda = false;
    bool have_slack = false;
    for (std::size_t i = 1; i < tokens.size(); ++i) {
        std::string key;
        std::string value;
        if (!split_kv(tokens[i], key, value)) {
            bad("unknown request token '" + tokens[i] + "'");
        }
        if (key == "id") {
            r.id = parse_u64(tokens[i], value);
        } else if (key == "lambda" && r.what == request::kind::alloc) {
            r.lambda = parse_int(tokens[i], value);
            have_lambda = true;
        } else if (key == "slack" && r.what == request::kind::alloc) {
            r.slack = parse_double(tokens[i], value) / 100.0;
            if (r.slack < 0.0) {
                bad("slack must be non-negative");
            }
            have_slack = true;
        } else {
            bad("unknown request token '" + tokens[i] + "'");
        }
    }
    if (have_lambda && have_slack) {
        bad("lambda= and slack= are mutually exclusive");
    }
    if (r.what == request::kind::alloc) {
        r.graph_text = std::move(body);
    }
    return r;
}

std::string format_alloc_request(std::uint64_t id, std::optional<int> lambda,
                                 double slack, std::string_view graph_text)
{
    std::ostringstream out;
    out << "alloc id=" << id;
    if (lambda) {
        out << " lambda=" << *lambda;
    } else if (slack != 0.0) {
        out << " slack=" << wire_double(slack * 100.0);
    }
    out << '\n' << graph_text;
    return out.str();
}

std::string format_stats_request(std::uint64_t id)
{
    return "stats id=" + std::to_string(id);
}

std::string format_ping_request(std::uint64_t id)
{
    return "ping id=" + std::to_string(id);
}

std::string format_response(const response& r)
{
    std::ostringstream out;
    switch (r.what) {
    case response::status::ok:
        out << "ok id=" << r.id;
        if (r.body.empty()) {
            out << " lambda=" << r.lambda << " latency=" << r.latency
                << " area=" << wire_double(r.area)
                << " cached=" << (r.cached ? 1 : 0)
                << " coalesced=" << (r.coalesced ? 1 : 0)
                << " micros=" << wire_double(r.micros);
        } else {
            out << '\n' << r.body;
        }
        break;
    case response::status::busy:
        out << "busy id=" << r.id << " retry-after-ms=" << r.retry_after_ms;
        break;
    case response::status::error:
        out << "error id=" << r.id << ' ' << r.message;
        break;
    }
    return out.str();
}

response parse_response(const std::string& payload)
{
    std::string body;
    const std::vector<std::string> tokens = split_header(payload, body);
    if (tokens.empty()) {
        bad("empty response");
    }
    response r;
    if (tokens[0] == "ok") {
        r.what = response::status::ok;
    } else if (tokens[0] == "busy") {
        r.what = response::status::busy;
    } else if (tokens[0] == "error") {
        r.what = response::status::error;
    } else {
        bad("unknown response verb '" + tokens[0] + "'");
    }
    r.body = std::move(body);
    for (std::size_t i = 1; i < tokens.size(); ++i) {
        std::string key;
        std::string value;
        if (!split_kv(tokens[i], key, value)) {
            if (r.what == response::status::error) {
                // The error message is free text: everything from this
                // token to the end of the header line.
                std::string message = tokens[i];
                for (std::size_t j = i + 1; j < tokens.size(); ++j) {
                    message += ' ';
                    message += tokens[j];
                }
                r.message = std::move(message);
                break;
            }
            bad("unknown response token '" + tokens[i] + "'");
        }
        if (key == "id") {
            r.id = parse_u64(tokens[i], value);
        } else if (key == "lambda") {
            r.lambda = parse_int(tokens[i], value);
        } else if (key == "latency") {
            r.latency = parse_int(tokens[i], value);
        } else if (key == "area") {
            r.area = parse_double(tokens[i], value);
        } else if (key == "cached") {
            r.cached = parse_long(tokens[i], value) != 0;
        } else if (key == "coalesced") {
            r.coalesced = parse_long(tokens[i], value) != 0;
        } else if (key == "micros") {
            r.micros = parse_double(tokens[i], value);
        } else if (key == "retry-after-ms") {
            r.retry_after_ms = parse_int(tokens[i], value);
        } else if (r.what == response::status::error) {
            // A message that happens to contain '=': treat as free text.
            r.message = tokens[i];
            for (std::size_t j = i + 1; j < tokens.size(); ++j) {
                r.message += ' ';
                r.message += tokens[j];
            }
            break;
        } else {
            bad("unknown response token '" + tokens[i] + "'");
        }
    }
    return r;
}

} // namespace mwl::serve
