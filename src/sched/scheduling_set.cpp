#include "sched/scheduling_set.hpp"

#include "support/error.hpp"

#include <algorithm>
#include <cstdint>

namespace mwl {
namespace {

// Fixed-width dynamic bitset over 64-bit words, just big enough for |O|.
class bitset64 {
public:
    explicit bitset64(std::size_t bits)
        : bits_(bits), words_((bits + 63) / 64, 0)
    {
    }

    void set(std::size_t i) { words_[i / 64] |= (std::uint64_t{1} << (i % 64)); }

    [[nodiscard]] bool test(std::size_t i) const
    {
        return (words_[i / 64] >> (i % 64)) & 1;
    }

    [[nodiscard]] std::size_t count() const
    {
        std::size_t total = 0;
        for (const std::uint64_t w : words_) {
            total += static_cast<std::size_t>(__builtin_popcountll(w));
        }
        return total;
    }

    [[nodiscard]] bool all_set() const
    {
        std::size_t remaining = bits_;
        for (const std::uint64_t w : words_) {
            const std::size_t in_word = std::min<std::size_t>(remaining, 64);
            const std::uint64_t full =
                in_word == 64 ? ~std::uint64_t{0}
                              : ((std::uint64_t{1} << in_word) - 1);
            if ((w & full) != full) {
                return false;
            }
            remaining -= in_word;
        }
        return true;
    }

    /// Index of the first zero bit, or bits_ if none. Word-at-a-time: skip
    /// saturated words, then count trailing ones of the first open word.
    [[nodiscard]] std::size_t first_unset() const
    {
        for (std::size_t w = 0; w < words_.size(); ++w) {
            if (words_[w] == ~std::uint64_t{0}) {
                continue;
            }
            const std::size_t i =
                w * 64 + static_cast<std::size_t>(
                             __builtin_ctzll(~words_[w]));
            // Bits past bits_ in the last word are stored as zero, so the
            // scan can land there; that means every real bit is set.
            return std::min(i, bits_);
        }
        return bits_;
    }

    [[nodiscard]] std::size_t size() const { return bits_; }
    [[nodiscard]] std::size_t word_count() const { return words_.size(); }
    [[nodiscard]] const std::uint64_t* words() const { return words_.data(); }

    void or_with_words(const std::uint64_t* other)
    {
        for (std::size_t i = 0; i < words_.size(); ++i) {
            words_[i] |= other[i];
        }
    }

private:
    std::size_t bits_;
    std::vector<std::uint64_t> words_;
};

// -- raw word-span coverage helpers ------------------------------------
//
// Candidate coverage rows live in one flat arena (candidate_pool below)
// instead of per-candidate heap bitsets: building and pairwise-scanning
// them is the dominant cost of a cover query, and the arena removes every
// per-candidate allocation while keeping rows contiguous for the
// domination scan.

bool words_subset(const std::uint64_t* a, const std::uint64_t* b,
                  std::size_t w)
{
    for (std::size_t i = 0; i < w; ++i) {
        if ((a[i] & ~b[i]) != 0) {
            return false;
        }
    }
    return true;
}

std::size_t words_count_minus(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t w)
{
    std::size_t total = 0;
    for (std::size_t i = 0; i < w; ++i) {
        total += static_cast<std::size_t>(__builtin_popcountll(a[i] & ~b[i]));
    }
    return total;
}

struct candidate {
    res_id id;
    double area = 0.0;
    std::size_t count = 0;         ///< popcount of the coverage row
    const std::uint64_t* cov = nullptr; ///< row in the candidate_pool arena
};

std::vector<std::size_t> greedy_cover(const std::vector<candidate>& cands,
                                      std::size_t universe)
{
    bitset64 covered(universe);
    const std::size_t w = covered.word_count();
    std::vector<std::size_t> chosen;
    while (!covered.all_set()) {
        std::size_t best = cands.size();
        std::size_t best_gain = 0;
        for (std::size_t i = 0; i < cands.size(); ++i) {
            const std::size_t gain =
                words_count_minus(cands[i].cov, covered.words(), w);
            const bool better =
                gain > best_gain ||
                (gain == best_gain && gain > 0 && best < cands.size() &&
                 cands[i].area < cands[best].area);
            if (better) {
                best = i;
                best_gain = gain;
            }
        }
        MWL_ASSERT(best < cands.size() && best_gain > 0);
        chosen.push_back(best);
        covered.or_with_words(cands[best].cov);
    }
    return chosen;
}

struct search_state {
    const std::vector<candidate>* cands = nullptr;
    // (*covers_of_op)[o]: candidate indices covering operation o. Points
    // at the caller's reusable workspace when one is supplied.
    std::vector<std::vector<std::size_t>> covers_local;
    std::vector<std::vector<std::size_t>>* covers_of_op = &covers_local;
    std::size_t max_set_size = 1;
    std::size_t node_cap = 0;
    std::size_t nodes = 0;
    bool capped = false;
    // Warm-start prune bound: a cover of this size is known to exist (the
    // previous iteration's optimum, if it still covers). Used ONLY to
    // prune, never as a returned solution, so the search still reports its
    // own first optimal cover in DFS order -- identical to a cold run
    // whenever the node cap is not hit (see PERF.md).
    std::size_t known_cover_size = static_cast<std::size_t>(-1);
    std::vector<std::size_t> best;
    std::vector<std::size_t> current;
};

void branch(search_state& st, const bitset64& covered)
{
    if (++st.nodes > st.node_cap) {
        st.capped = true;
        return;
    }
    if (covered.all_set()) {
        if (st.current.size() < st.best.size()) {
            st.best = st.current;
        }
        return;
    }
    // Lower bound: every chosen set covers at most max_set_size elements.
    const std::size_t uncovered = covered.size() - covered.count();
    const std::size_t lower =
        (uncovered + st.max_set_size - 1) / st.max_set_size;
    std::size_t prune_limit = st.best.size();
    if (st.known_cover_size != static_cast<std::size_t>(-1)) {
        prune_limit = std::min(prune_limit, st.known_cover_size + 1);
    }
    if (st.current.size() + lower >= prune_limit) {
        return;
    }

    // Branch on the uncovered operation with the fewest remaining covers:
    // smallest branching factor first.
    std::size_t pivot = covered.size();
    std::size_t pivot_options = static_cast<std::size_t>(-1);
    for (std::size_t o = 0; o < covered.size(); ++o) {
        if (covered.test(o)) {
            continue;
        }
        if ((*st.covers_of_op)[o].size() < pivot_options) {
            pivot = o;
            pivot_options = (*st.covers_of_op)[o].size();
        }
    }
    MWL_ASSERT(pivot < covered.size());

    for (const std::size_t ci : (*st.covers_of_op)[pivot]) {
        bitset64 next = covered;
        next.or_with_words((*st.cands)[ci].cov);
        st.current.push_back(ci);
        branch(st, next);
        st.current.pop_back();
        if (st.capped) {
            return;
        }
    }
}

/// True iff `members` still covers every operation under the current H
/// edges of `wcg`. O(sum |O(r)|) -- one bitset union, no search.
bool still_covers(const wordlength_compatibility_graph& wcg,
                  const std::vector<res_id>& members)
{
    const std::size_t n_ops = wcg.graph().size();
    bitset64 covered(n_ops);
    for (const res_id r : members) {
        for (const op_id o : wcg.ops_for(r)) {
            covered.set(o.value());
        }
    }
    return covered.all_set();
}

scheduling_set_result
min_scheduling_set_impl(const wordlength_compatibility_graph& wcg,
                        std::size_t node_cap, std::size_t known_cover_size,
                        scheduling_set_cache* ws)
{
    const std::size_t n_ops = wcg.graph().size();
    scheduling_set_result result;
    if (n_ops == 0) {
        return result;
    }

    // Build candidates in one flat coverage arena, dropping resources
    // whose coverage is dominated by another resource (subset coverage).
    // For equal coverage keep the smaller-area resource; ties broken on
    // res_id for determinism.
    const std::size_t w = (n_ops + 63) / 64;
    std::size_t n_cands = 0;
    for (const res_id r : wcg.all_resources()) {
        n_cands += wcg.ops_for(r).empty() ? 0 : 1;
    }
    std::vector<std::uint64_t> local_pool;
    std::vector<std::uint64_t>& candidate_pool = ws ? ws->pool_ws : local_pool;
    candidate_pool.assign(n_cands * w, 0);
    std::vector<candidate> cands;
    cands.reserve(n_cands);
    for (const res_id r : wcg.all_resources()) {
        const auto ops = wcg.ops_for(r);
        if (ops.empty()) {
            continue;
        }
        std::uint64_t* const row = candidate_pool.data() + cands.size() * w;
        for (const op_id o : ops) {
            row[o.value() / 64] |= std::uint64_t{1} << (o.value() % 64);
        }
        cands.push_back(candidate{r, wcg.area(r), ops.size(), row});
    }

    // A candidate is dominated iff some live (non-dominated) candidate
    // contains its coverage -- strictly, or equally with a better
    // (area, id) tie-break. Any dominator has >= count, and an equal-count
    // dominator has equal coverage and a better tie-break, so processing
    // candidates in (count desc, area asc, id asc) order makes every
    // potential dominator precede its victims and makes liveness
    // prefix-stable: each candidate needs testing against the live list
    // only, not all pairs.
    std::vector<bool> dominated(cands.size(), false);
    std::vector<std::size_t> by_count(cands.size());
    for (std::size_t i = 0; i < cands.size(); ++i) {
        by_count[i] = i;
    }
    std::sort(by_count.begin(), by_count.end(),
              [&](std::size_t a, std::size_t b) {
                  if (cands[a].count != cands[b].count) {
                      return cands[a].count > cands[b].count;
                  }
                  if (cands[a].area != cands[b].area) {
                      return cands[a].area < cands[b].area;
                  }
                  return cands[a].id < cands[b].id;
              });
    std::vector<std::size_t> live;
    live.reserve(cands.size());
    for (const std::size_t i : by_count) {
        for (const std::size_t j : live) {
            if (words_subset(cands[i].cov, cands[j].cov, w)) {
                dominated[i] = true;
                break;
            }
        }
        if (!dominated[i]) {
            live.push_back(i);
        }
    }
    std::vector<candidate> kept;
    for (std::size_t i = 0; i < cands.size(); ++i) {
        if (!dominated[i]) {
            kept.push_back(cands[i]);
        }
    }

    // Every operation retains at least one H edge, so a cover exists.
    search_state st;
    st.cands = &kept;
    st.node_cap = node_cap;
    st.known_cover_size = known_cover_size;
    if (ws) {
        st.covers_of_op = &ws->covers_ws;
    }
    st.covers_of_op->resize(
        std::max(st.covers_of_op->size(), n_ops));
    for (std::size_t o = 0; o < n_ops; ++o) {
        (*st.covers_of_op)[o].clear();
    }
    for (std::size_t ci = 0; ci < kept.size(); ++ci) {
        st.max_set_size = std::max(st.max_set_size, kept[ci].count);
        for (const op_id o : wcg.ops_for(kept[ci].id)) {
            (*st.covers_of_op)[o.value()].push_back(ci);
        }
    }
    for (std::size_t o = 0; o < n_ops; ++o) {
        auto& covers = (*st.covers_of_op)[o];
        MWL_ASSERT(!covers.empty());
        // Try large sets first: finds good covers early, improving pruning.
        std::sort(covers.begin(), covers.end(),
                  [&](std::size_t a, std::size_t b) {
                      return kept[a].count > kept[b].count;
                  });
    }

    st.best = greedy_cover(kept, n_ops);
    branch(st, bitset64(n_ops));

    result.proven_minimum = !st.capped;
    result.members.reserve(st.best.size());
    for (const std::size_t ci : st.best) {
        result.members.push_back(kept[ci].id);
    }
    std::sort(result.members.begin(), result.members.end());
    return result;
}

} // namespace

scheduling_set_result
min_scheduling_set(const wordlength_compatibility_graph& wcg,
                   std::size_t node_cap)
{
    return min_scheduling_set_impl(wcg, node_cap,
                                   static_cast<std::size_t>(-1), nullptr);
}

scheduling_set_result
min_scheduling_set(const wordlength_compatibility_graph& wcg,
                   scheduling_set_cache& cache, std::size_t node_cap)
{
    // A hit requires the same graph instance and node cap too: edge
    // versions are per-WCG counters, and a result computed under a
    // different cap may be capped (or proven) differently than asked for.
    if (cache.valid && cache.owner == &wcg &&
        cache.edge_version == wcg.edge_version() &&
        cache.node_cap == node_cap) {
        return cache.result;
    }

    // H changed since the cached cover was computed. If the old optimum is
    // still a cover (refinement can only shrink coverage sets, so it often
    // is not), its size bounds the new optimum from above and tightens the
    // branch-and-bound pruning.
    std::size_t known = static_cast<std::size_t>(-1);
    if (cache.valid && cache.owner == &wcg &&
        still_covers(wcg, cache.result.members)) {
        known = cache.result.members.size();
    }

    cache.result = min_scheduling_set_impl(wcg, node_cap, known, &cache);
    if (known != static_cast<std::size_t>(-1) &&
        !cache.result.proven_minimum) {
        // The warm-pruned search hit the node cap. A capped warm search
        // implies the cold search caps too (warm visits a subset of its
        // nodes), but the two would spend the budget differently and stop
        // on different covers; rerun cold so the cached path returns
        // exactly what the cold overload would.
        cache.result = min_scheduling_set_impl(
            wcg, node_cap, static_cast<std::size_t>(-1), &cache);
    }
    cache.owner = &wcg;
    cache.edge_version = wcg.edge_version();
    cache.node_cap = node_cap;
    cache.valid = true;
    return cache.result;
}

} // namespace mwl
