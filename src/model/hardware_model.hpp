// Hardware latency/area models.
//
// The paper's evaluation targets the SONIC reconfigurable computing platform
// [12]: every adder takes 2 cycles regardless of wordlength, and an n x m-bit
// multiplier takes ceil((n+m)/8) cycles at the platform clock rate. Area is
// "the area model presented in [5]"; the Electronics Letters text is not
// available, so this reproduction uses the LUT-proportional model standard in
// the same authors' line of work (area(add, n) = n, area(mul, n, m) = n*m)
// and keeps the whole model *pluggable* behind `hardware_model` (see
// DESIGN.md section 7, substitution 2 -- every reproduced result is an area
// ratio under a common model, so the shape of the results is preserved by
// any monotone wordlength-proportional model).

#ifndef MWL_MODEL_HARDWARE_MODEL_HPP
#define MWL_MODEL_HARDWARE_MODEL_HPP

#include "model/op_shape.hpp"

#include <cstdint>

namespace mwl {

/// Abstract latency/area model. A shape serves both as "operation executed
/// at its native wordlength" and as "resource-wordlength type", so one
/// function of shape suffices for each quantity.
class hardware_model {
public:
    virtual ~hardware_model() = default;

    hardware_model();
    hardware_model(const hardware_model&) = delete;
    hardware_model& operator=(const hardware_model&) = delete;

    /// Latency in control steps of a resource of shape `shape`; always >= 1.
    [[nodiscard]] virtual int latency(const op_shape& shape) const = 0;

    /// Area in model units of a resource of shape `shape`; always > 0.
    [[nodiscard]] virtual double area(const op_shape& shape) const = 0;

    /// Stable content fingerprint used by the batch engine (src/engine/) to
    /// key its result cache: equal fingerprints MUST imply identical
    /// latency() and area() on every shape. The default hashes a
    /// never-reused per-object serial number (not the address, which a
    /// later allocation could recycle while the cache still holds the old
    /// model's results) -- always sound, never shared across instances --
    /// so custom models are cache-correct without writing anything;
    /// override it (as the built-in models do) to let equal-parameter
    /// instances share cached results across runs of a service.
    [[nodiscard]] virtual std::uint64_t fingerprint() const;

private:
    std::uint64_t serial_; ///< process-unique, assigned at construction
};

/// SONIC-derived model used throughout the paper's evaluation.
class sonic_model final : public hardware_model {
public:
    /// `adder_latency`: cycles for any adder (paper: 2).
    /// `mul_bits_per_cycle`: divisor in ceil((n+m)/divisor) (paper: 8).
    explicit sonic_model(int adder_latency = 2, int mul_bits_per_cycle = 8);

    [[nodiscard]] int latency(const op_shape& shape) const override;
    [[nodiscard]] double area(const op_shape& shape) const override;
    [[nodiscard]] std::uint64_t fingerprint() const override;

private:
    int adder_latency_;
    int mul_bits_per_cycle_;
};

/// Degenerate model in which every resource has the same latency; with it the
/// multiple-wordlength scheduling problem collapses onto classic list
/// scheduling. Used by tests and by the ablation benches as a control.
class uniform_latency_model final : public hardware_model {
public:
    explicit uniform_latency_model(int latency = 1);

    [[nodiscard]] int latency(const op_shape& shape) const override;
    [[nodiscard]] double area(const op_shape& shape) const override;
    [[nodiscard]] std::uint64_t fingerprint() const override;

private:
    int latency_;
};

} // namespace mwl

#endif // MWL_MODEL_HARDWARE_MODEL_HPP
