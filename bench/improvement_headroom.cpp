// Extension bench: how much area does DPAlloc's "first feasible solution"
// policy leave on the table?
//
// For each corpus point, run DPAlloc, then the validator-driven local
// search (src/improve) on its output, and report the mean relative area
// saving. Small numbers mean the paper's one-shot heuristic already sits
// near a local optimum of the move neighbourhood; large numbers would
// justify a smarter stopping rule.

#include "bench_common.hpp"
#include "core/dpalloc.hpp"
#include "improve/local_search.hpp"
#include "support/stats.hpp"
#include "tgff/corpus.hpp"

#include <iostream>
#include <vector>

int main(int argc, char** argv)
{
    using namespace mwl;
    const bench::bench_options opt =
        bench::parse_options(argc, argv, "improvement_headroom");
    const std::size_t max_size = opt.max_size == 0 ? 20 : opt.max_size;

    const sonic_model model;
    table t("Local-search headroom over DPAlloc (mean area saving, %)");
    t.header({"|O|", "slack 0%", "slack 15%", "slack 30%"});

    for (std::size_t n = 4; n <= max_size; n += 4) {
        std::vector<std::string> row{table::num(static_cast<int>(n))};
        for (const double slack : {0.0, 0.15, 0.30}) {
            const auto corpus = make_corpus(n, opt.graphs, model, opt.seed);
            std::vector<double> savings;
            for (const corpus_entry& e : corpus) {
                const int lambda = relaxed_lambda(e.lambda_min, slack);
                const dpalloc_result seed = dpalloc(e.graph, model, lambda);
                const improve_result better =
                    improve_datapath(e.graph, model, seed.path, lambda);
                savings.push_back(better.area_saved /
                                  seed.path.total_area * 100.0);
            }
            row.push_back(table::num(mean(savings), 1));
        }
        t.row(std::move(row));
    }
    bench::emit(t, opt);
    std::cout << "\n(0% everywhere would mean DPAlloc's first feasible"
                 " solution is already locally optimal\n under downsize/"
                 "rebind/compaction moves)\n";
    return 0;
}
