// Area/latency design-space exploration.
//
// The latency constraint is the designer's knob: sweeping lambda from
// lambda_min upward and keeping the non-dominated (latency, area) points
// yields the trade-off curve a designer actually chooses from (the
// examples print fragments of it by hand). The sweep stops early once the
// area reaches the unconstrained lower bound for the allocator -- the
// point past which more slack cannot help.

#ifndef MWL_CORE_PARETO_HPP
#define MWL_CORE_PARETO_HPP

#include "core/dpalloc.hpp"

#include <vector>

namespace mwl {

struct pareto_point {
    int lambda = 0;      ///< constraint that produced the design
    int latency = 0;     ///< achieved latency (<= lambda)
    double area = 0.0;
    datapath path;
};

struct pareto_options {
    /// Sweep upper bound as a multiple of lambda_min (inclusive).
    double max_slack = 1.0;
    /// Stop early after this many consecutive non-improving lambdas.
    int patience = 8;
    dpalloc_options allocator;
};

/// Non-dominated (latency, area) allocations for lambda in
/// [lambda_min, ceil(lambda_min * (1 + max_slack))], ascending latency,
/// strictly descending area. Never empty for a non-empty graph.
[[nodiscard]] std::vector<pareto_point> pareto_sweep(
    const sequencing_graph& graph, const hardware_model& model,
    const pareto_options& options = {});

} // namespace mwl

#endif // MWL_CORE_PARETO_HPP
