#include "sched/incomplete_scheduler.hpp"

#include "dfg/analysis.hpp"
#include "sched/priorities.hpp"
#include "support/error.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>

namespace mwl {
namespace {

/// Reference placement loop: the original per-step full-graph ready rescan.
/// Kept verbatim for the regression tests and the before/after bench; the
/// production path is the event engine below.
void reference_scan_pass(
    const sequencing_graph& graph, std::span<const int> upper,
    std::span<const int> priority,
    const std::vector<std::vector<std::size_t>>& members_of_op,
    std::span<std::int64_t> usage, int horizon, std::int64_t scale,
    std::int64_t budget, std::vector<int>& start)
{
    const auto usage_row = [&](std::size_t mi) {
        return usage.subspan(mi * static_cast<std::size_t>(horizon),
                             static_cast<std::size_t>(horizon));
    };
    std::size_t scheduled = 0;
    for (int t = 0; scheduled < graph.size(); ++t) {
        MWL_ASSERT(t < horizon);
        std::vector<op_id> ready;
        for (const op_id o : graph.all_ops()) {
            if (start[o.value()] >= 0) {
                continue;
            }
            bool ok = true;
            for (const op_id p : graph.predecessors(o)) {
                const int ps = start[p.value()];
                if (ps < 0 || ps + upper[p.value()] > t) {
                    ok = false;
                    break;
                }
            }
            if (ok) {
                ready.push_back(o);
            }
        }
        std::sort(ready.begin(), ready.end(), [&](op_id a, op_id b) {
            if (priority[a.value()] != priority[b.value()]) {
                return priority[a.value()] > priority[b.value()];
            }
            return a < b;
        });

        for (const op_id o : ready) {
            const auto& members = members_of_op[o.value()];
            const std::int64_t share =
                scale / static_cast<std::int64_t>(members.size());
            const int lat = upper[o.value()];
            bool fits = true;
            for (const std::size_t mi : members) {
                const auto row = usage_row(mi);
                for (int u = t; u < t + lat && fits; ++u) {
                    fits = row[static_cast<std::size_t>(u)] + share <= budget;
                }
                if (!fits) {
                    break;
                }
            }
            if (!fits) {
                continue;
            }
            start[o.value()] = t;
            ++scheduled;
            for (const std::size_t mi : members) {
                const auto row = usage_row(mi);
                for (int u = t; u < t + lat; ++u) {
                    row[static_cast<std::size_t>(u)] += share;
                }
            }
        }
    }
}

} // namespace

incomplete_schedule_result schedule_incomplete(
    const wordlength_compatibility_graph& wcg, int capacity,
    incomplete_sched_scratch* scratch, sched_engine engine)
{
    require(capacity >= 1, "scheduling-set member capacity must be >= 1");

    const sequencing_graph& graph = wcg.graph();
    incomplete_schedule_result result;
    result.start.assign(graph.size(), -1);
    if (graph.empty()) {
        return result;
    }

    incomplete_sched_scratch local;
    incomplete_sched_scratch& sc = scratch ? *scratch : local;

    const scheduling_set_result cover =
        min_scheduling_set(wcg, sc.cover_cache);
    result.scheduling_set = cover.members;
    result.cover_proven_minimum = cover.proven_minimum;
    const std::size_t n_members = cover.members.size();
    MWL_ASSERT(n_members >= 1);

    // S(o): indices into cover.members compatible with o, ascending.
    auto& members_of_op = sc.members_of_op;
    members_of_op.resize(graph.size());
    for (auto& row : members_of_op) {
        row.clear(); // keep capacity across iterations via the scratch
    }
    if (engine == sched_engine::reference_scan) {
        // Pre-incremental construction: binary-search every
        // (operation, member) pair -- O(N * M * log R).
        for (const op_id o : graph.all_ops()) {
            for (std::size_t mi = 0; mi < n_members; ++mi) {
                if (wcg.compatible(o, cover.members[mi])) {
                    members_of_op[o.value()].push_back(mi);
                }
            }
        }
    } else {
        // One pass over the members' O(s) adjacency lists -- O(E).
        for (std::size_t mi = 0; mi < n_members; ++mi) {
            for (const op_id o : wcg.ops_for(cover.members[mi])) {
                members_of_op[o.value()].push_back(mi);
            }
        }
    }
    for (const op_id o : graph.all_ops()) {
        MWL_ASSERT(!members_of_op[o.value()].empty()); // S is a cover
    }

    // Exact fractional accounting: scale everything by the lcm of the
    // |S(o)| values, so each op contributes scale/|S(o)| integer units to
    // each of its members, against a budget of capacity*scale per member.
    std::int64_t scale = 1;
    for (const auto& members : members_of_op) {
        scale = std::lcm(scale, static_cast<std::int64_t>(members.size()));
    }
    const std::int64_t budget = static_cast<std::int64_t>(capacity) * scale;

    const std::vector<int> upper = wcg.latency_upper_bounds();
    const std::vector<int> priority = critical_path_priorities(graph, upper);

    const int horizon = serial_horizon(upper);
    // usage[mi * horizon + t]: scaled usage of member mi during step t,
    // one flat arena reused across calls through the scratch.
    auto& usage = sc.ws.usage;
    usage.assign(n_members * static_cast<std::size_t>(horizon), 0);

    if (engine == sched_engine::reference_scan) {
        reference_scan_pass(graph, upper, priority, members_of_op, usage,
                            horizon, scale, budget, result.start);
    } else {
        const auto try_place = [&](op_id o, int t) {
            const auto& members = members_of_op[o.value()];
            const std::int64_t share =
                scale / static_cast<std::int64_t>(members.size());
            const int lat = upper[o.value()];
            for (const std::size_t mi : members) {
                const std::size_t base =
                    mi * static_cast<std::size_t>(horizon);
                for (int u = t; u < t + lat; ++u) {
                    if (usage[base + static_cast<std::size_t>(u)] + share >
                        budget) {
                        return false;
                    }
                }
            }
            for (const std::size_t mi : members) {
                const std::size_t base =
                    mi * static_cast<std::size_t>(horizon);
                for (int u = t; u < t + lat; ++u) {
                    usage[base + static_cast<std::size_t>(u)] += share;
                }
            }
            return true;
        };
        event_schedule(graph, upper, priority, horizon, result.start, sc.ws,
                       try_place);
    }

    result.length = schedule_length(graph, upper, result.start);
    return result;
}

} // namespace mwl
