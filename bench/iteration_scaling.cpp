// End-to-end DPAlloc wall time vs problem size |O|, incremental pipeline
// against the from-scratch reference pipeline (dpalloc_options::incremental
// = false). Sizes go well beyond the paper's |O| <= 24 regime -- this is
// the bench backing the "3x at |O| >= 50" acceptance bar of the
// incrementalization work (see PERF.md).
//
// Emits the aligned table (or --csv) on stdout plus a JSON trajectory:
// always written to BENCH_iteration_scaling.json in the working directory
// (or --out FILE), and echoed to stdout, so the numbers land in the
// repository's benchmark record.
//
// Both pipelines are run on the same corpus and their total areas are
// cross-checked: the incremental machinery must not change any result.

#include "bench_common.hpp"
#include "core/dpalloc.hpp"
#include "support/stats.hpp"
#include "support/timer.hpp"
#include "tgff/corpus.hpp"

#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

int main(int argc, char** argv)
{
    using namespace mwl;
    bench::bench_options opt =
        bench::parse_options(argc, argv, "iteration_scaling");
    if (opt.graphs == 25) {
        opt.graphs = 5; // large instances; 5 graphs keep runs in seconds
    }

    std::vector<std::size_t> sizes{10, 20, 35, 50, 75};
    if (opt.max_size != 0) {
        // Smoke mode (bench-smoke passes --max-size 4): tiny sizes only.
        sizes.clear();
        if (opt.max_size / 2 > 0) {
            sizes.push_back(opt.max_size / 2);
        }
        sizes.push_back(opt.max_size);
    }

    const sonic_model model;
    table t("DPAlloc end-to-end wall time: reference vs incremental"
            " pipeline (lambda = lambda_min)");
    t.header({"|O|", "reference ms", "incremental ms", "speedup"});

    std::ostringstream json;
    json << "{\"bench\":\"iteration_scaling\"," << bench::env_json()
         << ",\"graphs\":" << opt.graphs
         << ",\"seed\":" << opt.seed << ",\"points\":[";

    // Best of `reps` repetitions per arm: scheduler noise only ever adds
    // time, so the minimum is the most faithful estimate of each arm.
    constexpr int reps = 3;

    bool first_point = true;
    for (const std::size_t n : sizes) {
        const auto corpus = make_corpus(n, opt.graphs, model, opt.seed);

        const auto run_arm = [&](const dpalloc_options& arm,
                                 double& area_out) {
            double best_ms = 0.0;
            for (int rep = 0; rep < reps; ++rep) {
                double area = 0.0;
                stopwatch clock;
                for (const corpus_entry& e : corpus) {
                    area += dpalloc(e.graph, model, e.lambda_min, arm)
                                .path.total_area;
                }
                const double ms = clock.milliseconds();
                if (rep == 0 || ms < best_ms) {
                    best_ms = ms;
                }
                area_out = area;
            }
            return best_ms;
        };

        dpalloc_options reference;
        reference.incremental = false;
        double ref_area = 0.0;
        const double ref_ms = run_arm(reference, ref_area);

        double incr_area = 0.0;
        const double incr_ms = run_arm(dpalloc_options{}, incr_area);

        if (ref_area != incr_area) {
            std::cerr << "iteration_scaling: INCREMENTAL PIPELINE DIVERGED"
                         " at |O| = "
                      << n << " (" << ref_area << " vs " << incr_area
                      << ")\n";
            return 1;
        }

        const double speedup = incr_ms > 0.0 ? ref_ms / incr_ms : 0.0;
        t.row({table::num(static_cast<int>(n)), table::num(ref_ms, 2),
               table::num(incr_ms, 2), table::num(speedup, 2) + "x"});
        json << (first_point ? "" : ",") << "{\"n\":" << n
             << ",\"reference_ms\":" << ref_ms
             << ",\"incremental_ms\":" << incr_ms
             << ",\"speedup\":" << speedup << "}";
        first_point = false;
    }
    json << "]}";

    bench::emit(t, opt);
    std::cout << '\n' << json.str() << '\n';

    // Smoke runs (--max-size) must not clobber a previously recorded
    // full-size trajectory unless an explicit --out asks for a file.
    if (opt.max_size != 0 && opt.out.empty()) {
        return 0;
    }
    const std::string path =
        opt.out.empty() ? "BENCH_iteration_scaling.json" : opt.out;
    std::ofstream file(path);
    if (file) {
        file << json.str() << '\n';
    } else {
        std::cerr << "iteration_scaling: cannot write " << path << '\n';
        return 1;
    }
    return 0;
}
