// Unit tests for src/support: strong ids, error primitives, the
// deterministic RNG, the statistics helpers (including the serve
// daemon's latency window), and the lock-striped LRU cache.

#include "support/error.hpp"
#include "support/ids.hpp"
#include "support/rng.hpp"
#include "support/sharded_lru.hpp"
#include "support/stats.hpp"
#include "support/timer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

namespace mwl {
namespace {

// ---------------------------------------------------------------- ids --

TEST(StrongId, DefaultConstructedIsInvalid)
{
    op_id id;
    EXPECT_FALSE(id.is_valid());
    EXPECT_EQ(id, op_id::invalid());
}

TEST(StrongId, ValueRoundTrips)
{
    op_id id(42);
    EXPECT_TRUE(id.is_valid());
    EXPECT_EQ(id.value(), 42u);
}

TEST(StrongId, OrderingFollowsValues)
{
    EXPECT_LT(op_id(1), op_id(2));
    EXPECT_GT(op_id(5), op_id(3));
    EXPECT_EQ(op_id(7), op_id(7));
}

TEST(StrongId, DistinctTagsAreDistinctTypes)
{
    static_assert(!std::is_same_v<op_id, res_id>);
    static_assert(!std::is_same_v<res_id, clique_id>);
}

TEST(StrongId, HashWorksInUnorderedContainers)
{
    std::unordered_set<op_id> set;
    set.insert(op_id(1));
    set.insert(op_id(2));
    set.insert(op_id(1));
    EXPECT_EQ(set.size(), 2u);
}

TEST(StrongId, UsableAsOrderedKey)
{
    std::set<res_id> set{res_id(3), res_id(1), res_id(2)};
    EXPECT_EQ(set.begin()->value(), 1u);
}

// -------------------------------------------------------------- error --

TEST(Error, RequireThrowsPreconditionError)
{
    EXPECT_THROW(require(false, "boom"), precondition_error);
    EXPECT_NO_THROW(require(true, "fine"));
}

TEST(Error, RequireFeasibleThrowsInfeasibleError)
{
    EXPECT_THROW(require_feasible(false, "no way"), infeasible_error);
    EXPECT_NO_THROW(require_feasible(true, "ok"));
}

TEST(Error, ExceptionsDeriveFromMwlError)
{
    try {
        require(false, "message text");
        FAIL() << "should have thrown";
    } catch (const error& e) {
        EXPECT_STREQ(e.what(), "message text");
    }
}

TEST(Error, InfeasibleIsDistinctFromPrecondition)
{
    EXPECT_THROW(
        {
            try {
                require_feasible(false, "x");
            } catch (const precondition_error&) {
                FAIL() << "wrong type";
            }
        },
        infeasible_error);
}

// ---------------------------------------------------------------- rng --

TEST(Rng, DeterministicForEqualSeeds)
{
    rng a(123);
    rng b(123);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a(), b());
    }
}

TEST(Rng, DifferentSeedsDiverge)
{
    rng a(1);
    rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        same += (a() == b()) ? 1 : 0;
    }
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformRespectsBounds)
{
    rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.uniform(10, 20);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 20u);
    }
}

TEST(Rng, UniformCoversFullRange)
{
    rng r(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        seen.insert(r.uniform(0, 3));
    }
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, UniformDegenerateRangeIsConstant)
{
    rng r(5);
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(r.uniform(9, 9), 9u);
    }
}

TEST(Rng, UniformIntMatchesRange)
{
    rng r(3);
    for (int i = 0; i < 1000; ++i) {
        const int v = r.uniform_int(1, 6);
        EXPECT_GE(v, 1);
        EXPECT_LE(v, 6);
    }
}

TEST(Rng, UniformRealInHalfOpenUnitInterval)
{
    rng r(13);
    for (int i = 0; i < 10000; ++i) {
        const double v = r.uniform_real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, UniformRealMeanIsPlausible)
{
    rng r(17);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        sum += r.uniform_real();
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceExtremesAreDeterministic)
{
    rng r(19);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ForkProducesIndependentStream)
{
    rng parent(21);
    rng child = parent.fork(1);
    rng parent2(21);
    rng child2 = parent2.fork(1);
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(child(), child2());
    }
}

TEST(Rng, ForkSaltMatters)
{
    rng parent(21);
    rng a = parent.fork(1);
    rng parent2(21);
    rng b = parent2.fork(2);
    int same = 0;
    for (int i = 0; i < 50; ++i) {
        same += (a() == b()) ? 1 : 0;
    }
    EXPECT_LT(same, 3);
}

// -------------------------------------------------------------- stats --

TEST(Stats, MeanOfKnownSample)
{
    const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(v), 2.5);
}

TEST(Stats, MeanOfEmptyIsZero)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, StddevOfKnownSample)
{
    const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_NEAR(stddev(v), 2.138, 1e-3);
}

TEST(Stats, StddevOfSingletonIsZero)
{
    const std::vector<double> v{42.0};
    EXPECT_DOUBLE_EQ(stddev(v), 0.0);
}

TEST(Stats, GeomeanOfKnownSample)
{
    const std::vector<double> v{1.0, 100.0};
    EXPECT_NEAR(geomean(v), 10.0, 1e-9);
}

TEST(Stats, PercentileEndpoints)
{
    const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
}

TEST(Stats, PercentileInterpolates)
{
    const std::vector<double> v{0.0, 10.0};
    EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
}

TEST(Stats, MinMaxOfSample)
{
    const std::vector<double> v{3.0, 1.0, 2.0};
    EXPECT_DOUBLE_EQ(min_of(v), 1.0);
    EXPECT_DOUBLE_EQ(max_of(v), 3.0);
}

// ----------------------------------------------------- latency window --

TEST(LatencyWindow, EmptyWindowSummarisesToZeros)
{
    latency_window w(8);
    const latency_summary s = w.summarize();
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.mean, 0.0);
    EXPECT_DOUBLE_EQ(s.p50, 0.0);
    EXPECT_DOUBLE_EQ(s.p99, 0.0);
    EXPECT_DOUBLE_EQ(s.max, 0.0);
}

TEST(LatencyWindow, SummarisesAKnownSample)
{
    latency_window w(8);
    for (const double v : {1.0, 2.0, 3.0, 4.0, 5.0}) {
        w.record(v);
    }
    const latency_summary s = w.summarize();
    EXPECT_EQ(s.count, 5u);
    EXPECT_DOUBLE_EQ(s.mean, 3.0);
    EXPECT_DOUBLE_EQ(s.p50, 3.0);
    EXPECT_DOUBLE_EQ(s.max, 5.0);
}

TEST(LatencyWindow, RingRetainsOnlyTheNewestSamples)
{
    latency_window w(4);
    for (int i = 1; i <= 10; ++i) {
        w.record(static_cast<double>(i));
    }
    const latency_summary s = w.summarize();
    // count is lifetime; the percentiles cover the retained {7,8,9,10}.
    EXPECT_EQ(s.count, 10u);
    EXPECT_DOUBLE_EQ(s.mean, 8.5);
    EXPECT_DOUBLE_EQ(s.p50, 8.5);
    EXPECT_DOUBLE_EQ(s.max, 10.0);
}

TEST(LatencyWindow, ConcurrentRecordersDoNotLoseCounts)
{
    latency_window w(64);
    constexpr int threads = 4;
    constexpr int per_thread = 1000;
    {
        std::vector<std::thread> pool;
        for (int t = 0; t < threads; ++t) {
            pool.emplace_back([&w] {
                for (int i = 0; i < per_thread; ++i) {
                    w.record(1.0);
                }
            });
        }
        for (std::thread& t : pool) {
            t.join();
        }
    }
    const latency_summary s = w.summarize();
    EXPECT_EQ(s.count, static_cast<std::uint64_t>(threads) * per_thread);
    EXPECT_DOUBLE_EQ(s.p99, 1.0);
}

// -------------------------------------------------------- sharded lru --

TEST(ShardedLru, RoundTripsAndMisses)
{
    sharded_lru<int, std::string> cache(64, 4);
    EXPECT_FALSE(cache.get(1).has_value());
    cache.put(1, "one");
    cache.put(2, "two");
    ASSERT_TRUE(cache.get(1).has_value());
    EXPECT_EQ(*cache.get(1), "one");
    EXPECT_EQ(*cache.get(2), "two");
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 0u);
    cache.put(1, "uno"); // overwrite, not a new entry
    EXPECT_EQ(*cache.get(1), "uno");
    EXPECT_EQ(cache.size(), 2u);
}

TEST(ShardedLru, ShardCountRoundsUpToAPowerOfTwo)
{
    EXPECT_EQ((sharded_lru<int, int>(64, 1).shard_count()), 1u);
    EXPECT_EQ((sharded_lru<int, int>(64, 5).shard_count()), 8u);
    EXPECT_EQ((sharded_lru<int, int>(64, 16).shard_count()), 16u);
    // A tiny capacity caps the stripe count; every shard holds >= 1
    // entry and the total bound never shrinks below what was asked for.
    EXPECT_EQ((sharded_lru<int, int>(3, 16).shard_count()), 4u);
    EXPECT_GE((sharded_lru<int, int>(3, 16).capacity()), 3u);
    EXPECT_EQ((sharded_lru<int, int>(1, 16).shard_count()), 1u);
}

TEST(ShardedLru, SingleShardEvictsLeastRecentlyUsedAndCounts)
{
    sharded_lru<int, int> cache(2, 1);
    cache.put(1, 10);
    cache.put(2, 20);
    ASSERT_TRUE(cache.get(1).has_value()); // 1 is now MRU
    cache.put(3, 30);                      // evicts 2
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_TRUE(cache.get(1).has_value());
    EXPECT_FALSE(cache.get(2).has_value());
    EXPECT_TRUE(cache.get(3).has_value());
    EXPECT_EQ(cache.size(), 2u);
}

TEST(ShardedLru, BoundHoldsAcrossShards)
{
    sharded_lru<int, int> cache(16, 4);
    for (int i = 0; i < 1000; ++i) {
        cache.put(i, i);
    }
    EXPECT_LE(cache.size(), cache.capacity());
    EXPECT_GE(cache.evictions(), 1000 - cache.capacity());
}

TEST(ShardedLru, ConcurrentMixedTrafficStaysBoundedAndConsistent)
{
    // TSan coverage for the striping itself: hammer a small cache from
    // several threads with overlapping key ranges.
    sharded_lru<int, int> cache(32, 8);
    constexpr int threads = 4;
    constexpr int ops = 5000;
    {
        std::vector<std::thread> pool;
        for (int t = 0; t < threads; ++t) {
            pool.emplace_back([&cache, t] {
                for (int i = 0; i < ops; ++i) {
                    const int key = (i + t * 13) % 64;
                    if (const auto hit = cache.get(key)) {
                        // A present value is always the one put for its key.
                        EXPECT_EQ(*hit, key * 3);
                    } else {
                        cache.put(key, key * 3);
                    }
                }
            });
        }
        for (std::thread& t : pool) {
            t.join();
        }
    }
    EXPECT_LE(cache.size(), cache.capacity());
}

// -------------------------------------------------------------- timer --

TEST(Timer, MeasuresNonNegativeTime)
{
    stopwatch w;
    EXPECT_GE(w.seconds(), 0.0);
    EXPECT_GE(w.milliseconds(), 0.0);
}

TEST(Timer, ResetRestartsTheClock)
{
    stopwatch w;
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i) {
        sink = sink + 1.0;
    }
    w.reset();
    EXPECT_LT(w.seconds(), 1.0);
}

} // namespace
} // namespace mwl
