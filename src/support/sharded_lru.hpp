// Lock-striped sharded LRU cache.
//
// The serve daemon (src/serve/) answers N concurrent connections out of
// one result cache; a single-mutex LRU would serialise every request on
// that one lock. This wrapper splits the capacity across 2^k independent
// `lru_cache` shards, each behind its own mutex, and routes a key to the
// shard its hash selects -- so lookups for different keys proceed in
// parallel and only same-shard traffic contends. Recency is therefore
// tracked *per shard*, which is the standard striped-LRU trade: a shard
// may evict an entry that is globally younger than the coldest entry of
// another shard. The bound still holds exactly (sum of shard bounds) and
// a hot key is always MRU in its own shard.
//
// `get` returns the value by copy: a pointer into a shard would dangle
// the moment the shard lock is released and another thread evicts. The
// engine stores `shared_ptr<const dpalloc_result>`, so the copy is a
// refcount bump.

#ifndef MWL_SUPPORT_SHARDED_LRU_HPP
#define MWL_SUPPORT_SHARDED_LRU_HPP

#include "support/lru_cache.hpp"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>

namespace mwl {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class sharded_lru {
public:
    /// `capacity` total entries split evenly across `shards` stripes
    /// (rounded up to a power of two so routing is a mask, not a divide;
    /// every shard holds at least one entry).
    explicit sharded_lru(std::size_t capacity, std::size_t shards = 16)
    {
        require(capacity >= 1, "sharded_lru capacity must be >= 1");
        require(shards >= 1, "sharded_lru needs at least one shard");
        std::size_t n = 1;
        while (n < shards && n < capacity) {
            n <<= 1;
        }
        const std::size_t per_shard = (capacity + n - 1) / n;
        shards_.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            shards_.push_back(std::make_unique<shard>(per_shard));
        }
        mask_ = n - 1;
    }

    [[nodiscard]] std::optional<Value> get(const Key& key)
    {
        shard& s = shard_of(key);
        const std::lock_guard<std::mutex> lock(s.mutex);
        if (const Value* hit = s.cache.get(key)) {
            return *hit;
        }
        return std::nullopt;
    }

    void put(const Key& key, Value value)
    {
        shard& s = shard_of(key);
        const std::lock_guard<std::mutex> lock(s.mutex);
        if (s.cache.put(key, std::move(value))) {
            ++s.evictions;
        }
    }

    /// Current entry count, summed across shards (each briefly locked).
    [[nodiscard]] std::size_t size() const
    {
        std::size_t total = 0;
        for (const auto& s : shards_) {
            const std::lock_guard<std::mutex> lock(s->mutex);
            total += s->cache.size();
        }
        return total;
    }

    /// Total evictions since construction, summed across shards.
    [[nodiscard]] std::size_t evictions() const
    {
        std::size_t total = 0;
        for (const auto& s : shards_) {
            const std::lock_guard<std::mutex> lock(s->mutex);
            total += s->evictions;
        }
        return total;
    }

    [[nodiscard]] std::size_t capacity() const
    {
        return shards_.size() * shards_.front()->cache.capacity();
    }

    [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

private:
    struct shard {
        explicit shard(std::size_t cap) : cache(cap) {}

        mutable std::mutex mutex;
        lru_cache<Key, Value, Hash> cache;
        std::size_t evictions = 0;
    };

    [[nodiscard]] shard& shard_of(const Key& key)
    {
        // Fold the high bits in: the inner unordered_map already consumes
        // the low bits of the same hash, so picking the stripe from them
        // too would correlate stripe and bucket.
        const std::size_t h = Hash{}(key);
        return *shards_[(h ^ (h >> 16) ^ (h >> 32)) & mask_];
    }

    std::vector<std::unique_ptr<shard>> shards_;
    std::size_t mask_ = 0;
};

} // namespace mwl

#endif // MWL_SUPPORT_SHARDED_LRU_HPP
