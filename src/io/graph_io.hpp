// Plain-text sequencing-graph interchange format (.mwl).
//
//   # comment
//   op  <name> add <width>
//   op  <name> mul <width_a> <width_b>
//   dep <producer-name> <consumer-name>
//
// Names are unique identifiers (no whitespace). Dependencies may only
// reference operations declared earlier in the file; cycles are rejected
// by the underlying graph. The parser reports malformed input with
// 1-based line numbers via `parse_error`.

#ifndef MWL_IO_GRAPH_IO_HPP
#define MWL_IO_GRAPH_IO_HPP

#include "dfg/sequencing_graph.hpp"
#include "support/error.hpp"

#include <cstdint>
#include <iosfwd>
#include <string>

namespace mwl {

/// Malformed .mwl input; `what()` includes the line number.
class parse_error : public error {
public:
    using error::error;
};

/// Parse a graph from text. Throws `parse_error` on malformed input.
[[nodiscard]] sequencing_graph parse_graph(std::istream& in);
[[nodiscard]] sequencing_graph parse_graph_string(const std::string& text);

/// Serialise a graph; `parse_graph_string(write_graph(g))` reproduces `g`.
/// Unnamed operations are given stable names ("o<N>").
[[nodiscard]] std::string write_graph(const sequencing_graph& graph);

/// Stable content hash of the allocation-relevant structure: operation
/// shapes (in id order) and dependency edges (in stored predecessor
/// order). Equal fingerprints imply graphs the allocator cannot tell
/// apart, so the batch engine (src/engine/) may serve one's cached result
/// for the other. Operation *names* are deliberately excluded -- they
/// never reach the allocator -- so re-labelled copies of a graph dedup.
[[nodiscard]] std::uint64_t graph_fingerprint(const sequencing_graph& graph);

} // namespace mwl

#endif // MWL_IO_GRAPH_IO_HPP
