// Fractional-wordlength view of a sequencing graph.
//
// The wordlength optimizer (optimizer.hpp) searches per-operation
// *fractional* bit counts; the allocator consumes plain operand widths.
// This module is the bridge, and deliberately depends on nothing but the
// graph layer so the scenario registry can pin tuned designs without
// dragging in the engine:
//
//  * `make_tune_problem` decomposes a graph's widths into a fixed integer
//    part (range bits, kept untouched by the search -- truncation moves
//    the binary point, it must never overflow the value range) and a
//    coefficient-gain vector for the roundoff-noise model.
//  * `apply_frac_bits` rebuilds the graph with a candidate fractional
//    assignment: an operation's data width becomes int_bits + frac_bits.
//
// Width convention for multipliers: op_shape normalises operands
// wider-first, so "which operand is the data path" is not recoverable
// from a shape. We treat the *wider* operand (width_a) as the tunable
// data signal and the narrower one (width_b) as the constant coefficient,
// which matches every scenario builder (coefficient widths never exceed
// the accumulating data path they feed).

#ifndef MWL_WORDLENGTH_TUNED_GRAPH_HPP
#define MWL_WORDLENGTH_TUNED_GRAPH_HPP

#include "dfg/sequencing_graph.hpp"

#include <span>
#include <vector>

namespace mwl {

/// How per-multiplier coefficient gains are derived for the noise model
/// when only widths (not coefficient values) are known.
enum class gain_model {
    /// Every path has unit gain: the conservative flat model.
    unit,
    /// A coefficient of width w models a constant of magnitude
    /// ~2^{(w - 16)/2}, capped at 1: narrow coefficients are the small
    /// impulse-response tails, wide ones the near-unity peaks -- the
    /// width pattern every scenario builder encodes.
    attenuating,
};

/// A graph decomposed for fractional-wordlength search.
struct tune_problem {
    sequencing_graph graph;         ///< base topology (original widths)
    std::vector<double> coeff_gain; ///< per op; 1.0 for adders
    std::vector<int> int_bits;      ///< per op integer (range) bits, >= 1
    std::vector<int> coeff_bits;    ///< per op; 0 for adders
    int width_cap = 32;             ///< data widths clamp to [1, cap]
};

/// Decompose `graph`, treating `base_frac_bits` of every operation's data
/// width as fractional (int_bits = max(1, width - base_frac_bits)).
/// Throws `precondition_error` on an empty graph or bad parameters.
[[nodiscard]] tune_problem make_tune_problem(const sequencing_graph& graph,
                                             gain_model gains = gain_model::unit,
                                             int base_frac_bits = 8,
                                             int width_cap = 32);

/// The graph with data widths int_bits[o] + frac_bits[o] (clamped to
/// [1, width_cap]); names, edges and coefficient widths are preserved,
/// so equal inputs give byte-identical graphs. Throws
/// `precondition_error` on a size mismatch or negative bits.
[[nodiscard]] sequencing_graph apply_frac_bits(const tune_problem& problem,
                                               std::span<const int> frac_bits);

/// Sum of a fractional assignment -- the "total bits" the optimizer and
/// its monotonicity tests compare.
[[nodiscard]] long long total_frac_bits(std::span<const int> frac_bits);

} // namespace mwl

#endif // MWL_WORDLENGTH_TUNED_GRAPH_HPP
