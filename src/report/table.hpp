// Console table / CSV rendering for the benchmark harnesses, so every
// "regenerate Table N / Figure N" binary prints the same rows and series
// the paper reports in a uniform format.

#ifndef MWL_REPORT_TABLE_HPP
#define MWL_REPORT_TABLE_HPP

#include <iosfwd>
#include <string>
#include <vector>

namespace mwl {

/// Column-aligned text table with an optional title.
class table {
public:
    explicit table(std::string title = {});

    /// Set the header row (defines the column count).
    void header(std::vector<std::string> columns);

    /// Append a data row; must match the header's column count.
    void row(std::vector<std::string> cells);

    /// Convenience: formats doubles with `precision` digits after the point.
    [[nodiscard]] static std::string num(double value, int precision = 2);
    [[nodiscard]] static std::string num(int value);

    /// Render with aligned columns.
    void print(std::ostream& os) const;

    /// Render as CSV (header first; no escaping beyond quoting commas).
    void print_csv(std::ostream& os) const;

private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace mwl

#endif // MWL_REPORT_TABLE_HPP
