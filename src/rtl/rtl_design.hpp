// Structural RTL intermediate representation.
//
// `rtl_design` is the single source of truth between allocation and the
// outside world: the `elaborate()` pass (rtl/elaborate.hpp) lowers an
// allocated datapath into functional units, a shared register file, per-
// cycle operand selections and a capture schedule -- with every width
// adaptation (slice at the operation's native wordlength, then sign- or
// zero-extension to the physical port) an *explicit* `rtl_adapt` node.
// Both the Verilog printer (rtl/verilog.hpp) and the cycle-accurate
// interpreter (rtl/rtl_interp.hpp) consume this IR, so what we simulate is
// definitionally what we print; the extension semantics are decided once,
// in elaborate, not per backend.

#ifndef MWL_RTL_RTL_DESIGN_HPP
#define MWL_RTL_RTL_DESIGN_HPP

#include "model/op_shape.hpp"
#include "support/finding.hpp"
#include "support/ids.hpp"

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace mwl {

/// Where a functional-unit operand comes from.
struct rtl_source {
    enum class kind {
        reg,   ///< a register of the shared register file
        input, ///< a primary input port
    };
    kind from = kind::reg;
    std::size_t index = 0; ///< register index or index into rtl_design::inputs
};

/// Bit adaptation between a source and a sink: take the low `slice_width`
/// bits of the source (a two's-complement wrap at that width), then extend
/// to `out_width` bits -- replicating the slice's sign bit when
/// `sign_extend` is set, zeros otherwise. Multiple-wordlength correctness
/// (operands wrapped at the *operation's* native width, results stored
/// sign-extended into possibly wider shared registers) lives entirely in
/// these nodes.
struct rtl_adapt {
    int slice_width = 1;
    int out_width = 1;
    bool sign_extend = true;
};

/// One operand-mux case entry: during cycles [first_cycle, last_cycle]
/// (inclusive; the whole execution span of `op`) the port reads `source`
/// through `adapt`.
struct rtl_operand_select {
    int first_cycle = 0;
    int last_cycle = 0;
    rtl_source source;
    rtl_adapt adapt;
    op_id op;    ///< operation served (diagnostics and tracing)
};

/// One functional unit (one per datapath instance): a combinational
/// signed `+` / `*` body behind two operand-select registers that hold
/// their selection for the whole execution span.
struct rtl_fu {
    op_kind kind = op_kind::add;
    int width_a = 1; ///< operand port widths (instance shape)
    int width_b = 1;
    int width_y = 1; ///< result width of the instance shape
    /// Signed arithmetic body (the correct semantics: operands are
    /// sign-extended bit patterns). `false` reproduces the historical
    /// unsigned-`*` emission (elaborate_options::legacy_unsigned_multiply)
    /// where a shared multiplier corrupts the upper half of signed
    /// products; for an adder the two interpretations coincide mod 2^n.
    bool signed_arith = true;
    std::array<std::vector<rtl_operand_select>, 2> select; ///< per port
    std::string comment; ///< shape + executed ops, for the printer
};

/// One register write: at the end of `cycle`, register `reg` latches the
/// low `adapt.slice_width` bits of fu `fu`'s result (the producing
/// operation's native result width) extended to the register width.
struct rtl_capture {
    int cycle = 0;
    std::size_t reg = 0;
    std::size_t fu = 0;
    rtl_adapt adapt;
    op_id op;    ///< value produced (each op is captured exactly once)
};

/// Ordering invariant of rtl_design::captures -- by cycle, then register.
/// Elaborate sorts with it, validate_design checks it, and the printer
/// and interpreter rely on it to group same-edge writes.
[[nodiscard]] inline bool capture_order(const rtl_capture& x,
                                        const rtl_capture& y)
{
    return x.cycle < y.cycle || (x.cycle == y.cycle && x.reg < y.reg);
}

/// A primary input: external operand `ext_index` of operation `op`
/// (operand port `port`), at the operation's native operand width.
struct rtl_input {
    op_id op;
    int port = 0;
    std::size_t ext_index = 0; ///< position within sim_inputs[op]
    int width = 1;
    std::string name;
};

/// A primary output: the low `width` bits (the producing operation's
/// native result width) of register `reg`.
struct rtl_output {
    op_id op;
    std::size_t reg = 0;
    int width = 1;
    std::string name;
};

struct rtl_design {
    std::string module_name;
    int latency = 0;      ///< schedule length in cycles
    int counter_bits = 1; ///< width of the cycle counter
    std::size_t n_ops = 0;
    std::vector<int> register_width;
    std::vector<rtl_fu> fus;
    std::vector<rtl_capture> captures; ///< sorted by (cycle, reg)
    std::vector<rtl_input> inputs;
    std::vector<rtl_output> outputs;
};

/// Width of the bits a source can legally provide (0 when the source
/// index is out of range -- validate_design reports that as a violation).
[[nodiscard]] inline int source_width(const rtl_design& design,
                                      const rtl_source& source)
{
    switch (source.from) {
    case rtl_source::kind::reg:
        return source.index < design.register_width.size()
                   ? design.register_width[source.index]
                   : 0;
    case rtl_source::kind::input:
        return source.index < design.inputs.size()
                   ? design.inputs[source.index].width
                   : 0;
    }
    return 0;
}

/// Structural validation: index ranges, width consistency (slices never
/// wider than their source, adaptations matching their sink), disjoint
/// operand selections per port, every operation captured exactly once
/// inside the schedule, and -- the value-correctness invariants this IR
/// exists to enforce -- every widening adaptation sign-extends (a
/// zero-extending widening corrupts negative two's-complement values).
/// Returns `rtl.*` findings (support/finding.hpp); empty means clean.
/// The static analyzer (src/analyze/) goes further: it only flags
/// adaptations whose incoming *value range* makes them corrupting.
[[nodiscard]] std::vector<finding> validate_design(const rtl_design& design);

} // namespace mwl

#endif // MWL_RTL_RTL_DESIGN_HPP
