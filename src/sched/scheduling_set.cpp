#include "sched/scheduling_set.hpp"

#include "support/error.hpp"

#include <algorithm>
#include <cstdint>

namespace mwl {
namespace {

// Fixed-width dynamic bitset over 64-bit words, just big enough for |O|.
class bitset64 {
public:
    explicit bitset64(std::size_t bits)
        : bits_(bits), words_((bits + 63) / 64, 0)
    {
    }

    void set(std::size_t i) { words_[i / 64] |= (std::uint64_t{1} << (i % 64)); }

    [[nodiscard]] bool test(std::size_t i) const
    {
        return (words_[i / 64] >> (i % 64)) & 1;
    }

    [[nodiscard]] std::size_t count() const
    {
        std::size_t total = 0;
        for (const std::uint64_t w : words_) {
            total += static_cast<std::size_t>(__builtin_popcountll(w));
        }
        return total;
    }

    [[nodiscard]] bool is_subset_of(const bitset64& other) const
    {
        for (std::size_t i = 0; i < words_.size(); ++i) {
            if ((words_[i] & ~other.words_[i]) != 0) {
                return false;
            }
        }
        return true;
    }

    /// Number of bits set in (*this & ~mask): how much this set would
    /// newly cover given already-covered `mask`.
    [[nodiscard]] std::size_t count_minus(const bitset64& mask) const
    {
        std::size_t total = 0;
        for (std::size_t i = 0; i < words_.size(); ++i) {
            total += static_cast<std::size_t>(
                __builtin_popcountll(words_[i] & ~mask.words_[i]));
        }
        return total;
    }

    void or_with(const bitset64& other)
    {
        for (std::size_t i = 0; i < words_.size(); ++i) {
            words_[i] |= other.words_[i];
        }
    }

    [[nodiscard]] bool all_set() const
    {
        std::size_t remaining = bits_;
        for (const std::uint64_t w : words_) {
            const std::size_t in_word = std::min<std::size_t>(remaining, 64);
            const std::uint64_t full =
                in_word == 64 ? ~std::uint64_t{0}
                              : ((std::uint64_t{1} << in_word) - 1);
            if ((w & full) != full) {
                return false;
            }
            remaining -= in_word;
        }
        return true;
    }

    /// Index of the first zero bit, or bits_ if none.
    [[nodiscard]] std::size_t first_unset() const
    {
        for (std::size_t i = 0; i < bits_; ++i) {
            if (!test(i)) {
                return i;
            }
        }
        return bits_;
    }

    [[nodiscard]] std::size_t size() const { return bits_; }

private:
    std::size_t bits_;
    std::vector<std::uint64_t> words_;
};

struct candidate {
    res_id id;
    bitset64 coverage;
    double area;
};

std::vector<std::size_t> greedy_cover(const std::vector<candidate>& cands,
                                      std::size_t universe)
{
    bitset64 covered(universe);
    std::vector<std::size_t> chosen;
    while (!covered.all_set()) {
        std::size_t best = cands.size();
        std::size_t best_gain = 0;
        for (std::size_t i = 0; i < cands.size(); ++i) {
            const std::size_t gain = cands[i].coverage.count_minus(covered);
            const bool better =
                gain > best_gain ||
                (gain == best_gain && gain > 0 && best < cands.size() &&
                 cands[i].area < cands[best].area);
            if (better) {
                best = i;
                best_gain = gain;
            }
        }
        MWL_ASSERT(best < cands.size() && best_gain > 0);
        chosen.push_back(best);
        covered.or_with(cands[best].coverage);
    }
    return chosen;
}

struct search_state {
    const std::vector<candidate>* cands = nullptr;
    // covers_of_op[o]: candidate indices covering operation o.
    std::vector<std::vector<std::size_t>> covers_of_op;
    std::size_t max_set_size = 1;
    std::size_t node_cap = 0;
    std::size_t nodes = 0;
    bool capped = false;
    std::vector<std::size_t> best;
    std::vector<std::size_t> current;
};

void branch(search_state& st, const bitset64& covered)
{
    if (++st.nodes > st.node_cap) {
        st.capped = true;
        return;
    }
    if (covered.all_set()) {
        if (st.current.size() < st.best.size()) {
            st.best = st.current;
        }
        return;
    }
    // Lower bound: every chosen set covers at most max_set_size elements.
    const std::size_t uncovered = covered.size() - covered.count();
    const std::size_t lower =
        (uncovered + st.max_set_size - 1) / st.max_set_size;
    if (st.current.size() + lower >= st.best.size()) {
        return;
    }

    // Branch on the uncovered operation with the fewest remaining covers:
    // smallest branching factor first.
    std::size_t pivot = covered.size();
    std::size_t pivot_options = static_cast<std::size_t>(-1);
    for (std::size_t o = 0; o < covered.size(); ++o) {
        if (covered.test(o)) {
            continue;
        }
        if (st.covers_of_op[o].size() < pivot_options) {
            pivot = o;
            pivot_options = st.covers_of_op[o].size();
        }
    }
    MWL_ASSERT(pivot < covered.size());

    for (const std::size_t ci : st.covers_of_op[pivot]) {
        bitset64 next = covered;
        next.or_with((*st.cands)[ci].coverage);
        st.current.push_back(ci);
        branch(st, next);
        st.current.pop_back();
        if (st.capped) {
            return;
        }
    }
}

} // namespace

scheduling_set_result
min_scheduling_set(const wordlength_compatibility_graph& wcg,
                   std::size_t node_cap)
{
    const std::size_t n_ops = wcg.graph().size();
    scheduling_set_result result;
    if (n_ops == 0) {
        return result;
    }

    // Build candidates, dropping resources whose coverage is dominated by
    // another resource (subset coverage). For equal coverage keep the
    // smaller-area resource; ties broken on res_id for determinism.
    std::vector<candidate> cands;
    for (const res_id r : wcg.all_resources()) {
        const auto ops = wcg.ops_for(r);
        if (ops.empty()) {
            continue;
        }
        bitset64 cover(n_ops);
        for (const op_id o : ops) {
            cover.set(o.value());
        }
        cands.push_back(candidate{r, std::move(cover), wcg.area(r)});
    }

    std::vector<bool> dominated(cands.size(), false);
    for (std::size_t i = 0; i < cands.size(); ++i) {
        for (std::size_t j = 0; j < cands.size(); ++j) {
            if (i == j || dominated[i] || dominated[j]) {
                continue;
            }
            if (!cands[i].coverage.is_subset_of(cands[j].coverage)) {
                continue;
            }
            const bool equal =
                cands[j].coverage.is_subset_of(cands[i].coverage);
            if (!equal) {
                dominated[i] = true;
            } else if (cands[i].area > cands[j].area ||
                       (cands[i].area == cands[j].area &&
                        cands[i].id > cands[j].id)) {
                dominated[i] = true;
            }
        }
    }
    std::vector<candidate> kept;
    for (std::size_t i = 0; i < cands.size(); ++i) {
        if (!dominated[i]) {
            kept.push_back(std::move(cands[i]));
        }
    }

    // Every operation retains at least one H edge, so a cover exists.
    search_state st;
    st.cands = &kept;
    st.node_cap = node_cap;
    st.covers_of_op.resize(n_ops);
    for (std::size_t ci = 0; ci < kept.size(); ++ci) {
        st.max_set_size = std::max(st.max_set_size, kept[ci].coverage.count());
        for (std::size_t o = 0; o < n_ops; ++o) {
            if (kept[ci].coverage.test(o)) {
                st.covers_of_op[o].push_back(ci);
            }
        }
    }
    for (std::size_t o = 0; o < n_ops; ++o) {
        MWL_ASSERT(!st.covers_of_op[o].empty());
        // Try large sets first: finds good covers early, improving pruning.
        std::sort(st.covers_of_op[o].begin(), st.covers_of_op[o].end(),
                  [&](std::size_t a, std::size_t b) {
                      return kept[a].coverage.count() >
                             kept[b].coverage.count();
                  });
    }

    st.best = greedy_cover(kept, n_ops);
    branch(st, bitset64(n_ops));

    result.proven_minimum = !st.capped;
    result.members.reserve(st.best.size());
    for (const std::size_t ci : st.best) {
        result.members.push_back(kept[ci].id);
    }
    std::sort(result.members.begin(), result.members.end());
    return result;
}

} // namespace mwl
