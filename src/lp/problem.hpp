// Linear / mixed-integer programming problem description.
//
// The paper solves its ILP formulation with `lp_solve` [15]; that solver is
// not available offline, so src/lp is this repository's self-contained
// replacement (DESIGN.md §7, substitution 1): a builder (this header), a
// bounded-variable primal simplex (simplex.hpp) and a branch-and-bound
// wrapper (branch_bound.hpp).
//
// Scope: minimisation over variables with *finite* bounds -- every model in
// this repository is naturally box-bounded, and finite bounds keep the
// simplex free of unboundedness cases.

#ifndef MWL_LP_PROBLEM_HPP
#define MWL_LP_PROBLEM_HPP

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace mwl {

enum class var_kind {
    continuous,
    integer, ///< integral within its bounds (binary = integer in [0,1])
};

enum class row_sense { le, ge, eq };

/// Sparse constraint row: sum of coeff * var `sense` rhs.
struct lp_row {
    std::vector<std::pair<std::size_t, double>> terms;
    row_sense sense = row_sense::le;
    double rhs = 0.0;
};

/// Minimise c'x subject to rows and variable bounds.
class lp_problem {
public:
    /// Add a variable; returns its index. Requires lo <= hi, both finite.
    std::size_t add_variable(double cost, double lo, double hi,
                             var_kind kind = var_kind::continuous,
                             std::string name = {});

    /// Shorthand for a binary (0/1 integer) variable.
    std::size_t add_binary(double cost, std::string name = {});

    /// Add a constraint; variable indices must be valid. Duplicate indices
    /// within one row are allowed (coefficients accumulate).
    void add_row(lp_row row);

    [[nodiscard]] std::size_t n_vars() const { return cost_.size(); }
    [[nodiscard]] std::size_t n_rows() const { return rows_.size(); }

    [[nodiscard]] double cost(std::size_t v) const { return cost_[v]; }
    [[nodiscard]] double lower(std::size_t v) const { return lo_[v]; }
    [[nodiscard]] double upper(std::size_t v) const { return hi_[v]; }
    [[nodiscard]] var_kind kind(std::size_t v) const { return kind_[v]; }
    [[nodiscard]] const std::string& name(std::size_t v) const
    {
        return names_[v];
    }
    [[nodiscard]] const lp_row& row(std::size_t r) const { return rows_[r]; }

    /// Objective value of an assignment (no feasibility implied).
    [[nodiscard]] double objective_of(const std::vector<double>& x) const;

    /// Check `x` against all rows and bounds within `tol`.
    [[nodiscard]] bool is_feasible(const std::vector<double>& x,
                                   double tol = 1e-6) const;

private:
    std::vector<double> cost_;
    std::vector<double> lo_;
    std::vector<double> hi_;
    std::vector<var_kind> kind_;
    std::vector<std::string> names_;
    std::vector<lp_row> rows_;
};

} // namespace mwl

#endif // MWL_LP_PROBLEM_HPP
