// Small descriptive-statistics helpers used by the benchmark harnesses to
// aggregate per-graph results the way the paper does (per-point means over a
// corpus of random designs), plus the sliding latency window the serve
// daemon (src/serve/) reports p50/p99 from.

#ifndef MWL_SUPPORT_STATS_HPP
#define MWL_SUPPORT_STATS_HPP

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

namespace mwl {

/// Arithmetic mean; 0 for an empty sample.
[[nodiscard]] double mean(std::span<const double> sample);

/// Sample standard deviation (n-1 denominator); 0 for samples of size < 2.
[[nodiscard]] double stddev(std::span<const double> sample);

/// Geometric mean; requires every element > 0. 0 for an empty sample.
[[nodiscard]] double geomean(std::span<const double> sample);

/// Linear-interpolated percentile, p in [0, 100]. 0 for an empty sample.
[[nodiscard]] double percentile(std::span<const double> sample, double p);

/// Smallest / largest element; 0 for an empty sample.
[[nodiscard]] double min_of(std::span<const double> sample);
[[nodiscard]] double max_of(std::span<const double> sample);

/// Point-in-time summary of a `latency_window`. `count` is the number of
/// samples ever recorded; the percentiles cover the retained window (the
/// most recent min(count, capacity) samples).
struct latency_summary {
    std::uint64_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
};

/// Thread-safe sliding window of the most recent N samples (a ring
/// buffer), summarised on demand. The serve daemon records every
/// allocation's wall time here and reports p50/p99 from the stats
/// endpoint while requests keep landing; a window, unlike a full history,
/// keeps a week-old latency spike from haunting the percentiles forever
/// and keeps memory flat.
class latency_window {
public:
    explicit latency_window(std::size_t capacity);

    void record(double sample);

    /// Percentiles over the retained window; all zeros when empty.
    [[nodiscard]] latency_summary summarize() const;

private:
    mutable std::mutex mutex_;
    std::size_t capacity_;
    std::vector<double> ring_;   ///< size < capacity_ while still filling
    std::size_t next_ = 0;       ///< ring slot the next sample lands in
    std::uint64_t recorded_ = 0; ///< lifetime sample count
};

} // namespace mwl

#endif // MWL_SUPPORT_STATS_HPP
