// Closing the paper's future-work loop: derive wordlengths from an
// output-error specification (Synoptix-style, src/wordlength), then feed
// the resulting multiple-wordlength graph to DPAlloc.
//
// The paper ends: "Future work should include investigation of the
// interaction between high-level synthesis of multiple wordlength systems
// and the derivation of wordlength information from output-error
// specifications." This example runs that pipeline end to end on an 8-tap
// FIR: sweep the output-noise budget, re-derive per-operation fractional
// widths, re-allocate, and print the error-vs-area trade-off curve.
//
// Build & run:  ./build/examples/error_driven_fir

#include "core/dpalloc.hpp"
#include "core/validate.hpp"
#include "dfg/analysis.hpp"
#include "model/hardware_model.hpp"
#include "report/table.hpp"
#include "tgff/corpus.hpp"
#include "wordlength/noise_budget.hpp"

#include <cmath>
#include <iostream>
#include <vector>

namespace {

/// Build the FIR sequencing graph for given per-op total widths
/// (integer part fixed at 2 bits, fractional part from the noise budget).
mwl::sequencing_graph make_fir(const std::vector<int>& frac_bits,
                               std::size_t taps)
{
    using namespace mwl;
    const int int_bits = 2;
    sequencing_graph g;
    std::vector<op_id> products;
    for (std::size_t i = 0; i < taps; ++i) {
        const int w = int_bits + frac_bits[i];
        products.push_back(g.add_operation(op_shape::multiplier(w, w),
                                           "tap" + std::to_string(i)));
    }
    op_id acc = products[0];
    for (std::size_t i = 1; i < taps; ++i) {
        const int w = int_bits + frac_bits[taps + i - 1];
        const op_id sum =
            g.add_operation(op_shape::adder(w), "sum" + std::to_string(i));
        g.add_dependency(acc, sum);
        g.add_dependency(products[i], sum);
        acc = sum;
    }
    return g;
}

} // namespace

int main()
{
    using namespace mwl;
    const std::size_t taps = 8;

    // Structural prototype (widths are re-derived per budget, the topology
    // and coefficient gains stay fixed).
    const std::vector<double> coeffs{0.04, 0.12, 0.21, 0.26,
                                     0.26, 0.21, 0.12, 0.04};
    const std::vector<int> proto_bits(2 * taps - 1, 16);
    const sequencing_graph proto = make_fir(proto_bits, taps);

    // Output gains: per-op |coefficient| for multipliers, 1 for adders.
    std::vector<double> coeff_gain(proto.size(), 1.0);
    for (std::size_t i = 0; i < taps; ++i) {
        coeff_gain[i] = coeffs[i];
    }
    const std::vector<double> gains = output_gains(proto, coeff_gain);

    const sonic_model model;
    table t("Error-driven FIR: output-noise budget vs allocated area");
    t.header({"noise budget", "achieved noise", "total frac bits",
              "lambda_min", "area @ 20% slack", "#resources"});

    for (const double budget : {1e-3, 1e-4, 1e-5, 1e-6, 1e-7}) {
        noise_spec spec;
        spec.budget = budget;
        spec.min_frac_bits = 2;
        spec.max_frac_bits = 20;
        const wordlength_assignment wl =
            assign_fractional_widths(proto, gains, spec);

        int total_bits = 0;
        for (const int f : wl.frac_bits) {
            total_bits += f;
        }

        const sequencing_graph graph = make_fir(wl.frac_bits, taps);
        const int lambda_min = min_latency(graph, model);
        const int lambda = relaxed_lambda(lambda_min, 0.2);
        const dpalloc_result r = dpalloc(graph, model, lambda);
        require_valid(graph, model, r.path, lambda);

        t.row({table::num(budget, 8), table::num(wl.noise_power, 8),
               table::num(total_bits), table::num(lambda_min),
               table::num(r.path.total_area, 0),
               table::num(static_cast<int>(r.path.instances.size()))});
    }
    t.print(std::cout);

    std::cout << "\nTighter error specs force wider operators and larger"
                 " datapaths;\nthe allocator absorbs part of the cost by"
                 " sharing across the width mix.\n";
    return 0;
}
