#include "wcg/wcg.hpp"

#include "support/error.hpp"
#include "wcg/resource_set.hpp"

#include <algorithm>

namespace mwl {

wordlength_compatibility_graph::wordlength_compatibility_graph(
    const sequencing_graph& graph, const hardware_model& model)
    : graph_(&graph), model_(&model)
{
    resources_ = extract_resource_types(graph);
    res_latency_.reserve(resources_.size());
    res_area_.reserve(resources_.size());
    for (const op_shape& shape : resources_) {
        res_latency_.push_back(model.latency(shape));
        res_area_.push_back(model.area(shape));
        MWL_ASSERT(res_latency_.back() >= 1);
        MWL_ASSERT(res_area_.back() > 0.0);
    }

    const std::size_t n_ops = graph.size();
    const std::size_t n_res = resources_.size();
    op_words_ = bits_words(n_ops);
    res_words_ = bits_words(n_res);
    op_bits_.assign(n_res * op_words_, 0);
    res_bits_.assign(n_ops * res_words_, 0);

    // Two passes: count row sizes, then fill the flat CSR pools. Rows come
    // out ascending by construction (ops and resources are visited in
    // ascending id order).
    op_row_begin_.assign(n_ops, 0);
    op_row_end_.assign(n_ops, 0);
    res_row_begin_.assign(n_res, 0);
    res_row_end_.assign(n_res, 0);
    std::vector<std::uint32_t> op_deg(n_ops, 0);
    std::vector<std::uint32_t> res_deg(n_res, 0);
    for (const op_id o : graph.all_ops()) {
        for (std::size_t ri = 0; ri < n_res; ++ri) {
            if (resources_[ri].covers(graph.shape(o))) {
                ++op_deg[o.value()];
                ++res_deg[ri];
                ++edge_count_;
            }
        }
        // The closure contains every operation's own shape, so H(o) is
        // never empty at construction.
        MWL_ASSERT(op_deg[o.value()] > 0);
    }
    std::uint32_t at = 0;
    for (std::size_t i = 0; i < n_ops; ++i) {
        op_row_begin_[i] = at;
        op_row_end_[i] = at;
        at += op_deg[i];
    }
    h_op_data_.resize(edge_count_);
    at = 0;
    for (std::size_t ri = 0; ri < n_res; ++ri) {
        res_row_begin_[ri] = at;
        res_row_end_[ri] = at;
        at += res_deg[ri];
    }
    h_res_data_.resize(edge_count_);
    for (const op_id o : graph.all_ops()) {
        for (std::size_t ri = 0; ri < n_res; ++ri) {
            if (!resources_[ri].covers(graph.shape(o))) {
                continue;
            }
            h_op_data_[op_row_end_[o.value()]++] = res_id(ri);
            h_res_data_[res_row_end_[ri]++] = o;
            bits_set(op_bits_.data() + ri * op_words_, o.value());
            bits_set(res_bits_.data() + o.value() * res_words_, ri);
        }
    }

    lat_upper_.assign(graph.size(), 0);
    lat_lower_.assign(graph.size(), 0);
    for (const op_id o : graph.all_ops()) {
        recompute_bounds(o);
    }
}

const op_shape& wordlength_compatibility_graph::resource(res_id r) const
{
    check_res(r);
    return resources_[r.value()];
}

int wordlength_compatibility_graph::latency(res_id r) const
{
    check_res(r);
    return res_latency_[r.value()];
}

double wordlength_compatibility_graph::area(res_id r) const
{
    check_res(r);
    return res_area_[r.value()];
}

std::vector<res_id> wordlength_compatibility_graph::all_resources() const
{
    std::vector<res_id> ids;
    ids.reserve(resources_.size());
    for (std::size_t i = 0; i < resources_.size(); ++i) {
        ids.emplace_back(i);
    }
    return ids;
}

std::span<const res_id>
wordlength_compatibility_graph::resources_for(op_id o) const
{
    check_op(o);
    return {h_op_data_.data() + op_row_begin_[o.value()],
            h_op_data_.data() + op_row_end_[o.value()]};
}

std::span<const op_id>
wordlength_compatibility_graph::ops_for(res_id r) const
{
    check_res(r);
    return {h_res_data_.data() + res_row_begin_[r.value()],
            h_res_data_.data() + res_row_end_[r.value()]};
}

void wordlength_compatibility_graph::delete_edge(op_id o, res_id r)
{
    check_op(o);
    check_res(r);
    res_id* const row_first = h_op_data_.data() + op_row_begin_[o.value()];
    res_id* const row_last = h_op_data_.data() + op_row_end_[o.value()];
    res_id* const it = std::lower_bound(row_first, row_last, r);
    require(it != row_last && *it == r, "H edge not present");
    require(row_last - row_first > 1,
            "deleting the last compatible resource of an operation");
    std::move(it + 1, row_last, it);
    --op_row_end_[o.value()];

    op_id* const col_first = h_res_data_.data() + res_row_begin_[r.value()];
    op_id* const col_last = h_res_data_.data() + res_row_end_[r.value()];
    op_id* const jt = std::lower_bound(col_first, col_last, o);
    MWL_ASSERT(jt != col_last && *jt == o);
    std::move(jt + 1, col_last, jt);
    --res_row_end_[r.value()];

    bits_reset(op_bits_.data() + r.value() * op_words_, o.value());
    bits_reset(res_bits_.data() + o.value() * res_words_, r.value());
    --edge_count_;
    ++version_;

    // The cached bounds only move when an extremal-latency edge went away.
    const int lat = res_latency_[r.value()];
    if (lat == lat_upper_[o.value()] || lat == lat_lower_[o.value()]) {
        recompute_bounds(o);
    }
}

int wordlength_compatibility_graph::latency_upper_bound(op_id o) const
{
    check_op(o);
    return lat_upper_[o.value()];
}

int wordlength_compatibility_graph::latency_lower_bound(op_id o) const
{
    check_op(o);
    return lat_lower_[o.value()];
}

std::vector<int> wordlength_compatibility_graph::latency_upper_bounds() const
{
    return lat_upper_;
}

bool wordlength_compatibility_graph::refinable(op_id o) const
{
    check_op(o);
    return lat_lower_[o.value()] < lat_upper_[o.value()];
}

int wordlength_compatibility_graph::refine_op(op_id o)
{
    require(refinable(o), "operation has no strictly faster resource left");
    const int top = latency_upper_bound(o);

    // Collect first, then delete: delete_edge mutates the row we iterate.
    std::vector<res_id> doomed;
    for (const res_id r : resources_for(o)) {
        if (res_latency_[r.value()] == top) {
            doomed.push_back(r);
        }
    }
    MWL_ASSERT(!doomed.empty());
    for (const res_id r : doomed) {
        delete_edge(o, r);
    }
    return static_cast<int>(doomed.size());
}

void wordlength_compatibility_graph::recompute_bounds(op_id o)
{
    int upper = 0;
    int lower = 0;
    for (const res_id r : resources_for(o)) {
        const int lat = res_latency_[r.value()];
        upper = std::max(upper, lat);
        lower = (lower == 0) ? lat : std::min(lower, lat);
    }
    MWL_ASSERT(upper >= 1 && lower >= 1);
    lat_upper_[o.value()] = upper;
    lat_lower_[o.value()] = lower;
}

void wordlength_compatibility_graph::check_op(op_id o) const
{
    require(o.is_valid() && o.value() < graph_->size(),
            "operation id out of range");
}

void wordlength_compatibility_graph::check_res(res_id r) const
{
    require(r.is_valid() && r.value() < resources_.size(),
            "resource id out of range");
}

} // namespace mwl
