// Word-parallel bitset kernels over raw uint64_t rows.
//
// The large-graph hot paths (WCG H-relation, scheduling-set coverage,
// clique compatibility probes) all reduce to dense set algebra over
// operation/resource universes of a few thousand elements. These kernels
// keep every such set as packed 64-bit words so membership is one test,
// intersection/union are a handful of word ops, and iteration visits set
// bits in ascending index order -- the same order the sorted adjacency
// vectors used, which is what keeps the rework bit-identical.
//
// Free functions operate on caller-owned word spans (rows of a flat
// matrix, arena rows); dyn_bitset owns its words for standalone use.

#ifndef MWL_SUPPORT_BITSET_HPP
#define MWL_SUPPORT_BITSET_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mwl {

/// Words needed to hold `bits` bits.
[[nodiscard]] constexpr std::size_t bits_words(std::size_t bits)
{
    return (bits + 63) / 64;
}

inline void bits_set(std::uint64_t* words, std::size_t i)
{
    words[i / 64] |= std::uint64_t{1} << (i % 64);
}

inline void bits_reset(std::uint64_t* words, std::size_t i)
{
    words[i / 64] &= ~(std::uint64_t{1} << (i % 64));
}

[[nodiscard]] inline bool bits_test(const std::uint64_t* words, std::size_t i)
{
    return (words[i / 64] >> (i % 64)) & 1;
}

[[nodiscard]] inline std::size_t bits_count(const std::uint64_t* words,
                                            std::size_t n_words)
{
    std::size_t total = 0;
    for (std::size_t w = 0; w < n_words; ++w) {
        total += static_cast<std::size_t>(__builtin_popcountll(words[w]));
    }
    return total;
}

inline void bits_or(std::uint64_t* dst, const std::uint64_t* src,
                    std::size_t n_words)
{
    for (std::size_t w = 0; w < n_words; ++w) {
        dst[w] |= src[w];
    }
}

inline void bits_and(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t n_words)
{
    for (std::size_t w = 0; w < n_words; ++w) {
        dst[w] &= src[w];
    }
}

/// popcount(a & ~b): how many elements of a are not in b.
[[nodiscard]] inline std::size_t bits_andnot_count(const std::uint64_t* a,
                                                   const std::uint64_t* b,
                                                   std::size_t n_words)
{
    std::size_t total = 0;
    for (std::size_t w = 0; w < n_words; ++w) {
        total += static_cast<std::size_t>(__builtin_popcountll(a[w] & ~b[w]));
    }
    return total;
}

/// True iff a is a subset of b.
[[nodiscard]] inline bool bits_subset(const std::uint64_t* a,
                                      const std::uint64_t* b,
                                      std::size_t n_words)
{
    for (std::size_t w = 0; w < n_words; ++w) {
        if ((a[w] & ~b[w]) != 0) {
            return false;
        }
    }
    return true;
}

[[nodiscard]] inline bool bits_any(const std::uint64_t* words,
                                   std::size_t n_words)
{
    for (std::size_t w = 0; w < n_words; ++w) {
        if (words[w] != 0) {
            return true;
        }
    }
    return false;
}

/// Visit every set bit in ascending index order.
template <typename Visit>
void bits_for_each(const std::uint64_t* words, std::size_t n_words,
                   Visit&& visit)
{
    for (std::size_t w = 0; w < n_words; ++w) {
        std::uint64_t word = words[w];
        while (word != 0) {
            const std::size_t bit =
                static_cast<std::size_t>(__builtin_ctzll(word));
            visit(w * 64 + bit);
            word &= word - 1;
        }
    }
}

/// Owning fixed-width bitset; width is set at construction or assign().
class dyn_bitset {
public:
    dyn_bitset() = default;
    explicit dyn_bitset(std::size_t bits)
        : bits_(bits), words_(bits_words(bits), 0)
    {
    }

    /// Resize to `bits` bits, all zero. Keeps capacity.
    void assign(std::size_t bits)
    {
        bits_ = bits;
        words_.assign(bits_words(bits), 0);
    }

    void set(std::size_t i) { bits_set(words_.data(), i); }
    void reset(std::size_t i) { bits_reset(words_.data(), i); }
    [[nodiscard]] bool test(std::size_t i) const
    {
        return bits_test(words_.data(), i);
    }
    [[nodiscard]] std::size_t count() const
    {
        return bits_count(words_.data(), words_.size());
    }
    [[nodiscard]] std::size_t size() const { return bits_; }
    [[nodiscard]] std::size_t word_count() const { return words_.size(); }
    [[nodiscard]] const std::uint64_t* words() const { return words_.data(); }
    [[nodiscard]] std::uint64_t* words() { return words_.data(); }

    /// True iff every one of the `size()` real bits is set. Bits past
    /// size() in the last word are invariantly zero.
    [[nodiscard]] bool all_set() const { return count() == bits_; }

    void or_with(const std::uint64_t* other)
    {
        bits_or(words_.data(), other, words_.size());
    }

    /// Index of the first zero bit, or size() if none.
    [[nodiscard]] std::size_t first_unset() const
    {
        for (std::size_t w = 0; w < words_.size(); ++w) {
            if (words_[w] == ~std::uint64_t{0}) {
                continue;
            }
            const std::size_t i =
                w * 64 +
                static_cast<std::size_t>(__builtin_ctzll(~words_[w]));
            return i < bits_ ? i : bits_;
        }
        return bits_;
    }

private:
    std::size_t bits_ = 0;
    std::vector<std::uint64_t> words_;
};

} // namespace mwl

#endif // MWL_SUPPORT_BITSET_HPP
