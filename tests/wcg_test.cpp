// Unit tests for src/wcg: resource-type extraction (join closure), the
// wordlength compatibility graph (H edges, latency bounds, refinement) and
// the chain/clique utilities over the schedule orientation C.
//
// Includes a reconstruction of the paper's Fig. 2 scenario and the §2.2
// motivating example (deleting {o1, '20x18 mult'} forces two multiplier
// types into any cover).

#include "model/hardware_model.hpp"
#include "support/error.hpp"
#include "wcg/chains.hpp"
#include "wcg/resource_set.hpp"
#include "wcg/wcg.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace mwl {
namespace {

/// Fig. 2-like graph: two multiplications of different shapes feeding an
/// addition.
sequencing_graph fig2_graph()
{
    sequencing_graph g;
    const op_id o1 = g.add_operation(op_shape::multiplier(12, 8), "o1");
    const op_id o2 = g.add_operation(op_shape::multiplier(20, 18), "o2");
    const op_id o3 = g.add_operation(op_shape::adder(12), "o3");
    g.add_dependency(o1, o3);
    g.add_dependency(o2, o3);
    return g;
}

// ------------------------------------------------- resource extraction --

TEST(ResourceSet, EmptyInputYieldsEmptySet)
{
    EXPECT_TRUE(extract_resource_types(std::vector<op_shape>{}).empty());
}

TEST(ResourceSet, SingleShapeYieldsItself)
{
    const std::vector<op_shape> shapes{op_shape::multiplier(6, 4)};
    const auto r = extract_resource_types(shapes);
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r[0], op_shape::multiplier(6, 4));
}

TEST(ResourceSet, AddersCloseToDistinctWidths)
{
    const std::vector<op_shape> shapes{op_shape::adder(4), op_shape::adder(8),
                                       op_shape::adder(4)};
    const auto r = extract_resource_types(shapes);
    ASSERT_EQ(r.size(), 2u); // join(add4, add8) = add8, already present
    EXPECT_EQ(r[0], op_shape::adder(4));
    EXPECT_EQ(r[1], op_shape::adder(8));
}

TEST(ResourceSet, MultiplierJoinAppears)
{
    const std::vector<op_shape> shapes{op_shape::multiplier(20, 4),
                                       op_shape::multiplier(6, 18)};
    const auto r = extract_resource_types(shapes);
    // closure = {(20,4), (18,6), (20,6)}
    ASSERT_EQ(r.size(), 3u);
    EXPECT_TRUE(std::find(r.begin(), r.end(), op_shape::multiplier(20, 6)) !=
                r.end());
}

TEST(ResourceSet, ClosureIsClosedUnderJoin)
{
    const std::vector<op_shape> shapes{
        op_shape::multiplier(10, 2), op_shape::multiplier(3, 3),
        op_shape::multiplier(7, 6), op_shape::adder(5)};
    const auto r = extract_resource_types(shapes);
    for (const op_shape& x : r) {
        for (const op_shape& y : r) {
            if (x.kind() != y.kind()) {
                continue;
            }
            const op_shape j = op_shape::join(x, y);
            EXPECT_TRUE(std::find(r.begin(), r.end(), j) != r.end())
                << "missing join of " << x << " and " << y;
        }
    }
}

TEST(ResourceSet, EveryMemberCoversSomeInputShape)
{
    // Every closure member is a join of input shapes, hence covers at
    // least one of them.
    const std::vector<op_shape> shapes{op_shape::multiplier(9, 3),
                                       op_shape::multiplier(4, 4),
                                       op_shape::multiplier(12, 2)};
    const auto r = extract_resource_types(shapes);
    for (const op_shape& res : r) {
        bool covers_any = false;
        for (const op_shape& s : shapes) {
            covers_any = covers_any || res.covers(s);
        }
        EXPECT_TRUE(covers_any) << res;
    }
}

TEST(ResourceSet, DeterministicOrder)
{
    const std::vector<op_shape> a{op_shape::adder(8), op_shape::adder(4)};
    const std::vector<op_shape> b{op_shape::adder(4), op_shape::adder(8)};
    EXPECT_EQ(extract_resource_types(a), extract_resource_types(b));
}

// ------------------------------------------------------------- H edges --

TEST(Wcg, Fig2ResourceVerticesMatchPaperStructure)
{
    const sequencing_graph g = fig2_graph();
    const sonic_model model;
    const wordlength_compatibility_graph wcg(g, model);
    // join(mul12x8, mul20x18) = mul20x18 itself, so three resource types.
    ASSERT_EQ(wcg.resource_count(), 3u);
    std::set<std::string> names;
    for (const res_id r : wcg.all_resources()) {
        names.insert(wcg.resource(r).to_string());
    }
    EXPECT_TRUE(names.contains("add12"));
    EXPECT_TRUE(names.contains("mul12x8"));
    EXPECT_TRUE(names.contains("mul20x18"));
}

TEST(Wcg, Fig2InitialHEdges)
{
    const sequencing_graph g = fig2_graph();
    const sonic_model model;
    const wordlength_compatibility_graph wcg(g, model);
    // o1 can run on its own multiplier or on the 20x18 one; o2 only on
    // 20x18; o3 only on the adder.
    EXPECT_EQ(wcg.resources_for(op_id(0)).size(), 2u);
    EXPECT_EQ(wcg.resources_for(op_id(1)).size(), 1u);
    EXPECT_EQ(wcg.resources_for(op_id(2)).size(), 1u);
    EXPECT_EQ(wcg.edge_count(), 4u);
}

TEST(Wcg, LatencyBoundsFromHEdges)
{
    const sequencing_graph g = fig2_graph();
    const sonic_model model;
    const wordlength_compatibility_graph wcg(g, model);
    // o1: own mul12x8 = ceil(20/8) = 3 cycles; in mul20x18 = ceil(38/8) = 5.
    EXPECT_EQ(wcg.latency_lower_bound(op_id(0)), 3);
    EXPECT_EQ(wcg.latency_upper_bound(op_id(0)), 5);
    // o2 has a single resource.
    EXPECT_EQ(wcg.latency_lower_bound(op_id(1)), 5);
    EXPECT_EQ(wcg.latency_upper_bound(op_id(1)), 5);
    // adders are always 2.
    EXPECT_EQ(wcg.latency_upper_bound(op_id(2)), 2);
}

TEST(Wcg, UpperBoundsVectorMatchesPerOpQueries)
{
    const sequencing_graph g = fig2_graph();
    const sonic_model model;
    const wordlength_compatibility_graph wcg(g, model);
    const std::vector<int> bounds = wcg.latency_upper_bounds();
    ASSERT_EQ(bounds.size(), g.size());
    for (const op_id o : g.all_ops()) {
        EXPECT_EQ(bounds[o.value()], wcg.latency_upper_bound(o));
    }
}

TEST(Wcg, RefinableOnlyWithStrictlyFasterAlternative)
{
    const sequencing_graph g = fig2_graph();
    const sonic_model model;
    const wordlength_compatibility_graph wcg(g, model);
    EXPECT_TRUE(wcg.refinable(op_id(0)));  // 3 < 5
    EXPECT_FALSE(wcg.refinable(op_id(1))); // single latency tier
    EXPECT_FALSE(wcg.refinable(op_id(2))); // adders all equal
}

TEST(Wcg, RefineDeletesExactlyTheTopLatencyTier)
{
    const sequencing_graph g = fig2_graph();
    const sonic_model model;
    wordlength_compatibility_graph wcg(g, model);
    const int deleted = wcg.refine_op(op_id(0));
    EXPECT_EQ(deleted, 1); // only {o1, mul20x18}
    EXPECT_EQ(wcg.resources_for(op_id(0)).size(), 1u);
    EXPECT_EQ(wcg.latency_upper_bound(op_id(0)), 3);
    EXPECT_FALSE(wcg.refinable(op_id(0)));
}

TEST(Wcg, RefineUnrefinableThrows)
{
    const sequencing_graph g = fig2_graph();
    const sonic_model model;
    wordlength_compatibility_graph wcg(g, model);
    EXPECT_THROW(wcg.refine_op(op_id(1)), precondition_error);
}

TEST(Wcg, DeleteEdgeMaintainsBothDirections)
{
    const sequencing_graph g = fig2_graph();
    const sonic_model model;
    wordlength_compatibility_graph wcg(g, model);
    // find the 20x18 resource id
    res_id big = res_id::invalid();
    for (const res_id r : wcg.all_resources()) {
        if (wcg.resource(r) == op_shape::multiplier(20, 18)) {
            big = r;
        }
    }
    ASSERT_TRUE(big.is_valid());
    EXPECT_TRUE(wcg.compatible(op_id(0), big));
    wcg.delete_edge(op_id(0), big);
    EXPECT_FALSE(wcg.compatible(op_id(0), big));
    const auto ops = wcg.ops_for(big);
    EXPECT_TRUE(std::find(ops.begin(), ops.end(), op_id(0)) == ops.end());
    EXPECT_EQ(wcg.edge_count(), 3u);
}

TEST(Wcg, DeletingLastEdgeOfOpThrows)
{
    const sequencing_graph g = fig2_graph();
    const sonic_model model;
    wordlength_compatibility_graph wcg(g, model);
    const res_id only = wcg.resources_for(op_id(1)).front();
    EXPECT_THROW(wcg.delete_edge(op_id(1), only), precondition_error);
}

TEST(Wcg, DeletingAbsentEdgeThrows)
{
    const sequencing_graph g = fig2_graph();
    const sonic_model model;
    wordlength_compatibility_graph wcg(g, model);
    // o3 (adder) is not compatible with any multiplier resource.
    res_id mul_res = res_id::invalid();
    for (const res_id r : wcg.all_resources()) {
        if (wcg.resource(r).kind() == op_kind::mul) {
            mul_res = r;
        }
    }
    ASSERT_TRUE(mul_res.is_valid());
    EXPECT_THROW(wcg.delete_edge(op_id(2), mul_res), precondition_error);
}

TEST(Wcg, ResourceAreaAndLatencyAreCached)
{
    const sequencing_graph g = fig2_graph();
    const sonic_model model;
    const wordlength_compatibility_graph wcg(g, model);
    for (const res_id r : wcg.all_resources()) {
        EXPECT_EQ(wcg.latency(r), model.latency(wcg.resource(r)));
        EXPECT_EQ(wcg.area(r), model.area(wcg.resource(r)));
    }
}

TEST(Wcg, OpsForListsCompatibleOperationsOnly)
{
    const sequencing_graph g = fig2_graph();
    const sonic_model model;
    const wordlength_compatibility_graph wcg(g, model);
    for (const res_id r : wcg.all_resources()) {
        for (const op_id o : wcg.ops_for(r)) {
            EXPECT_TRUE(wcg.resource(r).covers(g.shape(o)));
        }
    }
}

// -------------------------------------------------------------- chains --

TEST(Chains, EmptyInput)
{
    EXPECT_TRUE(longest_chain({}).empty());
    EXPECT_TRUE(is_chain({}));
}

TEST(Chains, SingletonIsAChain)
{
    const std::vector<timed_op> items{{op_id(0), 3, 2}};
    EXPECT_TRUE(is_chain(items));
    EXPECT_EQ(longest_chain(items).size(), 1u);
}

TEST(Chains, PrecedesUsesFinishTime)
{
    const timed_op a{op_id(0), 0, 2};
    const timed_op b{op_id(1), 2, 2};
    const timed_op c{op_id(2), 1, 2};
    EXPECT_TRUE(precedes(a, b));
    EXPECT_FALSE(precedes(b, a));
    EXPECT_FALSE(precedes(a, c)); // overlap
}

TEST(Chains, LongestChainOfDisjointOpsTakesAll)
{
    const std::vector<timed_op> items{
        {op_id(0), 0, 2}, {op_id(1), 2, 2}, {op_id(2), 4, 2}};
    const auto chain = longest_chain(items);
    EXPECT_EQ(chain.size(), 3u);
}

TEST(Chains, LongestChainSkipsOverlaps)
{
    const std::vector<timed_op> items{
        {op_id(0), 0, 4}, {op_id(1), 2, 4}, {op_id(2), 4, 2}};
    // 0 overlaps 1; 0 then 2 works; 1 overlaps 2... wait 1 finishes at 6,
    // 2 starts at 4: overlap. Best chain = {0, 2}.
    const auto chain = longest_chain(items);
    ASSERT_EQ(chain.size(), 2u);
    EXPECT_EQ(chain[0].op, op_id(0));
    EXPECT_EQ(chain[1].op, op_id(2));
}

TEST(Chains, AllOverlappingYieldsSingleton)
{
    const std::vector<timed_op> items{
        {op_id(0), 0, 5}, {op_id(1), 1, 5}, {op_id(2), 2, 5}};
    EXPECT_EQ(longest_chain(items).size(), 1u);
    EXPECT_FALSE(is_chain(items));
}

TEST(Chains, ChainOutputIsInTimeOrder)
{
    const std::vector<timed_op> items{
        {op_id(2), 6, 1}, {op_id(0), 0, 2}, {op_id(1), 3, 3}};
    const auto chain = longest_chain(items);
    ASSERT_EQ(chain.size(), 3u);
    for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
        EXPECT_TRUE(precedes(chain[i], chain[i + 1]));
    }
}

TEST(Chains, MixedLatenciesRespectIntervalSemantics)
{
    // back-to-back at exact finish==start boundaries is allowed
    const std::vector<timed_op> items{
        {op_id(0), 0, 3}, {op_id(1), 3, 1}, {op_id(2), 4, 5}};
    EXPECT_TRUE(is_chain(items));
    EXPECT_EQ(longest_chain(items).size(), 3u);
}

TEST(Chains, LongestChainIsMaximalForIntervalOrders)
{
    // Property check on a fixed pattern: DP result equals brute force for
    // a handful of structured inputs.
    const std::vector<timed_op> items{
        {op_id(0), 0, 2}, {op_id(1), 1, 2}, {op_id(2), 2, 2},
        {op_id(3), 4, 1}, {op_id(4), 4, 3}, {op_id(5), 7, 1}};
    const auto chain = longest_chain(items);
    // best: 0 -> 2 -> 3 -> 5  (4 elements)
    EXPECT_EQ(chain.size(), 4u);
}

} // namespace
} // namespace mwl
