// Client-side connection helpers for the allocation service, shared by
// tools/mwl_client, the serve test suite, and the serve bench -- one
// place owns endpoint parsing, connect, and the frame round-trip, so
// every consumer speaks the exact same dialect.

#ifndef MWL_SERVE_CLIENT_HPP
#define MWL_SERVE_CLIENT_HPP

#include "serve/protocol.hpp"

#include <optional>
#include <string>

namespace mwl::serve {

/// Where a server listens: `unix:PATH` or `tcp:HOST:PORT` (numeric IPv4).
struct endpoint {
    enum class kind { unix_socket, tcp };

    kind what = kind::unix_socket;
    std::string path;              ///< unix socket path
    std::string host = "127.0.0.1";
    int port = 0;
};

/// Parse an endpoint string. Throws `precondition_error` with a usage
/// message on a malformed spec.
[[nodiscard]] endpoint parse_endpoint(const std::string& text);

/// Render back to the `unix:...` / `tcp:...` spelling.
[[nodiscard]] std::string to_string(const endpoint& ep);

/// One connection to a server. Connects in the constructor (throws
/// `mwl::error` when nobody listens), closes in the destructor.
class client_connection {
public:
    explicit client_connection(const endpoint& ep);
    ~client_connection();

    client_connection(const client_connection&) = delete;
    client_connection& operator=(const client_connection&) = delete;

    [[nodiscard]] int fd() const { return fd_; }

    /// Send one request payload. Returns false when the server is gone.
    [[nodiscard]] bool send(const std::string& payload);

    /// Read one response. nullopt = the server closed the stream (EOF or
    /// a truncated frame mid-read); throws `protocol_error` on a frame
    /// the server should never produce (bad magic, oversized, grammar).
    [[nodiscard]] std::optional<response> receive();

private:
    int fd_ = -1;
};

/// Connect with retries until the server answers or `timeout_ms` passes
/// -- the standard way to wait for a just-started daemon to come up.
/// Returns nullopt on timeout.
[[nodiscard]] std::optional<int> connect_with_retry(const endpoint& ep,
                                                    int timeout_ms);

} // namespace mwl::serve

#endif // MWL_SERVE_CLIENT_HPP
