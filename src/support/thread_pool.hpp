// Work-stealing thread pool.
//
// The execution substrate of the batch engine (src/engine/): a fixed set of
// workers, each owning a deque of tasks. A worker pops its own deque LIFO
// (locality: freshly spawned subtasks run first) and steals FIFO from the
// other workers when its own deque runs dry (oldest tasks first, the ones
// most likely to fan out further). External submissions are distributed
// round-robin so a burst of jobs lands spread across workers.
//
// Two properties the allocation engine relies on:
//
//  * Deterministic result ordering. `submit` returns a future and
//    `task_group` keeps its futures in `run` order, so results are always
//    *collected* in submission order no matter which worker ran what when.
//    Tasks that write results do so into caller-preallocated slots, never
//    into shared accumulators.
//
//  * Help-while-waiting. `task_group::wait` executes pending pool tasks
//    while it blocks, so a task may submit subtasks and wait for them on
//    any pool size (including 1) without deadlock -- this is what lets a
//    per-graph sweep task fan out per-lambda subtasks on the same pool.
//
// Exceptions thrown by a task travel through its future; `task_group::wait`
// rethrows the first one after every task in the group has finished.

#ifndef MWL_SUPPORT_THREAD_POOL_HPP
#define MWL_SUPPORT_THREAD_POOL_HPP

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace mwl {

class thread_pool {
public:
    /// Start `threads` workers; 0 picks the hardware concurrency (>= 1).
    explicit thread_pool(std::size_t threads = 0);

    /// Drains every queued task (fulfilling all futures), then joins.
    ~thread_pool();

    thread_pool(const thread_pool&) = delete;
    thread_pool& operator=(const thread_pool&) = delete;

    [[nodiscard]] std::size_t size() const { return workers_.size(); }

    /// Schedule `f()`; the returned future carries its value or exception.
    template <typename F>
    auto submit(F f) -> std::future<std::invoke_result_t<F&>>
    {
        using R = std::invoke_result_t<F&>;
        auto task = std::make_shared<std::packaged_task<R()>>(std::move(f));
        std::future<R> future = task->get_future();
        post([task] { (*task)(); });
        return future;
    }

    /// Execute one pending task on the calling thread, stealing from any
    /// worker queue. Returns false when every queue is empty (tasks may
    /// still be *running* on workers). The building block of helping waits.
    bool run_one();

private:
    struct queue {
        std::mutex mutex;
        std::deque<std::function<void()>> tasks;
    };

    void post(std::function<void()> task);
    bool try_acquire(std::size_t home, std::function<void()>& out);

    void worker_loop(std::size_t self);

    std::vector<std::unique_ptr<queue>> queues_; ///< one per worker
    std::vector<std::thread> workers_;

    // Sleep/wake protocol: `epoch_` is bumped under `sleep_mutex_` on every
    // post, and idle workers wait for it to move. A worker re-reads the
    // epoch after locking, so a post between its last empty scan and the
    // wait cannot be missed.
    std::mutex sleep_mutex_;
    std::condition_variable sleep_cv_;
    std::uint64_t epoch_ = 0;
    bool stop_ = false;

    std::size_t next_queue_ = 0; ///< round-robin cursor, under sleep_mutex_
};

/// A set of related tasks on one pool, awaited together.
class task_group {
public:
    explicit task_group(thread_pool& pool) : pool_(pool) {}

    /// `task_group` must be waited before destruction (wait() clears it).
    ~task_group() { wait_nothrow(); }

    task_group(const task_group&) = delete;
    task_group& operator=(const task_group&) = delete;

    /// Schedule `f()` (must return void) as part of this group.
    template <typename F>
    void run(F f)
    {
        static_assert(std::is_void_v<std::invoke_result_t<F&>>,
                      "group tasks return their results through "
                      "caller-preallocated slots, not return values");
        futures_.push_back(pool_.submit(std::move(f)));
    }

    /// Block until every task in the group has finished, executing pending
    /// pool tasks while waiting. Rethrows the first exception thrown by a
    /// task (in `run` order); the remaining exceptions are discarded, but
    /// every task is complete when this returns.
    void wait();

    [[nodiscard]] std::size_t pending() const { return futures_.size(); }

private:
    void wait_nothrow() noexcept;

    thread_pool& pool_;
    std::vector<std::future<void>> futures_;
};

} // namespace mwl

#endif // MWL_SUPPORT_THREAD_POOL_HPP
