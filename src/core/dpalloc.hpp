// Algorithm DPAlloc (paper §2): combined scheduling, resource binding and
// wordlength selection by iterative refinement of wordlength information.
//
// Loop (paper pseudo-code):
//   1. compute the scheduling set covering every operation (§2.2),
//   2. derive latency upper bounds L_o from the current H edges,
//   3. list-schedule under the incomplete-wordlength constraint (Eqn. 3'),
//   4. run BindSelect (§2.3); bound latencies never exceed the scheduled
//      upper bounds, so the binding cannot invalidate the schedule,
//   5. if the bound design violates the latency constraint, refine the
//      wordlength information of one operation on the bound critical path
//      (§2.4) and repeat; otherwise record the feasible solution.
//
// Extensions beyond the paper's text (all documented in DESIGN.md):
//   * capacity escalation when refinement is exhausted (the paper is silent
//     on parallelism-starved instances; without this the loop cannot
//     terminate on them),
//   * options to disable individual ingredients for the ablation benches.

#ifndef MWL_CORE_DPALLOC_HPP
#define MWL_CORE_DPALLOC_HPP

#include "core/datapath.hpp"
#include "dfg/sequencing_graph.hpp"
#include "model/hardware_model.hpp"

#include <cstddef>

namespace mwl {

struct dpalloc_options {
    /// BindSelect growth pass (paper default on; off for ablation).
    bool enable_growth = true;
    /// Cheapest-resource reassignment after covering (wordlength selection).
    bool reassign_cheapest = true;
    /// Ablation: use the classic per-type constraint (Eqn. 2) instead of
    /// the paper's incomplete-wordlength constraint (Eqn. 3').
    bool classic_constraint = false;
    /// Run the incremental pipeline: event-driven scheduling, memoized /
    /// warm-started scheduling-set covers keyed on the WCG edge version,
    /// chain caching in BindSelect, and reused scheduling buffers across
    /// refinement iterations. `false` re-derives everything from scratch
    /// every iteration (the original pipeline) and exists for the
    /// regression tests and bench/iteration_scaling.cpp; both settings
    /// produce byte-identical results (see PERF.md).
    bool incremental = true;
    /// Initial instances per scheduling-set member (paper: 1).
    int initial_capacity = 1;
    /// Safety bound on refinement iterations; never reached in practice
    /// (each iteration deletes an H edge or raises capacity).
    std::size_t max_iterations = 1000000;

    /// Equal options produce identical results on identical inputs; the
    /// batch engine's cache key (src/engine/batch_engine.hpp) relies on it.
    friend bool operator==(const dpalloc_options&,
                           const dpalloc_options&) = default;
};

struct dpalloc_stats {
    std::size_t iterations = 0;    ///< schedule/bind rounds executed
    std::size_t refinements = 0;   ///< wordlength refinement steps
    std::size_t edges_deleted = 0; ///< H edges removed by refinement
    int final_capacity = 1;        ///< 1 unless escalation was needed
    std::size_t escalations = 0;   ///< capacity increments (0 = pure paper)
    bool cover_always_minimum = true;
};

struct dpalloc_result {
    datapath path;
    dpalloc_stats stats;
};

/// Allocate a datapath for `graph` under latency constraint `lambda`
/// (control steps). Throws `infeasible_error` when lambda is below the
/// graph's minimum latency, `precondition_error` on malformed input.
/// The result is always feasible and validator-clean.
[[nodiscard]] dpalloc_result dpalloc(const sequencing_graph& graph,
                                     const hardware_model& model, int lambda,
                                     const dpalloc_options& options = {});

} // namespace mwl

#endif // MWL_CORE_DPALLOC_HPP
