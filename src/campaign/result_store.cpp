#include "campaign/result_store.hpp"

#include "support/atomic_write.hpp"

#include <cerrno>
#include <cinttypes>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <vector>

namespace mwl {

namespace {

const char* spec_file = "spec.campaign";
const char* journal_file = "journal.log";
const char* snapshot_file = "snapshot.log";

std::string hex16(std::uint64_t value)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016" PRIx64, value);
    return buf;
}

[[noreturn]] void bad_store(const std::string& message)
{
    throw store_format_error(message);
}

/// key=value tokenizer for record payloads. `detail=` swallows the rest
/// of the payload (error messages contain spaces) and must come last.
struct payload_fields {
    explicit payload_fields(const std::string& payload)
    {
        std::size_t pos = 0;
        while (pos < payload.size()) {
            while (pos < payload.size() && payload[pos] == ' ') {
                ++pos;
            }
            const std::size_t eq = payload.find('=', pos);
            if (eq == std::string::npos) {
                bad_store("malformed record field near '" +
                          payload.substr(pos) + "'");
            }
            const std::string key = payload.substr(pos, eq - pos);
            if (key == "detail") {
                fields.emplace_back(key, payload.substr(eq + 1));
                return;
            }
            const std::size_t end =
                std::min(payload.find(' ', eq + 1), payload.size());
            fields.emplace_back(key,
                                payload.substr(eq + 1, end - (eq + 1)));
            pos = end;
        }
    }

    [[nodiscard]] const std::string& get(const char* key) const
    {
        for (const auto& [k, v] : fields) {
            if (k == key) {
                return v;
            }
        }
        bad_store(std::string("record is missing field '") + key + "'");
    }

    std::vector<std::pair<std::string, std::string>> fields;
};

std::uint64_t parse_u64_field(const std::string& text, const char* what)
{
    char* end = nullptr;
    errno = 0;
    const std::uint64_t value = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end == text.c_str() || *end != '\0') {
        bad_store(std::string("bad ") + what + " '" + text + "'");
    }
    return value;
}

int parse_int_field(const std::string& text, const char* what)
{
    char* end = nullptr;
    errno = 0;
    const long value = std::strtol(text.c_str(), &end, 10);
    if (errno != 0 || end == text.c_str() || *end != '\0' ||
        value < INT_MIN || value > INT_MAX) {
        bad_store(std::string("bad ") + what + " '" + text + "'");
    }
    return static_cast<int>(value);
}

std::uint64_t parse_hex_field(const std::string& text, const char* what)
{
    char* end = nullptr;
    errno = 0;
    const std::uint64_t value = std::strtoull(text.c_str(), &end, 16);
    if (errno != 0 || end == text.c_str() || *end != '\0') {
        bad_store(std::string("bad ") + what + " '" + text + "'");
    }
    return value;
}

struct header {
    int format_version = 0;
    std::uint64_t fingerprint = 0;
    std::size_t points = 0;
};

header parse_header(const std::string& payload, const std::string& where)
{
    std::istringstream in(payload);
    std::string tag;
    in >> tag;
    if (tag != "campaign-store") {
        bad_store(where + ": first record is not a campaign-store header");
    }
    const payload_fields fields(payload.substr(tag.size()));
    header h;
    h.format_version =
        parse_int_field(fields.get("format_version"), "format_version");
    if (h.format_version != store_format_version) {
        bad_store(where + ": incompatible checkpoint format_version " +
                  std::to_string(h.format_version) + " (this build reads " +
                  std::to_string(store_format_version) + ")");
    }
    h.fingerprint =
        parse_hex_field(fields.get("fingerprint"), "fingerprint");
    h.points = parse_u64_field(fields.get("points"), "points");
    return h;
}

} // namespace

std::string format_double(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    return buf;
}

std::string to_payload(const point_result& result)
{
    std::string payload = "point index=" + std::to_string(result.index) +
                          " key=" + result.key +
                          " lambda=" + std::to_string(result.lambda) +
                          " latency=" + std::to_string(result.latency) +
                          " area=" + format_double(result.area);
    if (result.ok()) {
        payload += " status=ok";
    } else {
        payload += " status=error detail=" + result.error;
    }
    return payload;
}

point_result parse_point_payload(const std::string& payload)
{
    std::istringstream in(payload);
    std::string tag;
    in >> tag;
    if (tag != "point") {
        bad_store("record is not a point record: '" + payload + "'");
    }
    const payload_fields fields(payload.substr(tag.size()));
    point_result r;
    r.index = parse_u64_field(fields.get("index"), "index");
    r.key = fields.get("key");
    r.lambda = parse_int_field(fields.get("lambda"), "lambda");
    r.latency = parse_int_field(fields.get("latency"), "latency");
    const std::string& area = fields.get("area");
    char* end = nullptr;
    r.area = std::strtod(area.c_str(), &end);
    if (end == area.c_str() || *end != '\0') {
        bad_store("bad area '" + area + "'");
    }
    const std::string& status = fields.get("status");
    if (status == "error") {
        r.error = fields.get("detail");
        if (r.error.empty()) {
            r.error = "unknown error";
        }
    } else if (status != "ok") {
        bad_store("bad status '" + status + "'");
    }
    return r;
}

std::string result_store::header_payload() const
{
    return std::string("campaign-store format_version=") +
           std::to_string(store_format_version) +
           " fingerprint=" + hex16(fingerprint_) +
           " points=" + std::to_string(total_points_);
}

bool result_store::exists(const std::filesystem::path& dir)
{
    return std::filesystem::exists(dir / spec_file) ||
           std::filesystem::exists(dir / journal_file) ||
           std::filesystem::exists(dir / snapshot_file);
}

std::string result_store::load_spec_text(const std::filesystem::path& dir)
{
    std::string text;
    if (!read_file(dir / spec_file, text)) {
        bad_store(dir.string() + " is not a campaign directory (no " +
                  spec_file + ")");
    }
    return text;
}

result_store result_store::create(const std::filesystem::path& dir,
                                  const std::string& spec_text,
                                  std::uint64_t fingerprint,
                                  std::size_t total_points,
                                  std::size_t checkpoint_every)
{
    require(checkpoint_every >= 1, "checkpoint_every must be >= 1");
    std::filesystem::create_directories(dir);
    if (exists(dir)) {
        bad_store(dir.string() +
                  " already contains a campaign; use --resume");
    }
    result_store store;
    store.dir_ = dir;
    store.fingerprint_ = fingerprint;
    store.total_points_ = total_points;
    store.checkpoint_every_ = checkpoint_every;
    // Spec first (not a counted store write), then the journal header --
    // a crash between the two resumes as an empty campaign.
    atomic_write_file(dir / spec_file, spec_text);
    store.journal_ = std::make_unique<journal_writer>(dir / journal_file);
    store.journal_->append(store.header_payload());
    return store;
}

result_store result_store::open(
    const std::filesystem::path& dir,
    std::optional<std::uint64_t> expected_fingerprint,
    std::size_t checkpoint_every)
{
    require(checkpoint_every >= 1, "checkpoint_every must be >= 1");
    result_store store;
    store.dir_ = dir;
    store.checkpoint_every_ = checkpoint_every;
    if (!exists(dir)) {
        bad_store(dir.string() + " is not a campaign directory");
    }

    bool have_header = false;
    const auto adopt_header = [&](const header& h, const std::string& where) {
        if (expected_fingerprint && h.fingerprint != *expected_fingerprint) {
            bad_store(where + ": checkpoint was built from a different "
                              "spec (fingerprint " +
                      hex16(h.fingerprint) + ", spec expands to " +
                      hex16(*expected_fingerprint) + ")");
        }
        if (have_header && h.fingerprint != store.fingerprint_) {
            bad_store(where + ": snapshot and journal disagree on the "
                              "campaign fingerprint");
        }
        store.fingerprint_ = h.fingerprint;
        store.total_points_ = h.points;
        have_header = true;
    };
    const auto ingest = [&](const std::vector<std::string>& payloads,
                            std::size_t first, std::size_t& counter) {
        for (std::size_t i = first; i < payloads.size(); ++i) {
            point_result r = parse_point_payload(payloads[i]);
            ++counter;
            if (!store.results_.emplace(r.index, std::move(r)).second) {
                ++store.load_stats_.duplicates;
            }
        }
    };

    // Snapshot: atomically replaced, so a torn tail here means something
    // other than our writer touched it -- corruption, not a crash.
    const std::filesystem::path snapshot = dir / snapshot_file;
    if (std::filesystem::exists(snapshot)) {
        const journal_load loaded = load_journal(snapshot);
        if (loaded.dropped_tail) {
            bad_store("snapshot.log: " + loaded.tail_error +
                      " (snapshots are atomic; this file is corrupt)");
        }
        if (loaded.payloads.empty()) {
            bad_store("snapshot.log: empty snapshot");
        }
        adopt_header(parse_header(loaded.payloads.front(), "snapshot.log"),
                     "snapshot.log");
        ingest(loaded.payloads, 1, store.load_stats_.snapshot_records);
    }

    // Journal: a torn tail is the expected crash signature; cut it off
    // before reopening for append.
    const std::filesystem::path journal = dir / journal_file;
    journal_load loaded = load_journal(journal);
    store.load_stats_.dropped_tail = loaded.dropped_tail;
    store.load_stats_.tail_error = loaded.tail_error;
    if (!loaded.payloads.empty()) {
        adopt_header(parse_header(loaded.payloads.front(), "journal.log"),
                     "journal.log");
        ingest(loaded.payloads, 1, store.load_stats_.journal_records);
    }
    if (!have_header) {
        // Both files empty or missing: a crash before the first header
        // write. Only the caller's spec can say what the campaign is.
        if (!expected_fingerprint) {
            bad_store(dir.string() +
                      ": store has no header yet; open it via --resume");
        }
        store.fingerprint_ = *expected_fingerprint;
    }

    store.journal_ = std::make_unique<journal_writer>(
        journal, loaded.dropped_tail || !loaded.payloads.empty()
                     ? loaded.valid_bytes
                     : 0);
    if (loaded.payloads.empty()) {
        // Empty (or headerless) journal: start it properly.
        store.journal_->append(store.header_payload());
    }
    return store;
}

void result_store::record(const point_result& result)
{
    if (!results_.emplace(result.index, result).second) {
        return;
    }
    journal_->append(to_payload(result));
    if (++since_checkpoint_ >= checkpoint_every_) {
        flush_checkpoint();
    }
}

void result_store::flush_checkpoint()
{
    if (since_checkpoint_ == 0) {
        return;
    }
    std::string snapshot = frame_record(header_payload());
    for (const auto& [index, result] : results_) {
        snapshot += frame_record(to_payload(result));
    }
    atomic_write_file(dir_ / snapshot_file, snapshot,
                      /*fault_point=*/true);
    reset_journal();
    since_checkpoint_ = 0;
}

void result_store::reset_journal()
{
    journal_.reset(); // close before replacing the inode
    atomic_write_file(dir_ / journal_file, frame_record(header_payload()),
                      /*fault_point=*/true);
    journal_ = std::make_unique<journal_writer>(dir_ / journal_file);
}

} // namespace mwl
