// Error handling primitives shared by every mwl library.
//
// Policy (follows the C++ Core Guidelines E.* rules):
//  * `mwl::error` and subclasses signal violated *preconditions of the
//    public API* and infeasible problem instances -- conditions a caller
//    can anticipate and handle.
//  * `check()` / `require()` are the throwing entry points; internal
//    invariants use `MWL_ASSERT`, which terminates, because an internal
//    invariant violation is a bug, not an event.

#ifndef MWL_SUPPORT_ERROR_HPP
#define MWL_SUPPORT_ERROR_HPP

#include <stdexcept>
#include <string>

namespace mwl {

/// Base class of every exception thrown by the mwl libraries.
class error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// A caller violated a documented precondition of a public API.
class precondition_error : public error {
public:
    using error::error;
};

/// The problem instance admits no solution (e.g. latency constraint below
/// the minimum achievable latency).
class infeasible_error : public error {
public:
    using error::error;
};

namespace detail {
[[noreturn]] void throw_precondition(const char* message);
[[noreturn]] void throw_infeasible(const char* message);
} // namespace detail

/// Throw `precondition_error` with `message` unless `condition` holds.
/// The C-string overload is the hot one -- these checks guard accessors
/// (wcg::latency et al.) called millions of times per allocation, so it is
/// inline, allocates nothing, and moves the throw out of line.
inline void require(bool condition, const char* message)
{
    if (!condition) [[unlikely]] {
        detail::throw_precondition(message);
    }
}
void require(bool condition, const std::string& message);

/// Throw `infeasible_error` with `message` unless `condition` holds.
inline void require_feasible(bool condition, const char* message)
{
    if (!condition) [[unlikely]] {
        detail::throw_infeasible(message);
    }
}
void require_feasible(bool condition, const std::string& message);

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line);
} // namespace detail

} // namespace mwl

/// Internal invariant check: terminates with a diagnostic on failure.
/// Active in all build types -- allocation problems are small and the cost
/// of checking is negligible next to the cost of a silent wrong answer.
#define MWL_ASSERT(expr)                                                    \
    ((expr) ? static_cast<void>(0)                                          \
            : ::mwl::detail::assert_fail(#expr, __FILE__, __LINE__))

#endif // MWL_SUPPORT_ERROR_HPP
