// Independent exhaustive optimum for tiny instances.
//
// Used by the test-suite to cross-validate the ILP path (formulation +
// simplex + branch and bound) and to sanity-bound the heuristics: it
// enumerates every (resource type, start time) assignment per operation
// with precedence pruning, evaluating the needed instance count per type as
// the maximum time-overlap (exact for equal-length intervals). Exponential
// by design -- callers must keep |O| small (<= ~6).

#ifndef MWL_ILP_EXHAUSTIVE_HPP
#define MWL_ILP_EXHAUSTIVE_HPP

#include "dfg/sequencing_graph.hpp"
#include "model/hardware_model.hpp"

#include <cstdint>
#include <optional>

namespace mwl {

/// Minimum total area over all feasible schedules/bindings/wordlength
/// selections under `lambda`, or nullopt if the enumeration exceeds
/// `max_states` (safety valve) or no feasible solution exists... which
/// cannot happen for lambda >= the graph's minimum latency.
[[nodiscard]] std::optional<double> exhaustive_optimal_area(
    const sequencing_graph& graph, const hardware_model& model, int lambda,
    std::uint64_t max_states = 50000000);

} // namespace mwl

#endif // MWL_ILP_EXHAUSTIVE_HPP
