// google-benchmark micro-suite for the individual subsystems: WCG
// construction, minimum scheduling set, the two schedulers, BindSelect,
// the full DPAlloc loop, and one simplex solve. Sizes are parameterised so
// the polynomial scaling of each stage is visible from the timings.

#include "bind/bind_select.hpp"
#include "core/dpalloc.hpp"
#include "dfg/analysis.hpp"
#include "ilp/formulation.hpp"
#include "lp/simplex.hpp"
#include "model/hardware_model.hpp"
#include "sched/force_directed.hpp"
#include "sched/incomplete_scheduler.hpp"
#include "sched/scheduling_set.hpp"
#include "support/arena.hpp"
#include "support/bitset.hpp"
#include "tgff/corpus.hpp"
#include "wcg/wcg.hpp"

#include <benchmark/benchmark.h>

#include <set>

namespace {

using namespace mwl;

sequencing_graph benchmark_graph(std::size_t n)
{
    rng random(0xBEEF + n);
    tgff_options opts;
    opts.n_ops = n;
    return generate_tgff(opts, random);
}

void bm_wcg_construction(benchmark::State& state)
{
    const sequencing_graph g =
        benchmark_graph(static_cast<std::size_t>(state.range(0)));
    const sonic_model model;
    for (auto _ : state) {
        wordlength_compatibility_graph wcg(g, model);
        benchmark::DoNotOptimize(wcg.edge_count());
    }
}
BENCHMARK(bm_wcg_construction)->Arg(8)->Arg(16)->Arg(24);

void bm_scheduling_set(benchmark::State& state)
{
    const sequencing_graph g =
        benchmark_graph(static_cast<std::size_t>(state.range(0)));
    const sonic_model model;
    const wordlength_compatibility_graph wcg(g, model);
    for (auto _ : state) {
        benchmark::DoNotOptimize(min_scheduling_set(wcg).members.size());
    }
}
BENCHMARK(bm_scheduling_set)->Arg(8)->Arg(16)->Arg(24);

void bm_incomplete_schedule(benchmark::State& state)
{
    const sequencing_graph g =
        benchmark_graph(static_cast<std::size_t>(state.range(0)));
    const sonic_model model;
    const wordlength_compatibility_graph wcg(g, model);
    for (auto _ : state) {
        benchmark::DoNotOptimize(schedule_incomplete(wcg).length);
    }
}
BENCHMARK(bm_incomplete_schedule)->Arg(8)->Arg(16)->Arg(24);

void bm_force_directed(benchmark::State& state)
{
    const sequencing_graph g =
        benchmark_graph(static_cast<std::size_t>(state.range(0)));
    const sonic_model model;
    const std::vector<int> native = native_latencies(g, model);
    const int horizon = critical_path_length(g, native) + 4;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            force_directed_schedule(g, native, horizon).size());
    }
}
BENCHMARK(bm_force_directed)->Arg(8)->Arg(16)->Arg(24);

void bm_bind_select(benchmark::State& state)
{
    const sequencing_graph g =
        benchmark_graph(static_cast<std::size_t>(state.range(0)));
    const sonic_model model;
    const wordlength_compatibility_graph wcg(g, model);
    const incomplete_schedule_result sched = schedule_incomplete(wcg);
    const std::vector<int> upper = wcg.latency_upper_bounds();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            bind_select(wcg, sched.start, upper).total_area);
    }
}
BENCHMARK(bm_bind_select)->Arg(8)->Arg(16)->Arg(24);

void bm_dpalloc_full(benchmark::State& state)
{
    const sequencing_graph g =
        benchmark_graph(static_cast<std::size_t>(state.range(0)));
    const sonic_model model;
    const int lambda = relaxed_lambda(min_latency(g, model), 0.15);
    for (auto _ : state) {
        benchmark::DoNotOptimize(dpalloc(g, model, lambda).path.total_area);
    }
}
BENCHMARK(bm_dpalloc_full)->Arg(8)->Arg(16)->Arg(24);

// -- support kernels ----------------------------------------------------
//
// The word-parallel bitset kernels and the bump arena back the large-graph
// hot paths (support/bitset.hpp, support/arena.hpp). These arms pit each
// against the idiomatic std:: container it replaced, at the set sizes the
// |O| = 500-2000 tier actually sees.

void bm_bitset_andnot_count(benchmark::State& state)
{
    const std::size_t bits = static_cast<std::size_t>(state.range(0));
    rng random(0xB175 + bits);
    std::vector<std::uint64_t> a(bits_words(bits), 0);
    std::vector<std::uint64_t> b(bits_words(bits), 0);
    for (std::size_t i = 0; i < bits; ++i) {
        if (random.chance(0.3)) {
            bits_set(a.data(), i);
        }
        if (random.chance(0.3)) {
            bits_set(b.data(), i);
        }
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            bits_andnot_count(a.data(), b.data(), a.size()));
    }
}
BENCHMARK(bm_bitset_andnot_count)->Arg(512)->Arg(1024)->Arg(2048);

void bm_stdset_difference_count(benchmark::State& state)
{
    // Reference arm: the same |A \ B| query over sorted node sets, the
    // representation the bitset kernels replaced.
    const std::size_t bits = static_cast<std::size_t>(state.range(0));
    rng random(0xB175 + bits);
    std::set<std::uint32_t> a;
    std::set<std::uint32_t> b;
    for (std::size_t i = 0; i < bits; ++i) {
        if (random.chance(0.3)) {
            a.insert(static_cast<std::uint32_t>(i));
        }
        if (random.chance(0.3)) {
            b.insert(static_cast<std::uint32_t>(i));
        }
    }
    for (auto _ : state) {
        std::size_t count = 0;
        for (const std::uint32_t v : a) {
            count += b.count(v) == 0 ? 1u : 0u;
        }
        benchmark::DoNotOptimize(count);
    }
}
BENCHMARK(bm_stdset_difference_count)->Arg(512)->Arg(1024)->Arg(2048);

void bm_arena_scratch_rows(benchmark::State& state)
{
    // One CSR-style scratch build per iteration: 256 rows of varying
    // length from a rewound arena (the incomplete-scheduler S(o) pattern).
    const std::size_t rows = static_cast<std::size_t>(state.range(0));
    bump_arena arena;
    for (auto _ : state) {
        arena.reset();
        for (std::size_t r = 0; r < rows; ++r) {
            const std::span<std::size_t> row =
                arena.alloc<std::size_t>(r % 7 + 1);
            row[0] = r;
            benchmark::DoNotOptimize(row.data());
        }
    }
}
BENCHMARK(bm_arena_scratch_rows)->Arg(256)->Arg(1024)->Arg(2048);

void bm_vector_scratch_rows(benchmark::State& state)
{
    // Reference arm: the per-row heap vectors the arena replaced.
    const std::size_t rows = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        std::vector<std::vector<std::size_t>> table(rows);
        for (std::size_t r = 0; r < rows; ++r) {
            table[r].resize(r % 7 + 1);
            table[r][0] = r;
        }
        benchmark::DoNotOptimize(table.data());
    }
}
BENCHMARK(bm_vector_scratch_rows)->Arg(256)->Arg(1024)->Arg(2048);

void bm_ilp_build(benchmark::State& state)
{
    const sequencing_graph g =
        benchmark_graph(static_cast<std::size_t>(state.range(0)));
    const sonic_model model;
    const int lambda = min_latency(g, model);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            build_ilp(g, model, lambda).problem.n_vars());
    }
}
BENCHMARK(bm_ilp_build)->Arg(4)->Arg(8);

void bm_simplex_relaxation(benchmark::State& state)
{
    const sequencing_graph g =
        benchmark_graph(static_cast<std::size_t>(state.range(0)));
    const sonic_model model;
    const ilp_model m = build_ilp(g, model, min_latency(g, model));
    for (auto _ : state) {
        benchmark::DoNotOptimize(solve_lp(m.problem).objective);
    }
}
BENCHMARK(bm_simplex_relaxation)->Arg(4)->Arg(6)->Arg(8);

} // namespace
