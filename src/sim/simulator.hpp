// Cycle-accurate fixed-point execution of an allocated datapath.
//
// A second, *executable* correctness check on top of the structural
// validator: the simulator walks the schedule cycle by cycle, dispatches
// each operation to its bound resource instance at its start step, refuses
// to read operands that have not been produced yet or to double-book an
// instance, and applies fixed-point semantics (two's-complement wrap at
// the operation's own wordlength). Because a wider resource computes the
// same integer result as the operation's native width, a key theorem holds
// and is tested: *allocation never changes values* -- any two valid
// datapaths for the same graph and inputs produce identical results.

#ifndef MWL_SIM_SIMULATOR_HPP
#define MWL_SIM_SIMULATOR_HPP

#include "core/datapath.hpp"
#include "dfg/sequencing_graph.hpp"

#include <cstdint>
#include <vector>

namespace mwl {

/// External operand values. Operand port p of operation o takes the p-th
/// predecessor's result; ports beyond the predecessor count take the next
/// unused entry of `external[o]` (so sources provide both operands,
/// single-predecessor adders provide one, etc.).
using sim_inputs = std::vector<std::vector<std::int64_t>>;

struct sim_result {
    std::vector<std::int64_t> value_of_op; ///< result per op id
    int cycles = 0;                        ///< executed schedule length
};

/// Truncate `value` to `width`-bit two's complement.
[[nodiscard]] std::int64_t wrap_to_width(std::int64_t value, int width);

/// Reference semantics: evaluate the graph in topological order, no
/// schedule involved. Throws `precondition_error` if `external` does not
/// supply exactly the operands the graph structure requires.
[[nodiscard]] sim_result reference_evaluate(const sequencing_graph& graph,
                                            const sim_inputs& external);

/// Execute `path` cycle by cycle. Throws `mwl::error` on any timing or
/// structural violation encountered while executing (operand not ready,
/// instance busy, op bound to an incompatible instance).
[[nodiscard]] sim_result simulate_datapath(const sequencing_graph& graph,
                                           const datapath& path,
                                           const sim_inputs& external);

} // namespace mwl

#endif // MWL_SIM_SIMULATOR_HPP
