// Unit tests for src/improve: every accepted move keeps the datapath
// valid, area never increases, and the passes do what they claim on
// constructed scenarios.

#include "core/dpalloc.hpp"
#include "core/validate.hpp"
#include "dfg/analysis.hpp"
#include "improve/local_search.hpp"
#include "model/hardware_model.hpp"
#include "support/error.hpp"
#include "tgff/corpus.hpp"

#include <gtest/gtest.h>

namespace mwl {
namespace {

TEST(Improve, NeverWorsensAndStaysValidOnRandomCorpus)
{
    const sonic_model model;
    const auto corpus = make_corpus(12, 8, model, 61);
    for (const corpus_entry& e : corpus) {
        for (const double slack : {0.0, 0.2}) {
            const int lambda = relaxed_lambda(e.lambda_min, slack);
            const dpalloc_result seed = dpalloc(e.graph, model, lambda);
            const improve_result improved =
                improve_datapath(e.graph, model, seed.path, lambda);
            require_valid(e.graph, model, improved.path, lambda);
            EXPECT_LE(improved.path.total_area,
                      seed.path.total_area + 1e-9);
            EXPECT_GE(improved.area_saved, -1e-9);
        }
    }
}

TEST(Improve, DownsizesOversizedInstance)
{
    // Hand-build a valid datapath with a gratuitously wide adder.
    sequencing_graph g;
    const op_id a = g.add_operation(op_shape::adder(8));
    const sonic_model model;
    datapath path;
    path.start = {0};
    path.instance_of_op = {0};
    datapath_instance inst;
    inst.shape = op_shape::adder(20); // oversized
    inst.latency = model.latency(inst.shape);
    inst.area = model.area(inst.shape);
    inst.ops = {a};
    path.instances.push_back(inst);
    path.total_area = inst.area;
    path.latency = 2;
    require_valid(g, model, path, 4);

    const improve_result improved = improve_datapath(g, model, path, 4);
    ASSERT_EQ(improved.path.instances.size(), 1u);
    EXPECT_EQ(improved.path.instances[0].shape, op_shape::adder(8));
    EXPECT_DOUBLE_EQ(improved.path.total_area, 8.0);
    EXPECT_DOUBLE_EQ(improved.area_saved, 12.0);
}

TEST(Improve, MergesSerialisableInstances)
{
    // Two serialised same-shape mults on *separate* instances: rebinding
    // one onto the other's instance halves the multiplier area.
    sequencing_graph g;
    const op_id m1 = g.add_operation(op_shape::multiplier(8, 8));
    const op_id m2 = g.add_operation(op_shape::multiplier(8, 8));
    const sonic_model model;
    datapath path;
    path.start = {0, 2};
    path.instance_of_op = {0, 1};
    for (const op_id o : {m1, m2}) {
        datapath_instance inst;
        inst.shape = op_shape::multiplier(8, 8);
        inst.latency = model.latency(inst.shape);
        inst.area = model.area(inst.shape);
        inst.ops = {o};
        path.instances.push_back(inst);
        path.total_area += inst.area;
    }
    path.latency = 4;
    require_valid(g, model, path, 4);

    const improve_result improved = improve_datapath(g, model, path, 4);
    EXPECT_EQ(improved.path.instances.size(), 1u);
    EXPECT_DOUBLE_EQ(improved.path.total_area, 64.0);
}

TEST(Improve, CompactionShortensSparseSchedules)
{
    // A valid but loose schedule: compaction pulls ops earlier.
    sequencing_graph g;
    const op_id a = g.add_operation(op_shape::adder(8));
    const op_id b = g.add_operation(op_shape::adder(8));
    g.add_dependency(a, b);
    const sonic_model model;
    datapath path;
    path.start = {3, 9}; // loose
    path.instance_of_op = {0, 0};
    datapath_instance inst;
    inst.shape = op_shape::adder(8);
    inst.latency = 2;
    inst.area = 8.0;
    inst.ops = {a, b};
    path.instances.push_back(inst);
    path.total_area = 8.0;
    path.latency = 11;
    require_valid(g, model, path, 12);

    const improve_result improved = improve_datapath(g, model, path, 12);
    EXPECT_EQ(improved.path.start[a.value()], 0);
    EXPECT_EQ(improved.path.start[b.value()], 2);
    EXPECT_EQ(improved.path.latency, 4);
}

TEST(Improve, RespectsLatencyConstraint)
{
    // Rebinding must not be accepted when it would stretch past lambda:
    // two parallel mults at lambda_min cannot merge.
    sequencing_graph g;
    g.add_operation(op_shape::multiplier(8, 8));
    g.add_operation(op_shape::multiplier(8, 8));
    const sonic_model model;
    const dpalloc_result seed = dpalloc(g, model, 2);
    ASSERT_EQ(seed.path.instances.size(), 2u);
    const improve_result improved =
        improve_datapath(g, model, seed.path, 2);
    EXPECT_EQ(improved.path.instances.size(), 2u); // merge would violate
}

TEST(Improve, InvalidSeedThrows)
{
    sequencing_graph g;
    g.add_operation(op_shape::adder(8));
    const sonic_model model;
    datapath bogus; // empty/inconsistent
    EXPECT_THROW(
        static_cast<void>(improve_datapath(g, model, bogus, 4)), error);
}

TEST(Improve, DisabledMovesAreNoOps)
{
    const sonic_model model;
    const auto corpus = make_corpus(10, 3, model, 63);
    for (const corpus_entry& e : corpus) {
        const int lambda = relaxed_lambda(e.lambda_min, 0.2);
        const dpalloc_result seed = dpalloc(e.graph, model, lambda);
        improve_options off;
        off.enable_downsize = false;
        off.enable_rebind = false;
        off.enable_compaction = false;
        const improve_result r =
            improve_datapath(e.graph, model, seed.path, lambda, off);
        EXPECT_DOUBLE_EQ(r.path.total_area, seed.path.total_area);
        EXPECT_EQ(r.moves_applied, 0u);
    }
}

TEST(Improve, IdempotentOnItsOwnOutput)
{
    const sonic_model model;
    const auto corpus = make_corpus(10, 3, model, 67);
    for (const corpus_entry& e : corpus) {
        const int lambda = relaxed_lambda(e.lambda_min, 0.3);
        const dpalloc_result seed = dpalloc(e.graph, model, lambda);
        const improve_result once =
            improve_datapath(e.graph, model, seed.path, lambda);
        const improve_result twice =
            improve_datapath(e.graph, model, once.path, lambda);
        EXPECT_DOUBLE_EQ(twice.path.total_area, once.path.total_area);
    }
}

} // namespace
} // namespace mwl
