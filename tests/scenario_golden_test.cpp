// The golden allocation-quality regression gate (`ctest -L scenarios`).
//
// For every named scenario, recompute the quality report under the
// protocol recorded in its checked-in golden (tests/goldens/<name>.json)
// and fail -- printing the readable per-metric drift table -- if any
// allocator's area, latency, or FU/register/mux inventory moved. The
// allocators are deterministic, so the comparison is exact; an
// *intentional* quality change is shipped by refreshing the goldens:
//
//   ./build/mwl_scenarios --update-goldens tests/goldens
//
// and justifying the diff in the commit message (README: "Scenario corpus
// & quality goldens"). MWL_GOLDEN_DIR is injected by CMake and points at
// the source tree's tests/goldens.

#include "core/quality.hpp"
#include "model/hardware_model.hpp"
#include "scenarios/scenarios.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

namespace mwl {
namespace {

std::filesystem::path golden_dir()
{
    return std::filesystem::path(MWL_GOLDEN_DIR);
}

std::string slurp(const std::filesystem::path& path)
{
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

TEST(ScenarioGoldens, EveryScenarioHasAGolden)
{
    for (const scenario& s : all_scenarios()) {
        EXPECT_TRUE(
            std::filesystem::exists(golden_dir() / (s.name + ".json")))
            << "missing golden for " << s.name
            << "; create it with: mwl_scenarios --update-goldens "
               "tests/goldens";
    }
}

TEST(ScenarioGoldens, NoStrayGoldenFiles)
{
    // A golden whose scenario was renamed or removed would silently stop
    // gating anything; fail instead.
    std::set<std::string> names;
    for (const scenario& s : all_scenarios()) {
        names.insert(s.name + ".json");
    }
    for (const auto& entry : std::filesystem::directory_iterator(
             golden_dir())) {
        EXPECT_TRUE(names.count(entry.path().filename().string()) == 1)
            << "stray golden " << entry.path()
            << " matches no registered scenario";
    }
}

TEST(ScenarioGoldens, AllocationQualityMatchesTheGoldens)
{
    const sonic_model model;
    std::vector<metric_drift> drifts;
    for (const scenario& s : all_scenarios()) {
        const std::filesystem::path path = golden_dir() / (s.name + ".json");
        if (!std::filesystem::exists(path)) {
            continue; // EveryScenarioHasAGolden already fails the suite
        }
        const quality_report golden = parse_quality_report(slurp(path));
        // Recompute under the golden's own recorded options, so the gate
        // cannot drift apart from the goldens' measurement protocol.
        const quality_report current =
            measure_quality_report(s.graph, s.name, model, golden.options);
        const std::vector<metric_drift> delta = diff_quality(golden, current);
        drifts.insert(drifts.end(), delta.begin(), delta.end());
    }
    if (!drifts.empty()) {
        std::ostringstream rendered;
        render_drift_table(drifts).print(rendered);
        FAIL() << "allocation quality drifted from tests/goldens ("
               << drifts.size() << " metric(s)):\n"
               << rendered.str()
               << "If intentional, refresh with: mwl_scenarios "
                  "--update-goldens tests/goldens";
    }
}

} // namespace
} // namespace mwl
