// Concurrent Pareto sweep.
//
// `pareto_sweep` (src/core/pareto.hpp) walks lambda serially because its
// two pieces of state -- the dominance frontier and the patience counter --
// are sequential. But the expensive part, one dpalloc per lambda, is
// independent across lambdas. This sweep partitions the lambda range into
// contiguous chunks across a thread pool, then replays the serial sweep's
// *decision sequence* over the precomputed results, producing a frontier
// byte-identical to `pareto_sweep` on every input (asserted across pool
// sizes by tests/engine_test.cpp and bench/batch_throughput.cpp).
//
// The range is split adaptively: the first wave covers just enough lambdas
// for the patience rule to be able to fire, and each following wave doubles
// (a range that survives early waves tends to run long). Work past the
// serial sweep's stopping point -- at most the final wave -- is computed
// and discarded; wasted speculation, never a changed answer.

#ifndef MWL_ENGINE_PARALLEL_PARETO_HPP
#define MWL_ENGINE_PARALLEL_PARETO_HPP

#include "core/pareto.hpp"
#include "support/thread_pool.hpp"

namespace mwl {

/// `pareto_sweep(graph, model, options)`, fanned out across `pool`.
/// Byte-identical to the serial sweep; never empty for a non-empty graph.
[[nodiscard]] std::vector<pareto_point> parallel_pareto_sweep(
    const sequencing_graph& graph, const hardware_model& model,
    const pareto_options& options, thread_pool& pool);

/// Convenience overload owning a transient pool of `jobs` workers
/// (0 = hardware concurrency).
[[nodiscard]] std::vector<pareto_point> parallel_pareto_sweep(
    const sequencing_graph& graph, const hardware_model& model,
    const pareto_options& options = {}, std::size_t jobs = 0);

} // namespace mwl

#endif // MWL_ENGINE_PARALLEL_PARETO_HPP
