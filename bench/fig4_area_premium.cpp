// Fig. 4: area premium (%) of the heuristic over the optimal ILP solution
// [5], for small problem sizes at the minimum latency constraint
// (lambda = lambda_min), where the ILP is still tractable.
//
// Expected shape: 0% for trivial sizes, growing into the mid-teens by
// ~10 operations ("over the range of 1 to 10 operations, the relative
// increase in area ranges from 0% to 16%").
//
// Instances the MILP solver cannot finish within its node/time budget are
// excluded from the mean (column "solved" reports coverage).
//
// Default: 15 graphs/size, sizes 1..10. Paper corpus: --graphs 200.

#include "bench_common.hpp"
#include "core/dpalloc.hpp"
#include "core/validate.hpp"
#include "ilp/formulation.hpp"
#include "support/stats.hpp"
#include "tgff/corpus.hpp"

#include <iostream>
#include <vector>

int main(int argc, char** argv)
{
    using namespace mwl;
    bench::bench_options opt =
        bench::parse_options(argc, argv, "fig4_area_premium");
    if (opt.graphs == 25) {
        opt.graphs = 15; // ILP-heavy bench: smaller quick-run default
    }
    const std::size_t max_size = opt.max_size == 0 ? 10 : opt.max_size;

    const sonic_model model;
    table t("Fig. 4: mean area premium (%) of DPAlloc over the ILP optimum"
            " at lambda = lambda_min");
    t.header({"|O|", "premium %", "max %", "solved", "mean B&B nodes"});

    for (std::size_t n = 1; n <= max_size; ++n) {
        const auto corpus = make_corpus(n, opt.graphs, model, opt.seed);
        std::vector<double> premiums;
        std::vector<double> nodes;
        for (const corpus_entry& e : corpus) {
            mip_options mopt;
            mopt.time_limit_seconds = opt.ilp_time_limit;
            const ilp_result best =
                solve_ilp(e.graph, model, e.lambda_min, mopt);
            if (best.status != mip_status::optimal) {
                continue; // no optimality proof -> no premium claim
            }
            require_valid(e.graph, model, best.path, e.lambda_min);
            const dpalloc_result heur =
                dpalloc(e.graph, model, e.lambda_min);
            require_valid(e.graph, model, heur.path, e.lambda_min);
            premiums.push_back(
                (heur.path.total_area / best.path.total_area - 1.0) *
                100.0);
            nodes.push_back(static_cast<double>(best.nodes));
        }
        t.row({table::num(static_cast<int>(n)),
               table::num(mean(premiums), 1),
               table::num(max_of(premiums), 1),
               table::num(static_cast<int>(premiums.size())) + "/" +
                   table::num(static_cast<int>(corpus.size())),
               table::num(mean(nodes), 0)});
    }
    bench::emit(t, opt);
    std::cout << "\n(paper: premium ranges 0%..16% over 1..10 operations)\n";
    return 0;
}
