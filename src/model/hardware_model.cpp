#include "model/hardware_model.hpp"

#include "support/error.hpp"
#include "support/hash.hpp"

#include <atomic>

namespace mwl {

hardware_model::hardware_model()
{
    static std::atomic<std::uint64_t> next_serial{1};
    serial_ = next_serial.fetch_add(1);
}

std::uint64_t hardware_model::fingerprint() const
{
    fnv1a_hasher h;
    h.mix("model:identity");
    h.mix(static_cast<std::int64_t>(serial_));
    return h.digest();
}

sonic_model::sonic_model(int adder_latency, int mul_bits_per_cycle)
    : adder_latency_(adder_latency), mul_bits_per_cycle_(mul_bits_per_cycle)
{
    require(adder_latency >= 1, "adder latency must be >= 1 cycle");
    require(mul_bits_per_cycle >= 1, "multiplier bits/cycle must be >= 1");
}

int sonic_model::latency(const op_shape& shape) const
{
    switch (shape.kind()) {
    case op_kind::add:
        return adder_latency_;
    case op_kind::mul: {
        // Empirical SONIC formula: ceil((n + m) / 8) cycles.
        const int bits = shape.width_a() + shape.width_b();
        return (bits + mul_bits_per_cycle_ - 1) / mul_bits_per_cycle_;
    }
    }
    MWL_ASSERT(false && "unreachable");
    return 1;
}

double sonic_model::area(const op_shape& shape) const
{
    switch (shape.kind()) {
    case op_kind::add:
        // Ripple-carry adder: area proportional to width.
        return static_cast<double>(shape.width_a());
    case op_kind::mul:
        // Array multiplier: area proportional to the operand-width product.
        return static_cast<double>(shape.width_a()) *
               static_cast<double>(shape.width_b());
    }
    MWL_ASSERT(false && "unreachable");
    return 1.0;
}

std::uint64_t sonic_model::fingerprint() const
{
    fnv1a_hasher h;
    h.mix("model:sonic");
    h.mix(static_cast<std::int64_t>(adder_latency_));
    h.mix(static_cast<std::int64_t>(mul_bits_per_cycle_));
    return h.digest();
}

uniform_latency_model::uniform_latency_model(int latency) : latency_(latency)
{
    require(latency >= 1, "uniform latency must be >= 1 cycle");
}

int uniform_latency_model::latency(const op_shape& /*shape*/) const
{
    return latency_;
}

double uniform_latency_model::area(const op_shape& shape) const
{
    // Same area law as the SONIC model: only latency is made uniform.
    if (shape.kind() == op_kind::add) {
        return static_cast<double>(shape.width_a());
    }
    return static_cast<double>(shape.width_a()) *
           static_cast<double>(shape.width_b());
}

std::uint64_t uniform_latency_model::fingerprint() const
{
    fnv1a_hasher h;
    h.mix("model:uniform-latency");
    h.mix(static_cast<std::int64_t>(latency_));
    return h.digest();
}

} // namespace mwl
