#include "sched/list_scheduler.hpp"

#include "dfg/analysis.hpp"
#include "sched/priorities.hpp"
#include "support/error.hpp"

#include <algorithm>

namespace mwl {
namespace {

/// Reference placement loop: the original per-step full-graph ready rescan.
/// Kept for the regression tests and the before/after bench.
void reference_scan_pass(const sequencing_graph& graph,
                         std::span<const int> latencies,
                         std::span<const int> priority,
                         const type_limits& limits,
                         std::span<std::int64_t> running, int horizon,
                         std::vector<int>& start)
{
    const auto kind_index = [](op_kind kind) {
        return kind == op_kind::add ? std::size_t{0} : std::size_t{1};
    };
    std::size_t scheduled = 0;
    for (int t = 0; scheduled < graph.size(); ++t) {
        MWL_ASSERT(t < horizon);
        // Ready: unscheduled, every predecessor finished by t.
        std::vector<op_id> ready;
        for (const op_id o : graph.all_ops()) {
            if (start[o.value()] >= 0) {
                continue;
            }
            bool ok = true;
            for (const op_id p : graph.predecessors(o)) {
                const int ps = start[p.value()];
                if (ps < 0 || ps + latencies[p.value()] > t) {
                    ok = false;
                    break;
                }
            }
            if (ok) {
                ready.push_back(o);
            }
        }
        std::sort(ready.begin(), ready.end(), [&](op_id a, op_id b) {
            if (priority[a.value()] != priority[b.value()]) {
                return priority[a.value()] > priority[b.value()];
            }
            return a < b;
        });

        for (const op_id o : ready) {
            const std::size_t base =
                kind_index(graph.shape(o).kind()) *
                static_cast<std::size_t>(horizon);
            const int limit = limits.of(graph.shape(o).kind());
            const int lat = latencies[o.value()];
            bool fits = true;
            for (int u = t; u < t + lat; ++u) {
                if (running[base + static_cast<std::size_t>(u)] + 1 > limit) {
                    fits = false;
                    break;
                }
            }
            if (!fits) {
                continue;
            }
            start[o.value()] = t;
            ++scheduled;
            for (int u = t; u < t + lat; ++u) {
                ++running[base + static_cast<std::size_t>(u)];
            }
        }
    }
}

} // namespace

list_schedule_result list_schedule(const sequencing_graph& graph,
                                   std::span<const int> latencies,
                                   const type_limits& limits,
                                   event_schedule_workspace* scratch,
                                   sched_engine engine)
{
    require(latencies.size() == graph.size(),
            "latency vector size must equal the number of operations");
    require(limits.add >= 1 && limits.mul >= 1,
            "resource limits must be at least 1");
    for (const int latency : latencies) {
        require(latency >= 1, "operation latencies must be >= 1");
    }

    list_schedule_result result;
    result.start.assign(graph.size(), -1);
    if (graph.empty()) {
        return result;
    }

    event_schedule_workspace local;
    event_schedule_workspace& ws = scratch ? *scratch : local;

    const std::vector<int> priority =
        critical_path_priorities(graph, latencies);

    const int horizon = serial_horizon(latencies);
    // running[y * horizon + t]: type-y operations executing during step t,
    // in the workspace's flat arena.
    auto& running = ws.usage;
    running.assign(2 * static_cast<std::size_t>(horizon), 0);

    if (engine == sched_engine::reference_scan) {
        reference_scan_pass(graph, latencies, priority, limits, running,
                            horizon, result.start);
    } else {
        const auto kind_index = [](op_kind kind) {
            return kind == op_kind::add ? std::size_t{0} : std::size_t{1};
        };
        const auto try_place = [&](op_id o, int t) {
            const std::size_t base =
                kind_index(graph.shape(o).kind()) *
                static_cast<std::size_t>(horizon);
            const int limit = limits.of(graph.shape(o).kind());
            const int lat = latencies[o.value()];
            for (int u = t; u < t + lat; ++u) {
                if (running[base + static_cast<std::size_t>(u)] + 1 > limit) {
                    return false;
                }
            }
            for (int u = t; u < t + lat; ++u) {
                ++running[base + static_cast<std::size_t>(u)];
            }
            return true;
        };
        event_schedule(graph, latencies, priority, horizon, result.start, ws,
                       try_place);
    }

    result.length = schedule_length(graph, latencies, result.start);
    return result;
}

} // namespace mwl
