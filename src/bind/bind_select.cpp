#include "bind/bind_select.hpp"

#include "support/error.hpp"
#include "wcg/chains.hpp"

#include <algorithm>

namespace mwl {
namespace {

timed_op make_timed(op_id o, std::span<const int> start,
                    std::span<const int> lat)
{
    return timed_op{o, start[o.value()], lat[o.value()]};
}

/// True iff `extra`'s members can be absorbed into `base` while keeping
/// `resource` feasible for everyone (Eqn. 4) and the union a chain.
bool can_absorb(const wordlength_compatibility_graph& wcg, res_id resource,
                const std::vector<timed_op>& base,
                const std::vector<op_id>& extra, std::span<const int> start,
                std::span<const int> lat)
{
    std::vector<timed_op> merged = base;
    for (const op_id o : extra) {
        if (!wcg.compatible(o, resource)) {
            return false;
        }
        merged.push_back(make_timed(o, start, lat));
    }
    return is_chain(merged);
}

} // namespace

binding bind_select(const wordlength_compatibility_graph& wcg,
                    std::span<const int> start_times,
                    std::span<const int> latencies,
                    const bind_options& options)
{
    const sequencing_graph& graph = wcg.graph();
    const std::size_t n = graph.size();
    require(start_times.size() == n && latencies.size() == n,
            "schedule vectors must cover every operation");
    for (std::size_t i = 0; i < n; ++i) {
        require(start_times[i] >= 0, "operation is unscheduled");
        require(latencies[i] >= 1, "operation latencies must be >= 1");
    }

    binding result;
    std::vector<bool> covered(n, false);
    std::size_t n_covered = 0;

    while (n_covered < n) {
        // Chvátal ratio selection over the implicit column set: for each
        // resource type the best feasible column is a longest chain of
        // uncovered compatible operations.
        res_id best_r = res_id::invalid();
        std::vector<timed_op> best_chain;
        double best_ratio = -1.0;
        for (const res_id r : wcg.all_resources()) {
            std::vector<timed_op> candidates;
            for (const op_id o : wcg.ops_for(r)) {
                if (!covered[o.value()]) {
                    candidates.push_back(
                        make_timed(o, start_times, latencies));
                }
            }
            if (candidates.empty()) {
                continue;
            }
            std::vector<timed_op> chain = longest_chain(candidates);
            const double ratio =
                static_cast<double>(chain.size()) / wcg.area(r);
            const bool better =
                ratio > best_ratio ||
                (ratio == best_ratio &&
                 (chain.size() > best_chain.size() ||
                  (chain.size() == best_chain.size() && r < best_r)));
            if (better) {
                best_ratio = ratio;
                best_r = r;
                best_chain = std::move(chain);
            }
        }
        // Every uncovered operation keeps at least one H edge, so a
        // candidate always exists.
        MWL_ASSERT(best_r.is_valid() && !best_chain.empty());

        for (const timed_op& item : best_chain) {
            MWL_ASSERT(!covered[item.op.value()]);
            covered[item.op.value()] = true;
            ++n_covered;
        }

        if (options.enable_growth) {
            // Greed compensation: try to grow the new clique (keeping its
            // resource type, so total cost can only drop) to swallow
            // previously selected cliques; absorbed cliques are deleted.
            bool absorbed = true;
            while (absorbed) {
                absorbed = false;
                for (std::size_t j = 0; j < result.cliques.size(); ++j) {
                    const binding_clique& prev = result.cliques[j];
                    if (!can_absorb(wcg, best_r, best_chain, prev.ops,
                                    start_times, latencies)) {
                        continue;
                    }
                    for (const op_id o : prev.ops) {
                        best_chain.push_back(
                            make_timed(o, start_times, latencies));
                    }
                    result.cliques.erase(result.cliques.begin() +
                                         static_cast<std::ptrdiff_t>(j));
                    absorbed = true;
                    break;
                }
            }
        }

        std::sort(best_chain.begin(), best_chain.end(),
                  [](const timed_op& a, const timed_op& b) {
                      return a.start < b.start;
                  });
        binding_clique clique;
        clique.resource = best_r;
        clique.ops.reserve(best_chain.size());
        for (const timed_op& item : best_chain) {
            clique.ops.push_back(item.op);
        }
        result.cliques.push_back(std::move(clique));
    }

    if (options.reassign_cheapest) {
        // Wordlength selection proper: each clique takes the cheapest
        // resource type still satisfying Eqn. 4 (pure improvement).
        for (binding_clique& k : result.cliques) {
            const res_id cheapest = cheapest_common_resource(wcg, k.ops);
            MWL_ASSERT(cheapest.is_valid()); // current resource qualifies
            if (wcg.area(cheapest) < wcg.area(k.resource)) {
                k.resource = cheapest;
            }
        }
    }

    finalize_binding(result, n, wcg);
    return result;
}

} // namespace mwl
