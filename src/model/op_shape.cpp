#include "model/op_shape.hpp"

#include "support/error.hpp"

#include <algorithm>
#include <ostream>

namespace mwl {

const char* to_string(op_kind kind)
{
    switch (kind) {
    case op_kind::add:
        return "add";
    case op_kind::mul:
        return "mul";
    }
    MWL_ASSERT(false && "unreachable");
    return "?";
}

std::ostream& operator<<(std::ostream& os, op_kind kind)
{
    return os << to_string(kind);
}

op_shape op_shape::adder(int n)
{
    require(n >= 1, "adder width must be at least 1 bit");
    return op_shape(op_kind::add, n, 0);
}

op_shape op_shape::multiplier(int n, int m)
{
    require(n >= 1 && m >= 1, "multiplier operand widths must be >= 1 bit");
    return op_shape(op_kind::mul, std::max(n, m), std::min(n, m));
}

bool op_shape::covers(const op_shape& op) const
{
    return kind_ == op.kind_ && width_a_ >= op.width_a_ &&
           width_b_ >= op.width_b_;
}

op_shape op_shape::join(const op_shape& x, const op_shape& y)
{
    require(x.kind_ == y.kind_, "cannot join shapes of different kinds");
    return op_shape(x.kind_, std::max(x.width_a_, y.width_a_),
                    std::max(x.width_b_, y.width_b_));
}

std::string op_shape::to_string() const
{
    std::string text = mwl::to_string(kind_);
    text += std::to_string(width_a_);
    if (kind_ == op_kind::mul) {
        text += 'x';
        text += std::to_string(width_b_);
    }
    return text;
}

std::ostream& operator<<(std::ostream& os, const op_shape& shape)
{
    return os << shape.to_string();
}

} // namespace mwl
