// Mutation-proven soundness of the static analyzer (src/analyze/).
//
// Two directions, both load-bearing:
//
//  * Zero false positives: every scenario golden and a seeded random
//    corpus, allocated by every allocator, must analyze completely clean
//    (not even warnings) -- a correct elaboration is structurally
//    width-exact, so the analyzer has nothing to say about it.
//
//  * Zero false negatives: for each historical elaboration bug
//    (rtl/elaborate.hpp legacy_* knobs) and every scenario, whenever the
//    mutated design differs at all from the correct one, the analyzer
//    must flag it -- statically, without executing an input vector -- and
//    with the rule id naming that bug class. Differential simulation
//    (PR 3) is run alongside as the ground truth: any dynamic divergence
//    it samples must be subsumed by a static finding.
//
// Hand-broken IR cases then cover the corruption shapes no elaboration
// knob produces (stale registers, dropped captures, dangling indices).

#include "analyze/analyze.hpp"
#include "core/dpalloc.hpp"
#include "dfg/analysis.hpp"
#include "engine/batch_engine.hpp"
#include "rtl/netlist.hpp"
#include "rtl/verilog.hpp"
#include "scenarios/scenarios.hpp"
#include "support/rng.hpp"
#include "tgff/corpus.hpp"
#include "verify/differential.hpp"

#include "test_seed.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace mwl {
namespace {

bool has_rule(const analysis_report& report, const std::string& rule)
{
    return std::any_of(
        report.findings.begin(), report.findings.end(),
        [&](const finding& f) { return f.rule == rule; });
}

std::string rules_of(const analysis_report& report)
{
    std::string all;
    for (const finding& f : report.findings) {
        all += "  " + f.to_string() + "\n";
    }
    return all;
}

/// The dpalloc datapath for a scenario at 25% relaxed latency.
datapath scenario_path(const scenario& s, const hardware_model& model,
                       int& lambda)
{
    lambda = relaxed_lambda(min_latency(s.graph, model), 0.25);
    return dpalloc(s.graph, model, lambda).path;
}

// ---------------------------------------------------------------- clean --

TEST(AnalyzeClean, EveryScenarioEveryAllocatorIsFindingFree)
{
    const sonic_model model;
    const verify_options options; // all three allocators
    for (const scenario& s : all_scenarios()) {
        SCOPED_TRACE(s.name);
        const int lambda =
            relaxed_lambda(min_latency(s.graph, model), options.slack);
        const analysis_report report =
            static_verify_graph(s.graph, s.name, model, lambda, options);
        EXPECT_TRUE(report.ok()) << rules_of(report);
        EXPECT_TRUE(report.findings.empty()); // no warnings either
        EXPECT_GT(report.checks, 0u);
        EXPECT_FALSE(report.truncated);
    }
}

TEST(AnalyzeClean, SeededRandomCorpusIsFindingFree)
{
    const std::uint64_t seed =
        testing::env_seed("MWL_ANALYZE_SEED", 0xA9A17);
    MWL_TRACE_SEED("MWL_ANALYZE_SEED", seed);

    const sonic_model model;
    corpus_spec spec;
    spec.n_ops = 12;
    spec.count = 25;
    spec.seed = seed;
    const verify_options options;
    const analysis_report report =
        static_verify_corpus(spec, model, options);
    EXPECT_TRUE(report.ok()) << rules_of(report);
    EXPECT_TRUE(report.findings.empty());
    EXPECT_GT(report.checks, 0u);
}

// ------------------------------------------------------- mutation matrix --

struct mutation {
    const char* name;
    elaborate_options opts;
    /// Rule ids, at least one of which must name the bug when it bites.
    std::vector<std::string> rules;
};

std::vector<mutation> mutations()
{
    std::vector<mutation> all(4);
    // The legacy extension knobs slice at the *source* width instead of
    // the operation's native width, so depending on whether the source is
    // wider or narrower than the port the corruption shows up as a missing
    // wrap or as a zero-extension -- any rule of the family names the bug.
    all[0].name = "operand-zext";
    all[0].opts.legacy_operand_extension = true;
    all[0].rules = {"range.operand-zero-extend", "range.operand-unwrapped",
                    "range.operand-trunc"};
    all[1].name = "capture-zext";
    all[1].opts.legacy_capture_extension = true;
    all[1].rules = {"range.capture-zero-extend", "range.capture-unwrapped",
                    "range.capture-trunc"};
    all[2].name = "unsigned-mul";
    all[2].opts.legacy_unsigned_multiply = true;
    all[2].rules = {"range.unsigned-mul"};
    all[3].name = "output-recycle";
    all[3].opts.legacy_output_recycling = true;
    all[3].rules = {"range.output-clobbered", "sched.lifetime-overlap"};
    return all;
}

TEST(AnalyzeMutation, EveryLegacyModeFlaggedWhereverTheDesignDiffers)
{
    const sonic_model model;
    for (const scenario& s : all_scenarios()) {
        int lambda = 0;
        const datapath path = scenario_path(s, model, lambda);
        const rtl_netlist net_clean = build_rtl(s.graph, model, path);
        const std::string clean_verilog =
            to_verilog(elaborate(s.graph, path, net_clean, "m"));

        for (const mutation& m : mutations()) {
            SCOPED_TRACE(std::string(s.name) + " x " + m.name);
            const rtl_netlist net = build_rtl(
                s.graph, model, path, {}, m.opts.legacy_output_recycling);
            const std::string mutated_verilog =
                to_verilog(elaborate(s.graph, path, net, "m", m.opts));
            const bool differs = mutated_verilog != clean_verilog;

            const analysis_report report =
                analyze_allocation(s.graph, model, path, m.opts);
            if (differs) {
                // The bug elaborated into this design: the analyzer must
                // flag it, naming the class.
                EXPECT_FALSE(report.ok())
                    << "mutated design not flagged:\n" << mutated_verilog;
                bool named = false;
                for (const std::string& rule : m.rules) {
                    named = named || has_rule(report, rule);
                }
                EXPECT_TRUE(named)
                    << "expected one of the " << m.name
                    << " rules, got:\n" << rules_of(report);
            } else {
                // The knob was a no-op here (e.g. unsigned-mul on a
                // mul-free graph): byte-identical design, so any finding
                // would be a false positive.
                EXPECT_TRUE(report.ok()) << rules_of(report);
            }
        }
    }
}

TEST(AnalyzeMutation, StaticFindingsSubsumeDynamicCounterexamples)
{
    const std::uint64_t seed =
        testing::env_seed("MWL_ANALYZE_SEED", 0xA9A18);
    MWL_TRACE_SEED("MWL_ANALYZE_SEED", seed);

    const sonic_model model;
    for (const scenario& s : all_scenarios()) {
        int lambda = 0;
        const datapath path = scenario_path(s, model, lambda);

        rng random(seed);
        std::vector<sim_inputs> inputs;
        for (int i = 0; i < 4; ++i) {
            inputs.push_back(random_signed_inputs(s.graph, random));
        }

        for (const mutation& m : mutations()) {
            SCOPED_TRACE(std::string(s.name) + " x " + m.name);
            const verify_report dynamic = verify_datapath(
                s.graph, s.name, "dpalloc", path, model, inputs, m.opts);
            const analysis_report report =
                analyze_allocation(s.graph, model, path, m.opts);
            if (!dynamic.ok()) {
                // Sound direction: anything sampling can catch, analysis
                // must catch without the samples.
                EXPECT_FALSE(report.ok())
                    << dynamic.counterexamples.front().to_string();
            }
        }
    }
}

TEST(AnalyzeMutation, FindingListTruncatesAtMaxFindings)
{
    const sonic_model model;
    const scenario s = make_scenario("fir8");
    int lambda = 0;
    const datapath path = scenario_path(s, model, lambda);
    elaborate_options opts;
    opts.legacy_operand_extension = true;
    analyze_options limits;
    limits.max_findings = 2;
    const analysis_report report =
        analyze_allocation(s.graph, model, path, opts, limits);
    EXPECT_FALSE(report.ok());
    EXPECT_LE(report.findings.size(), 2u);
    EXPECT_TRUE(report.truncated);
}

// ------------------------------------------------------ hand-broken IR --

class AnalyzeBrokenIr : public ::testing::Test {
protected:
    void SetUp() override
    {
        s_ = make_scenario("fir4");
        lambda_ = 0;
        path_ = scenario_path(s_, model_, lambda_);
        const rtl_netlist net = build_rtl(s_.graph, model_, path_);
        design_ = elaborate(s_.graph, path_, net, "m");
        ASSERT_TRUE(analyze_design(s_.graph, design_).ok());
    }

    sonic_model model_;
    scenario s_;
    int lambda_ = 0;
    datapath path_;
    rtl_design design_;
};

TEST_F(AnalyzeBrokenIr, DroppedCaptureIsUncapturedOp)
{
    rtl_design broken = design_;
    broken.captures.pop_back();
    const analysis_report report = analyze_design(s_.graph, broken);
    EXPECT_TRUE(has_rule(report, "lint.uncaptured-op")) << rules_of(report);
}

TEST_F(AnalyzeBrokenIr, ExtraRegisterIsDeadRegister)
{
    rtl_design broken = design_;
    broken.register_width.push_back(8);
    const analysis_report report = analyze_design(s_.graph, broken);
    EXPECT_TRUE(has_rule(report, "lint.dead-register")) << rules_of(report);
}

TEST_F(AnalyzeBrokenIr, RedirectedCaptureIsStaleOrClobbered)
{
    // Send the last capture into register 0 instead: some later read (or
    // the primary output bound to the original register) now sees the
    // wrong value.
    rtl_design broken = design_;
    ASSERT_GE(broken.register_width.size(), 2u);
    rtl_capture& last = broken.captures.back();
    last.reg = (last.reg + 1) % broken.register_width.size();
    std::sort(broken.captures.begin(), broken.captures.end(),
              [](const rtl_capture& x, const rtl_capture& y) {
                  return capture_order(x, y);
              });
    const analysis_report report = analyze_design(s_.graph, broken);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(has_rule(report, "range.stale-operand") ||
                has_rule(report, "range.output-clobbered") ||
                has_rule(report, "lint.write-write"))
        << rules_of(report);
}

TEST_F(AnalyzeBrokenIr, ClearedSelectIsMissingSelect)
{
    rtl_design broken = design_;
    ASSERT_FALSE(broken.fus.empty());
    broken.fus[0].select[0].clear();
    const analysis_report report = analyze_design(s_.graph, broken);
    EXPECT_TRUE(has_rule(report, "range.missing-select"))
        << rules_of(report);
}

TEST_F(AnalyzeBrokenIr, DanglingCaptureFuIsBadIndex)
{
    rtl_design broken = design_;
    broken.captures.front().fu = broken.fus.size() + 7;
    const analysis_report report = analyze_design(s_.graph, broken);
    EXPECT_TRUE(has_rule(report, "lint.bad-index")) << rules_of(report);
}

// ------------------------------------------------------- engine hook --

TEST(AnalyzeEngine, DebugStaticCheckPassesCleanAllocations)
{
    const sonic_model model;
    const scenario s = make_scenario("fir8");
    const int lambda = relaxed_lambda(min_latency(s.graph, model), 0.25);

    batch_options options;
    options.jobs = 2;
    options.debug_static_check = true;
    batch_engine engine(options);
    engine.submit(s.graph, model, lambda);
    const batch_engine::outcome direct = engine.run(s.graph, model, lambda);
    EXPECT_TRUE(direct.ok()) << direct.error;
    const std::vector<batch_engine::outcome> outcomes = engine.drain();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_TRUE(outcomes[0].ok()) << outcomes[0].error;
    EXPECT_EQ(engine.stats().errors, 0u);
}

} // namespace
} // namespace mwl
