// The wordlength optimizer's contract: deterministic search results,
// budget monotonicity, and -- the point of cost-in-the-loop tuning --
// every design it emits re-verifies end to end (bit-true reference ==
// datapath simulation == RTL interpretation) and passes the static
// value-range analyzer. Also reruns the real mwl_tune binary
// (MWL_TOOL_DIR) to pin that the JSON report is byte-identical across
// runs of the same spec.

#include "dfg/analysis.hpp"
#include "engine/batch_engine.hpp"
#include "io/graph_io.hpp"
#include "scenarios/scenarios.hpp"
#include "tgff/corpus.hpp"
#include "verify/differential.hpp"
#include "wordlength/optimizer.hpp"
#include "wordlength/tune_spec.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/wait.h>

namespace {

using namespace mwl;

optimizer_options small_options(double budget)
{
    optimizer_options options;
    options.noise.budget = budget;
    options.noise.min_frac_bits = 2;
    options.noise.max_frac_bits = 16;
    options.max_steps = 8;
    options.anneal_iterations = 6;
    return options;
}

tune_result tune(const std::string& scenario, const optimizer_options& options,
                 gain_model gains = gain_model::unit)
{
    const tune_problem problem =
        make_tune_problem(make_scenario(scenario).graph, gains);
    const sonic_model model;
    thread_pool pool(2);
    batch_engine engine(pool);
    return optimize_wordlengths(problem, model, options, engine);
}

// ------------------------------------------------------- tuned_graph ----

TEST(TunedGraph, DecompositionCoversEveryOperation)
{
    const sequencing_graph graph = make_scenario("fir4").graph;
    const tune_problem p = make_tune_problem(graph);
    EXPECT_EQ(p.int_bits.size(), graph.size());
    EXPECT_EQ(p.coeff_bits.size(), graph.size());
    EXPECT_EQ(p.coeff_gain.size(), graph.size());
    for (const op_id o : graph.all_ops()) {
        EXPECT_GE(p.int_bits[o.value()], 1);
        if (graph.shape(o).kind() == op_kind::mul) {
            EXPECT_EQ(p.coeff_bits[o.value()], graph.shape(o).width_b());
        } else {
            EXPECT_EQ(p.coeff_bits[o.value()], 0);
        }
        EXPECT_GT(p.coeff_gain[o.value()], 0.0);
        EXPECT_LE(p.coeff_gain[o.value()], 1.0);
    }
}

TEST(TunedGraph, ApplyPreservesTopologyAndCoefficients)
{
    const tune_problem p = make_tune_problem(make_scenario("fir4").graph);
    const std::vector<int> frac(p.graph.size(), 6);
    const sequencing_graph out = apply_frac_bits(p, frac);
    ASSERT_EQ(out.size(), p.graph.size());
    for (const op_id o : p.graph.all_ops()) {
        EXPECT_EQ(out.shape(o).kind(), p.graph.shape(o).kind());
        const int expected =
            std::min(p.int_bits[o.value()] + 6, p.width_cap);
        if (out.shape(o).kind() == op_kind::mul) {
            // wider-first normalisation: the tuned data width is width_a
            // unless the coefficient is wider.
            EXPECT_EQ(std::max(out.shape(o).width_a(), out.shape(o).width_b()),
                      std::max(expected, p.coeff_bits[o.value()]));
        } else {
            EXPECT_EQ(out.shape(o).width_a(), expected);
        }
        const auto succ_base = p.graph.successors(o);
        const auto succ_out = out.successors(o);
        ASSERT_EQ(succ_base.size(), succ_out.size());
    }
}

TEST(TunedGraph, RejectsMismatchedAssignment)
{
    const tune_problem p = make_tune_problem(make_scenario("fir4").graph);
    const std::vector<int> wrong(p.graph.size() + 1, 4);
    EXPECT_THROW(static_cast<void>(apply_frac_bits(p, wrong)),
                 precondition_error);
}

// --------------------------------------------------------- optimizer ----

TEST(WordlengthOptimizer, SameSeedSameResult)
{
    const optimizer_options options = small_options(1e-5);
    const tune_result a = tune("fir4", options);
    const tune_result b = tune("fir4", options);
    EXPECT_EQ(a.best.frac_bits, b.best.frac_bits);
    EXPECT_EQ(a.best.area, b.best.area);
    EXPECT_EQ(a.best.latency, b.best.latency);
    EXPECT_EQ(a.best.total_frac, b.best.total_frac);
    EXPECT_EQ(a.stats.steps, b.stats.steps);
    EXPECT_EQ(a.stats.evaluations, b.stats.evaluations);
    EXPECT_EQ(a.stats.reused, b.stats.reused);
    EXPECT_EQ(a.stats.anneal_accepted, b.stats.anneal_accepted);
}

TEST(WordlengthOptimizer, MeetsTheBudget)
{
    const tune_result r = tune("fir8", small_options(1e-6));
    EXPECT_LE(r.best.noise_power, 1e-6);
    EXPECT_GT(r.best.area, 0.0);
    EXPECT_GT(r.best.latency, 0);
}

TEST(WordlengthOptimizer, LooserBudgetNeedsNoMoreBits)
{
    const tune_result tight = tune("fir8", small_options(1e-7));
    const tune_result loose = tune("fir8", small_options(1e-4));
    EXPECT_LE(loose.best.total_frac, tight.best.total_frac);
    EXPECT_LE(loose.best.area, tight.best.area);
}

TEST(WordlengthOptimizer, DescentNeverWorseThanWaterFillingSeed)
{
    const tune_problem problem =
        make_tune_problem(make_scenario("iir_biquad2").graph);
    const sonic_model model;
    thread_pool pool(2);
    batch_engine engine(pool);
    optimizer_options options = small_options(1e-5);
    options.anneal_iterations = 0;

    const wordlength_assignment seed = assign_fractional_widths(
        problem.graph, output_gains(problem.graph, problem.coeff_gain),
        options.noise);
    const batch_engine::outcome seeded = engine.run(
        apply_frac_bits(problem, seed.frac_bits), model,
        relaxed_lambda(min_latency(apply_frac_bits(problem, seed.frac_bits),
                                   model),
                       options.slack));
    ASSERT_TRUE(seeded.ok());

    const tune_result r =
        optimize_wordlengths(problem, model, options, engine);
    EXPECT_LE(r.best.area, seeded.result->path.total_area);
}

TEST(WordlengthOptimizer, UnreachableBudgetThrowsInfeasible)
{
    optimizer_options options = small_options(1e-30);
    options.noise.max_frac_bits = 8;
    EXPECT_THROW(static_cast<void>(tune("fir4", options)), infeasible_error);
}

TEST(WordlengthOptimizer, TunedDesignsVerifyAndLintClean)
{
    const tune_problem problem = make_tune_problem(
        make_scenario("fir8").graph, gain_model::attenuating);
    const sonic_model model;
    thread_pool pool(2);
    batch_engine engine(pool);
    const tune_result r = optimize_wordlengths(problem, model,
                                               small_options(1e-6), engine);

    const sequencing_graph tuned = apply_frac_bits(problem, r.best.frac_bits);
    verify_options options;
    options.inputs_per_graph = 8;
    const verify_report dynamic =
        verify_graph(tuned, "fir8@1e-6", model, r.best.lambda, options);
    EXPECT_TRUE(dynamic.ok())
        << dynamic.counterexamples.front().to_string();
    const analysis_report lint =
        static_verify_graph(tuned, "fir8@1e-6", model, r.best.lambda, options);
    EXPECT_TRUE(lint.ok()) << lint.findings.front().to_string();
}

TEST(WordlengthOptimizer, ReproducesThePinnedScenarioCorpusEntries)
{
    // The "<name>_tuned<budget>" registry entries pin mwl_tune results as
    // literal fractional assignments (src/scenarios/scenarios.cpp). Re-run
    // the search at the recorded spec and require the identical graph, so
    // optimizer drift cannot leave the corpus silently stale.
    const struct {
        const char* base;
        const char* tuned;
        double budget;
    } pinned[] = {
        {"fir8", "fir8_tuned1e6", 1e-6},
        {"lattice4", "lattice4_tuned1e5", 1e-5},
    };
    for (const auto& entry : pinned) {
        const tune_problem problem = make_tune_problem(
            make_scenario(entry.base).graph, gain_model::attenuating);
        const sonic_model model;
        thread_pool pool(2);
        batch_engine engine(pool);
        optimizer_options options;
        options.noise.budget = entry.budget;
        options.anneal_iterations = 200;
        const tune_result r =
            optimize_wordlengths(problem, model, options, engine);
        EXPECT_EQ(write_graph(apply_frac_bits(problem, r.best.frac_bits)),
                  write_graph(make_scenario(entry.tuned).graph))
            << entry.tuned << " no longer matches the optimizer's output";
    }
}

// --------------------------------------------------------- tune_spec ----

TEST(TuneSpec, ParsesEveryKeyword)
{
    const tune_spec spec = tune_spec::parse(
        "# tuned sweep\n"
        "scenario fir4 fir8\n"
        "budget 1e-6 1e-4\n"
        "frac min=3 max=20\n"
        "search seed=7 max-steps=5 anneal=9 temp=0.1\n"
        "gain model=attenuating base-frac=6 cap=28\n"
        "lambda slack=10\n");
    ASSERT_EQ(spec.entries.size(), 2u);
    EXPECT_EQ(spec.entries[0].scenario, "fir4");
    ASSERT_EQ(spec.budgets.size(), 2u);
    EXPECT_EQ(spec.min_frac_bits, 3);
    EXPECT_EQ(spec.max_frac_bits, 20);
    EXPECT_EQ(spec.seed, 7u);
    EXPECT_EQ(spec.max_steps, 5u);
    EXPECT_EQ(spec.anneal_iterations, 9u);
    EXPECT_EQ(spec.gains, gain_model::attenuating);
    EXPECT_EQ(spec.base_frac_bits, 6);
    EXPECT_EQ(spec.width_cap, 28);
    EXPECT_NEAR(spec.slack, 0.10, 1e-12);
}

TEST(TuneSpec, DiagnosticsCarryLineNumbers)
{
    const auto expect_spec_error = [](const std::string& text,
                                      const std::string& snippet) {
        try {
            static_cast<void>(tune_spec::parse(text));
            FAIL() << "expected spec_error for:\n" << text;
        } catch (const spec_error& e) {
            EXPECT_NE(std::string(e.what()).find(snippet), std::string::npos)
                << e.what();
        }
    };
    expect_spec_error("scenario fir4\nbudget junk\n",
                      "spec line 2: bad numeric value 'junk'");
    expect_spec_error("scenario nope\nbudget 1e-6\n",
                      "spec line 1: unknown scenario 'nope'");
    expect_spec_error("scenario fir4\nbudget 1e-6\nfrac min=9 max=3\n",
                      "spec line 3: frac range must be 0 <= min <= max");
    expect_spec_error("scenario fir4\nbudget -1e-6\n",
                      "spec line 2: budgets must be positive");
    expect_spec_error("budget 1e-6\n", "spec names no designs");
    expect_spec_error("scenario fir4\n", "spec names no budgets");
}

// ----------------------------------------------- the real tool binary ----

std::string run_tool(const std::string& command, int& exit_code)
{
    std::string output;
    FILE* pipe = popen((command + " 2>&1").c_str(), "r");
    if (pipe == nullptr) {
        ADD_FAILURE() << "popen failed for: " << command;
        exit_code = -1;
        return output;
    }
    std::array<char, 4096> buffer;
    std::size_t got = 0;
    while ((got = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
        output.append(buffer.data(), got);
    }
    const int status = pclose(pipe);
    exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return output;
}

std::string slurp(const std::string& path)
{
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

TEST(TuneTool, ReportIsByteIdenticalAcrossRuns)
{
    {
        std::ofstream spec("wordlength_opt_tool.spec");
        spec << "scenario fir4\n"
                "budget 1e-5 1e-4\n"
                "search max-steps=4 anneal=4\n";
    }
    const std::string binary = std::string(MWL_TOOL_DIR) + "/mwl_tune";
    int first_exit = -1;
    int second_exit = -1;
    const std::string first_out =
        run_tool(binary + " wordlength_opt_tool.spec --jobs 2 --json "
                          "wordlength_opt_tool_a.json",
                 first_exit);
    static_cast<void>(
        run_tool(binary + " wordlength_opt_tool.spec --jobs 2 --json "
                          "wordlength_opt_tool_b.json",
                 second_exit));
    ASSERT_EQ(first_exit, 0) << first_out;
    ASSERT_EQ(second_exit, 0);
    const std::string a = slurp("wordlength_opt_tool_a.json");
    const std::string b = slurp("wordlength_opt_tool_b.json");
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("\"status\":\"front\""), std::string::npos) << a;
}

} // namespace
