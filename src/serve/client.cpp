#include "serve/client.hpp"

#include <cerrno>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace mwl::serve {

namespace {

[[noreturn]] void usage_error(const std::string& text)
{
    throw precondition_error("endpoint must be unix:PATH or tcp:HOST:PORT, "
                             "got '" +
                             text + "'");
}

/// Connect once; returns -1 with errno set on failure.
int try_connect(const endpoint& ep)
{
    if (ep.what == endpoint::kind::unix_socket) {
        sockaddr_un addr = {};
        addr.sun_family = AF_UNIX;
        if (ep.path.size() >= sizeof addr.sun_path) {
            errno = ENAMETOOLONG;
            return -1;
        }
        std::strncpy(addr.sun_path, ep.path.c_str(),
                     sizeof addr.sun_path - 1);
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) {
            return -1;
        }
        if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr) != 0) {
            const int saved = errno;
            ::close(fd);
            errno = saved;
            return -1;
        }
        return fd;
    }
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(ep.port));
    if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
        errno = EINVAL;
        return -1;
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        return -1;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        return -1;
    }
    return fd;
}

} // namespace

endpoint parse_endpoint(const std::string& text)
{
    endpoint ep;
    if (text.rfind("unix:", 0) == 0) {
        ep.what = endpoint::kind::unix_socket;
        ep.path = text.substr(5);
        if (ep.path.empty()) {
            usage_error(text);
        }
        return ep;
    }
    if (text.rfind("tcp:", 0) == 0) {
        ep.what = endpoint::kind::tcp;
        const std::string rest = text.substr(4);
        const std::size_t colon = rest.rfind(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 == rest.size()) {
            usage_error(text);
        }
        ep.host = rest.substr(0, colon);
        try {
            std::size_t used = 0;
            ep.port = std::stoi(rest.substr(colon + 1), &used);
            if (used != rest.size() - colon - 1 || ep.port < 1 ||
                ep.port > 65535) {
                usage_error(text);
            }
        } catch (const precondition_error&) {
            throw;
        } catch (const std::exception&) {
            usage_error(text);
        }
        return ep;
    }
    usage_error(text);
}

std::string to_string(const endpoint& ep)
{
    if (ep.what == endpoint::kind::unix_socket) {
        return "unix:" + ep.path;
    }
    return "tcp:" + ep.host + ":" + std::to_string(ep.port);
}

client_connection::client_connection(const endpoint& ep)
{
    fd_ = try_connect(ep);
    if (fd_ < 0) {
        throw error("cannot connect to " + to_string(ep) + ": " +
                    std::strerror(errno));
    }
}

client_connection::~client_connection()
{
    if (fd_ >= 0) {
        ::close(fd_);
    }
}

bool client_connection::send(const std::string& payload)
{
    return write_frame(fd_, payload);
}

std::optional<response> client_connection::receive()
{
    std::string payload;
    // The server never sends an oversized frame; accept anything the
    // stats body could reasonably grow to.
    const frame_status status =
        read_frame(fd_, payload, default_max_frame);
    switch (status) {
    case frame_status::ok:
        return parse_response(payload);
    case frame_status::eof:
    case frame_status::truncated:
        return std::nullopt;
    case frame_status::malformed:
        throw protocol_error("malformed response frame from server");
    case frame_status::oversized:
        throw protocol_error("oversized response frame from server");
    }
    return std::nullopt;
}

std::optional<int> connect_with_retry(const endpoint& ep, int timeout_ms)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
        const int fd = try_connect(ep);
        if (fd >= 0) {
            return fd;
        }
        if (std::chrono::steady_clock::now() >= deadline) {
            return std::nullopt;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
}

} // namespace mwl::serve
