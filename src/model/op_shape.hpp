// Operation / resource shapes.
//
// In a multiple-wordlength system an operation is characterised not only by
// its kind (adder, multiplier) but by the wordlengths of its operands; a
// resource-wordlength type (e.g. "20x18-bit multiplier", "12-bit adder") is
// described by exactly the same data. `op_shape` therefore serves both roles:
// the shape of an operation and the shape of a resource, with `covers()`
// expressing the paper's compatibility relation (same kind, sufficient
// wordlength on every operand).

#ifndef MWL_MODEL_OP_SHAPE_HPP
#define MWL_MODEL_OP_SHAPE_HPP

#include <compare>
#include <iosfwd>
#include <string>

namespace mwl {

/// Kind of a computational operation / resource.
enum class op_kind {
    add, ///< wordlength-parameterised adder (also covers subtract)
    mul, ///< n x m bit-parallel multiplier
};

[[nodiscard]] const char* to_string(op_kind kind);
std::ostream& operator<<(std::ostream& os, op_kind kind);

/// Shape of an operation or of a resource-wordlength type.
///
/// Invariants (established by the factory functions):
///  * adders have `width_a >= 1` and `width_b == 0`;
///  * multipliers have `width_a >= width_b >= 1` (operands are normalised
///    wider-first, since a bit-parallel multiplier can take its operands in
///    either order).
class op_shape {
public:
    /// Default: a 1-bit adder (the smallest valid shape).
    op_shape() = default;

    /// An `n`-bit adder / addition. Throws `precondition_error` if n < 1.
    [[nodiscard]] static op_shape adder(int n);

    /// An `n x m`-bit multiplier / multiplication; operand order is
    /// irrelevant and is normalised. Throws `precondition_error` if
    /// n < 1 or m < 1.
    [[nodiscard]] static op_shape multiplier(int n, int m);

    [[nodiscard]] op_kind kind() const { return kind_; }

    /// Wider operand width (adders: the single operand width).
    [[nodiscard]] int width_a() const { return width_a_; }

    /// Narrower operand width (adders: 0).
    [[nodiscard]] int width_b() const { return width_b_; }

    /// True iff a resource of shape `*this` can execute an operation of
    /// shape `op`: identical kind and every operand wide enough.
    [[nodiscard]] bool covers(const op_shape& op) const;

    /// Smallest single shape covering both arguments (componentwise max).
    /// Precondition: identical kind.
    [[nodiscard]] static op_shape join(const op_shape& x, const op_shape& y);

    /// Human-readable form, e.g. "mul20x18", "add12".
    [[nodiscard]] std::string to_string() const;

    friend auto operator<=>(const op_shape&, const op_shape&) = default;

private:
    op_shape(op_kind kind, int a, int b)
        : kind_(kind), width_a_(a), width_b_(b)
    {
    }

    op_kind kind_ = op_kind::add;
    int width_a_ = 1;
    int width_b_ = 0;
};

std::ostream& operator<<(std::ostream& os, const op_shape& shape);

/// Operand width at port 0 / 1: port 0 carries the (wider-normalised)
/// first operand, port 1 the second -- an adder's both ports are its
/// single width. The one convention shared by the simulator (operand 0
/// wraps at width_a), the elaborate pass, and the verification harness.
[[nodiscard]] inline int operand_width(const op_shape& shape, int port)
{
    if (port == 0) {
        return shape.width_a();
    }
    return shape.kind() == op_kind::mul ? shape.width_b() : shape.width_a();
}

} // namespace mwl

#endif // MWL_MODEL_OP_SHAPE_HPP
