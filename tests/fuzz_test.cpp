// Mutation fuzzing of the independent validator and the simulator:
// starting from known-valid datapaths, apply random single-field
// corruptions and check that at least one safety net (validator or
// simulator) rejects every *semantically harmful* mutation, and that
// harmless mutations (which keep all invariants) are still accepted.
// This guards the guards: a validator that silently accepts corrupted
// designs would undermine every other test in the suite.

#include "core/dpalloc.hpp"
#include "core/validate.hpp"
#include "dfg/analysis.hpp"
#include "model/hardware_model.hpp"
#include "sim/simulator.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "tgff/corpus.hpp"

#include "test_seed.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace mwl {
namespace {

sim_inputs random_inputs(const sequencing_graph& g, rng& random)
{
    sim_inputs in(g.size());
    for (const op_id o : g.all_ops()) {
        const std::size_t need = 2 - g.predecessors(o).size();
        for (std::size_t k = 0; k < need; ++k) {
            in[o.value()].push_back(random.uniform_int(0, 63) - 32);
        }
    }
    return in;
}

enum class mutation_kind {
    shift_start,
    rebind_op,
    shrink_instance,
    perturb_area,
    perturb_latency,
    count,
};

/// Apply one random mutation; returns false if the draw was a no-op
/// (e.g. moving an op to the instance it is already on).
bool mutate(datapath& path, const sequencing_graph& graph, rng& random)
{
    const auto kind = static_cast<mutation_kind>(random.uniform_int(
        0, static_cast<int>(mutation_kind::count) - 1));
    const op_id victim(random.uniform(0, graph.size() - 1));
    switch (kind) {
    case mutation_kind::shift_start: {
        const int delta = random.uniform_int(0, 6) - 3;
        if (delta == 0) {
            return false;
        }
        path.start[victim.value()] += delta;
        return true;
    }
    case mutation_kind::rebind_op: {
        const std::size_t target =
            random.uniform(0, path.instances.size() - 1);
        const std::size_t from = path.instance_of_op[victim.value()];
        if (target == from) {
            return false;
        }
        auto& old_ops = path.instances[from].ops;
        old_ops.erase(std::find(old_ops.begin(), old_ops.end(), victim));
        path.instances[target].ops.push_back(victim);
        path.instance_of_op[victim.value()] = target;
        return true;
    }
    case mutation_kind::shrink_instance: {
        const std::size_t i = random.uniform(0, path.instances.size() - 1);
        datapath_instance& inst = path.instances[i];
        if (inst.shape.kind() != op_kind::mul ||
            inst.shape.width_b() <= 1) {
            return false;
        }
        inst.shape = op_shape::multiplier(inst.shape.width_a(),
                                          inst.shape.width_b() - 1);
        // deliberately leave latency/area stale: the validator must
        // notice the inconsistency with the model
        return true;
    }
    case mutation_kind::perturb_area:
        path.total_area += random.chance(0.5) ? 1.0 : -1.0;
        return true;
    case mutation_kind::perturb_latency:
        path.latency += random.chance(0.5) ? 1 : -1;
        return true;
    case mutation_kind::count:
        break;
    }
    return false;
}

TEST(Fuzz, ValidatorOrSimulatorCatchesHarmfulMutations)
{
    const sonic_model model;
    const std::uint64_t seed = testing::env_seed("MWL_FUZZ_SEED", 0xF00D);
    MWL_TRACE_SEED("MWL_FUZZ_SEED", seed);
    rng random(seed);
    const auto corpus = make_corpus(8, 6, model, 1234);
    std::size_t mutations = 0;
    std::size_t rejected = 0;
    for (const corpus_entry& e : corpus) {
        const int lambda = relaxed_lambda(e.lambda_min, 0.2);
        const dpalloc_result base = dpalloc(e.graph, model, lambda);
        const sim_inputs in = random_inputs(e.graph, random);
        const sim_result ref = reference_evaluate(e.graph, in);

        for (int trial = 0; trial < 40; ++trial) {
            datapath mutant = base.path;
            if (!mutate(mutant, e.graph, random)) {
                continue;
            }
            ++mutations;
            const bool validator_rejects =
                !validate_datapath(e.graph, model, mutant, lambda).empty();
            bool simulator_rejects = false;
            bool values_changed = false;
            if (!validator_rejects) {
                try {
                    values_changed =
                        simulate_datapath(e.graph, mutant, in).value_of_op !=
                        ref.value_of_op;
                } catch (const error&) {
                    simulator_rejects = true;
                }
            }
            if (validator_rejects || simulator_rejects) {
                ++rejected;
            } else {
                // Mutation survived both nets: it must be truly harmless --
                // the datapath still computes the right values.
                EXPECT_FALSE(values_changed);
            }
        }
    }
    // The vast majority of random single-field corruptions must be caught.
    ASSERT_GT(mutations, 100u);
    EXPECT_GT(static_cast<double>(rejected),
              0.8 * static_cast<double>(mutations));
}

TEST(Fuzz, ValidatorAcceptsAllGeneratedDatapathsAcrossSeeds)
{
    // Broad seed sweep: the validator must accept every genuine DPAlloc
    // output (no false positives), across sizes and slacks. Setting
    // MWL_FUZZ_SEED narrows the sweep to that one seed for reproduction.
    const sonic_model model;
    std::vector<std::uint64_t> seeds = {1, 2, 3, 5, 8};
    if (std::getenv("MWL_FUZZ_SEED") != nullptr) {
        seeds = {testing::env_seed("MWL_FUZZ_SEED", 0)};
    }
    for (const std::uint64_t seed : seeds) {
        MWL_TRACE_SEED("MWL_FUZZ_SEED", seed);
        const auto corpus =
            make_corpus(4 + seed % 9, 4, model, seed * 1000);
        for (const corpus_entry& e : corpus) {
            for (const double slack : {0.0, 0.15, 0.3}) {
                const int lambda = relaxed_lambda(e.lambda_min, slack);
                const dpalloc_result r = dpalloc(e.graph, model, lambda);
                EXPECT_TRUE(
                    validate_datapath(e.graph, model, r.path, lambda)
                        .empty());
            }
        }
    }
}

} // namespace
} // namespace mwl
