// Large-graph scaling tier: dpalloc throughput on the deterministic
// windowed tgff presets (tgff/generator.hpp, large_graph_preset) at
// |O| = 500 / 1000 / 2000, with jobs = 1/2/4/8 curves over a small
// per-size corpus.
//
// The first graph of every size is the (large_graph_seed_base + n) graph
// that tests/large_graph_identity_test.cpp pins bit-for-bit, and its area
// is recorded in the artifact -- a throughput number only counts if the
// allocations it measures are the pinned ones. Results echo to stdout and
// are written to BENCH_large_graph.json (or --out FILE) on full-size runs;
// smoke runs (--max-size) never clobber the recorded artifact.
//
// The jobs > 1 rows parallelise across graphs with the repo thread_pool;
// "multicore_valid" in the artifact says whether the curve means anything
// on the recording machine (a single-core container shows ~1x by fiat).

#include "bench_common.hpp"

#include "core/dpalloc.hpp"
#include "dfg/analysis.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"
#include "tgff/corpus.hpp"
#include "tgff/generator.hpp"

#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <vector>

namespace {

constexpr double k_slack = 0.10;

struct size_point {
    std::size_t n = 0;
    std::size_t graphs = 0;
    int lambda = 0;
    long area_first = 0; ///< area of the pinned (seed base + n) graph
    long area_sum = 0;   ///< corpus checksum, identical across jobs levels
    std::vector<std::pair<int, double>> jobs_ms; ///< (jobs, wall ms)
};

} // namespace

int main(int argc, char** argv)
{
    using namespace mwl;
    const bench::bench_options opt =
        bench::parse_options(argc, argv, "large_graph_scaling");

    std::vector<std::size_t> sizes;
    if (opt.max_size != 0) {
        sizes.push_back(opt.max_size);
    } else {
        sizes = {500, 1000, 2000};
    }
    const std::vector<int> jobs_levels = {1, 2, 4, 8};
    const sonic_model model;

    std::vector<size_point> points;
    for (const std::size_t n : sizes) {
        size_point pt;
        pt.n = n;
        // Keep total work roughly flat across sizes: fewer, heavier
        // graphs as |O| grows (8 at 500, 4 at 1000, 2 at 2000).
        pt.graphs = std::max<std::size_t>(
            1, std::min<std::size_t>(opt.graphs, 4000 / std::max<std::size_t>(n, 1)));

        std::vector<sequencing_graph> corpus;
        corpus.reserve(pt.graphs);
        for (std::size_t i = 0; i < pt.graphs; ++i) {
            rng random(large_graph_seed_base + n + i);
            corpus.push_back(generate_tgff(large_graph_preset(n), random));
        }
        pt.lambda = relaxed_lambda(min_latency(corpus.front(), model), k_slack);

        for (const int jobs : jobs_levels) {
            std::vector<long> areas(corpus.size(), 0);
            stopwatch clock;
            if (jobs == 1) {
                for (std::size_t i = 0; i < corpus.size(); ++i) {
                    const int lambda = relaxed_lambda(
                        min_latency(corpus[i], model), k_slack);
                    areas[i] = static_cast<long>(
                        dpalloc(corpus[i], model, lambda).path.total_area);
                }
            } else {
                thread_pool pool(static_cast<std::size_t>(jobs));
                std::vector<std::future<void>> done;
                done.reserve(corpus.size());
                for (std::size_t i = 0; i < corpus.size(); ++i) {
                    done.push_back(pool.submit([&, i] {
                        const int lambda = relaxed_lambda(
                            min_latency(corpus[i], model), k_slack);
                        areas[i] = static_cast<long>(
                            dpalloc(corpus[i], model, lambda).path.total_area);
                    }));
                }
                for (auto& f : done) {
                    f.get();
                }
            }
            pt.jobs_ms.emplace_back(jobs, clock.milliseconds());

            long sum = 0;
            for (const long a : areas) {
                sum += a;
            }
            if (pt.area_sum == 0) {
                pt.area_first = areas.front();
                pt.area_sum = sum;
            } else if (pt.area_sum != sum) {
                std::cerr << "large_graph_scaling: corpus area drifted "
                             "across jobs levels at n="
                          << n << '\n';
                return 1;
            }
        }
        points.push_back(std::move(pt));
    }

    table t("Large-graph dpalloc scaling: preset corpus, slack " +
            std::to_string(static_cast<int>(k_slack * 100)) + "%");
    t.header({"|O|", "graphs", "jobs", "ms", "allocs/s", "speedup"});
    const auto rate = [](std::size_t graphs, double ms) {
        return ms > 0.0 ? static_cast<double>(graphs) / (ms / 1e3) : 0.0;
    };
    for (const size_point& pt : points) {
        const double ms1 = pt.jobs_ms.front().second;
        for (const auto& [jobs, ms] : pt.jobs_ms) {
            t.row({std::to_string(pt.n), std::to_string(pt.graphs),
                   std::to_string(jobs), table::num(ms, 1),
                   table::num(rate(pt.graphs, ms), 2),
                   table::num(ms > 0.0 ? ms1 / ms : 0.0, 2) + "x"});
        }
    }
    bench::emit(t, opt);

    std::ostringstream json;
    json << "{\"bench\":\"large_graph_scaling\"," << bench::env_json()
         << ",\"seed_base\":" << large_graph_seed_base
         << ",\"slack\":" << k_slack << ",\"points\":[";
    bool first_point = true;
    for (const size_point& pt : points) {
        json << (first_point ? "" : ",") << "{\"n\":" << pt.n
             << ",\"graphs\":" << pt.graphs << ",\"lambda\":" << pt.lambda
             << ",\"area_first\":" << pt.area_first
             << ",\"area_sum\":" << pt.area_sum << ",\"jobs\":[";
        bool first_jobs = true;
        for (const auto& [jobs, ms] : pt.jobs_ms) {
            json << (first_jobs ? "" : ",") << "{\"jobs\":" << jobs
                 << ",\"ms\":" << ms
                 << ",\"allocs_per_s\":" << rate(pt.graphs, ms) << "}";
            first_jobs = false;
        }
        json << "]}";
        first_point = false;
    }
    json << "]}";
    std::cout << '\n' << json.str() << '\n';

    // Smoke runs must not clobber a recorded full-size artifact unless an
    // explicit --out asks for a file.
    if (opt.max_size != 0 && opt.out.empty()) {
        return 0;
    }
    const std::string path =
        opt.out.empty() ? "BENCH_large_graph.json" : opt.out;
    std::ofstream file(path);
    if (file) {
        file << json.str() << '\n';
    } else {
        std::cerr << "large_graph_scaling: cannot write " << path << '\n';
        return 1;
    }
    return 0;
}
