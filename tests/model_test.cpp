// Unit tests for src/model: operation/resource shapes and the SONIC
// latency/area model the paper's evaluation uses.

#include "model/hardware_model.hpp"
#include "model/op_shape.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mwl {
namespace {

// ----------------------------------------------------------- op_shape --

TEST(OpShape, AdderFactorySetsWidths)
{
    const op_shape a = op_shape::adder(12);
    EXPECT_EQ(a.kind(), op_kind::add);
    EXPECT_EQ(a.width_a(), 12);
    EXPECT_EQ(a.width_b(), 0);
}

TEST(OpShape, MultiplierNormalisesOperandOrder)
{
    const op_shape m1 = op_shape::multiplier(8, 20);
    const op_shape m2 = op_shape::multiplier(20, 8);
    EXPECT_EQ(m1, m2);
    EXPECT_EQ(m1.width_a(), 20);
    EXPECT_EQ(m1.width_b(), 8);
}

TEST(OpShape, InvalidWidthsThrow)
{
    EXPECT_THROW(static_cast<void>(op_shape::adder(0)), precondition_error);
    EXPECT_THROW(static_cast<void>(op_shape::adder(-3)), precondition_error);
    EXPECT_THROW(static_cast<void>(op_shape::multiplier(0, 4)), precondition_error);
    EXPECT_THROW(static_cast<void>(op_shape::multiplier(4, 0)), precondition_error);
}

TEST(OpShape, CoversRequiresSameKind)
{
    EXPECT_FALSE(op_shape::adder(32).covers(op_shape::multiplier(2, 2)));
    EXPECT_FALSE(op_shape::multiplier(32, 32).covers(op_shape::adder(2)));
}

TEST(OpShape, CoversRequiresSufficientWidths)
{
    const op_shape r = op_shape::multiplier(20, 18);
    EXPECT_TRUE(r.covers(op_shape::multiplier(20, 18)));
    EXPECT_TRUE(r.covers(op_shape::multiplier(18, 16)));
    EXPECT_TRUE(r.covers(op_shape::multiplier(16, 20))); // swapped operands
    EXPECT_FALSE(r.covers(op_shape::multiplier(21, 4)));
    EXPECT_FALSE(r.covers(op_shape::multiplier(19, 19)));
}

TEST(OpShape, AdderCovering)
{
    EXPECT_TRUE(op_shape::adder(16).covers(op_shape::adder(12)));
    EXPECT_TRUE(op_shape::adder(16).covers(op_shape::adder(16)));
    EXPECT_FALSE(op_shape::adder(12).covers(op_shape::adder(16)));
}

TEST(OpShape, CoversIsReflexive)
{
    for (const op_shape s :
         {op_shape::adder(7), op_shape::multiplier(9, 5)}) {
        EXPECT_TRUE(s.covers(s));
    }
}

TEST(OpShape, JoinIsComponentwiseMax)
{
    const op_shape j = op_shape::join(op_shape::multiplier(20, 4),
                                      op_shape::multiplier(6, 18));
    // normalised: (20,4) and (18,6) -> join (20,6)
    EXPECT_EQ(j, op_shape::multiplier(20, 6));
}

TEST(OpShape, JoinCoversBothArguments)
{
    const op_shape x = op_shape::multiplier(13, 7);
    const op_shape y = op_shape::multiplier(8, 8);
    const op_shape j = op_shape::join(x, y);
    EXPECT_TRUE(j.covers(x));
    EXPECT_TRUE(j.covers(y));
}

TEST(OpShape, JoinOfMixedKindsThrows)
{
    EXPECT_THROW(static_cast<void>(op_shape::join(op_shape::adder(4),
                                                 op_shape::multiplier(4, 4))),
                 precondition_error);
}

TEST(OpShape, JoinIsIdempotentCommutativeAssociative)
{
    const op_shape a = op_shape::multiplier(10, 3);
    const op_shape b = op_shape::multiplier(5, 5);
    const op_shape c = op_shape::multiplier(12, 2);
    EXPECT_EQ(op_shape::join(a, a), a);
    EXPECT_EQ(op_shape::join(a, b), op_shape::join(b, a));
    EXPECT_EQ(op_shape::join(op_shape::join(a, b), c),
              op_shape::join(a, op_shape::join(b, c)));
}

TEST(OpShape, ToStringFormats)
{
    EXPECT_EQ(op_shape::adder(12).to_string(), "add12");
    EXPECT_EQ(op_shape::multiplier(20, 18).to_string(), "mul20x18");
}

TEST(OpShape, StreamOperatorMatchesToString)
{
    std::ostringstream os;
    os << op_shape::multiplier(4, 6);
    EXPECT_EQ(os.str(), "mul6x4");
}

TEST(OpShape, DefaultIsSmallestAdder)
{
    const op_shape d;
    EXPECT_EQ(d.kind(), op_kind::add);
    EXPECT_EQ(d.width_a(), 1);
}

// -------------------------------------------------------- sonic model --

TEST(SonicModel, AdderLatencyIsConstantTwoCycles)
{
    const sonic_model model;
    EXPECT_EQ(model.latency(op_shape::adder(1)), 2);
    EXPECT_EQ(model.latency(op_shape::adder(12)), 2);
    EXPECT_EQ(model.latency(op_shape::adder(64)), 2);
}

TEST(SonicModel, MultiplierLatencyIsCeilSumOver8)
{
    const sonic_model model;
    // Paper: latency of an n x m multiplier = ceil((n+m)/8).
    EXPECT_EQ(model.latency(op_shape::multiplier(4, 4)), 1);  // 8/8
    EXPECT_EQ(model.latency(op_shape::multiplier(4, 5)), 2);  // 9/8
    EXPECT_EQ(model.latency(op_shape::multiplier(20, 18)), 5); // 38/8
    EXPECT_EQ(model.latency(op_shape::multiplier(24, 24)), 6); // 48/8
}

TEST(SonicModel, MultiplierLatencyIsMonotoneInWidths)
{
    const sonic_model model;
    for (int a = 1; a <= 24; ++a) {
        for (int b = 1; b <= a; ++b) {
            const int lat = model.latency(op_shape::multiplier(a, b));
            EXPECT_LE(model.latency(op_shape::multiplier(a - 1 > 0 ? a - 1 : 1,
                                                         b)),
                      lat);
        }
    }
}

TEST(SonicModel, AreaModelsAreWidthProportional)
{
    const sonic_model model;
    EXPECT_DOUBLE_EQ(model.area(op_shape::adder(12)), 12.0);
    EXPECT_DOUBLE_EQ(model.area(op_shape::multiplier(20, 18)), 360.0);
}

TEST(SonicModel, AreaIsMonotoneUnderCovering)
{
    const sonic_model model;
    const op_shape small = op_shape::multiplier(8, 6);
    const op_shape big = op_shape::multiplier(10, 9);
    ASSERT_TRUE(big.covers(small));
    EXPECT_GT(model.area(big), model.area(small));
}

TEST(SonicModel, CustomParametersApply)
{
    const sonic_model model(/*adder_latency=*/3, /*mul_bits_per_cycle=*/16);
    EXPECT_EQ(model.latency(op_shape::adder(8)), 3);
    EXPECT_EQ(model.latency(op_shape::multiplier(16, 16)), 2); // 32/16
}

TEST(SonicModel, InvalidParametersThrow)
{
    EXPECT_THROW(static_cast<void>(sonic_model(0, 8)), precondition_error);
    EXPECT_THROW(static_cast<void>(sonic_model(2, 0)), precondition_error);
}

TEST(UniformLatencyModel, LatencyIsUniform)
{
    const uniform_latency_model model(3);
    EXPECT_EQ(model.latency(op_shape::adder(4)), 3);
    EXPECT_EQ(model.latency(op_shape::multiplier(24, 24)), 3);
}

TEST(UniformLatencyModel, AreaStillScalesWithWordlength)
{
    const uniform_latency_model model;
    EXPECT_LT(model.area(op_shape::adder(4)),
              model.area(op_shape::adder(8)));
    EXPECT_DOUBLE_EQ(model.area(op_shape::multiplier(6, 5)), 30.0);
}

TEST(UniformLatencyModel, InvalidLatencyThrows)
{
    EXPECT_THROW(static_cast<void>(uniform_latency_model(0)), precondition_error);
}

TEST(OpKind, ToStringNames)
{
    EXPECT_STREQ(to_string(op_kind::add), "add");
    EXPECT_STREQ(to_string(op_kind::mul), "mul");
}

} // namespace
} // namespace mwl
