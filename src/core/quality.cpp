#include "core/quality.hpp"

#include "baseline/descending.hpp"
#include "baseline/two_stage.hpp"
#include "core/dpalloc.hpp"
#include "dfg/analysis.hpp"
#include "ilp/formulation.hpp"
#include "rtl/netlist.hpp"
#include "tgff/corpus.hpp"

#include <cctype>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <utility>

namespace mwl {
namespace {

// ---------------------------------------------------------- JSON writing --

/// Shortest representation that round-trips through stod.
std::string json_number(double value)
{
    std::ostringstream out;
    out << std::setprecision(17) << value;
    return out.str();
}

std::string escape(const std::string& text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        if (c == '"' || c == '\\') {
            out += '\\';
        }
        out += c;
    }
    return out;
}

// ---------------------------------------------------------- JSON parsing --
//
// A minimal recursive-descent reader for the subset to_json emits
// (objects, arrays, strings without exotic escapes, numbers, booleans).
// Self-contained on purpose: goldens are repo-internal artifacts and the
// container has no JSON library to lean on.

struct json_value {
    enum class kind { object, array, string, number, boolean };
    kind what = kind::number;
    double number = 0.0;
    bool boolean = false;
    std::string string;
    std::vector<json_value> array;
    std::vector<std::pair<std::string, json_value>> object;
};

class json_parser {
public:
    explicit json_parser(const std::string& text) : text_(text) {}

    json_value parse()
    {
        json_value v = value();
        skip_space();
        if (at_ != text_.size()) {
            fail("trailing characters after the top-level value");
        }
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& message) const
    {
        throw quality_format_error("quality report JSON, offset " +
                                   std::to_string(at_) + ": " + message);
    }

    void skip_space()
    {
        while (at_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[at_]))) {
            ++at_;
        }
    }

    char peek()
    {
        skip_space();
        if (at_ >= text_.size()) {
            fail("unexpected end of input");
        }
        return text_[at_];
    }

    void expect(char c)
    {
        if (peek() != c) {
            fail(std::string("expected '") + c + "'");
        }
        ++at_;
    }

    std::string string_literal()
    {
        expect('"');
        std::string out;
        while (at_ < text_.size() && text_[at_] != '"') {
            char c = text_[at_++];
            if (c == '\\') {
                if (at_ >= text_.size()) {
                    fail("unterminated escape");
                }
                c = text_[at_++];
                if (c != '"' && c != '\\') {
                    fail("unsupported escape sequence");
                }
            }
            out += c;
        }
        if (at_ >= text_.size()) {
            fail("unterminated string");
        }
        ++at_; // closing quote
        return out;
    }

    json_value value()
    {
        const char c = peek();
        json_value v;
        if (c == '{') {
            ++at_;
            v.what = json_value::kind::object;
            if (peek() == '}') {
                ++at_;
                return v;
            }
            while (true) {
                std::string key = string_literal();
                expect(':');
                v.object.emplace_back(std::move(key), value());
                if (peek() == ',') {
                    ++at_;
                    continue;
                }
                expect('}');
                return v;
            }
        }
        if (c == '[') {
            ++at_;
            v.what = json_value::kind::array;
            if (peek() == ']') {
                ++at_;
                return v;
            }
            while (true) {
                v.array.push_back(value());
                if (peek() == ',') {
                    ++at_;
                    continue;
                }
                expect(']');
                return v;
            }
        }
        if (c == '"') {
            v.what = json_value::kind::string;
            v.string = string_literal();
            return v;
        }
        if (text_.compare(at_, 4, "true") == 0) {
            at_ += 4;
            v.what = json_value::kind::boolean;
            v.boolean = true;
            return v;
        }
        if (text_.compare(at_, 5, "false") == 0) {
            at_ += 5;
            v.what = json_value::kind::boolean;
            return v;
        }
        std::size_t end = at_;
        while (end < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[end])) ||
                text_[end] == '-' || text_[end] == '+' || text_[end] == '.' ||
                text_[end] == 'e' || text_[end] == 'E')) {
            ++end;
        }
        if (end == at_) {
            fail("expected a value");
        }
        try {
            v.number = std::stod(text_.substr(at_, end - at_));
        } catch (const std::exception&) {
            fail("malformed number");
        }
        at_ = end;
        return v;
    }

    const std::string& text_;
    std::size_t at_ = 0;
};

const json_value& member(const json_value& obj, const char* key)
{
    if (obj.what != json_value::kind::object) {
        throw quality_format_error(
            std::string("expected an object around key '") + key + "'");
    }
    for (const auto& [name, value] : obj.object) {
        if (name == key) {
            return value;
        }
    }
    throw quality_format_error(std::string("missing key '") + key + "'");
}

double number_of(const json_value& obj, const char* key)
{
    const json_value& v = member(obj, key);
    if (v.what != json_value::kind::number) {
        throw quality_format_error(std::string("key '") + key +
                                   "' is not a number");
    }
    return v.number;
}

int int_of(const json_value& obj, const char* key)
{
    return static_cast<int>(number_of(obj, key));
}

std::size_t size_of(const json_value& obj, const char* key)
{
    const double v = number_of(obj, key);
    if (v < 0) {
        throw quality_format_error(std::string("key '") + key +
                                   "' must be non-negative");
    }
    return static_cast<std::size_t>(v);
}

bool bool_of(const json_value& obj, const char* key)
{
    const json_value& v = member(obj, key);
    if (v.what != json_value::kind::boolean) {
        throw quality_format_error(std::string("key '") + key +
                                   "' is not a boolean");
    }
    return v.boolean;
}

std::string string_of(const json_value& obj, const char* key)
{
    const json_value& v = member(obj, key);
    if (v.what != json_value::kind::string) {
        throw quality_format_error(std::string("key '") + key +
                                   "' is not a string");
    }
    return v.string;
}

// ------------------------------------------------------------- diffing ----

void push_drift(std::vector<metric_drift>& out, const quality_report& golden,
                const std::string& allocator, const char* metric,
                double expected, double actual, double allowed)
{
    if (std::abs(actual - expected) <= allowed) {
        return;
    }
    out.push_back(
        {golden.scenario, allocator, metric, expected, actual, allowed});
}

} // namespace

quality_metrics measure_quality(const sequencing_graph& graph,
                                const hardware_model& model,
                                const datapath& path, int lambda)
{
    quality_metrics m;
    m.lambda = lambda;
    m.latency = path.latency;
    m.fu_count = path.instances.size();
    m.fu_area = path.total_area;
    const rtl_netlist net = build_rtl(graph, model, path);
    m.register_count = net.registers.size();
    m.register_area = net.register_area;
    m.mux_count = net.muxes.size();
    m.mux_area = net.mux_area;
    m.ext_area = net.total_area();
    return m;
}

quality_report measure_quality_report(const sequencing_graph& graph,
                                      std::string name,
                                      const hardware_model& model,
                                      const quality_options& options)
{
    require(!graph.empty(), "cannot measure quality of an empty graph");
    quality_report report;
    report.scenario = std::move(name);
    report.ops = graph.size();
    report.edges = graph.edge_count();
    report.lambda_min = min_latency(graph, model);
    report.options = options;
    const int lambda = relaxed_lambda(report.lambda_min, options.slack);

    const auto record = [&](const char* allocator, const datapath& path) {
        report.allocators.push_back(
            {allocator, measure_quality(graph, model, path, lambda)});
    };
    if (options.use_dpalloc) {
        record("dpalloc", dpalloc(graph, model, lambda).path);
    }
    if (options.use_two_stage) {
        record("two_stage", two_stage_allocate(graph, model, lambda).path);
    }
    if (options.use_descending) {
        record("descending", descending_allocate(graph, model, lambda));
    }
    if (options.ilp_max_ops > 0 && graph.size() <= options.ilp_max_ops) {
        mip_options mip;
        mip.max_nodes = options.ilp_max_nodes;
        const ilp_result ilp = solve_ilp(graph, model, lambda, mip);
        // Only proven optima are locked in: the node cap is deterministic,
        // so whether this row exists is machine-independent, and an
        // unproven incumbent would be a meaningless golden.
        if (ilp.status == mip_status::optimal) {
            record("ilp", ilp.path);
        }
    }
    return report;
}

std::string to_json(const quality_report& report)
{
    std::ostringstream out;
    out << "{\n"
        << "  \"format_version\": " << quality_format_version << ",\n"
        << "  \"scenario\": \"" << escape(report.scenario) << "\",\n"
        << "  \"ops\": " << report.ops << ",\n"
        << "  \"edges\": " << report.edges << ",\n"
        << "  \"lambda_min\": " << report.lambda_min << ",\n"
        << "  \"options\": {\"slack\": " << json_number(report.options.slack)
        << ", \"ilp_max_ops\": " << report.options.ilp_max_ops
        << ", \"ilp_max_nodes\": " << report.options.ilp_max_nodes
        << ", \"use_dpalloc\": "
        << (report.options.use_dpalloc ? "true" : "false")
        << ", \"use_two_stage\": "
        << (report.options.use_two_stage ? "true" : "false")
        << ", \"use_descending\": "
        << (report.options.use_descending ? "true" : "false") << "},\n"
        << "  \"allocators\": [";
    for (std::size_t i = 0; i < report.allocators.size(); ++i) {
        const allocator_quality& a = report.allocators[i];
        const quality_metrics& m = a.metrics;
        out << (i == 0 ? "" : ",") << "\n    {\"name\": \""
            << escape(a.allocator) << "\", \"lambda\": " << m.lambda
            << ", \"latency\": " << m.latency
            << ", \"fu_count\": " << m.fu_count
            << ", \"fu_area\": " << json_number(m.fu_area)
            << ", \"register_count\": " << m.register_count
            << ", \"register_area\": " << json_number(m.register_area)
            << ", \"mux_count\": " << m.mux_count
            << ", \"mux_area\": " << json_number(m.mux_area)
            << ", \"ext_area\": " << json_number(m.ext_area) << "}";
    }
    out << "\n  ]\n}\n";
    return out.str();
}

quality_report parse_quality_report(const std::string& text)
{
    const json_value root = json_parser(text).parse();
    const int version = int_of(root, "format_version");
    if (version != quality_format_version) {
        throw quality_format_error(
            "golden format_version " + std::to_string(version) +
            " does not match this build's version " +
            std::to_string(quality_format_version) +
            " (refresh with mwl_scenarios --update-goldens)");
    }
    quality_report report;
    report.scenario = string_of(root, "scenario");
    report.ops = size_of(root, "ops");
    report.edges = size_of(root, "edges");
    report.lambda_min = int_of(root, "lambda_min");
    const json_value& options = member(root, "options");
    report.options.slack = number_of(options, "slack");
    report.options.ilp_max_ops = size_of(options, "ilp_max_ops");
    report.options.ilp_max_nodes = size_of(options, "ilp_max_nodes");
    report.options.use_dpalloc = bool_of(options, "use_dpalloc");
    report.options.use_two_stage = bool_of(options, "use_two_stage");
    report.options.use_descending = bool_of(options, "use_descending");
    const json_value& allocators = member(root, "allocators");
    if (allocators.what != json_value::kind::array) {
        throw quality_format_error("key 'allocators' is not an array");
    }
    for (const json_value& entry : allocators.array) {
        allocator_quality a;
        a.allocator = string_of(entry, "name");
        a.metrics.lambda = int_of(entry, "lambda");
        a.metrics.latency = int_of(entry, "latency");
        a.metrics.fu_count = size_of(entry, "fu_count");
        a.metrics.fu_area = number_of(entry, "fu_area");
        a.metrics.register_count = size_of(entry, "register_count");
        a.metrics.register_area = number_of(entry, "register_area");
        a.metrics.mux_count = size_of(entry, "mux_count");
        a.metrics.mux_area = number_of(entry, "mux_area");
        a.metrics.ext_area = number_of(entry, "ext_area");
        report.allocators.push_back(std::move(a));
    }
    return report;
}

std::vector<metric_drift> diff_quality(const quality_report& golden,
                                       const quality_report& current,
                                       const drift_tolerances& tol)
{
    std::vector<metric_drift> out;
    const auto structural = [&](const char* metric, double expected,
                                double actual) {
        push_drift(out, golden, "-", metric, expected, actual, 0.0);
    };
    structural("ops", static_cast<double>(golden.ops),
               static_cast<double>(current.ops));
    structural("edges", static_cast<double>(golden.edges),
               static_cast<double>(current.edges));
    structural("lambda_min", golden.lambda_min, current.lambda_min);
    structural("options.slack", golden.options.slack, current.options.slack);
    structural("options.ilp_max_ops",
               static_cast<double>(golden.options.ilp_max_ops),
               static_cast<double>(current.options.ilp_max_ops));

    for (const allocator_quality& want : golden.allocators) {
        const allocator_quality* have = nullptr;
        for (const allocator_quality& a : current.allocators) {
            if (a.allocator == want.allocator) {
                have = &a;
                break;
            }
        }
        if (have == nullptr) {
            push_drift(out, golden, want.allocator, "present", 1.0, 0.0, 0.0);
            continue;
        }
        const quality_metrics& e = want.metrics;
        const quality_metrics& a = have->metrics;
        const auto area_tol = [&](double expected) {
            return tol.area_rel * std::max(1.0, std::abs(expected));
        };
        push_drift(out, golden, want.allocator, "lambda", e.lambda, a.lambda,
                   0.0);
        push_drift(out, golden, want.allocator, "latency", e.latency,
                   a.latency, tol.latency_abs);
        push_drift(out, golden, want.allocator, "fu_count",
                   static_cast<double>(e.fu_count),
                   static_cast<double>(a.fu_count), tol.count_abs);
        push_drift(out, golden, want.allocator, "fu_area", e.fu_area,
                   a.fu_area, area_tol(e.fu_area));
        push_drift(out, golden, want.allocator, "register_count",
                   static_cast<double>(e.register_count),
                   static_cast<double>(a.register_count), tol.count_abs);
        push_drift(out, golden, want.allocator, "register_area",
                   e.register_area, a.register_area,
                   area_tol(e.register_area));
        push_drift(out, golden, want.allocator, "mux_count",
                   static_cast<double>(e.mux_count),
                   static_cast<double>(a.mux_count), tol.count_abs);
        push_drift(out, golden, want.allocator, "mux_area", e.mux_area,
                   a.mux_area, area_tol(e.mux_area));
        push_drift(out, golden, want.allocator, "ext_area", e.ext_area,
                   a.ext_area, area_tol(e.ext_area));
    }
    for (const allocator_quality& a : current.allocators) {
        bool known = false;
        for (const allocator_quality& want : golden.allocators) {
            known = known || want.allocator == a.allocator;
        }
        if (!known) {
            push_drift(out, golden, a.allocator, "present", 0.0, 1.0, 0.0);
        }
    }
    return out;
}

table render_drift_table(std::span<const metric_drift> drifts)
{
    table t("allocation-quality drift (golden vs. current)");
    t.header({"scenario", "allocator", "metric", "golden", "current",
              "allowed", "delta"});
    for (const metric_drift& d : drifts) {
        t.row({d.scenario, d.allocator, d.metric, table::num(d.expected, 3),
               table::num(d.actual, 3), table::num(d.allowed, 3),
               table::num(d.actual - d.expected, 3)});
    }
    return t;
}

} // namespace mwl
