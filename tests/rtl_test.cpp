// Unit tests for src/rtl: value lifetimes, left-edge register allocation
// (optimal for interval graphs: register count == max live values), mux
// derivation, the extended area model, and Verilog emission.

#include "core/dpalloc.hpp"
#include "dfg/analysis.hpp"
#include "model/hardware_model.hpp"
#include "rtl/elaborate.hpp"
#include "rtl/netlist.hpp"
#include "rtl/verilog.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "tgff/corpus.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace mwl {
namespace {

sequencing_graph fig1_graph()
{
    sequencing_graph g;
    const op_id m1 = g.add_operation(op_shape::multiplier(12, 12), "m1");
    const op_id m2 = g.add_operation(op_shape::multiplier(8, 4), "m2");
    const op_id a = g.add_operation(op_shape::adder(12), "a");
    g.add_dependency(m1, a);
    g.add_dependency(m2, a);
    return g;
}

// ----------------------------------------------------------- lifetimes --

TEST(Lifetimes, ResultWidths)
{
    EXPECT_EQ(result_width(op_shape::adder(9)), 9);
    EXPECT_EQ(result_width(op_shape::multiplier(12, 8)), 20);
}

TEST(Lifetimes, BirthAtFinishDeathAtLastConsumer)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    const dpalloc_result r = dpalloc(g, model, 8);
    const auto lifetimes = compute_lifetimes(g, r.path);
    ASSERT_EQ(lifetimes.size(), 3u);
    for (const value_lifetime& v : lifetimes) {
        EXPECT_EQ(v.birth, r.path.start[v.producer.value()] +
                               r.path.bound_latency(v.producer));
        EXPECT_GT(v.death, v.birth); // at least one cycle of storage
    }
    // m1 feeds the adder: the value must survive until the adder has
    // *finished* sampling it.
    EXPECT_EQ(lifetimes[0].death,
              std::max(r.path.start[2] + r.path.bound_latency(op_id(2)),
                       lifetimes[0].birth + 1));
}

TEST(Lifetimes, PrimaryOutputLivesPastScheduleEnd)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    const dpalloc_result r = dpalloc(g, model, 8);
    const auto lifetimes = compute_lifetimes(g, r.path);
    // Output registers are read from outside after the final capture
    // edge, so the value must outlive the whole schedule -- otherwise a
    // last-cycle capture of another output could recycle its register.
    EXPECT_EQ(lifetimes[2].death, r.path.latency + 1);
    EXPECT_GT(lifetimes[2].death, lifetimes[2].birth);
}

TEST(LeftEdge, CountEqualsMaxOverlap)
{
    // Classic left-edge optimality on hand-built lifetimes.
    std::vector<value_lifetime> lts{
        {op_id(0), 0, 4, 8},  // |----|
        {op_id(1), 1, 3, 8},  //  |--|
        {op_id(2), 3, 6, 8},  //    |---|
        {op_id(3), 4, 7, 8},  //     |---|
    };
    const auto regs = left_edge_allocate(lts);
    // max overlap: at t in [1,3): values 0,1 -> 2; at t=4..5: 2,3 -> 2.
    EXPECT_EQ(regs.size(), 2u);
}

TEST(LeftEdge, DisjointLifetimesShareOneRegister)
{
    std::vector<value_lifetime> lts{
        {op_id(0), 0, 2, 4},
        {op_id(1), 2, 4, 9},
        {op_id(2), 4, 6, 6},
    };
    const auto regs = left_edge_allocate(lts);
    ASSERT_EQ(regs.size(), 1u);
    EXPECT_EQ(regs[0].width, 9); // widest value
    EXPECT_EQ(regs[0].values.size(), 3u);
}

TEST(LeftEdge, RegisterCountMatchesMaxLiveValuesOnRandomDatapaths)
{
    const sonic_model model;
    const auto corpus = make_corpus(12, 10, model, 91);
    for (const corpus_entry& e : corpus) {
        const int lambda = relaxed_lambda(e.lambda_min, 0.2);
        const dpalloc_result r = dpalloc(e.graph, model, lambda);
        const auto lts = compute_lifetimes(e.graph, r.path);
        const auto regs = left_edge_allocate(lts);
        // Independent recomputation of the max number of live values.
        std::size_t max_live = 0;
        for (int t = 0; t <= r.path.latency; ++t) {
            std::size_t live = 0;
            for (const value_lifetime& v : lts) {
                live += (v.birth <= t && t < v.death) ? 1u : 0u;
            }
            max_live = std::max(max_live, live);
        }
        EXPECT_EQ(regs.size(), max_live);
    }
}

TEST(LeftEdge, EachValueAssignedExactlyOnce)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    const dpalloc_result r = dpalloc(g, model, 5);
    const auto lts = compute_lifetimes(g, r.path);
    const auto regs = left_edge_allocate(lts);
    std::vector<int> seen(lts.size(), 0);
    for (const rtl_register& reg : regs) {
        int last_death = -1;
        for (const std::size_t vi : reg.values) {
            ++seen[vi];
            // values on one register must be time-disjoint, in order
            EXPECT_GE(lts[vi].birth, last_death);
            last_death = lts[vi].death;
        }
    }
    for (const int s : seen) {
        EXPECT_EQ(s, 1);
    }
}

// -------------------------------------------------------------- netlist --

TEST(Netlist, AreasDecomposeAndAddUp)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    const dpalloc_result r = dpalloc(g, model, 8);
    const rtl_netlist net = build_rtl(g, model, r.path);
    EXPECT_DOUBLE_EQ(net.fu_area, r.path.total_area);
    EXPECT_GT(net.register_area, 0.0);
    EXPECT_DOUBLE_EQ(net.total_area(),
                     net.fu_area + net.register_area + net.mux_area);
}

TEST(Netlist, SharedInstanceGetsOperandMuxes)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    // lambda = 8: both mults share the 12x12 -> its ports see two sources.
    const dpalloc_result r = dpalloc(g, model, 8);
    const rtl_netlist net = build_rtl(g, model, r.path);
    bool has_multi_input_fu_mux = false;
    for (const rtl_mux& mux : net.muxes) {
        if (mux.feeds_fu && mux.fan_in >= 2) {
            has_multi_input_fu_mux = true;
        }
    }
    EXPECT_TRUE(has_multi_input_fu_mux);
}

TEST(Netlist, UnsharedDesignHasNoFuMuxCost)
{
    // Single op: one FU, one register, no multi-input muxes.
    sequencing_graph g;
    g.add_operation(op_shape::multiplier(8, 8));
    const sonic_model model;
    const dpalloc_result r = dpalloc(g, model, 2);
    const rtl_netlist net = build_rtl(g, model, r.path);
    EXPECT_DOUBLE_EQ(net.mux_area, 0.0);
    EXPECT_EQ(net.registers.size(), 1u);
}

TEST(Netlist, CostModelScalesLinearly)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    const dpalloc_result r = dpalloc(g, model, 8);
    rtl_cost_model base;
    rtl_cost_model doubled;
    doubled.area_per_register_bit = base.area_per_register_bit * 2;
    doubled.area_per_mux_input_bit = base.area_per_mux_input_bit * 2;
    const rtl_netlist n1 = build_rtl(g, model, r.path, base);
    const rtl_netlist n2 = build_rtl(g, model, r.path, doubled);
    EXPECT_DOUBLE_EQ(n2.register_area, 2.0 * n1.register_area);
    EXPECT_DOUBLE_EQ(n2.mux_area, 2.0 * n1.mux_area);
}

// -------------------------------------------------------------- verilog --

TEST(Verilog, ContainsModuleSkeleton)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    const dpalloc_result r = dpalloc(g, model, 8);
    const rtl_netlist net = build_rtl(g, model, r.path);
    const std::string v = to_verilog(g, r.path, net, "fig1");
    EXPECT_NE(v.find("module fig1 ("), std::string::npos);
    EXPECT_NE(v.find("endmodule"), std::string::npos);
    EXPECT_NE(v.find("input  wire clk"), std::string::npos);
    EXPECT_NE(v.find("assign done"), std::string::npos);
}

TEST(Verilog, DeclaresEveryRegisterAndFu)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    const dpalloc_result r = dpalloc(g, model, 8);
    const rtl_netlist net = build_rtl(g, model, r.path);
    const std::string v = to_verilog(g, r.path, net, "fig1");
    for (std::size_t i = 0; i < net.registers.size(); ++i) {
        EXPECT_NE(v.find(" r" + std::to_string(i) + ";"),
                  std::string::npos);
    }
    for (std::size_t i = 0; i < r.path.instances.size(); ++i) {
        EXPECT_NE(v.find("fu" + std::to_string(i) + "_y"),
                  std::string::npos);
    }
}

TEST(Verilog, PrimaryIoMatchesGraphShape)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    const dpalloc_result r = dpalloc(g, model, 8);
    const rtl_netlist net = build_rtl(g, model, r.path);
    const std::string v = to_verilog(g, r.path, net, "fig1");
    // Sources m1, m2 take two external operands each; adder output is the
    // only primary output.
    EXPECT_NE(v.find("in_o0_0"), std::string::npos);
    EXPECT_NE(v.find("in_o0_1"), std::string::npos);
    EXPECT_NE(v.find("in_o1_0"), std::string::npos);
    EXPECT_NE(v.find("out_o2"), std::string::npos);
    EXPECT_EQ(v.find("out_o0"), std::string::npos);
}

TEST(Verilog, MultiplierUsesSignedStarAdderUsesSignedPlus)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    const dpalloc_result r = dpalloc(g, model, 8);
    const rtl_netlist net = build_rtl(g, model, r.path);
    const std::string v = to_verilog(g, r.path, net, "fig1");
    // Bodies must be *signed*: an unsigned `*` over raw two's-complement
    // bits diverges in the upper half of the product.
    EXPECT_NE(v.find("_a) * $signed("), std::string::npos);
    EXPECT_NE(v.find("_a) + $signed("), std::string::npos);
}

TEST(Verilog, SharedUnitOperandsAreSignExtended)
{
    // lambda = 8 shares the 12x12 multiplier: the 8x4 operation's
    // operands must be sign-extended into the wider ports, and its
    // 12-bit result sign-extended into the 24-bit shared register.
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    const dpalloc_result r = dpalloc(g, model, 8);
    const rtl_netlist net = build_rtl(g, model, r.path);
    const std::string v = to_verilog(g, r.path, net, "fig1");
    EXPECT_NE(v.find("{{4{in_o1_0[7]}}, in_o1_0}"), std::string::npos);
    EXPECT_NE(v.find("{{8{in_o1_1[3]}}, in_o1_1}"), std::string::npos);
    EXPECT_NE(v.find("{{12{fu0_y[11]}}, fu0_y}"), std::string::npos);
    // No widening assignment without a replication prefix: the value
    // capture of the shared mul is sliced at the native result width.
    EXPECT_NE(v.find("fu1_y[11:0]; // o1"), std::string::npos);
}

TEST(Verilog, ElaboratedDesignValidates)
{
    const sonic_model model;
    const auto corpus = make_corpus(10, 5, model, 23);
    for (const corpus_entry& e : corpus) {
        const dpalloc_result r =
            dpalloc(e.graph, model, relaxed_lambda(e.lambda_min, 0.2));
        const rtl_netlist net = build_rtl(e.graph, model, r.path);
        const rtl_design design = elaborate(e.graph, r.path, net, "dut");
        EXPECT_TRUE(validate_design(design).empty());
        EXPECT_EQ(to_verilog(design), to_verilog(e.graph, r.path, net, "dut"));
    }
}

TEST(Verilog, LegacyElaborationFailsValidation)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    const dpalloc_result r = dpalloc(g, model, 8);
    const rtl_netlist net = build_rtl(g, model, r.path);
    elaborate_options legacy;
    legacy.legacy_operand_extension = true;
    const auto bad_ops = validate_design(elaborate(g, r.path, net, "dut",
                                                   legacy));
    EXPECT_FALSE(bad_ops.empty());
    elaborate_options legacy_cap;
    legacy_cap.legacy_capture_extension = true;
    const auto bad_cap = validate_design(
        elaborate(g, r.path, net, "dut", legacy_cap));
    EXPECT_FALSE(bad_cap.empty());
}

TEST(Verilog, EmptyModuleNameThrows)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    const dpalloc_result r = dpalloc(g, model, 8);
    const rtl_netlist net = build_rtl(g, model, r.path);
    EXPECT_THROW(static_cast<void>(to_verilog(g, r.path, net, "")),
                 precondition_error);
}

TEST(Verilog, BalancedBeginEnd)
{
    const sonic_model model;
    const auto corpus = make_corpus(10, 3, model, 17);
    for (const corpus_entry& e : corpus) {
        const dpalloc_result r =
            dpalloc(e.graph, model,
                    relaxed_lambda(e.lambda_min, 0.2));
        const rtl_netlist net = build_rtl(e.graph, model, r.path);
        const std::string v = to_verilog(e.graph, r.path, net, "dut");
        std::size_t begins = 0;
        std::size_t ends = 0;
        for (std::size_t pos = 0;
             (pos = v.find("begin", pos)) != std::string::npos; ++pos) {
            ++begins;
        }
        for (std::size_t pos = 0;
             (pos = v.find("end", pos)) != std::string::npos; ++pos) {
            ++ends;
        }
        // every "begin" has an "end"; "endcase"/"endmodule" add more ends.
        EXPECT_GE(ends, begins);
    }
}

} // namespace
} // namespace mwl
