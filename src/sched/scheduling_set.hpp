// Minimum-cardinality scheduling set (paper §2.2).
//
// "Before any scheduling, a minimum cardinality subset S of R is found such
// that every operation has an H edge to some member of S."  The paper does
// not give a method; minimum set cover is NP-hard, but the instances here
// are tiny (|O| <= tens, |R| <= a few hundred), so we solve it *exactly*
// with branch and bound seeded by Chvátal's greedy bound, after removing
// coverage-dominated resources. A node cap keeps the worst case polynomial
// in practice; if it is ever hit we fall back to the greedy cover (still a
// valid scheduling set, merely possibly non-minimum) -- the flag in the
// result records which happened.

#ifndef MWL_SCHED_SCHEDULING_SET_HPP
#define MWL_SCHED_SCHEDULING_SET_HPP

#include "support/ids.hpp"
#include "wcg/wcg.hpp"

#include <cstdint>
#include <vector>

namespace mwl {

struct scheduling_set_result {
    /// Members of S, ascending res_id.
    std::vector<res_id> members;
    /// True if the branch-and-bound proved minimality (always true in the
    /// paper-scale experiments).
    bool proven_minimum = true;
};

/// Memo for min_scheduling_set across DPAlloc iterations, keyed on the WCG
/// edge version. Two states:
///  * same edge version as the cached entry -> the H edges are identical,
///    so the cached cover is returned without any search (this is every
///    capacity-escalation iteration, and every repeated query within one
///    iteration);
///  * different version -> the previous optimum warm-starts the branch and
///    bound: if it still covers all operations, |previous| is an admissible
///    upper bound that tightens pruning without changing which cover the
///    search returns (see PERF.md, "warm start is prune-only"). If the
///    warm search still hits the node cap it is rerun cold, so a capped
///    query also matches the cold overload; the only possible divergence
///    is a warm search that completes where the cold one would have
///    capped -- the cached path then returns a proven minimum instead of
///    the cold path's capped fallback.
struct scheduling_set_cache {
    const wordlength_compatibility_graph* owner = nullptr; ///< source WCG
    std::uint64_t edge_version = 0;
    std::size_t node_cap = 0; ///< cap the cached result was computed under
    bool valid = false;
    scheduling_set_result result;
    // Reusable search buffers (pure scratch, reset per query): the
    // candidate coverage arena and the per-operation cover lists.
    std::vector<std::uint64_t> pool_ws;
    std::vector<std::vector<std::size_t>> covers_ws;
};

/// Compute the scheduling set over the current H edges of `wcg`.
/// `node_cap` bounds the branch-and-bound search tree size.
[[nodiscard]] scheduling_set_result
min_scheduling_set(const wordlength_compatibility_graph& wcg,
                   std::size_t node_cap = 200000);

/// Memoized / warm-started variant; updates `cache` in place. Returns the
/// same cover as the cold overload whenever the node cap is not hit.
[[nodiscard]] scheduling_set_result
min_scheduling_set(const wordlength_compatibility_graph& wcg,
                   scheduling_set_cache& cache,
                   std::size_t node_cap = 200000);

} // namespace mwl

#endif // MWL_SCHED_SCHEDULING_SET_HPP
