// Allocation-service throughput: an in-process mwl_serve core (the same
// src/serve/ server the daemon wraps) hammered over a unix socket from
// concurrent pipelined connections, cold (every job a distinct
// allocation) and warm (replaying the corpus against the striped result
// cache, so the number is protocol + cache overhead, not dpalloc).
// Responses are checked ok and the warm arm must be all cache hits --
// the req/s can never come from dropped or failed requests.
//
// Emits the aligned table (or --csv) plus a JSON artifact: always
// written to BENCH_serve_throughput.json (or --out FILE) and echoed to
// stdout.

#include "bench_common.hpp"
#include "io/graph_io.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "support/timer.hpp"
#include "tgff/corpus.hpp"

#include <atomic>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <unistd.h>

namespace {

using namespace mwl;

constexpr std::size_t window = 16; ///< pipelined requests per connection

/// One connection's share of a pass: `requests` allocs cycling through
/// the corpus (offset by the connection index, so cold passes never ask
/// twice), pipelined up to `window` and honouring busy/retry-after
/// backpressure like a well-behaved client. Returns false on any error
/// response or transport hiccup.
bool hammer(const serve::endpoint& ep, const std::vector<std::string>& jobs,
            const std::vector<int>& lambdas, std::size_t first,
            std::size_t stride, std::size_t requests)
{
    serve::client_connection conn(ep);
    std::unordered_map<std::uint64_t, std::size_t> outstanding;
    std::size_t next = 0;
    std::size_t done = 0;
    const auto send_job = [&](std::uint64_t id, std::size_t job) {
        return conn.send(serve::format_alloc_request(id, lambdas[job], 0.0,
                                                     jobs[job]));
    };
    while (done < requests) {
        while (outstanding.size() < window && next < requests) {
            const std::size_t job = (first + next * stride) % jobs.size();
            if (!send_job(next, job)) {
                return false;
            }
            outstanding[next] = job;
            ++next;
        }
        const auto resp = conn.receive();
        if (!resp) {
            return false;
        }
        const auto it = outstanding.find(resp->id);
        if (it == outstanding.end()) {
            return false;
        }
        if (resp->what == serve::response::status::busy) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(resp->retry_after_ms));
            if (!send_job(resp->id, it->second)) {
                return false;
            }
            continue;
        }
        if (resp->what != serve::response::status::ok) {
            return false;
        }
        outstanding.erase(it);
        ++done;
    }
    return true;
}

/// Run `conns` hammer threads and return the pass wall time in ms.
double pass_ms(const serve::endpoint& ep,
               const std::vector<std::string>& jobs,
               const std::vector<int>& lambdas, std::size_t conns,
               std::size_t requests_per_conn, bool& ok)
{
    std::atomic<bool> all_ok{true};
    stopwatch clock;
    {
        std::vector<std::thread> workers;
        workers.reserve(conns);
        for (std::size_t c = 0; c < conns; ++c) {
            workers.emplace_back([&, c] {
                if (!hammer(ep, jobs, lambdas, c, conns,
                            requests_per_conn)) {
                    all_ok.store(false);
                }
            });
        }
        for (std::thread& w : workers) {
            w.join();
        }
    }
    ok = all_ok.load();
    return clock.milliseconds();
}

} // namespace

int main(int argc, char** argv)
{
    bench::bench_options opt =
        bench::parse_options(argc, argv, "serve_throughput");
    const std::size_t n_ops = opt.max_size != 0 ? opt.max_size : 10;
    const std::size_t conns = 8;

    const sonic_model model;
    const auto corpus = make_corpus(n_ops, opt.graphs, model, opt.seed);
    std::vector<std::string> jobs;
    std::vector<int> lambdas;
    jobs.reserve(corpus.size());
    for (const corpus_entry& e : corpus) {
        jobs.push_back(write_graph(e.graph));
        lambdas.push_back(e.lambda_min);
    }

    const std::string sock =
        "serve_bench_" + std::to_string(::getpid()) + ".sock";
    serve::server_options options;
    options.unix_path = sock;
    // The default cache (4096 across 16 stripes) holds the whole corpus
    // per stripe even under hash skew, so the warm arm measures replay,
    // not per-shard eviction churn. The bench likewise measures the
    // protocol + engine path, not admission control: give the backlog
    // room for every pipelined request, so busy/retry sleeps never
    // masquerade as protocol cost.
    options.max_inflight = conns * window;
    options.queue_depth = window;
    serve::server server(options);
    std::atomic<bool> stop{false};
    std::thread runner(
        [&] { server.run([&] { return stop.load(); }); });
    const serve::endpoint ep = serve::parse_endpoint("unix:" + sock);

    // Cold: every request is a distinct allocation (each connection owns
    // a disjoint slice of the corpus). Warm: the whole corpus again from
    // every connection, all answered out of the striped cache.
    const std::size_t cold_per_conn =
        (corpus.size() + conns - 1) / conns;
    bool cold_ok = false;
    const double cold_ms =
        pass_ms(ep, jobs, lambdas, conns, cold_per_conn, cold_ok);
    const std::size_t warm_per_conn = 4 * corpus.size();
    bool warm_ok = false;
    const double warm_ms =
        pass_ms(ep, jobs, lambdas, conns, warm_per_conn, warm_ok);

    stop.store(true);
    runner.join();

    const engine_stats e = server.engine_snapshot();
    const latency_summary l = server.latency();
    if (!cold_ok || !warm_ok) {
        std::cerr << "serve_throughput: A REQUEST FAILED OR WAS DROPPED\n";
        return 1;
    }

    const std::size_t cold_requests = conns * cold_per_conn;
    const std::size_t warm_requests = conns * warm_per_conn;
    const auto rate = [](std::size_t requests, double ms) {
        return ms > 0.0 ? static_cast<double>(requests) / (ms / 1e3) : 0.0;
    };
    const double hit_rate =
        e.submitted != 0 ? static_cast<double>(e.cache_hits) /
                               static_cast<double>(e.submitted)
                         : 0.0;

    table t("Serve throughput: " + std::to_string(conns) + " conns, |O| = " +
            std::to_string(n_ops) + ", " + std::to_string(corpus.size()) +
            " distinct jobs");
    t.header({"arm", "requests", "ms", "req/s"});
    t.row({"cold (distinct jobs)", table::num(static_cast<int>(cold_requests)),
           table::num(cold_ms, 1), table::num(rate(cold_requests, cold_ms), 1)});
    t.row({"warm (cache replay)", table::num(static_cast<int>(warm_requests)),
           table::num(warm_ms, 1), table::num(rate(warm_requests, warm_ms), 1)});
    bench::emit(t, opt);
    std::cout << "engine: " << e.executed << " executed, " << e.cache_hits
              << " cache hits, " << e.coalesced << " coalesced (hit rate "
              << table::num(hit_rate, 3) << "); alloc latency p50 "
              << table::num(l.p50, 3) << " ms, p99 " << table::num(l.p99, 3)
              << " ms\n";

    std::ostringstream json;
    json << "{\"bench\":\"serve_throughput\",\"graphs\":" << opt.graphs
         << ",\"n_ops\":" << n_ops << ",\"seed\":" << opt.seed
         << ",\"conns\":" << conns << ",\"window\":" << window
         << ',' << bench::env_json() << ",\"cold\":{"
         << "\"requests\":" << cold_requests << ",\"ms\":" << cold_ms
         << ",\"req_per_s\":" << rate(cold_requests, cold_ms)
         << "},\"warm\":{\"requests\":" << warm_requests
         << ",\"ms\":" << warm_ms
         << ",\"req_per_s\":" << rate(warm_requests, warm_ms)
         << "},\"engine\":{\"executed\":" << e.executed
         << ",\"cache_hits\":" << e.cache_hits
         << ",\"coalesced\":" << e.coalesced
         << ",\"evictions\":" << e.evictions
         << ",\"hit_rate\":" << hit_rate
         << "},\"latency_ms\":{\"p50\":" << l.p50 << ",\"p99\":" << l.p99
         << "}}";
    const std::string artifact =
        opt.out.empty() ? "BENCH_serve_throughput.json" : opt.out;
    std::ofstream(artifact) << json.str() << '\n';
    std::cout << json.str() << '\n';
    return 0;
}
