// Shared command-line handling for the figure/table regeneration benches.
//
// Every bench runs with paper-shaped defaults scaled down to finish in
// seconds; pass --graphs 200 (and friends) to reproduce the paper's full
// corpus sizes. --csv switches the output to machine-readable form.

#ifndef MWL_BENCH_BENCH_COMMON_HPP
#define MWL_BENCH_BENCH_COMMON_HPP

#include "report/table.hpp"

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

namespace mwl::bench {

struct bench_options {
    std::size_t graphs = 25;      ///< corpus size per (|O|, slack) point
    std::uint64_t seed = 2001;    ///< corpus base seed
    bool csv = false;             ///< CSV instead of aligned table
    double ilp_time_limit = 5.0;  ///< per-instance ILP wall limit (seconds)
    std::size_t max_size = 0;     ///< 0 = bench default
    std::string out;              ///< optional artifact path (bench-specific)
};

inline bench_options parse_options(int argc, char** argv,
                                   const char* bench_name)
{
    bench_options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next_value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << bench_name << ": missing value for " << arg
                          << '\n';
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--graphs") {
            opt.graphs = std::stoul(next_value());
        } else if (arg == "--seed") {
            opt.seed = std::stoull(next_value());
        } else if (arg == "--csv") {
            opt.csv = true;
        } else if (arg == "--ilp-time-limit") {
            opt.ilp_time_limit = std::stod(next_value());
        } else if (arg == "--max-size") {
            opt.max_size = std::stoul(next_value());
        } else if (arg == "--out") {
            opt.out = next_value();
        } else if (arg == "--help" || arg == "-h") {
            std::cout << bench_name
                      << " [--graphs N] [--seed S] [--csv]"
                         " [--ilp-time-limit SEC] [--max-size N]"
                         " [--out FILE]\n"
                         "Defaults are scaled for quick runs; use"
                         " --graphs 200 for the paper's corpus size.\n";
            std::exit(0);
        } else {
            std::cerr << bench_name << ": unknown option " << arg << '\n';
            std::exit(2);
        }
    }
    return opt;
}

/// Execution-environment fragment for every BENCH_*.json artifact:
/// `"hardware_concurrency":N,"multicore_valid":B` (no braces, ready to
/// splice into an object). multicore_valid says whether multi-job speedup
/// numbers from this run mean anything -- on a single-core container a
/// ~1x jobs-8 curve is the machine's fault, not a regression, and artifact
/// consumers must be able to tell the difference.
inline std::string env_json()
{
    const unsigned hardware = std::thread::hardware_concurrency();
    return "\"hardware_concurrency\":" + std::to_string(hardware) +
           ",\"multicore_valid\":" + (hardware >= 2 ? "true" : "false");
}

inline void emit(const table& t, const bench_options& opt)
{
    if (opt.csv) {
        t.print_csv(std::cout);
    } else {
        t.print(std::cout);
    }
}

} // namespace mwl::bench

#endif // MWL_BENCH_BENCH_COMMON_HPP
