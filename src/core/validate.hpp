// Independent datapath validator.
//
// Every algorithm in this repository (DPAlloc, the baselines, the ILP
// decoder) produces a `datapath`; this validator re-derives every claimed
// property from first principles -- data dependencies, per-instance
// exclusivity, wordlength coverage, model-consistent latency/area, and the
// latency constraint -- so the test-suite never has to trust the algorithm
// under test. Violations are reported as `datapath.*` findings
// (support/finding.hpp), the same structure the RTL validator and the
// static analyzer use, so tools can merge all three into one report.

#ifndef MWL_CORE_VALIDATE_HPP
#define MWL_CORE_VALIDATE_HPP

#include "core/datapath.hpp"
#include "model/hardware_model.hpp"
#include "support/finding.hpp"

#include <vector>

namespace mwl {

/// All rule violations found (empty == valid). `lambda` is the user latency
/// constraint; pass a negative value to skip the constraint check.
[[nodiscard]] std::vector<finding> validate_datapath(
    const sequencing_graph& graph, const hardware_model& model,
    const datapath& path, int lambda);

/// Throws `mwl::error` listing every violation if the datapath is invalid.
void require_valid(const sequencing_graph& graph, const hardware_model& model,
                   const datapath& path, int lambda);

} // namespace mwl

#endif // MWL_CORE_VALIDATE_HPP
