// Algorithm BindSelect (paper §2.3): combined resource binding and
// wordlength selection on a scheduled wordlength compatibility graph.
//
// The problem is weighted unate covering over the implicit column set of
// all feasible cliques (Eqn. 4/6); the algorithm is Chvátal's greedy ratio
// heuristic made implicit: per candidate resource type the best column is
// always a *maximum* clique of still-uncovered operations, and because the
// schedule-induced orientation is transitive those are longest chains,
// found in polynomial time. Two paper refinements are included:
//  * restrict candidate cliques to maximum size per resource type (all
//    cliques of a type cost the same, so only maximal ones can win);
//  * a growth pass compensating for greed: after selecting a clique, try to
//    grow it to swallow previously selected cliques, deleting them.

#ifndef MWL_BIND_BIND_SELECT_HPP
#define MWL_BIND_BIND_SELECT_HPP

#include "bind/binding.hpp"
#include "wcg/chains.hpp"
#include "wcg/wcg.hpp"

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace mwl {

struct bind_options {
    /// Enable the growth/absorption pass (paper default). Off for ablation.
    bool enable_growth = true;
    /// After covering, re-assign each clique the cheapest resource type
    /// satisfying Eqn. 4 (pure improvement; wordlength selection proper).
    bool reassign_cheapest = true;
    /// Reuse each resource type's candidate chain across Chvátal rounds,
    /// recomputing only for resources that lost a newly-covered operation
    /// (identical output; off = recompute every chain every round, kept for
    /// the before/after bench and regression tests).
    bool cache_chains = true;
};

/// Reusable buffers for bind_select, owned by a looping caller (the
/// DPAlloc refinement loop) so repeated binds allocate almost nothing.
/// Pure scratch: contents are reset on every call and carry no information
/// between calls.
/// Selection key of the lazy Chvátal heap (see bind_select.cpp); public
/// only so bind_scratch can own the heap storage.
struct bind_chain_key {
    double ratio = -1.0;
    std::size_t length = 0;
    res_id r;

    [[nodiscard]] bool operator<(const bind_chain_key& other) const
    {
        if (ratio != other.ratio) {
            return ratio < other.ratio;
        }
        if (length != other.length) {
            return length < other.length;
        }
        return r > other.r;
    }
};

struct bind_scratch {
    std::vector<std::uint8_t> entry_valid;       ///< per-resource memo flag
    std::vector<std::vector<timed_op>> entry_chain; ///< per-resource chain
    std::vector<std::vector<res_id>> chain_users; ///< per-op chain members
    std::vector<timed_op> candidates;
    std::vector<timed_op> best_chain;
    std::vector<timed_op> merge_tmp;
    std::vector<std::uint32_t> hits;
    std::vector<std::uint32_t> stamp;            ///< distinct-start seeding
    std::vector<bind_chain_key> heap;            ///< lazy selection heap
    chain_scratch chains;
    // Per-schedule presorted candidate orders (see bind_select.cpp): for
    // each resource, O(r) in canonical chain order and the matching
    // by-finish index order, built once per call so chain recomputes are
    // sort-free.
    std::vector<std::vector<timed_op>> res_canon;
    std::vector<std::vector<std::uint32_t>> res_finish;
    std::vector<std::uint32_t> order;            ///< shared op-order buffer
    std::vector<std::uint32_t> order2;           ///< counting-sort partner
    std::vector<std::uint32_t> count;            ///< counting-sort histogram
    std::vector<std::uint32_t> canon_rank;
    std::vector<std::uint32_t> remap;
    std::vector<std::uint32_t> finish_compact;
    std::vector<std::uint32_t> survivors;        ///< uncovered ops per O(r)
};

/// Bind every operation of `wcg.graph()`.
///
/// `start_times` is the schedule; `latencies` must be the latency values
/// the schedule was produced with (DPAlloc: the upper bounds L_o), since
/// they define the orientation C: o1 -> o2 iff
/// start(o1) + latency(o1) <= start(o2).
///
/// Every emitted clique satisfies Eqn. 4 under the current H edges, so the
/// bound latency of each operation never exceeds its scheduled latency.
[[nodiscard]] binding bind_select(const wordlength_compatibility_graph& wcg,
                                  std::span<const int> start_times,
                                  std::span<const int> latencies,
                                  const bind_options& options = {},
                                  bind_scratch* scratch = nullptr);

} // namespace mwl

#endif // MWL_BIND_BIND_SELECT_HPP
