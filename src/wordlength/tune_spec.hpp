// Declarative specs for the mwl_tune wordlength-optimization driver.
//
// A tune spec names the designs to retune (registry scenarios and/or
// .mwl graph files), the output-noise budget sweep, and the search knobs.
// Same small line-based format as campaign specs (1-based line numbers in
// every diagnostic; parse failures throw `spec_error`):
//
//   # comment
//   scenario fir8 fir4            one or more lines; 'all' = registry
//   graph FILE ...                .mwl files, loaded by the tool
//   budget 1e-6 1e-5 1e-4         required; one or more positive values
//   frac min=2 max=24
//   search seed=2001 max-steps=64 anneal=0 temp=0.05
//   gain model=unit|attenuating base-frac=8 cap=32
//   lambda slack=25               percent over lambda_min, like the tools
//
// The optimizer then runs once per (entry x budget); the report orders
// points exactly as the spec lists them, so a spec is a reproducible
// experiment definition.

#ifndef MWL_WORDLENGTH_TUNE_SPEC_HPP
#define MWL_WORDLENGTH_TUNE_SPEC_HPP

#include "campaign/campaign_spec.hpp" // spec_error
#include "wordlength/tuned_graph.hpp"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace mwl {

struct tune_spec {
    /// One design to retune: exactly one of the two names is set.
    struct entry {
        std::string scenario;   ///< registry name, or empty
        std::string graph_file; ///< .mwl path, or empty
        [[nodiscard]] const std::string& name() const
        {
            return scenario.empty() ? graph_file : scenario;
        }

        friend bool operator==(const entry&, const entry&) = default;
    };

    std::vector<entry> entries;
    std::vector<double> budgets; ///< in spec order; positive, no dups

    int min_frac_bits = 2;
    int max_frac_bits = 24;

    std::uint64_t seed = 2001;
    std::size_t max_steps = 64;
    std::size_t anneal_iterations = 0;
    double anneal_temp = 0.05;

    gain_model gains = gain_model::unit;
    int base_frac_bits = 8;
    int width_cap = 32;

    double slack = 0.25;

    friend bool operator==(const tune_spec&, const tune_spec&) = default;

    /// Parse a spec. Throws `spec_error` carrying the 1-based line number
    /// on unknown keywords/keys, bad or out-of-range values, duplicate
    /// sections, unknown scenario names, a spec naming no designs, or a
    /// spec naming no budgets.
    [[nodiscard]] static tune_spec parse(std::istream& in);
    [[nodiscard]] static tune_spec parse(const std::string& text);
};

} // namespace mwl

#endif // MWL_WORDLENGTH_TUNE_SPEC_HPP
