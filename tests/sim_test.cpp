// Unit tests for src/sim: fixed-point wrap semantics, reference
// evaluation, cycle-accurate datapath execution, and the allocation
// transparency theorem (any valid allocation computes the same values).

#include "baseline/two_stage.hpp"
#include "core/dpalloc.hpp"
#include "dfg/analysis.hpp"
#include "model/hardware_model.hpp"
#include "sim/simulator.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "tgff/corpus.hpp"

#include <gtest/gtest.h>

namespace mwl {
namespace {

sequencing_graph fig1_graph()
{
    sequencing_graph g;
    const op_id m1 = g.add_operation(op_shape::multiplier(12, 12), "m1");
    const op_id m2 = g.add_operation(op_shape::multiplier(8, 4), "m2");
    const op_id a = g.add_operation(op_shape::adder(12), "a");
    g.add_dependency(m1, a);
    g.add_dependency(m2, a);
    return g;
}

/// Random external inputs for every unfilled operand port.
sim_inputs random_inputs(const sequencing_graph& g, rng& random)
{
    sim_inputs in(g.size());
    for (const op_id o : g.all_ops()) {
        const std::size_t need = 2 - g.predecessors(o).size();
        for (std::size_t k = 0; k < need; ++k) {
            in[o.value()].push_back(random.uniform_int(0, 255) - 128);
        }
    }
    return in;
}

// ----------------------------------------------------------- wrapping --

TEST(Wrap, IdentityInsideRange)
{
    EXPECT_EQ(wrap_to_width(5, 8), 5);
    EXPECT_EQ(wrap_to_width(-5, 8), -5);
    EXPECT_EQ(wrap_to_width(127, 8), 127);
    EXPECT_EQ(wrap_to_width(-128, 8), -128);
}

TEST(Wrap, TwoComplementWrapAround)
{
    EXPECT_EQ(wrap_to_width(128, 8), -128);
    EXPECT_EQ(wrap_to_width(255, 8), -1);
    EXPECT_EQ(wrap_to_width(256, 8), 0);
    EXPECT_EQ(wrap_to_width(-129, 8), 127);
}

TEST(Wrap, OneBitValues)
{
    EXPECT_EQ(wrap_to_width(0, 1), 0);
    EXPECT_EQ(wrap_to_width(1, 1), -1); // 1-bit two's complement
}

// ---------------------------------------------------------- reference --

TEST(Reference, ChainComputesExpectedValue)
{
    // (3 * 5) + 7 with plenty of width.
    sequencing_graph g;
    const op_id m = g.add_operation(op_shape::multiplier(8, 8));
    const op_id a = g.add_operation(op_shape::adder(16));
    g.add_dependency(m, a);
    sim_inputs in(g.size());
    in[m.value()] = {3, 5};
    in[a.value()] = {7};
    const sim_result r = reference_evaluate(g, in);
    EXPECT_EQ(r.value_of_op[m.value()], 15);
    EXPECT_EQ(r.value_of_op[a.value()], 22);
}

TEST(Reference, AdderWrapsAtItsOwnWidth)
{
    sequencing_graph g;
    const op_id a = g.add_operation(op_shape::adder(4)); // [-8, 7]
    sim_inputs in(g.size());
    in[a.value()] = {7, 1};
    const sim_result r = reference_evaluate(g, in);
    EXPECT_EQ(r.value_of_op[a.value()], -8); // 7 + 1 wraps
}

TEST(Reference, MultiplierKeepsFullProduct)
{
    sequencing_graph g;
    const op_id m = g.add_operation(op_shape::multiplier(4, 4));
    sim_inputs in(g.size());
    in[m.value()] = {7, 7};
    const sim_result r = reference_evaluate(g, in);
    EXPECT_EQ(r.value_of_op[m.value()], 49); // fits in 8 bits
}

TEST(Reference, MissingExternalOperandThrows)
{
    sequencing_graph g;
    g.add_operation(op_shape::adder(8));
    const sim_inputs in(1); // no operands supplied
    EXPECT_THROW(static_cast<void>(reference_evaluate(g, in)),
                 precondition_error);
}

TEST(Reference, ExtraExternalOperandThrows)
{
    sequencing_graph g;
    const op_id m = g.add_operation(op_shape::multiplier(4, 4));
    const op_id a = g.add_operation(op_shape::adder(8));
    g.add_dependency(m, a);
    sim_inputs in(g.size());
    in[m.value()] = {1, 2};
    in[a.value()] = {3, 4}; // adder already has one predecessor
    EXPECT_THROW(static_cast<void>(reference_evaluate(g, in)),
                 precondition_error);
}

// ------------------------------------------------------------ datapath --

TEST(Simulate, MatchesReferenceOnFig1)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    rng random(5);
    const sim_inputs in = random_inputs(g, random);
    const sim_result ref = reference_evaluate(g, in);
    for (const int lambda : {5, 8}) {
        const dpalloc_result r = dpalloc(g, model, lambda);
        const sim_result sim = simulate_datapath(g, r.path, in);
        EXPECT_EQ(sim.value_of_op, ref.value_of_op) << "lambda " << lambda;
        EXPECT_EQ(sim.cycles, r.path.latency);
    }
}

TEST(Simulate, AllocationTransparencyOnRandomGraphs)
{
    // The headline property: scheduling/binding/wordlength selection must
    // never change computed values -- across algorithms and slacks.
    const sonic_model model;
    const auto corpus = make_corpus(10, 6, model, 77);
    rng random(99);
    for (const corpus_entry& e : corpus) {
        const sim_inputs in = random_inputs(e.graph, random);
        const sim_result ref = reference_evaluate(e.graph, in);
        for (const double slack : {0.0, 0.3}) {
            const int lambda = relaxed_lambda(e.lambda_min, slack);
            const dpalloc_result heur = dpalloc(e.graph, model, lambda);
            EXPECT_EQ(simulate_datapath(e.graph, heur.path, in).value_of_op,
                      ref.value_of_op);
            const two_stage_result two =
                two_stage_allocate(e.graph, model, lambda);
            EXPECT_EQ(simulate_datapath(e.graph, two.path, in).value_of_op,
                      ref.value_of_op);
        }
    }
}

TEST(Simulate, DetectsDoubleBookedInstance)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    dpalloc_result r = dpalloc(g, model, 8);
    // Force the two mults to overlap on the shared instance.
    bool mutated = false;
    for (const datapath_instance& inst : r.path.instances) {
        if (inst.ops.size() >= 2) {
            r.path.start[inst.ops[1].value()] =
                r.path.start[inst.ops[0].value()];
            mutated = true;
        }
    }
    ASSERT_TRUE(mutated);
    rng random(1);
    const sim_inputs in = random_inputs(g, random);
    EXPECT_THROW(static_cast<void>(simulate_datapath(g, r.path, in)), error);
}

TEST(Simulate, DetectsOperandNotReady)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    dpalloc_result r = dpalloc(g, model, 8);
    r.path.start[2] = 0; // adder before its producers
    rng random(2);
    const sim_inputs in = random_inputs(g, random);
    EXPECT_THROW(static_cast<void>(simulate_datapath(g, r.path, in)), error);
}

TEST(Simulate, DetectsIncompatibleInstance)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    dpalloc_result r = dpalloc(g, model, 5);
    for (datapath_instance& inst : r.path.instances) {
        if (inst.shape.kind() == op_kind::mul) {
            inst.shape = op_shape::multiplier(2, 2);
        }
    }
    rng random(3);
    const sim_inputs in = random_inputs(g, random);
    EXPECT_THROW(static_cast<void>(simulate_datapath(g, r.path, in)), error);
}

TEST(Simulate, EmptyGraph)
{
    sequencing_graph g;
    datapath path;
    const sim_result r = simulate_datapath(g, path, {});
    EXPECT_TRUE(r.value_of_op.empty());
    EXPECT_EQ(r.cycles, 0);
}

} // namespace
} // namespace mwl
