// mwl_verify -- differential RTL verification driver.
//
// Generates a seeded TGFF corpus (or loads .mwl graph files), allocates
// every graph with each enabled allocator, and checks
//
//     reference_evaluate == simulate_datapath == RTL interpretation
//
// on random signed input vectors, reporting the first divergent
// (graph, allocator, input, op, cycle) counterexample and exiting 1.
// Exit 0 means every value matched.
//
// Usage:
//   mwl_verify [--ops N] [--count N] [--seed S] [--inputs N] [--slack PCT]
//              [--mul-fraction F] [--min-width W] [--max-width W]
//              [--ilp-max-ops N] [--no-heuristic] [--no-two-stage]
//              [--no-descending] [--jobs N] [--graph FILE]...
//
//   mwl_verify --ops 8 --count 50 --inputs 16       # corpus sweep
//   mwl_verify --graph filters/fir8.mwl --inputs 64 # specific designs
//   mwl_verify --static --ops 8 --count 50          # analyzer, no vectors
//
// --static swaps the input-vector simulations for the static value-range
// analyzer (src/analyze/): the same allocations are checked by abstract
// interpretation instead of execution, so it covers *all* input values at
// a fraction of the cost (see PERF.md).

#include "dfg/analysis.hpp"
#include "io/graph_io.hpp"
#include "model/hardware_model.hpp"
#include "support/parse_num.hpp"
#include "support/timer.hpp"
#include "verify/differential.hpp"

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

namespace {

using namespace mwl;

[[noreturn]] void usage(int code)
{
    std::cout <<
        "usage: mwl_verify [options] [--graph FILE]...\n"
        "corpus selection (ignored when --graph is given):\n"
        "  --ops N           operations per generated graph [10]\n"
        "  --count N         graphs in the corpus [50]\n"
        "  --seed S          corpus + input seed [2001]\n"
        "  --mul-fraction F  multiplier fraction [0.5]\n"
        "  --min-width W     minimum operand wordlength [4]\n"
        "  --max-width W     maximum operand wordlength [24]\n"
        "verification:\n"
        "  --inputs N        random signed input vectors per graph [8]\n"
        "  --slack PCT       latency relaxation over lambda_min [25]\n"
        "  --ilp-max-ops N   also run the ILP reference on graphs with\n"
        "                    <= N ops [0 = off]\n"
        "  --no-heuristic / --no-two-stage / --no-descending\n"
        "                    drop an allocator from the cross-check\n"
        "  --static          static value-range analysis instead of input\n"
        "                    vectors (--inputs/--ilp-max-ops ignored)\n"
        "  --jobs N          worker threads [hardware concurrency]\n";
    std::exit(code);
}

} // namespace

int main(int argc, char** argv)
{
    corpus_spec spec;
    spec.n_ops = 10;
    spec.count = 50;
    spec.seed = 2001;
    verify_options options;
    double slack_pct = 25.0;
    std::size_t jobs = 0;
    bool static_mode = false;
    std::vector<std::string> graph_files;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "mwl_verify: missing value for " << arg << '\n';
                usage(2);
            }
            return argv[++i];
        };
        // parse_*_checked (support/parse_num.hpp) rejects malformed,
        // out-of-range, negative-where-unsigned and partially numeric
        // values ("4x"), so every bad number lands in the catch below:
        // diagnostic + exit 2, never an abort or a silent truncation.
        const auto count_value = [&]() -> std::size_t {
            return parse_size_checked(value());
        };
        try {
            if (arg == "--ops") {
                spec.n_ops = count_value();
            } else if (arg == "--count") {
                spec.count = count_value();
            } else if (arg == "--seed") {
                spec.seed = parse_u64_checked(value());
            } else if (arg == "--mul-fraction") {
                spec.prototype.mul_fraction =
                    parse_double_checked(value());
            } else if (arg == "--min-width") {
                spec.prototype.min_width = parse_int_checked(value());
            } else if (arg == "--max-width") {
                spec.prototype.max_width = parse_int_checked(value());
            } else if (arg == "--inputs") {
                options.inputs_per_graph = count_value();
            } else if (arg == "--slack") {
                slack_pct = parse_double_checked(value());
            } else if (arg == "--ilp-max-ops") {
                options.ilp_max_ops = count_value();
            } else if (arg == "--no-heuristic") {
                options.use_heuristic = false;
            } else if (arg == "--no-two-stage") {
                options.use_two_stage = false;
            } else if (arg == "--no-descending") {
                options.use_descending = false;
            } else if (arg == "--static") {
                static_mode = true;
            } else if (arg == "--jobs") {
                jobs = count_value();
            } else if (arg == "--graph") {
                graph_files.push_back(value());
            } else if (arg == "--help" || arg == "-h") {
                usage(0);
            } else {
                std::cerr << "mwl_verify: unknown option " << arg << '\n';
                usage(2);
            }
        } catch (const error& e) {
            std::cerr << "mwl_verify: bad value for " << arg << ": "
                      << e.what() << '\n';
            usage(2);
        }
    }
    if (slack_pct < 0.0) {
        std::cerr << "mwl_verify: slack must be non-negative\n";
        usage(2);
    }
    // Zero vectors or an empty corpus would print the OK banner having
    // checked nothing; refuse, matching mwl_batch's verify= validation.
    if (options.inputs_per_graph < 1) {
        std::cerr << "mwl_verify: --inputs must be >= 1\n";
        usage(2);
    }
    if (graph_files.empty() && spec.count < 1) {
        std::cerr << "mwl_verify: --count must be >= 1\n";
        usage(2);
    }
    // The simulator's int64 wrap contract holds for widths < 63; an n x m
    // multiplier produces n + m result bits, so corpus wordlengths must
    // stay <= 31 for the verdicts to be meaningful.
    if (spec.prototype.max_width > 31) {
        std::cerr << "mwl_verify: --max-width must be <= 31 (an n x m "
                     "multiplier needs n + m < 63 simulable bits)\n";
        usage(2);
    }
    options.seed = spec.seed;
    options.slack = slack_pct / 100.0;

    try {
        const sonic_model model;
        thread_pool pool(jobs);
        stopwatch clock;

        if (static_mode) {
            analysis_report report;
            std::size_t graphs = 0;
            if (graph_files.empty()) {
                report = static_verify_corpus(spec, model, options, &pool);
                graphs = spec.count;
            } else {
                for (const std::string& path : graph_files) {
                    std::ifstream in(path);
                    if (!in) {
                        std::cerr << "mwl_verify: cannot open " << path
                                  << '\n';
                        return 1;
                    }
                    const sequencing_graph graph = parse_graph(in);
                    const int lambda = relaxed_lambda(
                        min_latency(graph, model), options.slack);
                    report.merge(static_verify_graph(graph, path, model,
                                                     lambda, options));
                    ++graphs;
                }
            }
            const double wall = clock.seconds();
            std::cout << "mwl_verify --static: " << graphs << " graphs, "
                      << report.checks << " static checks in "
                      << static_cast<long long>(wall * 1e3) << " ms";
            if (wall > 0.0) {
                std::cout << " ("
                          << static_cast<long long>(
                                 static_cast<double>(report.checks) / wall)
                          << " checks/s, " << pool.size() << " threads)";
            }
            std::cout << '\n';
            if (!report.ok() || !report.findings.empty()) {
                std::cout << report.findings.size() << " finding(s):\n";
                for (const finding& f : report.findings) {
                    std::cout << "  " << f.to_string() << '\n';
                }
                if (report.truncated) {
                    std::cout << "  ... finding list truncated\n";
                }
                std::cout << "FAIL\n";
                return 1;
            }
            std::cout << "OK: all static value-range checks passed\n";
            return 0;
        }

        verify_report report;
        if (graph_files.empty()) {
            report = verify_corpus(spec, model, options, &pool);
        } else {
            for (std::size_t g = 0; g < graph_files.size(); ++g) {
                const std::string& path = graph_files[g];
                std::ifstream in(path);
                if (!in) {
                    std::cerr << "mwl_verify: cannot open " << path << '\n';
                    return 1;
                }
                const sequencing_graph graph = parse_graph(in);
                const int lambda = relaxed_lambda(
                    min_latency(graph, model), options.slack);
                report.merge(verify_graph(
                    graph, path, model, lambda, options,
                    verify_input_seed(options.seed, g)));
            }
        }
        const double wall = clock.seconds();

        std::cout << "mwl_verify: " << report.graphs << " graphs, "
                  << report.allocations << " allocations, "
                  << report.input_vectors << " input vectors, "
                  << report.value_checks << " value checks in "
                  << static_cast<long long>(wall * 1e3) << " ms";
        if (wall > 0.0) {
            std::cout << " ("
                      << static_cast<long long>(
                             static_cast<double>(report.input_vectors) / wall)
                      << " graph-inputs/s, "
                      << static_cast<long long>(
                             static_cast<double>(report.value_checks) / wall)
                      << " checks/s, " << pool.size() << " threads)";
        }
        std::cout << '\n';

        if (!report.ok()) {
            std::cout << report.counterexamples.size()
                      << " counterexample(s):\n";
            for (const counterexample& cx : report.counterexamples) {
                std::cout << "  " << cx.to_string() << '\n';
            }
            std::cout << "FAIL\n";
            return 1;
        }
        std::cout << "OK: reference == datapath sim == RTL interpretation\n";
        return 0;
    } catch (const error& e) {
        std::cerr << "mwl_verify: " << e.what() << '\n';
        return 1;
    }
}
