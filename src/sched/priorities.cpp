#include "sched/priorities.hpp"

#include "support/error.hpp"

#include <algorithm>

namespace mwl {

std::vector<int> critical_path_priorities(const sequencing_graph& graph,
                                          std::span<const int> latencies)
{
    require(latencies.size() == graph.size(),
            "latency vector size must equal the number of operations");
    std::vector<int> priority(graph.size(), 0);
    const std::vector<op_id> order = graph.topological_order();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const op_id o = *it;
        int best_succ = 0;
        for (const op_id s : graph.successors(o)) {
            best_succ = std::max(best_succ, priority[s.value()]);
        }
        priority[o.value()] = latencies[o.value()] + best_succ;
    }
    return priority;
}

} // namespace mwl
