#include "rtl/rtl_design.hpp"

#include <algorithm>
#include <sstream>

namespace mwl {
namespace {

template <typename... Parts>
std::string cat(const Parts&... parts)
{
    std::ostringstream os;
    (os << ... << parts);
    return os.str();
}

template <typename... Parts>
void report(std::vector<finding>& out, const char* rule,
            std::string location, const Parts&... parts)
{
    out.push_back(make_finding(rule, finding_severity::error,
                               std::move(location), cat(parts...)));
}

void check_adapt(std::vector<finding>& bad, const rtl_adapt& adapt,
                 int src_width, int sink_width, const std::string& where)
{
    if (adapt.slice_width < 1 || adapt.slice_width > src_width) {
        report(bad, "rtl.adapt-slice", where, "slice width ",
               adapt.slice_width, " outside the source's ", src_width,
               " bits");
    }
    if (adapt.out_width != sink_width) {
        report(bad, "rtl.adapt-sink", where, "adapted width ",
               adapt.out_width, " != sink width ", sink_width);
    }
    if (adapt.out_width < adapt.slice_width) {
        report(bad, "rtl.adapt-narrowing", where, "extension narrows (",
               adapt.slice_width, " -> ", adapt.out_width, " bits)");
    }
    if (adapt.out_width > adapt.slice_width && !adapt.sign_extend) {
        bad.push_back(make_finding(
            "rtl.adapt-zero-extend", finding_severity::error, where,
            cat("widening ", adapt.slice_width, " -> ", adapt.out_width,
                " bits zero-extends (corrupts negative values)"),
            adapt.slice_width, adapt.out_width - 1));
    }
}

} // namespace

std::vector<finding> validate_design(const rtl_design& design)
{
    std::vector<finding> bad;

    if (design.latency < 0) {
        report(bad, "rtl.latency", "design", "negative latency ",
               design.latency);
    }
    if (design.counter_bits < 1) {
        report(bad, "rtl.counter", "design", "counter width ",
               design.counter_bits, " < 1");
    }
    for (std::size_t r = 0; r < design.register_width.size(); ++r) {
        if (design.register_width[r] < 1) {
            report(bad, "rtl.register-width", cat("r", r), "has width ",
                   design.register_width[r]);
        }
    }
    for (std::size_t i = 0; i < design.inputs.size(); ++i) {
        if (design.inputs[i].width < 1) {
            report(bad, "rtl.input-width", design.inputs[i].name,
                   "has width ", design.inputs[i].width);
        }
    }

    // Functional units: port widths, select spans, source/adapt sanity.
    for (std::size_t f = 0; f < design.fus.size(); ++f) {
        const rtl_fu& fu = design.fus[f];
        if (fu.width_a < 1 || fu.width_b < 1 || fu.width_y < 1) {
            report(bad, "rtl.fu-width", cat("fu", f),
                   "has a non-positive port width");
        }
        for (int port = 0; port < 2; ++port) {
            const int port_width = port == 0 ? fu.width_a : fu.width_b;
            const auto& selects =
                fu.select[static_cast<std::size_t>(port)];
            for (const rtl_operand_select& sel : selects) {
                const std::string where =
                    cat("fu", f, (port == 0 ? "_a" : "_b"), " (op ",
                        sel.op, ")");
                if (sel.first_cycle < 0 || sel.last_cycle < sel.first_cycle ||
                    sel.last_cycle >= design.latency) {
                    report(bad, "rtl.select-span", where, "select span [",
                           sel.first_cycle, ", ", sel.last_cycle,
                           "] outside the ", design.latency,
                           "-cycle schedule");
                }
                const int src = source_width(design, sel.source);
                if (src == 0) {
                    report(bad, "rtl.select-source", where, "source index ",
                           sel.source.index, " out of range");
                    continue;
                }
                check_adapt(bad, sel.adapt, src, port_width, where);
            }
            // Selections on one port must be time-disjoint: two operations
            // driving the same operand register in the same cycle would
            // race in hardware.
            for (std::size_t a = 0; a < selects.size(); ++a) {
                for (std::size_t b = a + 1; b < selects.size(); ++b) {
                    const bool disjoint =
                        selects[a].last_cycle < selects[b].first_cycle ||
                        selects[b].last_cycle < selects[a].first_cycle;
                    if (!disjoint) {
                        report(bad, "rtl.select-overlap",
                               cat("fu", f, (port == 0 ? "_a" : "_b")),
                               "ops ", selects[a].op, " and ",
                               selects[b].op, " select in the same cycle");
                    }
                }
            }
        }
    }

    // Captures: each op exactly once, indices in range, widths consistent.
    std::vector<std::size_t> captured(design.n_ops, 0);
    for (const rtl_capture& cap : design.captures) {
        const std::string where = cat("capture of op ", cap.op);
        if (cap.cycle < 0 || cap.cycle >= design.latency) {
            report(bad, "rtl.capture-cycle", where, "cycle ", cap.cycle,
                   " outside the ", design.latency, "-cycle schedule");
        }
        if (cap.reg >= design.register_width.size()) {
            report(bad, "rtl.capture-register", where, "unknown register ",
                   cap.reg);
            continue;
        }
        if (cap.fu >= design.fus.size()) {
            report(bad, "rtl.capture-fu", where, "unknown fu ", cap.fu);
            continue;
        }
        check_adapt(bad, cap.adapt, design.fus[cap.fu].width_y,
                    design.register_width[cap.reg], where);
        if (cap.op.is_valid() && cap.op.value() < design.n_ops) {
            ++captured[cap.op.value()];
        } else {
            report(bad, "rtl.capture-op", where, "op id out of range");
        }
    }
    for (std::size_t o = 0; o < design.n_ops; ++o) {
        if (captured[o] != 1) {
            report(bad, "rtl.capture-count", cat("op ", o), "captured ",
                   captured[o], " times (expected exactly 1)");
        }
    }
    if (!std::is_sorted(design.captures.begin(), design.captures.end(),
                        capture_order)) {
        report(bad, "rtl.capture-order", "captures",
               "captures are not sorted by (cycle, register)");
    }

    // Two captures into one register in the same cycle would race.
    for (std::size_t a = 0; a + 1 < design.captures.size(); ++a) {
        const rtl_capture& x = design.captures[a];
        const rtl_capture& y = design.captures[a + 1];
        if (x.cycle == y.cycle && x.reg == y.reg) {
            report(bad, "rtl.write-write", cat("r", x.reg),
                   "register written twice in cycle ", x.cycle, " (ops ",
                   x.op, " and ", y.op, ")");
        }
    }

    for (const rtl_output& out : design.outputs) {
        if (out.reg >= design.register_width.size()) {
            report(bad, "rtl.output-register", out.name,
                   "reads unknown register ", out.reg);
            continue;
        }
        if (out.width < 1 || out.width > design.register_width[out.reg]) {
            report(bad, "rtl.output-width", out.name, "slices ", out.width,
                   " bits from the ", design.register_width[out.reg],
                   "-bit register r", out.reg);
        }
    }
    return bad;
}

} // namespace mwl
