#include "lp/simplex.hpp"

#include "support/error.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mwl {
namespace {

enum class var_state : unsigned char { basic, at_lower, at_upper };

/// Dense working copy of the problem in equality form.
struct tableau {
    std::size_t m = 0;      ///< rows
    std::size_t n = 0;      ///< columns (structural + slack + artificial)
    std::size_t n_struct = 0;
    std::vector<double> a;  ///< row-major m x n, maintained as B^{-1}A
    std::vector<double> rhs; ///< maintained as B^{-1}b
    std::vector<double> lo, hi;
    std::vector<double> cost;        ///< phase-2 costs
    std::vector<std::size_t> basis;  ///< basic column per row
    std::vector<var_state> state;
    std::vector<std::size_t> artificials;

    [[nodiscard]] double& at(std::size_t r, std::size_t c)
    {
        return a[r * n + c];
    }
    [[nodiscard]] double at(std::size_t r, std::size_t c) const
    {
        return a[r * n + c];
    }
};

/// Value of a nonbasic column.
double nonbasic_value(const tableau& t, std::size_t j)
{
    return t.state[j] == var_state::at_upper ? t.hi[j] : t.lo[j];
}

/// Recompute basic values xB = B^{-1}b - sum_nonbasic B^{-1}A_j * x_j.
std::vector<double> basic_values(const tableau& t)
{
    std::vector<double> xb = t.rhs;
    for (std::size_t j = 0; j < t.n; ++j) {
        if (t.state[j] == var_state::basic) {
            continue;
        }
        const double v = nonbasic_value(t, j);
        if (v == 0.0) {
            continue;
        }
        for (std::size_t i = 0; i < t.m; ++i) {
            xb[i] -= t.at(i, j) * v;
        }
    }
    return xb;
}

/// One primal simplex run over `costs`; returns true if an optimum was
/// reached within the iteration budget.
bool iterate(tableau& t, const std::vector<double>& costs,
             const simplex_options& opt, std::size_t& iterations)
{
    const std::size_t npos = static_cast<std::size_t>(-1);
    for (;; ++iterations) {
        if (iterations >= opt.max_iterations) {
            return false;
        }

        const std::vector<double> xb = basic_values(t);

        // Reduced costs d_j = c_j - c_B' B^{-1} A_j.
        // c_B' tab row combination: accumulate per column.
        std::vector<double> d(costs);
        for (std::size_t i = 0; i < t.m; ++i) {
            const double cb = costs[t.basis[i]];
            if (cb == 0.0) {
                continue;
            }
            for (std::size_t j = 0; j < t.n; ++j) {
                d[j] -= cb * t.at(i, j);
            }
        }

        // Entering variable: Bland's rule (smallest eligible index).
        std::size_t enter = npos;
        int dir = +1;
        for (std::size_t j = 0; j < t.n; ++j) {
            if (t.state[j] == var_state::basic) {
                continue;
            }
            if (t.lo[j] == t.hi[j]) {
                continue; // fixed variable can never improve
            }
            if (t.state[j] == var_state::at_lower &&
                d[j] < -opt.reduced_cost_tol) {
                enter = j;
                dir = +1;
                break;
            }
            if (t.state[j] == var_state::at_upper &&
                d[j] > opt.reduced_cost_tol) {
                enter = j;
                dir = -1;
                break;
            }
        }
        if (enter == npos) {
            return true; // optimal for these costs
        }

        // Ratio test: x_enter moves by dir * step, basic i by -dir*y_i*step.
        double step = t.hi[enter] - t.lo[enter]; // bound-flip limit
        std::size_t leave_row = npos;
        bool leave_to_upper = false;
        for (std::size_t i = 0; i < t.m; ++i) {
            const double y = t.at(i, enter);
            const double delta = -static_cast<double>(dir) * y;
            if (std::abs(delta) <= opt.pivot_tol) {
                continue;
            }
            const std::size_t b = t.basis[i];
            double limit;
            bool to_upper;
            if (delta > 0.0) {
                limit = (t.hi[b] - xb[i]) / delta;
                to_upper = true;
            } else {
                limit = (t.lo[b] - xb[i]) / delta;
                to_upper = false;
            }
            limit = std::max(limit, 0.0); // degeneracy guard
            const bool tighter =
                limit < step - 1e-12 ||
                (limit <= step + 1e-12 && leave_row != npos &&
                 t.basis[i] < t.basis[leave_row]);
            if (tighter) {
                step = limit;
                leave_row = i;
                leave_to_upper = to_upper;
            }
        }

        if (leave_row == npos) {
            // Entering variable flips to its opposite bound.
            t.state[enter] = (dir > 0) ? var_state::at_upper
                                       : var_state::at_lower;
            continue;
        }

        // Pivot: enter becomes basic in leave_row.
        const std::size_t leave = t.basis[leave_row];
        const double pivot = t.at(leave_row, enter);
        MWL_ASSERT(std::abs(pivot) > opt.pivot_tol);
        const double inv = 1.0 / pivot;
        for (std::size_t j = 0; j < t.n; ++j) {
            t.at(leave_row, j) *= inv;
        }
        t.rhs[leave_row] *= inv;
        for (std::size_t i = 0; i < t.m; ++i) {
            if (i == leave_row) {
                continue;
            }
            const double f = t.at(i, enter);
            if (f == 0.0) {
                continue;
            }
            for (std::size_t j = 0; j < t.n; ++j) {
                t.at(i, j) -= f * t.at(leave_row, j);
            }
            t.rhs[i] -= f * t.rhs[leave_row];
        }
        t.basis[leave_row] = enter;
        t.state[enter] = var_state::basic;
        t.state[leave] =
            leave_to_upper ? var_state::at_upper : var_state::at_lower;
    }
}

} // namespace

lp_solution solve_lp(const lp_problem& problem, const simplex_options& opt,
                     std::span<const double> lo_override,
                     std::span<const double> hi_override)
{
    const std::size_t ns = problem.n_vars();
    const std::size_t m = problem.n_rows();
    require(lo_override.empty() || lo_override.size() == ns,
            "lower-bound override must cover every variable");
    require(hi_override.empty() || hi_override.size() == ns,
            "upper-bound override must cover every variable");

    const auto lo_of = [&](std::size_t v) {
        return lo_override.empty() ? problem.lower(v) : lo_override[v];
    };
    const auto hi_of = [&](std::size_t v) {
        return hi_override.empty() ? problem.upper(v) : hi_override[v];
    };

    lp_solution result;
    for (std::size_t v = 0; v < ns; ++v) {
        if (lo_of(v) > hi_of(v)) {
            return result; // trivially infeasible node
        }
    }

    // Build the equality-form tableau: structural vars, then one slack per
    // inequality row, then artificials where the slack cannot absorb the
    // initial residual (all structurals start at their lower bound).
    tableau t;
    t.n_struct = ns;
    t.m = m;

    // Count slack columns.
    std::size_t n_slack = 0;
    for (std::size_t r = 0; r < m; ++r) {
        if (problem.row(r).sense != row_sense::eq) {
            ++n_slack;
        }
    }
    const std::size_t max_cols = ns + n_slack + m; // artificials worst case
    t.a.assign(m * max_cols, 0.0);
    t.n = max_cols; // provisional stride; trimmed columns stay zero
    t.lo.assign(max_cols, 0.0);
    t.hi.assign(max_cols, 0.0);
    t.cost.assign(max_cols, 0.0);
    t.state.assign(max_cols, var_state::at_lower);
    t.rhs.assign(m, 0.0);
    t.basis.assign(m, 0);

    for (std::size_t v = 0; v < ns; ++v) {
        t.lo[v] = lo_of(v);
        t.hi[v] = hi_of(v);
        t.cost[v] = problem.cost(v);
        // Rest at the finite bound of smaller magnitude: keeps residuals
        // small. Both are finite by construction.
        t.state[v] = var_state::at_lower;
    }

    std::size_t next_col = ns;
    std::vector<double> phase1_cost(max_cols, 0.0);
    for (std::size_t r = 0; r < m; ++r) {
        const lp_row& row = problem.row(r);
        double residual = row.rhs;
        double slack_big = std::abs(row.rhs) + 1.0;
        for (const auto& [v, coeff] : row.terms) {
            t.at(r, v) += coeff;
            residual -= coeff * t.lo[v];
            slack_big += std::abs(coeff) *
                         std::max(std::abs(lo_of(v)), std::abs(hi_of(v)));
        }

        // Slack column.
        std::size_t slack = static_cast<std::size_t>(-1);
        if (row.sense == row_sense::le) {
            slack = next_col++;
            t.at(r, slack) = 1.0;
            t.lo[slack] = 0.0;
            t.hi[slack] = slack_big;
        } else if (row.sense == row_sense::ge) {
            slack = next_col++;
            t.at(r, slack) = -1.0;
            t.lo[slack] = 0.0;
            t.hi[slack] = slack_big;
        }
        t.rhs[r] = row.rhs;

        // Initial basic variable for this row: the slack if it can absorb
        // the residual, otherwise a fresh artificial. The tableau invariant
        // is tab == B^{-1}A with B the basis columns, so whenever the
        // chosen basic column's coefficient is -1 the whole row (including
        // the stored rhs) is negated to make it +1.
        const bool slack_works =
            (row.sense == row_sense::le && residual >= 0.0) ||
            (row.sense == row_sense::ge && residual <= 0.0);
        const auto negate_row = [&] {
            for (std::size_t j = 0; j < max_cols; ++j) {
                t.at(r, j) = -t.at(r, j);
            }
            t.rhs[r] = -t.rhs[r];
        };
        if (slack_works) {
            if (row.sense == row_sense::ge) {
                negate_row();
            }
            t.basis[r] = slack;
            t.state[slack] = var_state::basic;
        } else {
            if (residual < 0.0) {
                negate_row();
            }
            const std::size_t art = next_col++;
            t.at(r, art) = 1.0;
            t.lo[art] = 0.0;
            t.hi[art] = std::abs(residual) + 1.0;
            phase1_cost[art] = 1.0;
            t.artificials.push_back(art);
            t.basis[r] = art;
            t.state[art] = var_state::basic;
        }
    }

    // Columns [next_col, max_cols) were reserved for artificials that were
    // not needed. They are all-zero and fixed at [0,0], so leaving them in
    // place is harmless: the entering rule skips fixed variables.
    static_cast<void>(next_col);

    // Phase 1: drive artificial usage to zero.
    if (!t.artificials.empty()) {
        if (!iterate(t, phase1_cost, opt, result.iterations)) {
            result.status = lp_status::iteration_limit;
            return result;
        }
        const std::vector<double> xb = basic_values(t);
        double infeas = 0.0;
        for (std::size_t i = 0; i < t.m; ++i) {
            if (phase1_cost[t.basis[i]] > 0.0) {
                infeas += xb[i];
            }
        }
        for (const std::size_t a : t.artificials) {
            if (t.state[a] != var_state::basic) {
                infeas += nonbasic_value(t, a);
            }
        }
        if (infeas > opt.feasibility_tol) {
            result.status = lp_status::infeasible;
            return result;
        }
        // Forbid artificials from ever rising again.
        for (const std::size_t a : t.artificials) {
            t.hi[a] = 0.0;
        }
    }

    // Phase 2: optimise the real objective.
    if (!iterate(t, t.cost, opt, result.iterations)) {
        result.status = lp_status::iteration_limit;
        return result;
    }

    const std::vector<double> xb = basic_values(t);
    result.x.assign(ns, 0.0);
    for (std::size_t v = 0; v < ns; ++v) {
        if (t.state[v] != var_state::basic) {
            result.x[v] = nonbasic_value(t, v);
        }
    }
    for (std::size_t i = 0; i < t.m; ++i) {
        if (t.basis[i] < ns) {
            result.x[t.basis[i]] = xb[i];
        }
    }
    // Clamp roundoff excursions into the box.
    for (std::size_t v = 0; v < ns; ++v) {
        result.x[v] = std::clamp(result.x[v], lo_of(v), hi_of(v));
    }
    result.objective = problem.objective_of(result.x);
    result.status = lp_status::optimal;
    return result;
}

} // namespace mwl
