// Named multiple-wordlength DSP scenario corpus.
//
// The paper evaluates DPAlloc on real DSP kernels, not only on random
// sequencing graphs; this module constructs the canonical fixed-point
// workloads of that literature programmatically, each with per-signal
// wordlength annotations in the style an error-analysis tool (Synoptix in
// the paper's references) would produce: wide signals around
// impulse-response peaks and feedback paths, narrow signals in the tails.
// Every scenario is a deterministic function of nothing -- constructing it
// twice yields byte-identical graphs (tested), so allocation results on
// them can be locked in as golden quality regressions (core/quality.hpp,
// tools/mwl_scenarios.cpp).
//
// All wordlengths are chosen so every operation's result stays well below
// 63 bits, keeping each scenario simulable by the bit-true reference and
// therefore checkable by the differential RTL harness (src/verify/).

#ifndef MWL_SCENARIOS_SCENARIOS_HPP
#define MWL_SCENARIOS_SCENARIOS_HPP

#include "dfg/sequencing_graph.hpp"

#include <span>
#include <string>
#include <vector>

namespace mwl {

/// One named workload: a graph plus the provenance a report needs.
struct scenario {
    std::string name;        ///< stable identifier, e.g. "fir8"
    std::string description; ///< one line for --list and the README
    sequencing_graph graph;
};

/// The registry, in a fixed order (golden files are named after entries).
[[nodiscard]] std::vector<scenario> all_scenarios();

/// Names only, in registry order.
[[nodiscard]] std::vector<std::string> scenario_names();

/// Construct one scenario by name. Throws `precondition_error` on an
/// unknown name (the message lists the valid ones).
[[nodiscard]] scenario make_scenario(const std::string& name);

// ---- parameterised builders (the registry instantiates these) ----------

/// Direct-form FIR: one multiplier per tap (data_width x coeff_widths[i])
/// feeding a serial accumulation chain whose adder widths grow towards the
/// output and saturate at `acc_cap` bits.
[[nodiscard]] sequencing_graph make_fir(std::span<const int> coeff_widths,
                                        int data_width, int acc_cap = 24);

/// Cascade of `sections` direct-form-I biquads; feedback coefficients
/// carry more precision than feedforward ones, so each section's five
/// multipliers have distinct shapes.
[[nodiscard]] sequencing_graph make_iir_biquad_cascade(int sections,
                                                       int data_width);

/// Normalised lattice filter: per stage two reflection-coefficient
/// multipliers (data_width x k_widths[i]) and two adders. k_widths.size()
/// is the stage count.
[[nodiscard]] sequencing_graph make_lattice(std::span<const int> k_widths,
                                            int data_width);

/// Radix-2 decimation-in-time butterfly network over `points` real lanes
/// (points must be a power of two >= 2): log2(points) stages of
/// add/subtract butterflies whose widths grow one bit per stage, with a
/// `twiddle_width`-bit coefficient multiplier in front of the second wing
/// of every non-trivial rotation (stages after the first, upper half).
[[nodiscard]] sequencing_graph make_fft_butterflies(int points,
                                                    int data_width,
                                                    int twiddle_width);

/// 8-point one-dimensional DCT in the factored (Loeffler-style) form:
/// an input butterfly stage, three 3-multiplier rotation blocks with
/// distinct coefficient widths, sqrt(2) scaling multipliers and the
/// recombination adders.
[[nodiscard]] sequencing_graph make_dct8(int data_width);

/// M-phase polyphase decimator: `phases` independent FIR subfilters of
/// `taps_per_phase` taps (distinct per-tap coefficient widths) whose
/// outputs are combined by a final adder chain.
[[nodiscard]] sequencing_graph make_polyphase_decimator(int phases,
                                                        int taps_per_phase,
                                                        int data_width);

/// RGB -> YCbCr colour-space conversion: a 3x3 constant matrix multiply
/// (9 multipliers whose coefficient widths follow the standard's
/// per-entry precision needs) with per-row accumulation and offset adders.
[[nodiscard]] sequencing_graph make_rgb_to_ycbcr(int data_width);

/// Consecutive-addition chain stressor (the adder-chain shape of
/// multiplierless constant multiplication, arXiv:1307.8319): a serial
/// chain of `length` adders whose widths grow one bit per link from
/// `start_width` up to `width_cap`. The chain *is* the critical path, so
/// it probes the latency-bound corner of every allocator.
[[nodiscard]] sequencing_graph make_adder_chain(int length, int start_width,
                                                int width_cap = 24);

} // namespace mwl

#endif // MWL_SCENARIOS_SCENARIOS_HPP
