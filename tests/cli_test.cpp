// Error-path tests for the CLI tools, run against the real binaries
// (MWL_TOOL_DIR is injected by CMake). Each case pins the exit code and a
// golden stderr snippet, so diagnostics stay diagnostics: a regression
// that turns a manifest typo into an uncaught abort, loses the 1-based
// line number, or shifts exit 2 -> 1 fails here, not in a user's shell.

#include "io/record_journal.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

namespace {

struct run_result {
    int exit_code = -1;
    std::string output; ///< stdout + stderr, interleaved
};

/// Run a tool with stderr folded into stdout and capture both.
run_result run(const std::string& command)
{
    run_result result;
    FILE* pipe = popen((command + " 2>&1").c_str(), "r");
    if (pipe == nullptr) {
        ADD_FAILURE() << "popen failed for: " << command;
        return result;
    }
    std::array<char, 4096> buffer;
    std::size_t got = 0;
    while ((got = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
        result.output.append(buffer.data(), got);
    }
    const int status = pclose(pipe);
    result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return result;
}

std::string tool(const std::string& name)
{
    return std::string(MWL_TOOL_DIR) + "/" + name;
}

/// Write a manifest into the test's working directory (the build tree).
std::string write_manifest(const std::string& name, const std::string& text)
{
    std::ofstream out(name);
    out << text;
    return name;
}

void expect_fails_with(const std::string& command, int exit_code,
                       const std::string& snippet)
{
    const run_result r = run(command);
    EXPECT_EQ(r.exit_code, exit_code) << command << "\n" << r.output;
    EXPECT_NE(r.output.find(snippet), std::string::npos)
        << command << "\nexpected snippet: " << snippet << "\ngot:\n"
        << r.output;
}

// ------------------------------------------------------------ mwl_batch --

TEST(CliBatch, MalformedManifestLineReportsItsLineNumber)
{
    const std::string manifest = write_manifest(
        "cli_test_bad_line.manifest",
        "# comment line\n"
        "corpus ops=4 count=1\n"
        "graph\n");
    expect_fails_with(tool("mwl_batch") + " " + manifest, 2,
                      "manifest line 3: expected 'graph FILE ...'");
}

TEST(CliBatch, UnknownKeywordReportsItsLineNumber)
{
    const std::string manifest = write_manifest(
        "cli_test_bad_keyword.manifest", "corpus ops=4 count=1\nfrob x\n");
    expect_fails_with(tool("mwl_batch") + " " + manifest, 2,
                      "manifest line 2: unknown keyword 'frob'");
}

TEST(CliBatch, BadNumericDirectiveReportsItsLineNumber)
{
    const std::string manifest = write_manifest(
        "cli_test_bad_number.manifest", "corpus ops=4 count=1 lambda=abc\n");
    expect_fails_with(tool("mwl_batch") + " " + manifest, 2,
                      "manifest line 1: bad numeric value in 'lambda=abc'");
}

TEST(CliBatch, SweepAndVerifyAreMutuallyExclusive)
{
    const std::string manifest = write_manifest(
        "cli_test_conflict.manifest",
        "corpus ops=4 count=1 sweep=20 verify=4\n");
    expect_fails_with(tool("mwl_batch") + " " + manifest, 2,
                      "sweep= and verify= are mutually exclusive");
}

TEST(CliBatch, MissingGraphFileReportsItsLineNumber)
{
    const std::string manifest = write_manifest(
        "cli_test_missing_graph.manifest",
        "graph cli_test_does_not_exist.mwl\n");
    expect_fails_with(tool("mwl_batch") + " " + manifest, 2,
                      "manifest line 1: cannot open graph file");
}

TEST(CliBatch, EmptyManifestIsAnError)
{
    const std::string manifest =
        write_manifest("cli_test_empty.manifest", "# nothing here\n");
    expect_fails_with(tool("mwl_batch") + " " + manifest, 2,
                      "manifest has no entries");
}

TEST(CliBatch, UnknownOptionExitsTwo)
{
    expect_fails_with(tool("mwl_batch") + " --frobnicate", 2,
                      "unknown option --frobnicate");
}

TEST(CliBatch, NegativeJobsIsDiagnosedNotWrapped)
{
    // stoul would silently wrap "-2" to ~1.8e19 threads.
    expect_fails_with(tool("mwl_batch") + " --jobs -2 -", 2,
                      "bad numeric value '-2' for --jobs");
}

TEST(CliBatch, SigintDrainsAndEmitsPartialResultsWithExitThree)
{
    // A corpus big enough that the run is mid-flight whenever the signal
    // lands. The tool must drain, print what it completed, and exit 3 --
    // not die signal-killed with no output.
    const std::string manifest = write_manifest(
        "cli_test_sigint.manifest", "corpus ops=12 count=4000 seed=3\n");
    const std::string out_file = "cli_test_sigint.out";
    const std::string binary = tool("mwl_batch");
    for (const int delay_ms : {20, 40, 80, 160, 320}) {
        const pid_t pid = fork();
        ASSERT_NE(pid, -1);
        if (pid == 0) {
            const int fd = ::open(out_file.c_str(),
                                  O_WRONLY | O_CREAT | O_TRUNC, 0644);
            if (fd != -1) {
                ::dup2(fd, 1);
                ::dup2(fd, 2);
            }
            ::execl(binary.c_str(), "mwl_batch", manifest.c_str(),
                    "--jobs", "2", static_cast<char*>(nullptr));
            ::_exit(127);
        }
        ::usleep(delay_ms * 1000);
        ::kill(pid, SIGINT);
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        if (WIFEXITED(status) && WEXITSTATUS(status) == 3) {
            std::ifstream in(out_file);
            std::string output((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
            EXPECT_NE(output.find("interrupted: completed"),
                      std::string::npos)
                << output;
            EXPECT_NE(output.find("mwl_batch results"), std::string::npos)
                << output;
            return;
        }
        // Signal-killed: the handler was not installed yet (the signal
        // beat exec); a longer delay fixes that. Exit 0 would mean the
        // corpus finished first, which 4000 entries rules out.
        ASSERT_FALSE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
            << "run completed before the signal; corpus too small";
    }
    FAIL() << "SIGINT never landed while the batch was running";
}

// ----------------------------------------------------------- mwl_verify --

TEST(CliVerify, ZeroInputsIsRejected)
{
    expect_fails_with(tool("mwl_verify") + " --inputs 0", 2,
                      "--inputs must be >= 1");
}

TEST(CliVerify, ZeroCountIsRejected)
{
    expect_fails_with(tool("mwl_verify") + " --count 0", 2,
                      "--count must be >= 1");
}

TEST(CliVerify, OverwideCorpusIsRejected)
{
    expect_fails_with(tool("mwl_verify") + " --max-width 40", 2,
                      "--max-width must be <= 31");
}

TEST(CliVerify, NegativeSlackIsRejected)
{
    expect_fails_with(tool("mwl_verify") + " --slack -10", 2,
                      "slack must be non-negative");
}

TEST(CliVerify, MissingValueIsDiagnosed)
{
    expect_fails_with(tool("mwl_verify") + " --ops", 2,
                      "missing value for --ops");
}

TEST(CliVerify, UnknownOptionExitsTwo)
{
    expect_fails_with(tool("mwl_verify") + " --wibble", 2,
                      "unknown option --wibble");
}

// -------------------------------------------------------- mwl_scenarios --

TEST(CliScenarios, ModeIsRequired)
{
    expect_fails_with(tool("mwl_scenarios"), 2, "pick a mode");
}

TEST(CliScenarios, ModesAreMutuallyExclusive)
{
    expect_fails_with(tool("mwl_scenarios") + " --list --emit", 2,
                      "modes list and emit are mutually exclusive");
}

TEST(CliScenarios, UnknownScenarioIsAUsageErrorNamingTheValidOnes)
{
    const run_result r =
        run(tool("mwl_scenarios") + " --list --scenario no_such");
    EXPECT_EQ(r.exit_code, 2) << r.output;
    EXPECT_NE(r.output.find("unknown scenario 'no_such'"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("fir8"), std::string::npos) << r.output;
}

TEST(CliScenarios, OutOfRangeNumericValueIsDiagnosedNotAborted)
{
    // std::stod throws out_of_range here; that must surface as the usual
    // exit-2 diagnostic, not an uncaught abort.
    expect_fails_with(tool("mwl_scenarios") + " --list --slack 1e999", 2,
                      "bad value for --slack");
    expect_fails_with(tool("mwl_scenarios") + " --check x --tol 1e999", 2,
                      "bad value for --tol");
}

TEST(CliScenarios, CorruptedGoldenIsMalformedInputNotDrift)
{
    // Exit-code contract: 1 means the allocation quality really moved;
    // a golden that cannot be parsed is malformed input -> exit 2.
    std::filesystem::create_directories("cli_test_corrupt_goldens");
    std::ofstream("cli_test_corrupt_goldens/fir4.json") << "{\"trunc";
    const run_result r = run(tool("mwl_scenarios") +
                             " --check cli_test_corrupt_goldens"
                             " --scenario fir4");
    EXPECT_EQ(r.exit_code, 2) << r.output;
    EXPECT_NE(r.output.find("fir4.json"), std::string::npos) << r.output;
}

TEST(CliScenarios, CheckAgainstMissingGoldensFails)
{
    const run_result r = run(tool("mwl_scenarios") +
                             " --check cli_test_no_such_dir"
                             " --scenario fir4");
    EXPECT_EQ(r.exit_code, 1) << r.output;
    EXPECT_NE(r.output.find("missing"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("FAIL"), std::string::npos) << r.output;
}

TEST(CliScenarios, ListSucceedsAndNamesEveryScenario)
{
    const run_result r = run(tool("mwl_scenarios") + " --list");
    EXPECT_EQ(r.exit_code, 0) << r.output;
    for (const char* name : {"fir8", "dct8", "adder_chain16"}) {
        EXPECT_NE(r.output.find(name), std::string::npos) << r.output;
    }
}

// --------------------------------------------------------- mwl_campaign --

std::string write_spec(const std::string& name, const std::string& text)
{
    std::ofstream out(name);
    out << text;
    return name;
}

TEST(CliCampaign, ModeIsRequired)
{
    expect_fails_with(tool("mwl_campaign"), 2, "pick a mode");
}

TEST(CliCampaign, ModesAreMutuallyExclusive)
{
    expect_fails_with(tool("mwl_campaign") + " --status a --report b", 2,
                      "modes --status and --report are mutually exclusive");
}

TEST(CliCampaign, RunNeedsASpec)
{
    expect_fails_with(tool("mwl_campaign") + " --run cli_test_cdir", 2,
                      "--run needs --spec FILE");
}

TEST(CliCampaign, SpecOnlyAppliesToRun)
{
    expect_fails_with(tool("mwl_campaign") +
                          " --status cli_test_cdir --spec x",
                      2, "--spec only applies to --run");
}

TEST(CliCampaign, ZeroCheckpointIntervalIsRejected)
{
    expect_fails_with(tool("mwl_campaign") +
                          " --status x --checkpoint-every 0",
                      2, "--checkpoint-every must be >= 1");
}

TEST(CliCampaign, MalformedSpecReportsItsLineNumber)
{
    const std::string spec = write_spec("cli_test_bad.spec",
                                        "scenario fir4\n"
                                        "wibble x\n");
    std::filesystem::remove_all("cli_test_campaign_badspec");
    expect_fails_with(tool("mwl_campaign") +
                          " --run cli_test_campaign_badspec --spec " + spec,
                      2, "spec line 2: unknown keyword 'wibble'");
}

TEST(CliCampaign, UnknownScenarioInSpecExitsTwo)
{
    const std::string spec =
        write_spec("cli_test_unknown.spec", "scenario no_such_scenario\n");
    std::filesystem::remove_all("cli_test_campaign_unknown");
    expect_fails_with(tool("mwl_campaign") +
                          " --run cli_test_campaign_unknown --spec " + spec,
                      2,
                      "spec line 1: unknown scenario 'no_such_scenario'");
}

TEST(CliCampaign, MissingSpecFileExitsTwo)
{
    expect_fails_with(tool("mwl_campaign") +
                          " --run cli_test_cdir --spec cli_test_nospec",
                      2, "cannot open spec");
}

TEST(CliCampaign, StatusOnANonCampaignDirectoryExitsTwo)
{
    expect_fails_with(tool("mwl_campaign") +
                          " --status cli_test_not_a_campaign",
                      2, "is not a campaign directory");
}

TEST(CliCampaign, RunIntoAnExistingCampaignDirectoryExitsTwo)
{
    // A one-point campaign keeps the successful first run fast.
    const std::string spec = write_spec("cli_test_tiny.spec",
                                        "scenario fir4\n"
                                        "lambda slack=0\n");
    const std::string dir = "cli_test_campaign_exists";
    std::filesystem::remove_all(dir);
    const run_result first =
        run(tool("mwl_campaign") + " --run " + dir + " --spec " + spec);
    ASSERT_EQ(first.exit_code, 0) << first.output;
    expect_fails_with(tool("mwl_campaign") + " --run " + dir + " --spec " +
                          spec,
                      2, "already contains a campaign; use --resume");
}

TEST(CliCampaign, IncompatibleCheckpointFormatVersionExitsTwo)
{
    // Fabricate a store whose journal header claims a future format: the
    // tool must refuse to read it rather than misparse the records.
    const std::string dir = "cli_test_campaign_future";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    write_spec(dir + "/spec.campaign", "scenario fir4\nlambda slack=0\n");
    std::ofstream(dir + "/journal.log", std::ios::binary)
        << mwl::frame_record("campaign-store format_version=999 "
                             "fingerprint=0123456789abcdef points=1");
    expect_fails_with(tool("mwl_campaign") + " --status " + dir, 2,
                      "incompatible checkpoint format_version 999");
    expect_fails_with(tool("mwl_campaign") + " --resume " + dir, 2,
                      "incompatible checkpoint format_version 999");
}

TEST(CliCampaign, ResumeRejectsASpecWithADifferentFingerprint)
{
    const std::string spec = write_spec("cli_test_fp.spec",
                                        "scenario fir4\n"
                                        "lambda slack=0\n");
    const std::string dir = "cli_test_campaign_fp";
    std::filesystem::remove_all(dir);
    const run_result first =
        run(tool("mwl_campaign") + " --run " + dir + " --spec " + spec);
    ASSERT_EQ(first.exit_code, 0) << first.output;
    // Editing the stored spec after the fact changes what it expands to;
    // the checkpoint's fingerprint must catch the mismatch.
    write_spec(dir + "/spec.campaign", "scenario fir4 fir8\n");
    expect_fails_with(tool("mwl_campaign") + " --resume " + dir, 2,
                      "checkpoint was built from a different spec");
}

// ------------------------------------------------------------ mwl_serve --

TEST(CliServe, AnEndpointIsRequired)
{
    expect_fails_with(tool("mwl_serve"), 2,
                      "one of --unix or --tcp is required");
}

TEST(CliServe, BadNumericValuesExitTwo)
{
    expect_fails_with(tool("mwl_serve") + " --tcp nope", 2,
                      "bad numeric value 'nope' for --tcp");
    expect_fails_with(tool("mwl_serve") + " --unix s.sock --jobs -1", 2,
                      "bad numeric value '-1' for --jobs");
    expect_fails_with(tool("mwl_serve") + " --unix s.sock --cache", 2,
                      "missing value for --cache");
}

TEST(CliServe, UnknownOptionExitsTwo)
{
    expect_fails_with(tool("mwl_serve") + " --wibble", 2,
                      "unknown option --wibble");
}

// ----------------------------------------------------------- mwl_client --

TEST(CliClient, EndpointAndCommandAreRequired)
{
    expect_fails_with(tool("mwl_client"), 2, "usage: mwl_client");
    expect_fails_with(tool("mwl_client") + " unix:/tmp/x.sock", 2,
                      "usage: mwl_client");
}

TEST(CliClient, MalformedEndpointExitsTwo)
{
    expect_fails_with(tool("mwl_client") + " wibble ping", 2,
                      "endpoint must be unix:PATH or tcp:HOST:PORT");
    expect_fails_with(tool("mwl_client") + " tcp:host:0 ping", 2,
                      "endpoint must be unix:PATH or tcp:HOST:PORT");
}

TEST(CliClient, NobodyListeningIsARuntimeFailureNotUsage)
{
    expect_fails_with(tool("mwl_client") +
                          " unix:cli_test_no_such.sock ping",
                      1, "cannot connect to unix:cli_test_no_such.sock");
}

TEST(CliClient, BatchOnlyManifestDirectivesAreRejected)
{
    const std::string manifest =
        write_manifest("cli_test_serve_sweep.manifest",
                       "corpus ops=4 count=1 sweep=20\n");
    expect_fails_with(tool("mwl_client") +
                          " unix:/tmp/x.sock --manifest " + manifest,
                      2, "sweep= is not supported over serve");
    const std::string verify =
        write_manifest("cli_test_serve_verify.manifest",
                       "corpus ops=4 count=1 verify=2\n");
    expect_fails_with(tool("mwl_client") +
                          " unix:/tmp/x.sock --manifest " + verify,
                      2, "verify= is not supported over serve");
}

TEST(CliClient, BadCountsExitTwo)
{
    expect_fails_with(tool("mwl_client") + " unix:/tmp/x.sock --conns 0 " +
                          "--manifest -",
                      2, "--conns and --window must be >= 1");
    expect_fails_with(tool("mwl_client") + " unix:/tmp/x.sock --soak x " +
                          "--manifest -",
                      2, "bad numeric value 'x' for --soak");
}

// ------------------------------------------------------------- mwl_lint --

TEST(CliLint, NoWorkloadIsAUsageError)
{
    expect_fails_with(tool("mwl_lint"), 2, "nothing to lint");
}

TEST(CliLint, UnknownOptionAndBadValuesExitTwo)
{
    expect_fails_with(tool("mwl_lint") + " --frobnicate", 2,
                      "unknown option --frobnicate");
    expect_fails_with(tool("mwl_lint") + " --ops x --corpus", 2,
                      "bad value for --ops");
    expect_fails_with(tool("mwl_lint") + " --mutate wibble", 2,
                      "unknown --mutate mode 'wibble'");
    expect_fails_with(tool("mwl_lint") + " --slack -5 fir4", 2,
                      "slack must be non-negative");
}

TEST(CliLint, UnknownScenarioExitsTwoNamingTheValidOnes)
{
    expect_fails_with(tool("mwl_lint") + " no_such_filter", 2,
                      "unknown scenario");
}

TEST(CliLint, CleanScenarioExitsZero)
{
    const run_result r = run(tool("mwl_lint") + " fir4");
    EXPECT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("OK: no findings"), std::string::npos)
        << r.output;
}

TEST(CliLint, MutatedScenarioExitsOneAndNamesTheRule)
{
    const run_result r =
        run(tool("mwl_lint") + " fir4 --mutate capture-zext");
    EXPECT_EQ(r.exit_code, 1) << r.output;
    EXPECT_NE(r.output.find("FINDINGS:"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("[range.capture-zero-extend]"),
              std::string::npos)
        << r.output;
}

TEST(CliLint, JsonReportHasTheContractShape)
{
    const run_result r = run(tool("mwl_lint") +
                             " fir4 --mutate capture-zext --json -");
    EXPECT_EQ(r.exit_code, 1) << r.output;
    EXPECT_NE(r.output.find("{\"tool\":\"mwl_lint\",\"graphs\":1,"),
              std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("\"findings\":[{\"rule\":"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("\"severity\":\"error\""), std::string::npos)
        << r.output;

    // Clean run: empty findings array, still well-formed.
    const run_result clean = run(tool("mwl_lint") + " fir4 --json -");
    EXPECT_EQ(clean.exit_code, 0) << clean.output;
    EXPECT_NE(clean.output.find("\"findings\":[]}"), std::string::npos)
        << clean.output;
}

TEST(CliLint, ManifestDrivesGraphAndCorpusLines)
{
    // Reuse a scenario graph on disk via mwl_scenarios? Simpler: corpus
    // line only -- the graph path branch is covered by the error case.
    const std::string manifest = write_manifest(
        "cli_test_lint.manifest",
        "# static lint batch\ncorpus ops=4 count=2 seed=11 sweep=20\n");
    const run_result r =
        run(tool("mwl_lint") + " --manifest " + manifest);
    EXPECT_EQ(r.exit_code, 0) << r.output; // sweep= ignored, not an error
    EXPECT_NE(r.output.find("2 graphs"), std::string::npos) << r.output;
}

TEST(CliLint, ManifestErrorsReportTheirLineNumber)
{
    const std::string manifest = write_manifest(
        "cli_test_lint_bad.manifest", "corpus ops=4 count=1\nfrob x\n");
    expect_fails_with(tool("mwl_lint") + " --manifest " + manifest, 2,
                      "manifest line 2: unknown keyword 'frob'");
    const std::string missing = write_manifest(
        "cli_test_lint_missing.manifest", "graph cli_no_such.mwl\n");
    expect_fails_with(tool("mwl_lint") + " --manifest " + missing, 2,
                      "manifest line 1: cannot open graph file");
}

TEST(CliLint, BadNumericFlagValuesExitTwoNotAbort)
{
    // Regression: these went through bare std::stoi -- 'junk' aborted the
    // process and '4x' silently parsed as 4 (exit 0, wrong corpus).
    expect_fails_with(tool("mwl_lint") + " --min-width junk fir4", 2,
                      "bad value for --min-width: bad numeric value 'junk'");
    expect_fails_with(tool("mwl_lint") + " --min-width 4x fir4", 2,
                      "bad value for --min-width: bad numeric value '4x'");
    expect_fails_with(tool("mwl_lint") + " --max-width 99999999999999999999 fir4",
                      2, "bad value for --max-width: numeric value out of range");
    expect_fails_with(tool("mwl_lint") + " --seed -3 fir4", 2,
                      "bad value for --seed: bad numeric value '-3'");
}

TEST(CliLint, ManifestBadNumericReportsItsLineNumber)
{
    // lambda=3x used to parse as lambda=3 with the 'x' dropped.
    const std::string manifest = write_manifest(
        "cli_test_lint_badnum.manifest", "corpus ops=4 count=1 lambda=3x\n");
    expect_fails_with(tool("mwl_lint") + " --manifest " + manifest, 2,
                      "manifest line 1: bad numeric value in 'lambda=3x'");
}

// --------------------------------------------------- mwl_verify --static --

TEST(CliVerifyStatic, CleanCorpusExitsZero)
{
    const run_result r =
        run(tool("mwl_verify") + " --static --ops 4 --count 3 --seed 5");
    EXPECT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("OK: all static value-range checks passed"),
              std::string::npos)
        << r.output;
}

// ------------------------------------------------------------ mwl_alloc --

TEST(CliAlloc, BadNumericFlagValuesExitTwoNotAbort)
{
    // Regression: every one of these reached std::stoi/stod unchecked and
    // aborted with an uncaught exception (exit 134).
    expect_fails_with(tool("mwl_alloc") + " - --lambda junk", 2,
                      "bad value for --lambda: bad numeric value 'junk'");
    expect_fails_with(tool("mwl_alloc") + " - --slack junk", 2,
                      "bad value for --slack: bad numeric value 'junk'");
    expect_fails_with(
        tool("mwl_alloc") + " - --jobs 999999999999999999999999", 2,
        "bad value for --jobs: numeric value out of range");
    expect_fails_with(tool("mwl_alloc") + " - --lambda 12x", 2,
                      "bad value for --lambda: bad numeric value '12x'");
}

// ------------------------------------------------------------- mwl_verify --

TEST(CliVerify, BadNumericFlagValuesExitTwoNotAbort)
{
    expect_fails_with(tool("mwl_verify") + " --inputs junk", 2,
                      "bad value for --inputs: bad numeric value 'junk'");
    expect_fails_with(tool("mwl_verify") + " --seed -3", 2,
                      "bad value for --seed: bad numeric value '-3'");
    expect_fails_with(tool("mwl_verify") + " --ops 10x", 2,
                      "bad value for --ops: bad numeric value '10x'");
}

// -------------------------------------------------------------- mwl_tune --

TEST(CliTune, ASpecIsRequired)
{
    const run_result r = run(tool("mwl_tune"));
    EXPECT_EQ(r.exit_code, 2) << r.output;
    EXPECT_NE(r.output.find("usage: mwl_tune"), std::string::npos)
        << r.output;
}

TEST(CliTune, UnknownOptionAndBadValuesExitTwo)
{
    expect_fails_with(tool("mwl_tune") + " --frobnicate", 2,
                      "unknown option --frobnicate");
    expect_fails_with(tool("mwl_tune") + " spec --jobs junk", 2,
                      "bad numeric value 'junk' for --jobs");
}

TEST(CliTune, SpecErrorsReportTheirLineNumber)
{
    const std::string bad_budget = write_manifest(
        "cli_test_tune_bad_budget.spec", "scenario fir4\nbudget junk\n");
    expect_fails_with(tool("mwl_tune") + " " + bad_budget, 2,
                      "spec line 2: bad numeric value 'junk'");
    const std::string bad_scenario = write_manifest(
        "cli_test_tune_bad_scenario.spec",
        "scenario no_such_filter\nbudget 1e-6\n");
    expect_fails_with(tool("mwl_tune") + " " + bad_scenario, 2,
                      "spec line 1: unknown scenario 'no_such_filter'");
    const std::string no_budget = write_manifest(
        "cli_test_tune_no_budget.spec", "scenario fir4\n");
    expect_fails_with(tool("mwl_tune") + " " + no_budget, 2,
                      "spec names no budgets");
    const std::string bad_key = write_manifest(
        "cli_test_tune_bad_key.spec",
        "scenario fir4\nbudget 1e-6\nsearch wibble=2\n");
    expect_fails_with(tool("mwl_tune") + " " + bad_key, 2,
                      "spec line 3: unknown search key 'wibble'");
}

TEST(CliTune, MissingSpecFileExitsOne)
{
    expect_fails_with(tool("mwl_tune") + " cli_test_no_such.spec", 1,
                      "cannot open cli_test_no_such.spec");
}

TEST(CliTune, TunesAScenarioFromStdinAndEmitsAFrontier)
{
    const run_result r =
        run("echo 'scenario fir4\nbudget 1e-5\nsearch max-steps=2' | " +
            tool("mwl_tune") + " - --jobs 2");
    EXPECT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("front"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("evaluations"), std::string::npos) << r.output;
}

TEST(CliTune, UnreachableBudgetFailsThePointWithExitOne)
{
    // max 4 fractional bits cannot reach a 1e-30 budget: the point rows
    // an error, the tool exits 1 (failures), not 2 (usage).
    const std::string spec = write_manifest(
        "cli_test_tune_infeasible.spec",
        "scenario fir4\nbudget 1e-30\nfrac min=2 max=4\n");
    const run_result r = run(tool("mwl_tune") + " " + spec);
    EXPECT_EQ(r.exit_code, 1) << r.output;
    EXPECT_NE(r.output.find("error:"), std::string::npos) << r.output;
}

} // namespace
