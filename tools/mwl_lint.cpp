// mwl_lint -- static value-range / structural linter for allocated RTL.
//
// Allocates every selected workload with each enabled allocator and runs
// the static analyzer (src/analyze/) over the elaborated design: schedule
// re-derivations, structural IR lints, and the abstract-interpretation
// value-range walk that flags truncating slices, zero-extended negatives,
// unsigned multiplier bodies and recycled output registers *without
// executing a single input vector*. The differential harness (mwl_verify)
// proves the same properties by sampling; this tool proves them by
// analysis, orders of magnitude faster per design (see PERF.md).
//
// Usage:
//   mwl_lint fir8 dct8                 # named scenarios
//   mwl_lint --all                     # every registered scenario
//   mwl_lint --corpus --ops 12 --count 50 --seed 7
//   mwl_lint --manifest jobs.txt       # mwl_batch-style manifest
//   mwl_lint --all --mutate unsigned-mul   # soundness harness: expect 1
//
// Exit codes: 0 = clean, 1 = findings reported, 2 = usage error.

#include "dfg/analysis.hpp"
#include "io/graph_io.hpp"
#include "model/hardware_model.hpp"
#include "scenarios/scenarios.hpp"
#include "support/parse_num.hpp"
#include "support/timer.hpp"
#include "verify/differential.hpp"

#include <deque>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace {

using namespace mwl;

[[noreturn]] void usage(int code)
{
    std::cout <<
        "usage: mwl_lint [options] [SCENARIO]...\n"
        "workload selection (combinable):\n"
        "  SCENARIO...       named scenarios (see mwl_scenarios --list)\n"
        "  --all             every registered scenario\n"
        "  --graph FILE      a .mwl graph file (repeatable)\n"
        "  --corpus          a generated TGFF corpus\n"
        "  --manifest FILE   mwl_batch-style manifest ('-' = stdin);\n"
        "                    graph/corpus lines, lambda=/slack= honoured,\n"
        "                    sweep=/verify= ignored\n"
        "corpus knobs (--corpus, like mwl_verify):\n"
        "  --ops N --count N --seed S --mul-fraction F\n"
        "  --min-width W --max-width W\n"
        "allocation / analysis:\n"
        "  --slack PCT       latency relaxation over lambda_min [25]\n"
        "  --no-heuristic / --no-two-stage / --no-descending\n"
        "                    drop an allocator from the checks\n"
        "  --mutate MODE     re-introduce a historical elaboration bug\n"
        "                    (soundness harness; a sound analyzer exits 1):\n"
        "                    operand-zext | capture-zext | unsigned-mul |\n"
        "                    output-recycle\n"
        "  --jobs N          worker threads [hardware concurrency]\n"
        "output:\n"
        "  --json FILE       findings + counters as JSON ('-' = stdout)\n"
        "exit codes: 0 clean, 1 findings, 2 usage error\n";
    std::exit(code);
}

struct lint_item {
    std::string name;
    const sequencing_graph* graph = nullptr;
    std::optional<int> lambda; ///< fixed lambda; unset = relax lambda_min
    double slack = 0.25;
};

std::string json_escape(const std::string& text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        if (c == '"' || c == '\\') {
            out += '\\';
        }
        out += c;
    }
    return out;
}

} // namespace

int main(int argc, char** argv)
{
    std::vector<std::string> scenario_args;
    std::vector<std::string> graph_files;
    std::string manifest_file;
    bool all_scenarios_flag = false;
    bool use_corpus = false;
    corpus_spec spec;
    spec.n_ops = 10;
    spec.count = 50;
    spec.seed = 2001;
    double slack_pct = 25.0;
    std::string mutate;
    std::string json_file;
    std::size_t jobs = 0;
    verify_options options;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "mwl_lint: missing value for " << arg << '\n';
                usage(2);
            }
            return argv[++i];
        };
        // parse_*_checked (support/parse_num.hpp) rejects malformed,
        // out-of-range and partially numeric values ("4x"), so every bad
        // number lands in the catch below: diagnostic + exit 2, no abort.
        const auto count_value = [&]() -> std::size_t {
            return parse_size_checked(value());
        };
        try {
            if (arg == "--all") {
                all_scenarios_flag = true;
            } else if (arg == "--graph") {
                graph_files.push_back(value());
            } else if (arg == "--manifest") {
                manifest_file = value();
            } else if (arg == "--corpus") {
                use_corpus = true;
            } else if (arg == "--ops") {
                spec.n_ops = count_value();
            } else if (arg == "--count") {
                spec.count = count_value();
            } else if (arg == "--seed") {
                spec.seed = parse_u64_checked(value());
            } else if (arg == "--mul-fraction") {
                spec.prototype.mul_fraction =
                    parse_double_checked(value());
            } else if (arg == "--min-width") {
                spec.prototype.min_width = parse_int_checked(value());
            } else if (arg == "--max-width") {
                spec.prototype.max_width = parse_int_checked(value());
            } else if (arg == "--slack") {
                slack_pct = parse_double_checked(value());
            } else if (arg == "--no-heuristic") {
                options.use_heuristic = false;
            } else if (arg == "--no-two-stage") {
                options.use_two_stage = false;
            } else if (arg == "--no-descending") {
                options.use_descending = false;
            } else if (arg == "--mutate") {
                mutate = value();
            } else if (arg == "--json") {
                json_file = value();
            } else if (arg == "--jobs") {
                jobs = count_value();
            } else if (arg == "--help" || arg == "-h") {
                usage(0);
            } else if (!arg.empty() && arg[0] == '-') {
                std::cerr << "mwl_lint: unknown option " << arg << '\n';
                usage(2);
            } else {
                scenario_args.push_back(arg);
            }
        } catch (const error& e) {
            std::cerr << "mwl_lint: bad value for " << arg << ": "
                      << e.what() << '\n';
            usage(2);
        }
    }
    if (slack_pct < 0.0) {
        std::cerr << "mwl_lint: slack must be non-negative\n";
        usage(2);
    }
    if (!mutate.empty()) {
        if (mutate == "operand-zext") {
            options.elaborate.legacy_operand_extension = true;
        } else if (mutate == "capture-zext") {
            options.elaborate.legacy_capture_extension = true;
        } else if (mutate == "unsigned-mul") {
            options.elaborate.legacy_unsigned_multiply = true;
        } else if (mutate == "output-recycle") {
            options.elaborate.legacy_output_recycling = true;
        } else {
            std::cerr << "mwl_lint: unknown --mutate mode '" << mutate
                      << "'\n";
            usage(2);
        }
    }
    options.slack = slack_pct / 100.0;

    try {
        const sonic_model model;
        thread_pool pool(jobs);
        stopwatch clock;

        // ---- expand the selection into owned graphs + items -------------
        std::deque<sequencing_graph> graphs; // stable addresses
        std::deque<scenario> scenarios;      // keeps scenario graphs alive
        std::vector<lint_item> items;
        const double default_slack = options.slack;

        const auto add_scenario = [&](scenario s) {
            scenarios.push_back(std::move(s));
            items.push_back({scenarios.back().name, &scenarios.back().graph,
                             std::nullopt, default_slack});
        };
        if (all_scenarios_flag) {
            for (scenario& s : all_scenarios()) {
                add_scenario(std::move(s));
            }
        }
        for (const std::string& name : scenario_args) {
            add_scenario(make_scenario(name)); // throws on unknown names
        }
        for (const std::string& path : graph_files) {
            std::ifstream in(path);
            if (!in) {
                std::cerr << "mwl_lint: cannot open " << path << '\n';
                return 2;
            }
            graphs.push_back(parse_graph(in));
            items.push_back({path, &graphs.back(), std::nullopt,
                             default_slack});
        }
        if (use_corpus) {
            std::size_t entry = 0;
            for (corpus_entry& e : make_corpus(spec, model)) {
                graphs.push_back(std::move(e.graph));
                items.push_back(
                    {"tgff(ops=" + std::to_string(spec.n_ops) + ",seed=" +
                         std::to_string(spec.seed) + ")#" +
                         std::to_string(entry++),
                     &graphs.back(), std::nullopt, default_slack});
            }
        }
        if (!manifest_file.empty()) {
            std::ifstream file_in;
            std::istream* in = &std::cin;
            if (manifest_file != "-") {
                file_in.open(manifest_file);
                if (!file_in) {
                    std::cerr << "mwl_lint: cannot open " << manifest_file
                              << '\n';
                    return 2;
                }
                in = &file_in;
            }
            std::string raw;
            std::size_t line_no = 0;
            while (std::getline(*in, raw)) {
                ++line_no;
                std::istringstream line(raw);
                std::string keyword;
                if (!(line >> keyword) || keyword.front() == '#') {
                    continue;
                }
                const auto fail = [&](const std::string& message) {
                    std::cerr << "mwl_lint: manifest line " << line_no
                              << ": " << message << '\n';
                    std::exit(2);
                };
                // lambda=/slack= pick the allocation point; mwl_batch's
                // sweep=/verify= directives are about *dynamic* work and
                // are ignored here so one manifest can drive both tools.
                std::optional<int> lambda;
                double slack = default_slack;
                std::vector<std::string> rest;
                const auto take = [&](const std::string& token) {
                    // checked parse: "lambda=4x" is a line diagnostic,
                    // not a silent lambda=4 (and never an abort).
                    if (token.rfind("lambda=", 0) == 0) {
                        lambda = parse_int_checked(token.substr(7), token);
                    } else if (token.rfind("slack=", 0) == 0) {
                        slack =
                            parse_double_checked(token.substr(6), token) /
                            100.0;
                    } else if (token.rfind("sweep=", 0) == 0 ||
                               token.rfind("verify=", 0) == 0) {
                        // ignored
                    } else {
                        return false;
                    }
                    return true;
                };
                try {
                    if (keyword == "graph") {
                        std::string path;
                        if (!(line >> path)) {
                            fail("expected 'graph FILE ...'");
                        }
                        std::string token;
                        while (line >> token) {
                            if (!take(token)) {
                                fail("unknown graph token '" + token + "'");
                            }
                        }
                        std::ifstream gf(path);
                        if (!gf) {
                            fail("cannot open graph file " + path);
                        }
                        graphs.push_back(parse_graph(gf));
                        items.push_back({path, &graphs.back(), lambda,
                                         slack});
                    } else if (keyword == "corpus") {
                        std::vector<std::string> spec_tokens;
                        std::string token;
                        while (line >> token) {
                            if (!take(token)) {
                                spec_tokens.push_back(token);
                            }
                        }
                        const corpus_spec line_spec =
                            corpus_spec::parse(spec_tokens);
                        std::size_t entry = 0;
                        for (corpus_entry& e :
                             make_corpus(line_spec, model)) {
                            graphs.push_back(std::move(e.graph));
                            items.push_back(
                                {"tgff(ops=" +
                                     std::to_string(line_spec.n_ops) +
                                     ",seed=" +
                                     std::to_string(line_spec.seed) + ")#" +
                                     std::to_string(entry++),
                                 &graphs.back(), lambda, slack});
                        }
                    } else {
                        fail("unknown keyword '" + keyword + "'");
                    }
                } catch (const error& e) {
                    fail(e.what());
                }
            }
        }
        if (items.empty()) {
            std::cerr << "mwl_lint: nothing to lint (give scenario names, "
                         "--all, --graph, --corpus or --manifest)\n";
            usage(2);
        }

        // ---- analyze, one pool task per item -----------------------------
        std::vector<analysis_report> slots(items.size());
        std::size_t designs = 0;
        const auto run_one = [&](std::size_t i) {
            const lint_item& item = items[i];
            verify_options local = options;
            local.slack = item.slack;
            const int lambda =
                item.lambda.value_or(relaxed_lambda(
                    min_latency(*item.graph, model), item.slack));
            slots[i] = static_verify_graph(*item.graph, item.name, model,
                                           lambda, local);
        };
        if (pool.size() > 1 && items.size() > 1) {
            task_group tasks(pool);
            for (std::size_t i = 0; i < items.size(); ++i) {
                tasks.run([&run_one, i] { run_one(i); });
            }
            tasks.wait();
        } else {
            for (std::size_t i = 0; i < items.size(); ++i) {
                run_one(i);
            }
        }

        analysis_report report;
        for (analysis_report& slot : slots) {
            report.merge(std::move(slot));
        }
        const std::size_t allocators =
            static_cast<std::size_t>(options.use_heuristic) +
            static_cast<std::size_t>(options.use_two_stage) +
            static_cast<std::size_t>(options.use_descending);
        designs = items.size() * allocators;
        const double wall = clock.seconds();

        // ---- report -------------------------------------------------------
        // With --json - the machine output owns stdout; the human report
        // moves to stderr so the JSON stream stays parseable.
        std::ostream& text = json_file == "-" ? std::cerr : std::cout;
        text << "mwl_lint: " << items.size() << " graphs, " << designs
             << " designs, " << report.checks << " checks in "
             << static_cast<long long>(wall * 1e3) << " ms";
        if (wall > 0.0) {
            text << " ("
                 << static_cast<long long>(
                        static_cast<double>(designs) / wall)
                 << " designs/s, "
                 << static_cast<long long>(
                        static_cast<double>(report.checks) / wall)
                 << " checks/s, " << pool.size() << " threads)";
        }
        text << '\n';
        for (const finding& f : report.findings) {
            text << "  " << f.to_string() << '\n';
        }
        if (report.truncated) {
            text << "  ... finding list truncated\n";
        }

        if (!json_file.empty()) {
            std::ostringstream json;
            json << "{\"tool\":\"mwl_lint\",\"graphs\":" << items.size()
                 << ",\"designs\":" << designs
                 << ",\"checks\":" << report.checks << ",\"mutate\":\""
                 << json_escape(mutate) << "\",\"truncated\":"
                 << (report.truncated ? "true" : "false")
                 << ",\"findings\":[";
            for (std::size_t i = 0; i < report.findings.size(); ++i) {
                json << (i == 0 ? "" : ",")
                     << report.findings[i].to_json();
            }
            json << "]}\n";
            if (json_file == "-") {
                std::cout << json.str();
            } else {
                std::ofstream out(json_file);
                if (!out) {
                    std::cerr << "mwl_lint: cannot write " << json_file
                              << '\n';
                    return 2;
                }
                out << json.str();
            }
        }

        if (!report.findings.empty()) {
            text << "FINDINGS: " << report.findings.size() << '\n';
            return 1;
        }
        text << "OK: no findings\n";
        return 0;
    } catch (const error& e) {
        std::cerr << "mwl_lint: " << e.what() << '\n';
        return 2;
    }
}
