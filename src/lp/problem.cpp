#include "lp/problem.hpp"

#include "support/error.hpp"

#include <cmath>

namespace mwl {

std::size_t lp_problem::add_variable(double cost, double lo, double hi,
                                     var_kind kind, std::string name)
{
    require(std::isfinite(lo) && std::isfinite(hi),
            "variable bounds must be finite");
    require(lo <= hi, "variable lower bound exceeds upper bound");
    require(std::isfinite(cost), "variable cost must be finite");
    cost_.push_back(cost);
    lo_.push_back(lo);
    hi_.push_back(hi);
    kind_.push_back(kind);
    names_.push_back(std::move(name));
    return cost_.size() - 1;
}

std::size_t lp_problem::add_binary(double cost, std::string name)
{
    return add_variable(cost, 0.0, 1.0, var_kind::integer, std::move(name));
}

void lp_problem::add_row(lp_row row)
{
    for (const auto& [v, coeff] : row.terms) {
        require(v < n_vars(), "constraint references unknown variable");
        require(std::isfinite(coeff), "constraint coefficient must be finite");
    }
    require(std::isfinite(row.rhs), "constraint rhs must be finite");
    rows_.push_back(std::move(row));
}

double lp_problem::objective_of(const std::vector<double>& x) const
{
    MWL_ASSERT(x.size() == n_vars());
    double total = 0.0;
    for (std::size_t v = 0; v < n_vars(); ++v) {
        total += cost_[v] * x[v];
    }
    return total;
}

bool lp_problem::is_feasible(const std::vector<double>& x, double tol) const
{
    if (x.size() != n_vars()) {
        return false;
    }
    for (std::size_t v = 0; v < n_vars(); ++v) {
        if (x[v] < lo_[v] - tol || x[v] > hi_[v] + tol) {
            return false;
        }
    }
    for (const lp_row& r : rows_) {
        double lhs = 0.0;
        for (const auto& [v, coeff] : r.terms) {
            lhs += coeff * x[v];
        }
        switch (r.sense) {
        case row_sense::le:
            if (lhs > r.rhs + tol) {
                return false;
            }
            break;
        case row_sense::ge:
            if (lhs < r.rhs - tol) {
                return false;
            }
            break;
        case row_sense::eq:
            if (std::abs(lhs - r.rhs) > tol) {
                return false;
            }
            break;
        }
    }
    return true;
}

} // namespace mwl
