// Campaign engine throughput: how much the crash-safe result store costs.
//
// Runs one fir4+fir8 campaign grid (variants scale with --graphs) three
// ways: checkpointing every 64 records (the default), checkpointing every
// record (worst-case durability), and resuming the finished store (pure
// journal-replay skip). The gap between the first two is the fsync bill;
// the third shows that resume cost is a scan, not a re-run. The two run
// arms must agree point-for-point -- the bench exits non-zero otherwise.
//
// Emits the aligned table (or --csv) plus a JSON artifact, written to
// BENCH_campaign_throughput.json (or --out FILE) on full-size runs.

#include "bench_common.hpp"
#include "campaign/campaign_runner.hpp"
#include "campaign/report.hpp"
#include "support/timer.hpp"

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

int main(int argc, char** argv)
{
    using namespace mwl;
    namespace fs = std::filesystem;
    const bench::bench_options opt =
        bench::parse_options(argc, argv, "campaign_throughput");

    // Variants per scenario scale the grid; the default 25 gives
    // 2 * 26 * 4 = 208 points, smoke (--graphs 2) gives 24.
    const std::size_t variants = opt.graphs;
    std::ostringstream spec_text;
    spec_text << "scenario fir4 fir8\n"
              << "lambda slack=0..30 step=10\n"
              << "perturb count=" << variants << " flips=2 seed="
              << opt.seed << "\n";
    const campaign_spec spec = campaign_spec::parse(spec_text.str());
    const std::vector<campaign_point> points = expand(spec);
    const std::uint64_t fp = points_fingerprint(points);

    const fs::path root = "bench_campaign_tmp";
    fs::remove_all(root);

    struct arm_result {
        double ms = 0.0;
        std::string report;
    };
    const auto run_arm = [&](const char* name,
                             std::size_t checkpoint_every) {
        const fs::path dir = root / name;
        result_store store = result_store::create(
            dir, spec_text.str(), fp, points.size(), checkpoint_every);
        stopwatch clock;
        const campaign_run_summary summary =
            run_campaign(spec, points, store, {});
        arm_result result;
        result.ms = clock.milliseconds();
        if (summary.executed != points.size() || summary.failed != 0) {
            std::cerr << "campaign_throughput: arm " << name
                      << " did not complete cleanly\n";
            std::exit(1);
        }
        result.report = report_json(points, store);
        return result;
    };

    const arm_result every64 = run_arm("every64", 64);
    const arm_result every1 = run_arm("every1", 1);
    if (every64.report != every1.report) {
        std::cerr << "campaign_throughput: CHECKPOINT CADENCE CHANGED THE"
                     " RESULTS\n";
        return 1;
    }

    // Resume of a finished campaign: replay the journal, skip everything.
    double resume_ms = 0.0;
    {
        stopwatch clock;
        result_store store = result_store::open(root / "every64", fp);
        const campaign_run_summary summary =
            run_campaign(spec, points, store, {});
        resume_ms = clock.milliseconds();
        if (summary.already_complete != points.size() ||
            summary.executed != 0) {
            std::cerr << "campaign_throughput: resume re-ran points\n";
            return 1;
        }
    }
    fs::remove_all(root);

    const auto rate = [&](double ms) {
        return ms > 0.0 ? static_cast<double>(points.size()) / (ms / 1e3)
                        : 0.0;
    };
    table t("Campaign throughput: " + std::to_string(points.size()) +
            " points (fir4+fir8, " + std::to_string(variants + 1) +
            " variants, slack 0..30%)");
    t.header({"arm", "ms", "points/s"});
    t.row({"checkpoint every 64", table::num(every64.ms, 1),
           table::num(rate(every64.ms), 1)});
    t.row({"checkpoint every 1", table::num(every1.ms, 1),
           table::num(rate(every1.ms), 1)});
    t.row({"resume (all skipped)", table::num(resume_ms, 1),
           table::num(rate(resume_ms), 1)});
    bench::emit(t, opt);

    const double overhead =
        every64.ms > 0.0 ? every1.ms / every64.ms : 0.0;
    std::ostringstream json;
    json << "{\"bench\":\"campaign_throughput\"," << bench::env_json()
         << ",\"points\":" << points.size() << ",\"variants\":" << variants + 1
         << ",\"seed\":" << opt.seed
         << ",\"checkpoint64_ms\":" << every64.ms
         << ",\"checkpoint1_ms\":" << every1.ms
         << ",\"resume_ms\":" << resume_ms
         << ",\"points_per_second\":" << rate(every64.ms)
         << ",\"fsync_every_record_overhead\":" << overhead
         << ",\"reports_identical\":true}";
    std::cout << '\n' << json.str() << '\n';

    if (opt.max_size != 0 && opt.out.empty()) {
        return 0; // smoke run; keep recorded artifacts intact
    }
    const std::string path =
        opt.out.empty() ? "BENCH_campaign_throughput.json" : opt.out;
    std::ofstream file(path);
    if (file) {
        file << json.str() << '\n';
    } else {
        std::cerr << "campaign_throughput: cannot write " << path << '\n';
        return 1;
    }
    return 0;
}
