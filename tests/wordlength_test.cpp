// Unit tests for src/wordlength: truncation noise model, output-gain
// propagation on linear graphs, and error-budgeted fractional width
// assignment (water-filling + greedy trim).

#include "support/error.hpp"
#include "support/rng.hpp"
#include "tgff/generator.hpp"
#include "wordlength/noise_budget.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <span>
#include <string>

namespace mwl {
namespace {

TEST(NoisePower, MatchesClosedForm)
{
    // sigma^2 = 2^{-2f} / 12.
    EXPECT_DOUBLE_EQ(truncation_noise_power(0), 1.0 / 12.0);
    EXPECT_DOUBLE_EQ(truncation_noise_power(1), 0.25 / 12.0);
    EXPECT_NEAR(truncation_noise_power(8), std::pow(2.0, -16) / 12.0,
                1e-18);
}

TEST(NoisePower, EachBitQuartersTheNoise)
{
    for (int f = 0; f < 20; ++f) {
        EXPECT_NEAR(truncation_noise_power(f) / truncation_noise_power(f + 1),
                    4.0, 1e-9);
    }
}

TEST(OutputGains, OutputOpHasUnitGain)
{
    sequencing_graph g;
    g.add_operation(op_shape::adder(8));
    const std::vector<double> coeff{1.0};
    const auto gains = output_gains(g, coeff);
    EXPECT_DOUBLE_EQ(gains[0], 1.0);
}

TEST(OutputGains, AdderChainKeepsUnitGain)
{
    sequencing_graph g;
    op_id prev = g.add_operation(op_shape::adder(8));
    for (int i = 0; i < 3; ++i) {
        const op_id next = g.add_operation(op_shape::adder(8));
        g.add_dependency(prev, next);
        prev = next;
    }
    const std::vector<double> coeff(4, 1.0);
    const auto gains = output_gains(g, coeff);
    for (const double gain : gains) {
        EXPECT_DOUBLE_EQ(gain, 1.0);
    }
}

TEST(OutputGains, MultiplierScalesUpstreamNoise)
{
    // src(add) -> mul(coeff 0.5) : src's noise reaches the output through
    // the multiplier, scaled by coeff^2 = 0.25.
    sequencing_graph g;
    const op_id src = g.add_operation(op_shape::adder(8));
    const op_id m = g.add_operation(op_shape::multiplier(8, 8));
    g.add_dependency(src, m);
    const std::vector<double> coeff{1.0, 0.5};
    const auto gains = output_gains(g, coeff);
    EXPECT_DOUBLE_EQ(gains[m.value()], 1.0);
    EXPECT_DOUBLE_EQ(gains[src.value()], 0.25);
}

TEST(OutputGains, FanOutAccumulates)
{
    // src feeds two parallel output adders: gain 1 + 1 = 2.
    sequencing_graph g;
    const op_id src = g.add_operation(op_shape::adder(8));
    const op_id a = g.add_operation(op_shape::adder(8));
    const op_id b = g.add_operation(op_shape::adder(8));
    g.add_dependency(src, a);
    g.add_dependency(src, b);
    const std::vector<double> coeff(3, 1.0);
    const auto gains = output_gains(g, coeff);
    EXPECT_DOUBLE_EQ(gains[src.value()], 2.0);
}

TEST(OutputGains, SizeMismatchThrows)
{
    sequencing_graph g;
    g.add_operation(op_shape::adder(8));
    const std::vector<double> coeff;
    EXPECT_THROW(static_cast<void>(output_gains(g, coeff)),
                 precondition_error);
}

// ----------------------------------------------------------- assignment --

sequencing_graph small_linear_graph()
{
    sequencing_graph g;
    const op_id m1 = g.add_operation(op_shape::multiplier(12, 10));
    const op_id m2 = g.add_operation(op_shape::multiplier(12, 6));
    const op_id a1 = g.add_operation(op_shape::adder(14));
    g.add_dependency(m1, a1);
    g.add_dependency(m2, a1);
    return g;
}

TEST(AssignWidths, BudgetIsAlwaysRespected)
{
    const sequencing_graph g = small_linear_graph();
    const std::vector<double> coeff{0.8, 0.1, 1.0};
    const auto gains = output_gains(g, coeff);
    for (const double budget : {1e-3, 1e-5, 1e-8}) {
        noise_spec spec;
        spec.budget = budget;
        const auto wl = assign_fractional_widths(g, gains, spec);
        EXPECT_LE(wl.noise_power, budget);
        for (const int f : wl.frac_bits) {
            EXPECT_GE(f, spec.min_frac_bits);
            EXPECT_LE(f, spec.max_frac_bits);
        }
    }
}

TEST(AssignWidths, TighterBudgetNeverNarrowsAnyOperation)
{
    const sequencing_graph g = small_linear_graph();
    const std::vector<double> coeff{0.8, 0.1, 1.0};
    const auto gains = output_gains(g, coeff);
    noise_spec loose;
    loose.budget = 1e-4;
    noise_spec tight;
    tight.budget = 1e-7;
    const auto wide = assign_fractional_widths(g, gains, tight);
    const auto narrow = assign_fractional_widths(g, gains, loose);
    double wide_total = 0.0;
    double narrow_total = 0.0;
    for (std::size_t o = 0; o < g.size(); ++o) {
        wide_total += wide.frac_bits[o];
        narrow_total += narrow.frac_bits[o];
    }
    EXPECT_GE(wide_total, narrow_total);
}

TEST(AssignWidths, HighGainOpsGetMoreBits)
{
    // The op whose noise is amplified most must carry at least as many
    // fractional bits as a low-gain peer.
    const sequencing_graph g = small_linear_graph();
    const std::vector<double> coeff{1.0, 0.01, 1.0};
    const auto gains = output_gains(g, coeff);
    noise_spec spec;
    spec.budget = 1e-6;
    const auto wl = assign_fractional_widths(g, gains, spec);
    EXPECT_GE(wl.frac_bits[0], wl.frac_bits[1]);
}

TEST(AssignWidths, UnreachableBudgetThrows)
{
    const sequencing_graph g = small_linear_graph();
    const std::vector<double> coeff{1.0, 1.0, 1.0};
    const auto gains = output_gains(g, coeff);
    noise_spec spec;
    spec.budget = 1e-30;
    spec.max_frac_bits = 8;
    EXPECT_THROW(static_cast<void>(assign_fractional_widths(g, gains, spec)),
                 infeasible_error);
}

TEST(AssignWidths, InvalidSpecThrows)
{
    const sequencing_graph g = small_linear_graph();
    const std::vector<double> coeff{1.0, 1.0, 1.0};
    const auto gains = output_gains(g, coeff);
    noise_spec spec;
    spec.budget = 0.0;
    EXPECT_THROW(static_cast<void>(assign_fractional_widths(g, gains, spec)),
                 precondition_error);
    spec.budget = 1e-6;
    spec.min_frac_bits = 10;
    spec.max_frac_bits = 4;
    EXPECT_THROW(static_cast<void>(assign_fractional_widths(g, gains, spec)),
                 precondition_error);
}

TEST(AssignWidths, EdgeCaseSpecsNameTheOffendingField)
{
    // Regression: NaN/inf budgets sailed through the old `budget > 0`
    // check (NaN compares false but then poisons every log2), and the
    // diagnostics did not say which field was wrong.
    const sequencing_graph g = small_linear_graph();
    const std::vector<double> coeff{1.0, 1.0, 1.0};
    auto gains = output_gains(g, coeff);
    const auto expect_names = [&](const noise_spec& spec,
                                  std::span<const double> gs,
                                  const std::string& field) {
        try {
            static_cast<void>(assign_fractional_widths(g, gs, spec));
            FAIL() << "expected precondition_error naming " << field;
        } catch (const precondition_error& e) {
            EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
                << e.what();
        }
    };
    noise_spec spec;
    spec.budget = std::numeric_limits<double>::quiet_NaN();
    expect_names(spec, gains, "noise_spec.budget");
    spec.budget = std::numeric_limits<double>::infinity();
    expect_names(spec, gains, "noise_spec.budget");
    spec.budget = -1e-6;
    expect_names(spec, gains, "noise_spec.budget");
    spec = noise_spec{};
    spec.min_frac_bits = -1;
    expect_names(spec, gains, "noise_spec.min_frac_bits");
    spec = noise_spec{};
    gains[1] = std::numeric_limits<double>::quiet_NaN();
    expect_names(spec, gains, "gains[1]");
    gains[1] = -2.0;
    expect_names(spec, gains, "gains[1]");
}

TEST(AssignWidths, GreedyTrimReachesLocalMinimum)
{
    // After assignment, no single operation can shed a bit and stay
    // within budget (otherwise the trim loop would have done it).
    const sequencing_graph g = small_linear_graph();
    const std::vector<double> coeff{0.8, 0.1, 1.0};
    const auto gains = output_gains(g, coeff);
    noise_spec spec;
    spec.budget = 1e-5;
    const auto wl = assign_fractional_widths(g, gains, spec);
    for (std::size_t o = 0; o < g.size(); ++o) {
        if (wl.frac_bits[o] <= spec.min_frac_bits) {
            continue;
        }
        const double extra =
            gains[o] * (truncation_noise_power(wl.frac_bits[o] - 1) -
                        truncation_noise_power(wl.frac_bits[o]));
        EXPECT_GT(wl.noise_power + extra, spec.budget);
    }
}

TEST(AssignWidths, ZeroGainOpsGetMinimumWidth)
{
    const sequencing_graph g = small_linear_graph();
    std::vector<double> gains{0.0, 1.0, 1.0};
    noise_spec spec;
    spec.budget = 1e-5;
    const auto wl = assign_fractional_widths(g, gains, spec);
    EXPECT_EQ(wl.frac_bits[0], spec.min_frac_bits);
}

TEST(AssignWidths, RandomGraphsStayWithinBudget)
{
    rng random(123);
    for (int trial = 0; trial < 15; ++trial) {
        tgff_options opts;
        opts.n_ops = 10;
        const sequencing_graph g = generate_tgff(opts, random);
        std::vector<double> coeff(g.size(), 1.0);
        for (auto& c : coeff) {
            c = 0.05 + random.uniform_real();
        }
        const auto gains = output_gains(g, coeff);
        noise_spec spec;
        spec.budget = 1e-6;
        const auto wl = assign_fractional_widths(g, gains, spec);
        EXPECT_LE(wl.noise_power, spec.budget);
    }
}

} // namespace
} // namespace mwl
