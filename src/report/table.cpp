#include "report/table.hpp"

#include "support/error.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace mwl {

table::table(std::string title) : title_(std::move(title)) {}

void table::header(std::vector<std::string> columns)
{
    require(!columns.empty(), "table header must have at least one column");
    header_ = std::move(columns);
}

void table::row(std::vector<std::string> cells)
{
    require(cells.size() == header_.size(),
            "row width does not match header");
    rows_.push_back(std::move(cells));
}

std::string table::num(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string table::num(int value)
{
    return std::to_string(value);
}

void table::print(std::ostream& os) const
{
    if (!title_.empty()) {
        os << "== " << title_ << " ==\n";
    }
    std::vector<std::size_t> width(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c) {
        width[c] = header_[c].size();
    }
    for (const auto& r : rows_) {
        for (std::size_t c = 0; c < r.size(); ++c) {
            width[c] = std::max(width[c], r[c].size());
        }
    }
    const auto print_row = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(width[c]))
               << cells[c];
        }
        os << '\n';
    };
    print_row(header_);
    std::string rule;
    for (std::size_t c = 0; c < header_.size(); ++c) {
        rule += std::string(width[c], '-');
        if (c + 1 < header_.size()) {
            rule += "  ";
        }
    }
    os << rule << '\n';
    for (const auto& r : rows_) {
        print_row(r);
    }
}

void table::print_csv(std::ostream& os) const
{
    const auto csv_row = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            const std::string& cell = cells[c];
            const bool quote = cell.find(',') != std::string::npos;
            if (c > 0) {
                os << ',';
            }
            if (quote) {
                os << '"' << cell << '"';
            } else {
                os << cell;
            }
        }
        os << '\n';
    };
    csv_row(header_);
    for (const auto& r : rows_) {
        csv_row(r);
    }
}

} // namespace mwl
