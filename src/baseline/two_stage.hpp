// Two-stage baseline in the style of [4] (Constantinides, Cheung, Luk,
// FPL 2000), as characterised by the DATE 2001 paper: "an optimal
// branch-and-bound approach for resource binding and wordlength selection
// ... a two-stage scheduling/binding approach based on sharing only
// resources that can be grouped together without increasing the latency of
// the operation."
//
// Stage 1: wordlength-blind, time-constrained force-directed scheduling
//          with native operation latencies (sched/force_directed.hpp).
// Stage 2: *optimal* branch-and-bound partition of the operations into
//          latency-preserving groups (baseline/grouping.hpp) minimising
//          total area; seeded with a greedy incumbent, with a node cap
//          falling back to the incumbent (flagged in the result).

#ifndef MWL_BASELINE_TWO_STAGE_HPP
#define MWL_BASELINE_TWO_STAGE_HPP

#include "core/datapath.hpp"
#include "dfg/sequencing_graph.hpp"
#include "model/hardware_model.hpp"

#include <cstddef>

namespace mwl {

struct two_stage_options {
    /// Branch-and-bound node cap for the binding stage.
    std::size_t node_cap = 2000000;
};

struct two_stage_result {
    datapath path;
    /// False if the node cap stopped the search (result is the incumbent).
    bool proven_optimal_binding = true;
    std::size_t nodes = 0;
};

/// Allocate a datapath with the two-stage baseline. Throws
/// `infeasible_error` when lambda is below the graph's minimum latency.
[[nodiscard]] two_stage_result two_stage_allocate(
    const sequencing_graph& graph, const hardware_model& model, int lambda,
    const two_stage_options& options = {});

} // namespace mwl

#endif // MWL_BASELINE_TWO_STAGE_HPP
