#include "wcg/resource_set.hpp"

#include <algorithm>
#include <set>

namespace mwl {

std::vector<op_shape> extract_resource_types(std::span<const op_shape> shapes)
{
    // Closure under pairwise join. The join operation is associative,
    // commutative and idempotent, so iterating pairwise joins to a fixed
    // point yields the join of every subset.
    std::set<op_shape> closure(shapes.begin(), shapes.end());
    bool grew = true;
    while (grew) {
        grew = false;
        std::vector<op_shape> fresh;
        for (auto i = closure.begin(); i != closure.end(); ++i) {
            for (auto j = std::next(i); j != closure.end(); ++j) {
                if (i->kind() != j->kind()) {
                    continue;
                }
                const op_shape joined = op_shape::join(*i, *j);
                if (!closure.contains(joined)) {
                    fresh.push_back(joined);
                }
            }
        }
        for (const op_shape& shape : fresh) {
            grew |= closure.insert(shape).second;
        }
    }
    return {closure.begin(), closure.end()};
}

std::vector<op_shape> extract_resource_types(const sequencing_graph& graph)
{
    std::vector<op_shape> shapes;
    shapes.reserve(graph.size());
    for (const op_id o : graph.all_ops()) {
        shapes.push_back(graph.shape(o));
    }
    return extract_resource_types(shapes);
}

} // namespace mwl
