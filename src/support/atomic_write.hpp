// Crash-safe whole-file replacement.
//
// Every durable file the campaign layer owns (spec copies, snapshots,
// journal resets) goes through one primitive: write the new content to a
// temporary in the same directory, fsync it, rename it over the target,
// and fsync the directory so the rename itself is durable. A reader can
// therefore observe only the old content or the new content, never a
// prefix -- the property the checkpointed result store is built on
// (src/campaign/result_store.hpp). Torn output is possible only in the
// append-only journal, whose per-record checksums catch it.

#ifndef MWL_SUPPORT_ATOMIC_WRITE_HPP
#define MWL_SUPPORT_ATOMIC_WRITE_HPP

#include "support/error.hpp"

#include <filesystem>
#include <string_view>

namespace mwl {

/// A filesystem operation (open/write/fsync/rename) failed; `what()`
/// names the path and the errno text.
class io_error : public error {
public:
    using error::error;
};

/// Atomically replace `path` with `content`: temp file in the same
/// directory + fsync + rename + directory fsync. On any failure the
/// target is untouched and the temp file is removed. Throws `io_error`.
///
/// `fault_point` opts this write into the crash-injection harness
/// (support/fault_inject.hpp): when the armed countdown elapses here, the
/// process exits after the temp file is written but *before* the rename,
/// simulating a crash mid-replacement -- the target must keep its old
/// content. Store-owned writes pass true; incidental files stay out of
/// the countdown so MWL_CRASH_AFTER counts exactly the store's writes.
void atomic_write_file(const std::filesystem::path& path,
                       std::string_view content, bool fault_point = false);

/// Durably read a whole file into a string. Returns false if the file
/// does not exist; throws `io_error` on any other failure.
bool read_file(const std::filesystem::path& path, std::string& out);

} // namespace mwl

#endif // MWL_SUPPORT_ATOMIC_WRITE_HPP
