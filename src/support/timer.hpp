// Wall-clock stopwatch for the execution-time experiments (Fig. 5, Table 2).

#ifndef MWL_SUPPORT_TIMER_HPP
#define MWL_SUPPORT_TIMER_HPP

#include <chrono>

namespace mwl {

class stopwatch {
public:
    stopwatch() : start_(clock::now()) {}

    void reset() { start_ = clock::now(); }

    /// Seconds elapsed since construction or the last reset().
    [[nodiscard]] double seconds() const
    {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

    [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

} // namespace mwl

#endif // MWL_SUPPORT_TIMER_HPP
